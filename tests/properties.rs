//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use smartexchange::core::{algorithm, SeConfig, VectorSparsity};
use smartexchange::ir::{booth, Po2Set, QuantTensor};
use smartexchange::tensor::{linalg, Mat, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantizing to Ω_P is idempotent and always lands in the set.
    #[test]
    fn po2_quantize_idempotent(x in -10.0f32..10.0) {
        let set = Po2Set::default();
        let q = set.quantize(x);
        prop_assert!(set.contains(q));
        prop_assert_eq!(set.quantize(q), q);
    }

    /// Encode/decode of representable values round-trips for arbitrary
    /// alphabet shapes.
    #[test]
    fn po2_codec_roundtrip(max_exp in -8i32..8, count in 1u32..12, idx in 0u32..12, neg in any::<bool>()) {
        let set = Po2Set::new(max_exp, count).unwrap();
        let p = max_exp - (idx % count) as i32;
        let v = if neg { -1.0 } else { 1.0 } * (p as f32).exp2();
        let code = set.encode(v).unwrap();
        prop_assert_eq!(set.decode(code).unwrap(), v);
        prop_assert!(u32::from(code) < (1u32 << set.code_bits()));
    }

    /// Booth digits always reconstruct the 8-bit value.
    #[test]
    fn booth_reconstructs(v in any::<i8>()) {
        let d = booth::booth_digits(v);
        let recon: i32 = d.iter().enumerate().map(|(i, &dv)| i32::from(dv) * 4i32.pow(i as u32)).sum();
        prop_assert_eq!(recon, i32::from(v));
        prop_assert!(booth::booth_nonzero_digits(v) <= 4);
    }

    /// 8-bit quantization round-trips within half a step.
    #[test]
    fn quant_tensor_error_bounded(xs in proptest::collection::vec(-5.0f32..5.0, 1..64)) {
        let n = xs.len();
        let t = Tensor::from_vec(xs, &[n]).unwrap();
        let q = QuantTensor::quantize(&t, 8).unwrap();
        let back = q.dequantize();
        for (a, b) in t.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() <= q.scale() / 2.0 + 1e-6);
        }
    }

    /// The decomposition always produces representable coefficients and a
    /// bounded reconstruction error for well-scaled inputs.
    #[test]
    fn decomposition_invariants(seed in 0u64..50, rows in 6usize..40) {
        let mut r = smartexchange::tensor::rng::seeded(seed);
        let w = smartexchange::tensor::rng::normal_mat(&mut r, rows, 3, 0.1);
        let cfg = SeConfig::default()
            .with_max_iterations(5).unwrap()
            .with_vector_sparsity(VectorSparsity::None).unwrap();
        let d = algorithm::decompose(&w, &cfg).unwrap();
        for &x in d.ce.data() {
            prop_assert!(cfg.po2().contains(x), "coefficient {} not in Ω_P", x);
        }
        let err = d.reconstruction_error(&w).unwrap();
        prop_assert!(err < 0.6, "reconstruction error {}", err);
    }

    /// KeepFraction guarantees at least the requested row sparsity.
    #[test]
    fn keep_fraction_row_guarantee(seed in 0u64..30, keep in 0.1f32..0.9) {
        let mut r = smartexchange::tensor::rng::seeded(seed);
        let w = smartexchange::tensor::rng::normal_mat(&mut r, 30, 3, 0.1);
        let cfg = SeConfig::default()
            .with_max_iterations(4).unwrap()
            .with_vector_sparsity(VectorSparsity::KeepFraction(keep)).unwrap();
        let d = algorithm::decompose(&w, &cfg).unwrap();
        let zero_rows = d.ce.zero_rows();
        let expect_zero = 30 - ((30.0 * keep).round() as usize);
        prop_assert!(zero_rows >= expect_zero, "{} zero rows < {}", zero_rows, expect_zero);
    }

    /// Least squares never increases the residual relative to Ce = W, B = I.
    #[test]
    fn lstsq_left_is_optimal_enough(seed in 0u64..30) {
        let mut r = smartexchange::tensor::rng::seeded(seed);
        let c = smartexchange::tensor::rng::normal_mat(&mut r, 12, 3, 1.0);
        let w = smartexchange::tensor::rng::normal_mat(&mut r, 12, 3, 1.0);
        let b = linalg::lstsq_left(&c, &w, 1e-6).unwrap();
        let fitted = w.sub(&c.matmul(&b).unwrap()).unwrap().frobenius_norm();
        let identity = w.sub(&c.matmul(&Mat::identity(3)).unwrap()).unwrap().frobenius_norm();
        prop_assert!(fitted <= identity + 1e-3);
    }

    /// Parallel (4 workers) and serial (1 worker) whole-network compression
    /// produce bit-identical results on a seeded 6-layer network: the
    /// pipeline reassembles per-layer jobs in network order, so worker
    /// count must never leak into the output.
    #[test]
    fn parallel_compression_is_bit_identical_to_serial(seed in 0u64..16) {
        use smartexchange::core::network;
        use smartexchange::ir::{LayerDesc, LayerKind};

        let mut r = smartexchange::tensor::rng::seeded(seed);
        let chans = [3usize, 8, 8, 16, 16, 8, 4];
        let layers: Vec<(LayerDesc, smartexchange::tensor::Tensor)> = (0..6)
            .map(|i| {
                let (ci, co) = (chans[i], chans[i + 1]);
                let desc = LayerDesc::new(
                    format!("c{i}"),
                    LayerKind::Conv2d { in_channels: ci, out_channels: co, kernel: 3, stride: 1, padding: 1 },
                    (8, 8),
                );
                let w = smartexchange::tensor::rng::kaiming_tensor(&mut r, &[co, ci, 3, 3], ci * 9);
                (desc, w)
            })
            .collect();
        let serial_cfg = SeConfig::default()
            .with_max_iterations(4).unwrap()
            .with_parallelism(1).unwrap();
        let parallel_cfg = serial_cfg.clone().with_parallelism(4).unwrap();
        let serial = network::compress_network(&layers, &serial_cfg).unwrap();
        let parallel = network::compress_network(&layers, &parallel_cfg).unwrap();
        prop_assert_eq!(&serial.reports, &parallel.reports);
        prop_assert_eq!(serial, parallel);
    }

    /// Matrix transpose is an involution and matmul distributes over it.
    #[test]
    fn transpose_involution(seed in 0u64..30, rows in 1usize..12, cols in 1usize..12) {
        let mut r = smartexchange::tensor::rng::seeded(seed);
        let a = smartexchange::tensor::rng::normal_mat(&mut r, rows, cols, 1.0);
        prop_assert_eq!(a.transpose().transpose(), a);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// For randomized CONV geometries, the fast simulator's compute-cycle
    /// count equals the brute-force golden model's — the randomized
    /// extension of the fixed-grid validation in `se_hw::golden` (which
    /// only checks hand-picked cases). Every geometry drawn here is valid
    /// by construction: `hw >= 6` and `kernel <= 5`, so `hw + 2·padding >=
    /// kernel` always holds.
    #[test]
    fn simulator_matches_golden_on_random_conv_geometries(
        seed in 0u64..1000,
        c in 1usize..5,
        m in 1usize..7,
        hw in 6usize..12,
        kidx in 0usize..3,
        stride in 1usize..3,
        padding in 0usize..3,
        keep in 0.3f32..1.0,
        index_select in any::<bool>(),
        bit_serial in any::<bool>(),
    ) {
        use smartexchange::core::{layer as se_layer, SeConfig, VectorSparsity};
        use smartexchange::hw::sim::SeAccelerator;
        use smartexchange::hw::{golden, Accelerator, SeAcceleratorConfig};
        use smartexchange::ir::{LayerDesc, LayerKind, LayerTrace, QuantTensor, WeightData};
        use smartexchange::tensor::rng;

        let k = [2usize, 3, 5][kidx];
        let desc = LayerDesc::new(
            "g",
            LayerKind::Conv2d { in_channels: c, out_channels: m, kernel: k, stride, padding },
            (hw, hw),
        );
        let mut r = rng::seeded(seed);
        let w = rng::kaiming_tensor(&mut r, &[m, c, k, k], c * k * k);
        let se_cfg = SeConfig::default()
            .with_max_iterations(3).unwrap()
            .with_vector_sparsity(VectorSparsity::KeepFraction(keep)).unwrap();
        let parts = se_layer::compress_layer(&desc, &w, &se_cfg).unwrap();
        let act = rng::normal_tensor(&mut r, &[c, hw, hw], 1.0)
            .map(|v| if v < 0.3 { 0.0 } else { v });
        let q = QuantTensor::quantize(&act, 8).unwrap();
        let trace = LayerTrace::new(desc, WeightData::Se(parts), q).unwrap();

        let cfg = SeAcceleratorConfig {
            dim_m: 2,
            dim_c: 2,
            dim_f: 4,
            index_select,
            bit_serial,
            ..Default::default()
        };
        let sim = SeAccelerator::new(cfg.clone()).unwrap();
        let fast = sim.process_layer(&trace).unwrap().compute_cycles;
        let golden = golden::golden_conv_cycles(&cfg, &trace).unwrap();
        prop_assert!(
            fast == golden,
            "fast {} vs golden {}: c={} m={} hw={} k={} stride={} pad={} idx={} serial={}",
            fast, golden, c, m, hw, k, stride, padding, index_select, bit_serial
        );
    }
}
