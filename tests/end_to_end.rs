//! Cross-crate integration tests: the full pipeline from synthetic model to
//! compressed weights to accelerator simulation.

use smartexchange::baselines::{BaselineConfig, BitPragmatic, CambriconX, DianNao, Scnn};
use smartexchange::core::{layer, network, SeConfig, VectorSparsity};
use smartexchange::hw::sim::SeAccelerator;
use smartexchange::hw::{Accelerator, EnergyModel, RunResult, SeAcceleratorConfig};
use smartexchange::ir::{storage, Dataset, LayerDesc, LayerKind, NetworkDesc};
use smartexchange::models::traces::{TraceOptions, TraceStream};
use smartexchange::models::{activations, weights, zoo};
use smartexchange::tensor::rng;

fn small_net() -> NetworkDesc {
    NetworkDesc::new(
        "itest",
        Dataset::Cifar10,
        vec![
            LayerDesc::new(
                "c1",
                LayerKind::Conv2d {
                    in_channels: 3,
                    out_channels: 16,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                (16, 16),
            ),
            LayerDesc::new(
                "c2",
                LayerKind::Conv2d {
                    in_channels: 16,
                    out_channels: 16,
                    kernel: 3,
                    stride: 2,
                    padding: 1,
                },
                (16, 16),
            ),
            LayerDesc::new(
                "pw",
                LayerKind::Conv2d {
                    in_channels: 16,
                    out_channels: 8,
                    kernel: 1,
                    stride: 1,
                    padding: 0,
                },
                (8, 8),
            ),
        ],
    )
    .unwrap()
}

#[test]
fn compress_reconstruct_simulate_pipeline() {
    let net = small_net();
    let cfg = SeConfig::default()
        .with_max_iterations(5)
        .unwrap()
        .with_vector_sparsity(VectorSparsity::KeepFraction(0.5))
        .unwrap();

    // Compress every layer and verify CR and fidelity.
    let layers: Vec<_> = net
        .layers()
        .iter()
        .map(|d| {
            let w = weights::synthetic_weights(net.name(), d, 0).unwrap();
            (d.clone(), w)
        })
        .collect();
    let compressed = network::compress_network(&layers, &cfg).unwrap();
    assert!(compressed.compression_rate() > 6.0, "CR {}", compressed.compression_rate());
    assert!(compressed.mean_recon_error() < 0.6);

    // Rebuild each layer and confirm shapes match the originals.
    for ((desc, w), parts) in layers.iter().zip(&compressed.parts) {
        let rebuilt = layer::reconstruct_layer(desc, parts).unwrap();
        assert_eq!(rebuilt.shape(), w.shape());
    }

    // The simulators consume matched traces of the same network.
    let se_accel = SeAccelerator::new(SeAcceleratorConfig::default()).unwrap();
    let diannao = DianNao::new(BaselineConfig::default()).unwrap();
    let mut se_run = RunResult::default();
    let mut dn_run = RunResult::default();
    for pair in TraceStream::new(&net, TraceOptions::fast()) {
        let pair = pair.unwrap();
        se_run.layers.push(se_accel.process_layer(&pair.se).unwrap());
        dn_run.layers.push(diannao.process_layer(&pair.dense).unwrap());
    }
    assert_eq!(se_run.layers.len(), 3);

    // SmartExchange must beat the dense baseline on energy and DRAM.
    let em = EnergyModel::default();
    let cfg_hw = SeAcceleratorConfig::default();
    assert!(se_run.energy_mj(&em, &cfg_hw) < dn_run.energy_mj(&em, &cfg_hw));
    assert!(se_run.mem_totals().dram_total_bytes() < dn_run.mem_totals().dram_total_bytes());
}

#[test]
fn all_five_accelerators_run_the_same_conv_trace() {
    let net = small_net();
    let pair = TraceStream::new(&net, TraceOptions::fast()).next().unwrap().unwrap();
    let em = EnergyModel::default();
    let hw_cfg = SeAcceleratorConfig::default();

    let se = SeAccelerator::new(hw_cfg.clone()).unwrap();
    let se_result = se.process_layer(&pair.se).unwrap();

    let accels: Vec<Box<dyn Accelerator>> = vec![
        Box::new(DianNao::new(BaselineConfig::default()).unwrap()),
        Box::new(Scnn::new(BaselineConfig::default()).unwrap()),
        Box::new(CambriconX::new(BaselineConfig::default()).unwrap()),
        Box::new(BitPragmatic::default()),
    ];
    for accel in &accels {
        let r = accel.process_layer(&pair.dense).unwrap();
        assert!(r.total_cycles > 0, "{} produced zero cycles", accel.name());
        assert!(r.energy(&em, &hw_cfg).total() > 0.0);
    }
    assert!(se_result.total_cycles > 0);
}

#[test]
fn row_sampling_stays_close_to_exact() {
    let net = small_net();
    let pair = TraceStream::new(&net, TraceOptions::fast()).next().unwrap().unwrap();
    let exact = SeAccelerator::new(SeAcceleratorConfig::default())
        .unwrap()
        .process_layer(&pair.se)
        .unwrap();
    let cfg = SeAcceleratorConfig { row_sample: 4, ..Default::default() };
    let sampled = SeAccelerator::new(cfg).unwrap().process_layer(&pair.se).unwrap();
    let ratio = sampled.compute_cycles as f64 / exact.compute_cycles as f64;
    assert!((0.8..1.2).contains(&ratio), "sampled/exact ratio {ratio}");
}

#[test]
fn zoo_models_produce_consistent_storage_accounting() {
    // MLP-2 is small enough to compress end-to-end in a test.
    let net = zoo::mlp2();
    let cfg = SeConfig::default()
        .with_max_iterations(4)
        .unwrap()
        .with_vector_sparsity(VectorSparsity::RelativeThreshold(0.4))
        .unwrap();
    let descs: Vec<_> = net.layers().to_vec();
    let reports = network::compress_network_reports(&descs, &cfg, |d| {
        Ok(weights::synthetic_weights(net.name(), d, 0).unwrap())
    })
    .unwrap();
    let mut total = storage::SeStorage::default();
    for r in &reports {
        total.accumulate(&r.storage);
    }
    let cr = storage::compression_rate(net.total_params(), &total);
    // Paper Table II: MLP-2 at 45x; synthetic weights land in the same band.
    assert!(cr > 15.0, "MLP-2 CR {cr}");
}

#[test]
fn activation_statistics_match_captured_model_behaviour() {
    // The synthetic activation generator must land in the same bit-sparsity
    // band as activations captured from a genuinely trained model.
    use smartexchange::ir::{booth, QuantTensor};
    use smartexchange::nn::{data, layers::Layer, model::Sequential, train};

    let ds = data::gaussian_clusters(4, &[3, 8, 8], 10, 0.3, 3).unwrap();
    let mut model = Sequential::new(vec![
        Layer::conv2d(3, 8, 3, 1, 1, 60).unwrap(),
        Layer::relu(),
        Layer::conv2d(8, 8, 3, 1, 1, 61).unwrap(),
        Layer::relu(),
        Layer::global_avg_pool(),
        Layer::linear(8, 4, 62).unwrap(),
    ]);
    let cfg = train::TrainConfig::default().with_epochs(5).with_lr(0.05);
    train::train(&mut model, &ds, &cfg).unwrap();

    // Capture the input to the second conv (a post-ReLU map).
    let (_, inputs) = model.forward_capturing(&ds.inputs()[0]).unwrap();
    let captured = QuantTensor::quantize(&inputs[2], 8).unwrap();
    let cap = booth::bit_sparsity(captured.data());

    let net = zoo::vgg19_cifar();
    let syn = activations::network_bit_sparsity(&net, 0).unwrap();
    assert!(
        (cap.plain - syn.plain).abs() < 0.2,
        "captured {} vs synthetic {}",
        cap.plain,
        syn.plain
    );
    assert!(cap.plain > cap.booth && syn.plain > syn.booth);
}

#[test]
fn determinism_across_full_pipeline() {
    let net = small_net();
    let run = |seed| {
        let mut cycles = Vec::new();
        let accel = SeAccelerator::new(SeAcceleratorConfig::default()).unwrap();
        for pair in TraceStream::new(&net, TraceOptions::fast().with_seed(seed)) {
            cycles.push(accel.process_layer(&pair.unwrap().se).unwrap().total_cycles);
        }
        cycles
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn decomposition_error_beats_direct_po2_quantization() {
    // The headline algorithmic claim: decomposing then quantizing beats
    // quantizing the weights directly at equal coefficient precision.
    use smartexchange::core::baselines;
    use smartexchange::ir::Po2Set;

    let mut r = rng::seeded(11);
    let desc = LayerDesc::new(
        "c",
        LayerKind::Conv2d { in_channels: 16, out_channels: 16, kernel: 3, stride: 1, padding: 1 },
        (8, 8),
    );
    let w = rng::kaiming_tensor(&mut r, &[16, 16, 3, 3], 144);
    let cfg = SeConfig::default()
        .with_max_iterations(10)
        .unwrap()
        .with_vector_sparsity(VectorSparsity::None)
        .unwrap();
    let parts = layer::compress_layer(&desc, &w, &cfg).unwrap();
    let se_recon = layer::reconstruct_layer(&desc, &parts).unwrap();
    let se_err = w.sub(&se_recon).unwrap().norm() / w.norm();

    let direct = baselines::po2_quantize(&w, &Po2Set::default()).unwrap();
    let direct_err = w.sub(&direct.weights).unwrap().norm() / w.norm();
    assert!(se_err < direct_err, "SE error {se_err} should beat direct po2 error {direct_err}");
}
