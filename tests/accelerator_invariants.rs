//! Invariants across the accelerator fleet that must hold for any seed —
//! the orderings the paper's figures claim, checked on randomized data.

use smartexchange::baselines::{BaselineConfig, BitPragmatic, CambriconX, DianNao, Scnn};
use smartexchange::hw::sim::SeAccelerator;
use smartexchange::hw::{Accelerator, EnergyModel, SeAcceleratorConfig};
use smartexchange::ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};
use smartexchange::models::traces::{TraceOptions, TraceStream};

fn conv_net(c: usize, m: usize, hw: usize) -> NetworkDesc {
    NetworkDesc::new(
        "inv",
        Dataset::Cifar10,
        vec![LayerDesc::new(
            "c1",
            LayerKind::Conv2d { in_channels: c, out_channels: m, kernel: 3, stride: 1, padding: 1 },
            (hw, hw),
        )],
    )
    .unwrap()
}

fn run_all(net: &NetworkDesc, seed: u64) -> Vec<(String, f64, u64, u64)> {
    let em = EnergyModel::default();
    let hw_cfg = SeAcceleratorConfig::default();
    let opts = TraceOptions::fast().with_seed(seed);
    let pair = TraceStream::new(net, opts).next().unwrap().unwrap();

    let mut out = Vec::new();
    let se = SeAccelerator::new(hw_cfg.clone()).unwrap();
    let r = se.process_layer(&pair.se).unwrap();
    out.push((
        "SmartExchange".to_string(),
        r.energy(&em, &hw_cfg).total(),
        r.total_cycles,
        r.mem.dram_total_bytes(),
    ));
    let dense: Vec<Box<dyn Accelerator>> = vec![
        Box::new(DianNao::new(BaselineConfig::default()).unwrap()),
        Box::new(Scnn::new(BaselineConfig::default()).unwrap()),
        Box::new(CambriconX::new(BaselineConfig::default()).unwrap()),
        Box::new(BitPragmatic::default()),
    ];
    for a in &dense {
        let r = a.process_layer(&pair.dense).unwrap();
        out.push((
            a.name().to_string(),
            r.energy(&em, &hw_cfg).total(),
            r.total_cycles,
            r.mem.dram_total_bytes(),
        ));
    }
    out
}

#[test]
fn smartexchange_beats_diannao_across_seeds() {
    // The headline ordering of Figs. 10-12 must hold for arbitrary seeds.
    let net = conv_net(16, 32, 16);
    for seed in [0u64, 1, 2, 3, 4] {
        let results = run_all(&net, seed);
        let se = &results[0];
        let diannao = results.iter().find(|r| r.0 == "DianNao").unwrap();
        assert!(se.1 < diannao.1, "seed {seed}: SE energy {} !< DianNao {}", se.1, diannao.1);
        assert!(se.3 < diannao.3, "seed {seed}: SE DRAM {} !< DianNao {}", se.3, diannao.3);
    }
}

#[test]
fn every_accelerator_scales_with_layer_size() {
    // Twice the output channels must never be cheaper, for every design.
    let small = conv_net(8, 16, 12);
    let large = conv_net(8, 32, 12);
    let rs = run_all(&small, 7);
    let rl = run_all(&large, 7);
    for (s, l) in rs.iter().zip(&rl) {
        assert!(l.1 >= s.1, "{}: energy shrank with a larger layer", s.0);
        assert!(l.3 >= s.3, "{}: DRAM shrank with a larger layer", s.0);
    }
}

#[test]
fn ablation_ladder_is_monotone_in_energy_efficiency() {
    // Adding each SmartExchange feature must not hurt (Section V-B).
    let net = conv_net(16, 32, 16);
    let pair = TraceStream::new(&net, TraceOptions::fast().with_seed(3)).next().unwrap().unwrap();
    let em = EnergyModel::default();
    let report_cfg = SeAcceleratorConfig::default();

    let base = SeAcceleratorConfig::ablation_dense_baseline();
    let mut with_index = base.clone();
    with_index.index_select = true;
    let full = SeAcceleratorConfig {
        dim_m: base.dim_m,
        dim_c: base.dim_c,
        dim_f: base.dim_f,
        ..Default::default()
    };

    let energies: Vec<f64> = [base, with_index, full]
        .into_iter()
        .map(|cfg| {
            let accel = SeAccelerator::new(cfg).unwrap();
            accel.process_layer(&pair.se).unwrap().energy(&em, &report_cfg).total()
        })
        .collect();
    assert!(energies[1] <= energies[0] * 1.001, "index select hurt energy: {energies:?}");
    assert!(energies[2] <= energies[1] * 1.001, "bit-serial lanes hurt energy: {energies:?}");
}

#[test]
fn dram_bandwidth_only_affects_latency() {
    let net = conv_net(8, 16, 12);
    let pair = TraceStream::new(&net, TraceOptions::fast()).next().unwrap().unwrap();
    let fast_cfg = SeAcceleratorConfig::default();
    let slow_cfg = SeAcceleratorConfig { dram_bytes_per_cycle: 0.5, ..Default::default() };
    let em = EnergyModel::default();
    let fast = SeAccelerator::new(fast_cfg.clone()).unwrap().process_layer(&pair.se).unwrap();
    let slow = SeAccelerator::new(slow_cfg).unwrap().process_layer(&pair.se).unwrap();
    assert!(slow.total_cycles > fast.total_cycles);
    assert_eq!(slow.mem, fast.mem, "traffic must not depend on bandwidth");
    assert!(
        (slow.energy(&em, &fast_cfg).dram_total() - fast.energy(&em, &fast_cfg).dram_total()).abs()
            < 1e-9
    );
}
