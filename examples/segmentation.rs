//! SmartExchange beyond classification (Section V-A): compress the
//! DeepLabV3+ segmentation model and run its heaviest stages through the
//! accelerator — the workload the paper uses to show the technique is not
//! classification-specific.
//!
//! Run with: `cargo run --release --example segmentation`

use smartexchange::core::{network, SeConfig, VectorSparsity};
use smartexchange::hw::sim::SeAccelerator;
use smartexchange::hw::{Accelerator, EnergyModel, SeAcceleratorConfig};
use smartexchange::ir::storage;
use smartexchange::models::traces::{self, TraceOptions};
use smartexchange::models::{weights, zoo};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = zoo::deeplab_v3plus();
    println!(
        "{} on {}: {} layers, {:.1} M params, {:.1} GMACs at 360x480",
        net.name(),
        net.dataset(),
        net.layers().len(),
        net.total_params() as f64 / 1e6,
        net.total_macs() as f64 / 1e9
    );

    // Compress the ASPP head + decoder (the segmentation-specific part).
    let head: Vec<_> = net
        .layers()
        .iter()
        .filter(|l| l.name().starts_with("aspp") || l.name().starts_with("dec"))
        .cloned()
        .collect();
    println!("\ncompressing the {}-layer ASPP head + decoder...", head.len());
    let cfg = SeConfig::default()
        .with_max_iterations(6)?
        .with_vector_sparsity(VectorSparsity::RelativeThreshold(0.4))?;
    let reports = network::compress_network_reports(&head, &cfg, |d| {
        Ok(weights::synthetic_weights(net.name(), d, 0).expect("synthetic weights"))
    })?;
    let mut total = storage::SeStorage::default();
    let mut params = 0u64;
    for r in &reports {
        total.accumulate(&r.storage);
        params += r.params;
        println!(
            "  {:<14} {:>9} params  CR {:>5.1}x  row sparsity {:>5.1}%  err {:.3}",
            r.name,
            r.params,
            storage::compression_rate(r.params, &r.storage),
            r.vector_sparsity * 100.0,
            r.recon_error
        );
    }
    println!(
        "head total: CR {:.1}x ({:.2} MB -> {:.2} MB)",
        storage::compression_rate(params, &total),
        params as f64 * 4.0 / 1024.0 / 1024.0,
        total.total_megabytes()
    );

    // Simulate the first ASPP conv on the accelerator (dense 360x480-scale
    // feature maps are exactly the memory-bound case SE targets).
    let aspp_index =
        net.layers().iter().position(|l| l.name() == "aspp1").expect("DeepLabV3+ has aspp1");
    let opts = TraceOptions::fast();
    let trace = traces::se_trace(&net, aspp_index, 0, &opts.se_config)?;
    let hw = SeAcceleratorConfig { row_sample: 2, ..Default::default() };
    let accel = SeAccelerator::new(hw.clone())?;
    let result = accel.process_layer(&trace)?;
    let e = result.energy(&EnergyModel::default(), &hw);
    println!(
        "\naspp1 (3x3, 2048->256 at 23x30): {} cycles, {:.3} mJ \
         ({:.0}% of it DRAM)",
        result.total_cycles,
        e.total() * 1e-9,
        e.dram_total() / e.total() * 100.0
    );
    Ok(())
}
