//! The paper's re-training recipe (Section III-C) end to end: train a small
//! CNN, compress it with SmartExchange, recover the accuracy by alternating
//! SGD epochs with SE projections, and report the trade-off.
//!
//! Run with: `cargo run --release --example compress_and_retrain`

use smartexchange::core::{SeConfig, VectorSparsity};
use smartexchange::models::trainable;
use smartexchange::nn::layers::Layer;
use smartexchange::nn::model::Sequential;
use smartexchange::nn::{data, train};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input_shape = [1usize, 28, 28];
    let ds = data::procedural_digits(12, 7)?;

    // 1. Train the dense model (a small CNN on an MNIST-like task).
    println!("training the dense model...");
    let mut model = Sequential::new(vec![
        Layer::conv2d(1, 6, 3, 2, 1, 1000)?,
        Layer::relu(),
        Layer::max_pool(2),
        Layer::flatten(),
        Layer::linear(6 * 7 * 7, 10, 1001)?,
    ]);
    let cfg = train::TrainConfig::default().with_epochs(10).with_lr(0.05).with_batch_size(4);
    let report = train::train(&mut model, &ds, &cfg)?;
    println!("dense accuracy: {:.1}%", report.final_accuracy * 100.0);

    // 2. One-shot compression (post-processing, no re-training).
    let se_cfg = SeConfig::default()
        .with_max_iterations(6)?
        .with_vector_sparsity(VectorSparsity::KeepFraction(0.5))?;
    let mut projected = model.clone();
    trainable::se_projection(&mut projected, &input_shape, &se_cfg)?;
    let post_acc = train::evaluate(&projected, &ds)?;
    println!("after one-shot SmartExchange projection: {:.1}%", post_acc * 100.0);

    // 3. Re-training: alternate one SGD epoch with the SE projection.
    println!("re-training with per-epoch projections...");
    let recover = train::TrainConfig::default().with_epochs(8).with_lr(0.02).with_batch_size(4);
    let se_cfg2 = se_cfg.clone();
    let report = train::retrain_with_projection(&mut model, &ds, &recover, |m| {
        trainable::se_projection(m, &input_shape, &se_cfg2)
            .map_err(|e| smartexchange::nn::NnError::InvalidLayer { reason: e.to_string() })
    })?;
    println!("after re-training: {:.1}%", report.final_accuracy * 100.0);

    // 4. The storage the deployed model needs.
    let net = trainable::compress_trainable(&model, &input_shape, &se_cfg)?;
    println!(
        "compression rate {:.1}x, overall sparsity {:.1}%, mean reconstruction error {:.3}",
        net.compression_rate(),
        net.overall_sparsity() * 100.0,
        net.mean_recon_error()
    );
    Ok(())
}
