//! Run a benchmark network through the SmartExchange accelerator and the
//! DianNao baseline on identical data, comparing energy and latency — a
//! single-model slice of the paper's Figs. 10–12.
//!
//! Run with: `cargo run --release --example accelerate`

use smartexchange::baselines::{BaselineConfig, DianNao};
use smartexchange::hw::sim::SeAccelerator;
use smartexchange::hw::{Accelerator, EnergyModel, RunResult, SeAcceleratorConfig};
use smartexchange::models::traces::{TraceOptions, TraceStream};
use smartexchange::models::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = zoo::resnet164();
    println!(
        "{} on {}: {:.2} M params, {:.2} GMACs",
        net.name(),
        net.dataset(),
        net.total_params() as f64 / 1e6,
        net.total_macs() as f64 / 1e9
    );

    let se_cfg = SeAcceleratorConfig::default();
    let se = SeAccelerator::new(se_cfg.clone())?;
    let diannao = DianNao::new(BaselineConfig::default())?;
    let em = EnergyModel::default();

    println!("generating traces and simulating (a minute or two)...");
    let mut se_run = RunResult::default();
    let mut dn_run = RunResult::default();
    for pair in TraceStream::new(&net, TraceOptions::fast()) {
        let pair = pair?;
        se_run.layers.push(se.process_layer(&pair.se)?);
        dn_run.layers.push(diannao.process_layer(&pair.dense)?);
    }

    let se_energy = se_run.energy_mj(&em, &se_cfg);
    let dn_energy = dn_run.energy_mj(&em, &se_cfg);
    let se_ms = se_run.latency_ms(&se_cfg);
    let dn_ms = dn_run.latency_ms(&se_cfg);
    println!("\n                 SmartExchange      DianNao");
    println!("energy (mJ)    {se_energy:>12.3}  {dn_energy:>12.3}");
    println!("latency (ms)   {se_ms:>12.3}  {dn_ms:>12.3}");
    println!(
        "DRAM (MB)      {:>12.2}  {:>12.2}",
        se_run.mem_totals().dram_total_bytes() as f64 / 1e6,
        dn_run.mem_totals().dram_total_bytes() as f64 / 1e6
    );
    println!(
        "\nSmartExchange: {:.2}x energy efficiency, {:.2}x speedup over DianNao",
        dn_energy / se_energy,
        dn_ms / se_ms
    );
    Ok(())
}
