//! Quickstart: decompose a CONV layer into the SmartExchange form
//! `W ≈ Ce · B`, inspect the storage savings, and rebuild the weights.
//!
//! Run with: `cargo run --release --example quickstart`

use smartexchange::core::{algorithm, layer, SeConfig, VectorSparsity};
use smartexchange::ir::{storage, LayerDesc, LayerKind};
use smartexchange::tensor::rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-filter 3x3 CONV layer with synthetic (Kaiming) weights.
    let desc = LayerDesc::new(
        "conv",
        LayerKind::Conv2d { in_channels: 32, out_channels: 64, kernel: 3, stride: 1, padding: 1 },
        (16, 16),
    );
    let mut r = rng::seeded(42);
    let w = rng::kaiming_tensor(&mut r, &[64, 32, 3, 3], 32 * 9);

    // Decompose with the paper's defaults: 4-bit power-of-2 coefficients,
    // and a vector-sparsity policy keeping the strongest 50% of rows.
    let cfg = SeConfig::default().with_vector_sparsity(VectorSparsity::KeepFraction(0.5))?;
    let parts = layer::compress_layer(&desc, &w, &cfg)?;
    let se = &parts[0];

    let s = storage::se_layer_storage(se);
    println!("original weights : {} params ({} bytes FP32)", desc.params(), desc.params() * 4);
    println!(
        "SmartExchange    : Ce {} bits + B {} bits + index {} bits = {} bytes",
        s.ce_bits,
        s.basis_bits,
        s.index_bits,
        s.total_bits() / 8
    );
    println!(
        "compression rate : {:.1}x   vector sparsity: {:.1}%",
        storage::compression_rate(desc.params(), &s),
        se.vector_sparsity() * 100.0
    );

    // Every coefficient is exactly 0 or ±2^p:
    let all_po2 =
        se.slices().iter().all(|sl| sl.ce().data().iter().all(|&x| cfg.po2().contains(x)));
    println!("all coefficients power-of-2: {all_po2}");

    // Rebuild and measure fidelity.
    let rebuilt = layer::reconstruct_layer(&desc, &parts)?;
    let err = w.sub(&rebuilt)?.norm() / w.norm();
    println!("relative reconstruction error: {err:.3}");

    // The per-iteration evolution (Fig. 9 of the paper) for one filter.
    let unit = smartexchange::tensor::Mat::from_vec(w.data()[..96 * 3].to_vec(), 96, 3)?;
    let (_, trace) = algorithm::decompose_traced(&unit, &cfg)?;
    println!("\nevolution of the first filter's decomposition:");
    for rec in trace.records.iter().take(6) {
        println!(
            "  iter {:>2}: error {:.3}  Ce sparsity {:>5.1}%  |B-I| {:.3}",
            rec.iteration,
            rec.recon_error,
            rec.ce_sparsity * 100.0,
            rec.basis_identity_dist
        );
    }
    Ok(())
}
