//! Synthetic activation maps with realistic sparsity structure, and the
//! bit-level sparsity statistics of Fig. 4.
//!
//! Real post-ReLU activations have three kinds of sparsity the accelerator
//! exploits: element-wise zeros (~40–60% after ReLU), *bit-level* sparsity
//! (small magnitudes ⇒ few set bits; Fig. 4 reports 79.8–86.8% zero bits,
//! or 66–76.9% zero Booth digits), and *vector-wise* sparsity (whole dead
//! rows/channels, up to 27–32% in late layers; Section IV-A). The generator
//! reproduces all three: zeros from a per-layer ReLU sparsity, magnitudes
//! from a half-normal, and dead channels whose fraction grows with depth —
//! all deterministic. Integration tests validate the generator against
//! activations captured from genuinely trained `se-nn` models.

use crate::{weights, Result};
use rand::rngs::StdRng;
use rand::RngExt;
use se_ir::{booth, LayerDesc, NetworkDesc, QuantTensor};
use se_tensor::{rng, Tensor};

/// Per-layer activation statistics driving the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationProfile {
    /// Fraction of exactly-zero elements (post-ReLU sparsity).
    pub relu_sparsity: f32,
    /// Fraction of channels that are entirely zero (dead channels).
    pub dead_channel_fraction: f32,
    /// Scale (σ) of the half-normal magnitudes.
    pub scale: f32,
}

/// The profile for a layer at a given depth: ReLU sparsity ~40–60%, dead
/// channels growing from 0 toward ~25% at the end of the network
/// (the depth trend Section IV-A describes for MobileNetV2/ResNet164).
pub fn profile_for_depth(
    layer_index: usize,
    total_layers: usize,
    r: &mut StdRng,
) -> ActivationProfile {
    let depth =
        if total_layers <= 1 { 0.0 } else { layer_index as f32 / (total_layers - 1) as f32 };
    ActivationProfile {
        relu_sparsity: 0.40 + 0.20 * r.random::<f32>(),
        dead_channel_fraction: 0.25 * depth * r.random::<f32>(),
        scale: 0.5 + 1.5 * r.random::<f32>(),
    }
}

/// Generates the synthetic input activation map for one layer.
///
/// The first layer of a network receives image-like data (dense, uniform
/// `[0, 1)`); deeper layers receive sparse half-normal maps per
/// [`profile_for_depth`].
///
/// # Errors
///
/// Infallible for valid descriptors; kept fallible for interface stability.
pub fn synthetic_activation(
    net: &NetworkDesc,
    layer_index: usize,
    base_seed: u64,
) -> Result<Tensor> {
    let desc = &net.layers()[layer_index];
    let seed = weights::layer_seed(net.name(), desc.name(), base_seed ^ 0xac71_7a70);
    let mut r = rng::seeded(seed);
    let (h, w) = desc.input_hw();
    let c = desc.in_channels();
    if layer_index == 0 {
        let data = rng::uniform_vec(&mut r, c * h * w, 0.0, 1.0);
        return Ok(Tensor::from_vec(data, &shape_for(desc, c, h, w))?);
    }
    let profile = profile_for_depth(layer_index, net.layers().len(), &mut r);
    let mut data = vec![0.0f32; c * h * w];
    let per = h * w;
    for ch in 0..c {
        if r.random::<f32>() < profile.dead_channel_fraction {
            continue; // dead channel stays all-zero
        }
        for v in &mut data[ch * per..(ch + 1) * per] {
            if r.random::<f32>() >= profile.relu_sparsity {
                *v = rng::normal(&mut r).abs() * profile.scale;
            }
        }
    }
    Ok(Tensor::from_vec(data, &shape_for(desc, c, h, w))?)
}

fn shape_for(desc: &LayerDesc, c: usize, h: usize, w: usize) -> Vec<usize> {
    match desc.kind() {
        se_ir::LayerKind::Linear { .. } => vec![c * h * w],
        _ => vec![c, h, w],
    }
}

/// Bit-sparsity statistics for one network (one group of bars in Fig. 4):
/// activations of every CONV-like layer are generated, quantized to 8 bits,
/// and aggregated.
///
/// # Errors
///
/// Propagates generation/quantization failures.
pub fn network_bit_sparsity(net: &NetworkDesc, base_seed: u64) -> Result<booth::BitSparsity> {
    let mut set_bits = 0u64;
    let mut set_digits = 0u64;
    let mut zero_codes = 0u64;
    let mut total = 0u64;
    for (i, desc) in net.layers().iter().enumerate() {
        if !desc.kind().is_conv_like() {
            continue;
        }
        let act = synthetic_activation(net, i, base_seed)?;
        let q = QuantTensor::quantize(&act, 8)?;
        for &code in q.data() {
            set_bits += u64::from(booth::nonzero_bits(code));
            set_digits += u64::from(booth::booth_nonzero_digits(code));
            if code == 0 {
                zero_codes += 1;
            }
        }
        total += q.len() as u64;
    }
    if total == 0 {
        return Ok(booth::BitSparsity::default());
    }
    Ok(booth::BitSparsity {
        plain: 1.0 - set_bits as f32 / (8.0 * total as f32),
        booth: 1.0 - set_digits as f32 / (4.0 * total as f32),
        element: zero_codes as f32 / total as f32,
    })
}

/// Vector-wise activation sparsity of a `(C, H, W)` map: the fraction of
/// feature-map rows (length `W`, per channel) that are entirely zero —
/// the rows whose weight-vector fetches the accelerator can skip.
pub fn vector_activation_sparsity(q: &QuantTensor) -> f32 {
    let s = q.shape();
    if s.len() != 3 {
        return 0.0;
    }
    let (c, h, w) = (s[0], s[1], s[2]);
    if c * h == 0 || w == 0 {
        return 0.0;
    }
    let mut zero_rows = 0usize;
    for row in 0..c * h {
        if q.data()[row * w..(row + 1) * w].iter().all(|&x| x == 0) {
            zero_rows += 1;
        }
    }
    zero_rows as f32 / (c * h) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn first_layer_is_dense_image_like() {
        let net = zoo::vgg19_cifar();
        let act = synthetic_activation(&net, 0, 1).unwrap();
        assert_eq!(act.shape(), &[3, 32, 32]);
        assert!(act.sparsity() < 0.01);
        assert!(act.data().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn deep_layers_are_relu_sparse() {
        let net = zoo::vgg19_cifar();
        let act = synthetic_activation(&net, 8, 1).unwrap();
        let sp = act.sparsity();
        assert!((0.3..0.9).contains(&sp), "sparsity {sp}");
        assert!(act.min().unwrap() >= 0.0, "post-ReLU activations are non-negative");
    }

    #[test]
    fn activations_are_deterministic() {
        let net = zoo::resnet164();
        let a = synthetic_activation(&net, 5, 3).unwrap();
        let b = synthetic_activation(&net, 5, 3).unwrap();
        assert_eq!(a, b);
        let c = synthetic_activation(&net, 5, 4).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn fc_layers_get_flat_activations() {
        let net = zoo::mlp2();
        let act = synthetic_activation(&net, 1, 0).unwrap();
        assert_eq!(act.shape(), &[300]);
    }

    #[test]
    fn bit_sparsity_in_paper_range() {
        // Fig. 4 reports 79.8–86.8% plain and 66–76.9% Booth for real
        // models; the synthetic generator must land in that neighbourhood.
        let net = zoo::vgg19_cifar();
        let s = network_bit_sparsity(&net, 0).unwrap();
        assert!((0.70..0.95).contains(&s.plain), "plain {}", s.plain);
        assert!((0.55..0.90).contains(&s.booth), "booth {}", s.booth);
        assert!(s.plain > s.booth, "plain bit sparsity exceeds Booth digit sparsity");
    }

    #[test]
    fn vector_sparsity_detects_dead_rows() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        // One non-zero row in channel 0.
        t.set(&[0, 1, 2], 5.0);
        let q = QuantTensor::quantize(&t, 8).unwrap();
        let vs = vector_activation_sparsity(&q);
        assert!((vs - 5.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn late_layers_have_more_dead_channels() {
        let net = zoo::mobilenet_v2();
        let n = net.layers().len();
        // Average vector sparsity over a few early vs late conv layers.
        let avg = |range: std::ops::Range<usize>| {
            let mut sum = 0.0f32;
            let mut cnt = 0;
            for i in range {
                if !net.layers()[i].kind().is_conv_like() {
                    continue;
                }
                let act = synthetic_activation(&net, i, 0).unwrap();
                let q = QuantTensor::quantize(&act, 8).unwrap();
                sum += vector_activation_sparsity(&q);
                cnt += 1;
            }
            sum / cnt.max(1) as f32
        };
        let early = avg(1..6);
        let late = avg(n - 6..n - 1);
        assert!(late > early, "late {late} vs early {early}");
    }
}
