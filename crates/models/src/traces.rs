//! Per-layer simulation traces: the same synthetic weights and activations
//! packaged both ways — dense 8-bit for the baseline accelerators and
//! SmartExchange-compressed for the SE accelerator — so every simulator
//! sees identical data (the paper's equal-footing methodology).

use crate::{activations, weights, Result};
use se_core::SeConfig;
use se_ir::{LayerTrace, NetworkDesc, QuantTensor, WeightData};

/// Options controlling trace generation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOptions {
    /// Base seed for synthetic weights and activations.
    pub base_seed: u64,
    /// SmartExchange configuration for the compressed variant.
    pub se_config: SeConfig,
    /// Skip FC layers (the Figs. 10–12 protocol, which excludes FC for
    /// fairness to SCNN).
    pub conv_like_only: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { base_seed: 0, se_config: trace_se_config(30), conv_like_only: true }
    }
}

/// The SE configuration used for trace generation: the scale-free relative
/// vector-sparsity threshold stands in for the paper's per-layer manual
/// thresholds (it adapts to each layer's weight magnitudes and picks up the
/// near-zero rows that the networks' natural element sparsity produces).
fn trace_se_config(iterations: usize) -> SeConfig {
    SeConfig::default()
        .with_max_iterations(iterations)
        .expect("static configuration is valid")
        .with_vector_sparsity(se_core::VectorSparsity::RelativeThreshold(0.4))
        .expect("static configuration is valid")
}

impl TraceOptions {
    /// A faster configuration for large sweeps: fewer decomposition
    /// iterations (the factorisation converges early; see Fig. 9).
    ///
    /// # Panics
    ///
    /// Never panics; the static configuration is valid.
    pub fn fast() -> Self {
        TraceOptions { base_seed: 0, se_config: trace_se_config(6), conv_like_only: true }
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the SmartExchange configuration.
    pub fn with_se_config(mut self, cfg: SeConfig) -> Self {
        self.se_config = cfg;
        self
    }

    /// Includes FC layers in the stream (the Fig. 13(b) protocol).
    pub fn with_fc_layers(mut self) -> Self {
        self.conv_like_only = false;
        self
    }
}

/// A matched pair of traces for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePair {
    /// Index of the layer within the network descriptor.
    pub layer_index: usize,
    /// Dense-weight trace (baseline accelerators).
    pub dense: LayerTrace,
    /// SmartExchange-compressed trace (SE accelerator).
    pub se: LayerTrace,
}

/// Generates the dense trace for one layer.
///
/// # Errors
///
/// Propagates weight/activation generation and quantization failures.
pub fn dense_trace(net: &NetworkDesc, layer_index: usize, base_seed: u64) -> Result<LayerTrace> {
    let desc = net.layers()[layer_index].clone();
    let w = weights::synthetic_weights(net.name(), &desc, base_seed)?;
    let qw = QuantTensor::quantize(&w, 8)?;
    let act = activations::synthetic_activation(net, layer_index, base_seed)?;
    let qa = QuantTensor::quantize(&act, 8)?;
    Ok(LayerTrace::new(desc, WeightData::Dense(qw), qa)?)
}

/// Generates the SmartExchange-compressed trace for one layer (same
/// underlying weights and activations as [`dense_trace`]).
///
/// # Errors
///
/// Propagates compression failures.
pub fn se_trace(
    net: &NetworkDesc,
    layer_index: usize,
    base_seed: u64,
    cfg: &SeConfig,
) -> Result<LayerTrace> {
    let desc = net.layers()[layer_index].clone();
    let w = weights::synthetic_weights(net.name(), &desc, base_seed)?;
    let parts = se_core::layer::compress_layer(&desc, &w, cfg)?;
    let act = activations::synthetic_activation(net, layer_index, base_seed)?;
    let qa = QuantTensor::quantize(&act, 8)?;
    Ok(LayerTrace::new(desc, WeightData::Se(parts), qa)?)
}

/// Generates the matched trace pair for one layer. The synthetic weights
/// and activations are generated once and shared by both traces (they are
/// bit-identical to what [`dense_trace`] and [`se_trace`] produce, at half
/// the generation cost — this is the pipeline's hot path).
///
/// # Errors
///
/// Propagates weight/activation generation, quantization, and compression
/// failures.
pub fn trace_pair(net: &NetworkDesc, layer_index: usize, opts: &TraceOptions) -> Result<TracePair> {
    let desc = net.layers()[layer_index].clone();
    let w = weights::synthetic_weights(net.name(), &desc, opts.base_seed)?;
    let qw = QuantTensor::quantize(&w, 8)?;
    let act = activations::synthetic_activation(net, layer_index, opts.base_seed)?;
    let qa = QuantTensor::quantize(&act, 8)?;
    let parts = se_core::layer::compress_layer(&desc, &w, &opts.se_config)?;
    let dense = LayerTrace::new(desc.clone(), WeightData::Dense(qw), qa.clone())?;
    let se = LayerTrace::new(desc, WeightData::Se(parts), qa)?;
    Ok(TracePair { layer_index, dense, se })
}

/// Generates every eligible layer's trace pair on the parallel work queue
/// of [`se_core::pipeline`] (worker count from the options'
/// `se_config.parallelism()`), in network order.
///
/// Unlike [`TraceStream`], this holds every pair at once — use the stream
/// for ImageNet-scale models.
///
/// # Errors
///
/// Returns the first (lowest-index) per-layer failure.
pub fn trace_pairs(net: &NetworkDesc, opts: &TraceOptions) -> Result<Vec<TracePair>> {
    TraceStream::new(net, opts.clone()).collect()
}

/// Maximum trace pairs generated (and therefore alive) per
/// [`TraceStream`] batch: bounds streaming memory independently of core
/// count; thread budget beyond this flows to the per-layer decomposition
/// level.
pub const MAX_BATCH_PAIRS: usize = 4;

/// Streams matched trace pairs layer by layer, generating them in batches
/// on the parallel work queue of [`se_core::pipeline`] (thread budget from
/// the options' `se_config.parallelism()`).
///
/// Traces for ImageNet-scale layers are large, so batches are capped at
/// [`MAX_BATCH_PAIRS`] pairs regardless of core count — peak memory stays
/// a small constant, and thread budget beyond the batch width flows to the
/// per-layer decomposition level instead. With `parallelism = 1` this
/// degenerates to the fully lazy one-layer-at-a-time stream. Pairs are
/// yielded in network order for every worker count.
#[derive(Debug)]
pub struct TraceStream<'a> {
    net: &'a NetworkDesc,
    opts: TraceOptions,
    /// Eligible layer indices not yet generated, in network order.
    pending: std::collections::VecDeque<usize>,
    /// Generated pairs not yet yielded, in network order.
    ready: std::collections::VecDeque<Result<TracePair>>,
    /// Whether a batch has been generated yet (the first batch is a single
    /// pair so one-pair consumers never pay for a full batch).
    warmed: bool,
}

impl<'a> TraceStream<'a> {
    /// Creates a stream over the network's layers.
    pub fn new(net: &'a NetworkDesc, opts: TraceOptions) -> Self {
        let pending = net
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, d)| !opts.conv_like_only || d.kind().is_conv_like())
            .map(|(i, _)| i)
            .collect();
        TraceStream { net, opts, pending, ready: std::collections::VecDeque::new(), warmed: false }
    }

    /// Generates the next batch of pairs on the work queue, in network
    /// order. The first batch is a single pair (common consumers take one
    /// pair and stop — they keep the old one-layer-alive behaviour);
    /// subsequent batches are `min(parallelism, MAX_BATCH_PAIRS)` wide.
    /// The total thread budget is split between this batch level and the
    /// per-layer decomposition threads via
    /// `se_core::pipeline::worker_config`.
    fn refill(&mut self) {
        let workers = self.opts.se_config.parallelism().max(1);
        let width = if self.warmed { workers.min(MAX_BATCH_PAIRS) } else { 1 };
        self.warmed = true;
        let batch: Vec<usize> = (0..width).filter_map(|_| self.pending.pop_front()).collect();
        if batch.is_empty() {
            return;
        }
        let wcfg = se_core::pipeline::worker_config(&self.opts.se_config, batch.len());
        let wopts = self.opts.clone().with_se_config(wcfg);
        let net = self.net;
        self.ready.extend(se_core::pipeline::run_ordered(&batch, width, |_, &i| {
            trace_pair(net, i, &wopts)
        }));
    }
}

impl Iterator for TraceStream<'_> {
    type Item = Result<TracePair>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.ready.is_empty() {
            self.refill();
        }
        self.ready.pop_front()
    }
}

// ---------------------------------------------------------------------------
// Persisted trace artifacts
// ---------------------------------------------------------------------------
//
// A sweep regenerates the same expensive SE decompositions in every
// experiment binary; persisting the trace pairs once and replaying them
// trades that recomputation for one cheap file read (the inverse of the
// paper's trade, applied to the harness itself). Files use the versioned
// binary codec of `se_ir::serialize` (layout: docs/TRACE_FORMAT.md) and
// round-trip bit-identically, so a cached run is byte-for-byte the same as
// a direct one.

use se_ir::serialize::{self as ser, ByteReader, ByteWriter, PayloadKind};
use std::path::{Path, PathBuf};

/// File extension of persisted trace-pair sets.
pub const TRACE_FILE_EXT: &str = "setrace";

fn io_err(path: &Path, e: impl std::fmt::Display) -> crate::ModelError {
    crate::ModelError::Io { path: path.display().to_string(), reason: e.to_string() }
}

/// A stable 64-bit digest of every [`TraceOptions`] field that influences
/// generated traces — seed, layer filter, and the full SE configuration —
/// deliberately **excluding** worker counts: results are bit-identical for
/// every parallelism level, so a cache built at one level must hit at all
/// others.
///
/// The digest keys cache filenames (see [`trace_file_name`]) and is stored
/// in the file so a stale artifact can never be replayed against changed
/// options.
pub fn options_digest(opts: &TraceOptions) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(opts.base_seed);
    w.put_bool(opts.conv_like_only);
    put_se_config(&mut w, &opts.se_config);
    fnv1a(&w.into_bytes())
}

/// Canonical byte encoding of every generation-relevant [`SeConfig`] field
/// (worker counts excluded — results are bit-identical across them),
/// shared by the trace digest above and the compression-artifact digest of
/// [`crate::artifacts`].
pub(crate) fn put_se_config(w: &mut ByteWriter, cfg: &SeConfig) {
    w.put_i32(cfg.po2().max_exp());
    w.put_u32(cfg.po2().count());
    w.put_u64(cfg.max_iterations() as u64);
    w.put_u32(cfg.tol().to_bits());
    w.put_u32(cfg.ridge().to_bits());
    match cfg.vector_sparsity() {
        se_core::VectorSparsity::None => {
            w.put_u8(0);
            w.put_u32(0);
        }
        se_core::VectorSparsity::Threshold(t) => {
            w.put_u8(1);
            w.put_u32(t.to_bits());
        }
        se_core::VectorSparsity::KeepFraction(f) => {
            w.put_u8(2);
            w.put_u32(f.to_bits());
        }
        se_core::VectorSparsity::RelativeThreshold(f) => {
            w.put_u8(3);
            w.put_u32(f.to_bits());
        }
        // `VectorSparsity` is non-exhaustive; a future variant must not
        // silently collide with an existing digest.
        other => {
            w.put_u8(255);
            let _ = w.put_str(&format!("{other:?}"));
        }
    }
    match cfg.channel_prune_threshold() {
        None => {
            w.put_u8(0);
            w.put_u32(0);
        }
        Some(t) => {
            w.put_u8(1);
            w.put_u32(t.to_bits());
        }
    }
    w.put_u64(cfg.fc_width() as u64);
    w.put_u64(cfg.max_unit_rows() as u64);
    w.put_bool(cfg.quantize_basis());
}

/// FNV-1a over the canonical option encoding: tiny, dependency-free, and
/// stable across platforms (all inputs are little-endian bytes).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Lowercases a network name and replaces non-alphanumerics so it is safe
/// as a filename component (shared by every artifact kind).
pub(crate) fn sanitize_net_name(net_name: &str) -> String {
    net_name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect()
}

/// The cache filename for a network under the given options:
/// `<sanitized-net-name>-<16-hex-digit digest>.setrace`.
pub fn trace_file_name(net_name: &str, opts: &TraceOptions) -> String {
    format!("{}-{:016x}.{TRACE_FILE_EXT}", sanitize_net_name(net_name), options_digest(opts))
}

/// A decoded trace-artifact file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// Network name recorded at build time.
    pub net_name: String,
    /// [`options_digest`] of the options the traces were generated under.
    pub digest: u64,
    /// The trace pairs, in network order.
    pub pairs: Vec<TracePair>,
}

/// Serializes trace pairs to the versioned byte format (without touching
/// the filesystem — the testable core of [`write_trace_file`]).
///
/// # Errors
///
/// Propagates codec failures (oversized dimension fields).
pub fn encode_trace_pairs(net_name: &str, digest: u64, pairs: &[TracePair]) -> Result<Vec<u8>> {
    let mut w = ByteWriter::new();
    ser::write_header(&mut w, PayloadKind::TraceSet);
    w.put_str(net_name)?;
    w.put_u64(digest);
    w.put_u32(pairs.len() as u32);
    for pair in pairs {
        w.put_u64(pair.layer_index as u64);
        ser::write_layer_trace(&mut w, &pair.dense)?;
        ser::write_layer_trace(&mut w, &pair.se)?;
    }
    Ok(w.into_bytes())
}

/// Decodes a trace-artifact byte buffer (the inverse of
/// [`encode_trace_pairs`]); the round trip is bit-identical.
///
/// # Errors
///
/// Propagates codec failures: bad magic, version or payload-kind mismatch,
/// truncation, trailing garbage, or failed re-validation of a trace.
pub fn decode_trace_pairs(bytes: &[u8]) -> Result<TraceFile> {
    let mut r = ByteReader::new(bytes);
    ser::expect_header(&mut r, PayloadKind::TraceSet)?;
    let net_name = r.get_str()?;
    let digest = r.get_u64()?;
    let n = r.get_u32()? as usize;
    let mut pairs = Vec::with_capacity(n.min(bytes.len()));
    for _ in 0..n {
        let layer_index = r.get_u64()? as usize;
        let dense = ser::read_layer_trace(&mut r)?;
        let se = ser::read_layer_trace(&mut r)?;
        pairs.push(TracePair { layer_index, dense, se });
    }
    r.expect_end()?;
    Ok(TraceFile { net_name, digest, pairs })
}

/// An offset index over an encoded trace-set buffer: the file is read
/// **once** into a single owned byte buffer, one validating pass records
/// each pair's `(offset, len)` span, and individual pairs decode on
/// demand from borrowed slices of that buffer — no second copy, no
/// up-front materialization of every pair.
///
/// This is the artifact-side half of the tiered weight store: the span
/// table gives the exact serialized byte count of every pair, so a cold
/// load out of the bottom tier (SSD) can be charged **byte-accurately**
/// from the artifact instead of from a modeled footprint, and a serving
/// process that only ever touches a few layers pays decode cost for
/// exactly those.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSetIndex {
    bytes: Vec<u8>,
    net_name: String,
    digest: u64,
    /// Per-pair `(offset, len)` spans into `bytes`, covering the
    /// `layer_index` field and both layer traces.
    spans: Vec<(usize, usize)>,
}

impl TraceSetIndex {
    /// Builds the index over an encoded trace-set buffer (the bytes of
    /// [`encode_trace_pairs`]), taking ownership of the buffer. The
    /// indexing pass decodes every record once — validating the whole
    /// file exactly like [`decode_trace_pairs`] — but keeps only the
    /// span table, so a corrupt artifact fails here, loudly, and
    /// [`TraceSetIndex::decode_pair`] cannot fail on in-bounds indices
    /// for reasons other than a truncated rebuild.
    ///
    /// # Errors
    ///
    /// Propagates codec failures: bad magic, version or payload-kind
    /// mismatch, truncation, or trailing garbage.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<TraceSetIndex> {
        let (net_name, digest, spans) = {
            let mut r = ByteReader::new(&bytes);
            ser::expect_header(&mut r, PayloadKind::TraceSet)?;
            let net_name = r.get_str()?;
            let digest = r.get_u64()?;
            let n = r.get_u32()? as usize;
            let mut spans = Vec::with_capacity(n.min(bytes.len()));
            for _ in 0..n {
                let start = r.position();
                let _layer_index = r.get_u64()?;
                ser::read_layer_trace(&mut r)?;
                ser::read_layer_trace(&mut r)?;
                spans.push((start, r.position() - start));
            }
            r.expect_end()?;
            (net_name, digest, spans)
        };
        Ok(TraceSetIndex { bytes, net_name, digest, spans })
    }

    /// Reads and indexes a trace-artifact file with a single
    /// `fs::read`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and codec failures.
    pub fn open(path: &Path) -> Result<TraceSetIndex> {
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        TraceSetIndex::from_bytes(bytes)
    }

    /// Network name recorded at build time.
    pub fn net_name(&self) -> &str {
        &self.net_name
    }

    /// [`options_digest`] of the options the traces were generated
    /// under.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Number of indexed trace pairs.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the artifact holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total serialized size of the artifact in bytes — the exact cold
    /// load out of the bottom tier.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Exact serialized size of pair `i` in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn pair_bytes(&self, i: usize) -> u64 {
        self.spans[i].1 as u64
    }

    /// The raw encoded bytes of pair `i`, borrowed from the single
    /// backing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn pair_slice(&self, i: usize) -> &[u8] {
        let (off, len) = self.spans[i];
        &self.bytes[off..off + len]
    }

    /// Decodes pair `i` from its borrowed slice — exactly the pair that
    /// [`decode_trace_pairs`] would put at position `i`, without
    /// decoding any other.
    ///
    /// # Errors
    ///
    /// Propagates codec failures (unreachable for a buffer that passed
    /// [`TraceSetIndex::from_bytes`], but the signature keeps the codec
    /// honest).
    pub fn decode_pair(&self, i: usize) -> Result<TracePair> {
        let mut r = ByteReader::new(self.pair_slice(i));
        let layer_index = r.get_u64()? as usize;
        let dense = ser::read_layer_trace(&mut r)?;
        let se = ser::read_layer_trace(&mut r)?;
        r.expect_end()?;
        Ok(TracePair { layer_index, dense, se })
    }
}

/// Writes a network's trace pairs into `dir` under [`trace_file_name`],
/// creating the directory if needed. Returns the file path.
///
/// # Errors
///
/// Propagates encoding and filesystem failures.
pub fn write_trace_file(
    dir: &Path,
    net: &NetworkDesc,
    opts: &TraceOptions,
    pairs: &[TracePair],
) -> Result<PathBuf> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let path = dir.join(trace_file_name(net.name(), opts));
    let bytes = encode_trace_pairs(net.name(), options_digest(opts), pairs)?;
    // Publish atomically (write to a temp name, then rename): an
    // interrupted build must never leave a truncated artifact at the
    // final path, since a present-but-corrupt artifact is a loud error
    // for every later cached run.
    let tmp = path.with_extension(format!("{TRACE_FILE_EXT}.tmp-{}", std::process::id()));
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    Ok(path)
}

/// Reads a trace-artifact file.
///
/// # Errors
///
/// Propagates filesystem and decoding failures.
pub fn read_trace_file(path: &Path) -> Result<TraceFile> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    decode_trace_pairs(&bytes)
}

/// Looks a network's traces up in the cache directory: `Ok(Some(pairs))`
/// on a hit, `Ok(None)` when no artifact exists for these options (the
/// caller falls back to generating). A present-but-corrupt or mismatched
/// artifact is an error, not a silent miss — replaying wrong traces would
/// silently change results.
///
/// # Errors
///
/// Propagates read/decode failures and name/digest mismatches.
pub fn cached_trace_pairs(
    net: &NetworkDesc,
    opts: &TraceOptions,
    dir: &Path,
) -> Result<Option<Vec<TracePair>>> {
    let path = dir.join(trace_file_name(net.name(), opts));
    if !path.exists() {
        return Ok(None);
    }
    let file = read_trace_file(&path)?;
    if file.net_name != net.name() {
        return Err(io_err(
            &path,
            format!("artifact is for network {:?}, wanted {:?}", file.net_name, net.name()),
        ));
    }
    let expect = options_digest(opts);
    if file.digest != expect {
        return Err(io_err(
            &path,
            format!(
                "artifact was built under options digest {:016x}, current options are {expect:016x}",
                file.digest
            ),
        ));
    }
    Ok(Some(file.pairs))
}

/// Generates a network's trace pairs (on the parallel work queue, like
/// [`trace_pairs`]) and persists them into `dir`. Returns the artifact
/// path and the number of pairs written.
///
/// # Errors
///
/// Propagates generation, encoding, and filesystem failures.
pub fn build_trace_file(
    net: &NetworkDesc,
    opts: &TraceOptions,
    dir: &Path,
) -> Result<(PathBuf, usize)> {
    let pairs = trace_pairs(net, opts)?;
    let path = write_trace_file(dir, net, opts, &pairs)?;
    Ok((path, pairs.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use se_ir::{Dataset, LayerDesc, LayerKind};

    fn tiny_net() -> NetworkDesc {
        NetworkDesc::new(
            "tiny",
            Dataset::Cifar10,
            vec![
                LayerDesc::new(
                    "c1",
                    LayerKind::Conv2d {
                        in_channels: 3,
                        out_channels: 8,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                    (8, 8),
                ),
                LayerDesc::new(
                    "c2",
                    LayerKind::Conv2d {
                        in_channels: 8,
                        out_channels: 8,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                    (8, 8),
                ),
                LayerDesc::new(
                    "fc",
                    LayerKind::Linear { in_features: 8, out_features: 10 },
                    (1, 1),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dense_and_se_traces_share_inputs() {
        let net = tiny_net();
        let opts = TraceOptions::fast();
        let pairs: Vec<_> = TraceStream::new(&net, opts).collect::<Result<_>>().unwrap();
        assert_eq!(pairs.len(), 2); // FC skipped by default
        for p in &pairs {
            assert_eq!(p.dense.input(), p.se.input());
            assert!(p.se.weights().is_se());
            assert!(!p.dense.weights().is_se());
        }
    }

    #[test]
    fn parallel_stream_is_bit_identical_to_serial() {
        let net = tiny_net();
        let serial_opts = TraceOptions::fast()
            .with_se_config(TraceOptions::fast().se_config.with_parallelism(1).unwrap());
        let serial: Vec<TracePair> =
            TraceStream::new(&net, serial_opts).collect::<Result<_>>().unwrap();
        for workers in [2usize, 4] {
            let opts = TraceOptions::fast()
                .with_se_config(TraceOptions::fast().se_config.with_parallelism(workers).unwrap());
            let parallel: Vec<TracePair> =
                TraceStream::new(&net, opts.clone()).collect::<Result<_>>().unwrap();
            assert_eq!(serial, parallel, "workers = {workers}");
            assert_eq!(trace_pairs(&net, &opts).unwrap(), serial);
        }
    }

    #[test]
    fn fc_included_when_requested() {
        let net = tiny_net();
        let opts = TraceOptions::fast().with_fc_layers();
        let pairs: Vec<_> = TraceStream::new(&net, opts).collect::<Result<_>>().unwrap();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[2].layer_index, 2);
    }

    #[test]
    fn se_weights_approximate_dense_weights() {
        let net = tiny_net();
        let pair = TraceStream::new(&net, TraceOptions::fast()).next().unwrap().unwrap();
        let (dense_w, se_parts) = match (pair.dense.weights(), pair.se.weights()) {
            (WeightData::Dense(d), WeightData::Se(s)) => (d, s),
            other => panic!("unexpected weight kinds {other:?}"),
        };
        let recon = se_core::layer::reconstruct_layer(pair.dense.desc(), se_parts).unwrap();
        let orig = dense_w.dequantize();
        let rel = orig.sub(&recon).unwrap().norm() / orig.norm();
        assert!(rel < 0.45, "relative error {rel}");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("se-trace-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn trace_file_roundtrip_is_bit_identical() {
        let net = tiny_net();
        let opts = TraceOptions::fast();
        let pairs = trace_pairs(&net, &opts).unwrap();
        let dir = temp_dir("roundtrip");
        let path = write_trace_file(&dir, &net, &opts, &pairs).unwrap();
        assert_eq!(path.extension().unwrap(), TRACE_FILE_EXT);
        let file = read_trace_file(&path).unwrap();
        assert_eq!(file.net_name, "tiny");
        assert_eq!(file.digest, options_digest(&opts));
        assert_eq!(file.pairs, pairs); // bit-identical, every f32
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn offset_index_decodes_each_pair_identically_to_the_full_decode() {
        let net = tiny_net();
        let opts = TraceOptions::fast();
        let pairs = trace_pairs(&net, &opts).unwrap();
        let dir = temp_dir("index");
        let path = write_trace_file(&dir, &net, &opts, &pairs).unwrap();

        let index = TraceSetIndex::open(&path).unwrap();
        let full = read_trace_file(&path).unwrap();
        assert_eq!(index.net_name(), full.net_name);
        assert_eq!(index.digest(), full.digest);
        assert_eq!(index.len(), full.pairs.len());
        assert!(!index.is_empty());

        // Decode-by-index is bit-identical to the monolithic decode, and
        // each pair's slice re-encodes to exactly its span.
        let mut span_total = 0u64;
        for (i, want) in full.pairs.iter().enumerate() {
            assert_eq!(&index.decode_pair(i).unwrap(), want, "pair {i}");
            let mut w = ByteWriter::new();
            w.put_u64(want.layer_index as u64);
            ser::write_layer_trace(&mut w, &want.dense).unwrap();
            ser::write_layer_trace(&mut w, &want.se).unwrap();
            assert_eq!(index.pair_slice(i), &w.into_bytes()[..], "pair {i} bytes");
            span_total += index.pair_bytes(i);
        }

        // Byte accounting: the spans plus the fixed preamble cover the
        // file exactly (header 7 B, name len+bytes, digest 8 B, count 4 B).
        let preamble = 7 + 4 + full.net_name.len() as u64 + 8 + 4;
        assert_eq!(preamble + span_total, index.total_bytes());
        assert_eq!(index.total_bytes(), std::fs::metadata(&path).unwrap().len());

        // A truncated buffer fails at indexing time, not at decode time.
        let bytes = std::fs::read(&path).unwrap();
        assert!(TraceSetIndex::from_bytes(bytes[..bytes.len() - 3].to_vec()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_hits_across_parallelism_and_misses_across_options() {
        let net = tiny_net();
        let opts = TraceOptions::fast();
        let dir = temp_dir("cache");
        assert_eq!(cached_trace_pairs(&net, &opts, &dir).unwrap(), None, "cold cache misses");
        let (_, n) = build_trace_file(&net, &opts, &dir).unwrap();
        assert_eq!(n, 2);

        // Hit: same options.
        let hit = cached_trace_pairs(&net, &opts, &dir).unwrap().unwrap();
        assert_eq!(hit.len(), 2);

        // Hit: different worker count (parallelism is excluded from the
        // digest — results are bit-identical across worker counts).
        let par = opts.clone().with_se_config(opts.se_config.clone().with_parallelism(3).unwrap());
        assert_eq!(options_digest(&par), options_digest(&opts));
        assert!(cached_trace_pairs(&net, &par, &dir).unwrap().is_some());

        // Miss: any generation-relevant option changes the digest.
        let seeded = opts.clone().with_seed(9);
        assert_ne!(options_digest(&seeded), options_digest(&opts));
        assert_eq!(cached_trace_pairs(&net, &seeded, &dir).unwrap(), None);
        let with_fc = opts.clone().with_fc_layers();
        assert_ne!(options_digest(&with_fc), options_digest(&opts));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_mismatched_artifacts_are_loud_errors() {
        let net = tiny_net();
        let opts = TraceOptions::fast();
        let dir = temp_dir("corrupt");
        let (path, _) = build_trace_file(&net, &opts, &dir).unwrap();

        // Truncated file: error, not a silent miss.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cached_trace_pairs(&net, &opts, &dir).is_err());

        // A valid artifact renamed onto another digest: digest mismatch.
        std::fs::write(&path, &bytes).unwrap();
        let other = opts.clone().with_seed(1);
        let renamed = dir.join(trace_file_name(net.name(), &other));
        std::fs::rename(&path, &renamed).unwrap();
        let err = cached_trace_pairs(&net, &other, &dir).unwrap_err();
        assert!(err.to_string().contains("digest"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The worked example of docs/TRACE_FORMAT.md, byte for byte: a file
    /// holding one FC trace pair. If this test fails after an intentional
    /// layout change, bump `se_ir::serialize::FORMAT_VERSION` and update
    /// the document alongside the expected bytes.
    #[test]
    fn golden_bytes_match_trace_format_doc() {
        use se_ir::{LayerDesc, LayerKind, Po2Set, SeLayer, SeLayout, SeSlice};
        use se_tensor::Mat;
        let desc =
            LayerDesc::new("fc", LayerKind::Linear { in_features: 3, out_features: 1 }, (1, 1));
        let qw = QuantTensor::from_parts(vec![1, 3], vec![64, 0, -32], 0.0078125, 8).unwrap();
        let input = QuantTensor::from_parts(vec![3], vec![127, 0, -64], 0.5, 8).unwrap();
        let dense = LayerTrace::new(desc.clone(), WeightData::Dense(qw), input.clone()).unwrap();
        let po2 = Po2Set::default();
        let ce = Mat::from_rows(&[&[0.5, 0.0, -0.25]]).unwrap();
        let slice = SeSlice::new(ce, Mat::identity(3), &po2).unwrap();
        let layer = SeLayer::new(
            SeLayout::FcPerRow { out_features: 1, in_features: 3, width: 3, slices_per_row: 1 },
            po2,
            vec![slice],
        )
        .unwrap();
        let se = LayerTrace::new(desc, WeightData::Se(vec![layer]), input).unwrap();
        let pair = TracePair { layer_index: 0, dense, se };

        let bytes =
            encode_trace_pairs("golden", 0x1122_3344_5566_7788, std::slice::from_ref(&pair))
                .unwrap();
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        let expected = concat!(
            // header: magic "SETR", version 1, payload kind 1 (trace set)
            "53455452",
            "0100",
            "01",
            // net name "golden" (u32 len + bytes), options digest, pair count
            "06000000",
            "676f6c64656e",
            "8877665544332211",
            "01000000",
            // pair 0: layer index (u64)
            "0000000000000000",
            // dense trace: desc ("fc", Linear 3->1, input 1x1)
            "02000000",
            "6663",
            "02",
            "03000000",
            "01000000",
            "01000000",
            "01000000",
            // dense weights: tag 0, rank 2, dims [1,3], bits 8, scale 2^-7, codes
            "00",
            "02",
            "01000000",
            "03000000",
            "08",
            "0000003c",
            "4000e0",
            // dense input: rank 1, dim [3], bits 8, scale 0.5, codes
            "01",
            "03000000",
            "08",
            "0000003f",
            "7f00c0",
            // se trace: same descriptor
            "02000000",
            "6663",
            "02",
            "03000000",
            "01000000",
            "01000000",
            "01000000",
            // weights: tag 1 (SE), layer count 1
            "01",
            "01000000",
            // SeLayer: po2 (max_exp 0, count 7), layout FcPerRow(1,3,3,1)
            "00000000",
            "07000000",
            "01",
            "01000000",
            "03000000",
            "03000000",
            "01000000",
            // slice count, Ce 1x3 as 4-bit-alphabet codes [0.5, 0, -0.25]
            "01000000",
            "01000000",
            "03000000",
            "03",
            "00",
            "06",
            // basis: 3x3 identity as f32 bit patterns
            "03000000",
            "03000000",
            "0000803f",
            "00000000",
            "00000000",
            "00000000",
            "0000803f",
            "00000000",
            "00000000",
            "00000000",
            "0000803f",
            // se input: identical to the dense input
            "01",
            "03000000",
            "08",
            "0000003f",
            "7f00c0",
        );
        assert_eq!(hex, expected, "layout drifted from docs/TRACE_FORMAT.md");
        // And the documented bytes decode back to the same value.
        let decoded = decode_trace_pairs(&bytes).unwrap();
        assert_eq!(decoded.pairs, vec![pair]);
    }

    #[test]
    fn trace_file_names_are_sanitized() {
        let opts = TraceOptions::fast();
        let name = trace_file_name("EfficientNet-B0", &opts);
        assert!(name.starts_with("efficientnet-b0-"));
        assert!(name.ends_with(".setrace"));
        assert!(trace_file_name("DeepLabV3+", &opts).starts_with("deeplabv3--"));
    }

    #[test]
    fn traces_work_on_a_real_zoo_model() {
        // MLP-2 is small enough to trace in full.
        let net = zoo::mlp2();
        let opts = TraceOptions::fast().with_fc_layers();
        let mut count = 0;
        for pair in TraceStream::new(&net, opts) {
            let p = pair.unwrap();
            assert_eq!(p.dense.input().len() as u64, p.dense.desc().input_elems());
            count += 1;
        }
        assert_eq!(count, 3);
    }
}
