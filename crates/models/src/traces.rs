//! Per-layer simulation traces: the same synthetic weights and activations
//! packaged both ways — dense 8-bit for the baseline accelerators and
//! SmartExchange-compressed for the SE accelerator — so every simulator
//! sees identical data (the paper's equal-footing methodology).

use crate::{activations, weights, Result};
use se_core::SeConfig;
use se_ir::{LayerTrace, NetworkDesc, QuantTensor, WeightData};

/// Options controlling trace generation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOptions {
    /// Base seed for synthetic weights and activations.
    pub base_seed: u64,
    /// SmartExchange configuration for the compressed variant.
    pub se_config: SeConfig,
    /// Skip FC layers (the Figs. 10–12 protocol, which excludes FC for
    /// fairness to SCNN).
    pub conv_like_only: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { base_seed: 0, se_config: trace_se_config(30), conv_like_only: true }
    }
}

/// The SE configuration used for trace generation: the scale-free relative
/// vector-sparsity threshold stands in for the paper's per-layer manual
/// thresholds (it adapts to each layer's weight magnitudes and picks up the
/// near-zero rows that the networks' natural element sparsity produces).
fn trace_se_config(iterations: usize) -> SeConfig {
    SeConfig::default()
        .with_max_iterations(iterations)
        .expect("static configuration is valid")
        .with_vector_sparsity(se_core::VectorSparsity::RelativeThreshold(0.4))
        .expect("static configuration is valid")
}

impl TraceOptions {
    /// A faster configuration for large sweeps: fewer decomposition
    /// iterations (the factorisation converges early; see Fig. 9).
    ///
    /// # Panics
    ///
    /// Never panics; the static configuration is valid.
    pub fn fast() -> Self {
        TraceOptions { base_seed: 0, se_config: trace_se_config(6), conv_like_only: true }
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the SmartExchange configuration.
    pub fn with_se_config(mut self, cfg: SeConfig) -> Self {
        self.se_config = cfg;
        self
    }

    /// Includes FC layers in the stream (the Fig. 13(b) protocol).
    pub fn with_fc_layers(mut self) -> Self {
        self.conv_like_only = false;
        self
    }
}

/// A matched pair of traces for one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePair {
    /// Index of the layer within the network descriptor.
    pub layer_index: usize,
    /// Dense-weight trace (baseline accelerators).
    pub dense: LayerTrace,
    /// SmartExchange-compressed trace (SE accelerator).
    pub se: LayerTrace,
}

/// Generates the dense trace for one layer.
///
/// # Errors
///
/// Propagates weight/activation generation and quantization failures.
pub fn dense_trace(net: &NetworkDesc, layer_index: usize, base_seed: u64) -> Result<LayerTrace> {
    let desc = net.layers()[layer_index].clone();
    let w = weights::synthetic_weights(net.name(), &desc, base_seed)?;
    let qw = QuantTensor::quantize(&w, 8)?;
    let act = activations::synthetic_activation(net, layer_index, base_seed)?;
    let qa = QuantTensor::quantize(&act, 8)?;
    Ok(LayerTrace::new(desc, WeightData::Dense(qw), qa)?)
}

/// Generates the SmartExchange-compressed trace for one layer (same
/// underlying weights and activations as [`dense_trace`]).
///
/// # Errors
///
/// Propagates compression failures.
pub fn se_trace(
    net: &NetworkDesc,
    layer_index: usize,
    base_seed: u64,
    cfg: &SeConfig,
) -> Result<LayerTrace> {
    let desc = net.layers()[layer_index].clone();
    let w = weights::synthetic_weights(net.name(), &desc, base_seed)?;
    let parts = se_core::layer::compress_layer(&desc, &w, cfg)?;
    let act = activations::synthetic_activation(net, layer_index, base_seed)?;
    let qa = QuantTensor::quantize(&act, 8)?;
    Ok(LayerTrace::new(desc, WeightData::Se(parts), qa)?)
}

/// Generates the matched trace pair for one layer. The synthetic weights
/// and activations are generated once and shared by both traces (they are
/// bit-identical to what [`dense_trace`] and [`se_trace`] produce, at half
/// the generation cost — this is the pipeline's hot path).
///
/// # Errors
///
/// Propagates weight/activation generation, quantization, and compression
/// failures.
pub fn trace_pair(net: &NetworkDesc, layer_index: usize, opts: &TraceOptions) -> Result<TracePair> {
    let desc = net.layers()[layer_index].clone();
    let w = weights::synthetic_weights(net.name(), &desc, opts.base_seed)?;
    let qw = QuantTensor::quantize(&w, 8)?;
    let act = activations::synthetic_activation(net, layer_index, opts.base_seed)?;
    let qa = QuantTensor::quantize(&act, 8)?;
    let parts = se_core::layer::compress_layer(&desc, &w, &opts.se_config)?;
    let dense = LayerTrace::new(desc.clone(), WeightData::Dense(qw), qa.clone())?;
    let se = LayerTrace::new(desc, WeightData::Se(parts), qa)?;
    Ok(TracePair { layer_index, dense, se })
}

/// Generates every eligible layer's trace pair on the parallel work queue
/// of [`se_core::pipeline`] (worker count from the options'
/// `se_config.parallelism()`), in network order.
///
/// Unlike [`TraceStream`], this holds every pair at once — use the stream
/// for ImageNet-scale models.
///
/// # Errors
///
/// Returns the first (lowest-index) per-layer failure.
pub fn trace_pairs(net: &NetworkDesc, opts: &TraceOptions) -> Result<Vec<TracePair>> {
    TraceStream::new(net, opts.clone()).collect()
}

/// Maximum trace pairs generated (and therefore alive) per
/// [`TraceStream`] batch: bounds streaming memory independently of core
/// count; thread budget beyond this flows to the per-layer decomposition
/// level.
pub const MAX_BATCH_PAIRS: usize = 4;

/// Streams matched trace pairs layer by layer, generating them in batches
/// on the parallel work queue of [`se_core::pipeline`] (thread budget from
/// the options' `se_config.parallelism()`).
///
/// Traces for ImageNet-scale layers are large, so batches are capped at
/// [`MAX_BATCH_PAIRS`] pairs regardless of core count — peak memory stays
/// a small constant, and thread budget beyond the batch width flows to the
/// per-layer decomposition level instead. With `parallelism = 1` this
/// degenerates to the fully lazy one-layer-at-a-time stream. Pairs are
/// yielded in network order for every worker count.
#[derive(Debug)]
pub struct TraceStream<'a> {
    net: &'a NetworkDesc,
    opts: TraceOptions,
    /// Eligible layer indices not yet generated, in network order.
    pending: std::collections::VecDeque<usize>,
    /// Generated pairs not yet yielded, in network order.
    ready: std::collections::VecDeque<Result<TracePair>>,
    /// Whether a batch has been generated yet (the first batch is a single
    /// pair so one-pair consumers never pay for a full batch).
    warmed: bool,
}

impl<'a> TraceStream<'a> {
    /// Creates a stream over the network's layers.
    pub fn new(net: &'a NetworkDesc, opts: TraceOptions) -> Self {
        let pending = net
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, d)| !opts.conv_like_only || d.kind().is_conv_like())
            .map(|(i, _)| i)
            .collect();
        TraceStream { net, opts, pending, ready: std::collections::VecDeque::new(), warmed: false }
    }

    /// Generates the next batch of pairs on the work queue, in network
    /// order. The first batch is a single pair (common consumers take one
    /// pair and stop — they keep the old one-layer-alive behaviour);
    /// subsequent batches are `min(parallelism, MAX_BATCH_PAIRS)` wide.
    /// The total thread budget is split between this batch level and the
    /// per-layer decomposition threads via
    /// `se_core::pipeline::worker_config`.
    fn refill(&mut self) {
        let workers = self.opts.se_config.parallelism().max(1);
        let width = if self.warmed { workers.min(MAX_BATCH_PAIRS) } else { 1 };
        self.warmed = true;
        let batch: Vec<usize> = (0..width).filter_map(|_| self.pending.pop_front()).collect();
        if batch.is_empty() {
            return;
        }
        let wcfg = se_core::pipeline::worker_config(&self.opts.se_config, batch.len());
        let wopts = self.opts.clone().with_se_config(wcfg);
        let net = self.net;
        self.ready.extend(se_core::pipeline::run_ordered(&batch, width, |_, &i| {
            trace_pair(net, i, &wopts)
        }));
    }
}

impl Iterator for TraceStream<'_> {
    type Item = Result<TracePair>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.ready.is_empty() {
            self.refill();
        }
        self.ready.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use se_ir::{Dataset, LayerDesc, LayerKind};

    fn tiny_net() -> NetworkDesc {
        NetworkDesc::new(
            "tiny",
            Dataset::Cifar10,
            vec![
                LayerDesc::new(
                    "c1",
                    LayerKind::Conv2d {
                        in_channels: 3,
                        out_channels: 8,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                    (8, 8),
                ),
                LayerDesc::new(
                    "c2",
                    LayerKind::Conv2d {
                        in_channels: 8,
                        out_channels: 8,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                    (8, 8),
                ),
                LayerDesc::new(
                    "fc",
                    LayerKind::Linear { in_features: 8, out_features: 10 },
                    (1, 1),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dense_and_se_traces_share_inputs() {
        let net = tiny_net();
        let opts = TraceOptions::fast();
        let pairs: Vec<_> = TraceStream::new(&net, opts).collect::<Result<_>>().unwrap();
        assert_eq!(pairs.len(), 2); // FC skipped by default
        for p in &pairs {
            assert_eq!(p.dense.input(), p.se.input());
            assert!(p.se.weights().is_se());
            assert!(!p.dense.weights().is_se());
        }
    }

    #[test]
    fn parallel_stream_is_bit_identical_to_serial() {
        let net = tiny_net();
        let serial_opts = TraceOptions::fast()
            .with_se_config(TraceOptions::fast().se_config.with_parallelism(1).unwrap());
        let serial: Vec<TracePair> =
            TraceStream::new(&net, serial_opts).collect::<Result<_>>().unwrap();
        for workers in [2usize, 4] {
            let opts = TraceOptions::fast()
                .with_se_config(TraceOptions::fast().se_config.with_parallelism(workers).unwrap());
            let parallel: Vec<TracePair> =
                TraceStream::new(&net, opts.clone()).collect::<Result<_>>().unwrap();
            assert_eq!(serial, parallel, "workers = {workers}");
            assert_eq!(trace_pairs(&net, &opts).unwrap(), serial);
        }
    }

    #[test]
    fn fc_included_when_requested() {
        let net = tiny_net();
        let opts = TraceOptions::fast().with_fc_layers();
        let pairs: Vec<_> = TraceStream::new(&net, opts).collect::<Result<_>>().unwrap();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[2].layer_index, 2);
    }

    #[test]
    fn se_weights_approximate_dense_weights() {
        let net = tiny_net();
        let pair = TraceStream::new(&net, TraceOptions::fast()).next().unwrap().unwrap();
        let (dense_w, se_parts) = match (pair.dense.weights(), pair.se.weights()) {
            (WeightData::Dense(d), WeightData::Se(s)) => (d, s),
            other => panic!("unexpected weight kinds {other:?}"),
        };
        let recon = se_core::layer::reconstruct_layer(pair.dense.desc(), se_parts).unwrap();
        let orig = dense_w.dequantize();
        let rel = orig.sub(&recon).unwrap().norm() / orig.norm();
        assert!(rel < 0.45, "relative error {rel}");
    }

    #[test]
    fn traces_work_on_a_real_zoo_model() {
        // MLP-2 is small enough to trace in full.
        let net = zoo::mlp2();
        let opts = TraceOptions::fast().with_fc_layers();
        let mut count = 0;
        for pair in TraceStream::new(&net, opts) {
            let p = pair.unwrap();
            assert_eq!(p.dense.input().len() as u64, p.dense.desc().input_elems());
            count += 1;
        }
        assert_eq!(count, 3);
    }
}
