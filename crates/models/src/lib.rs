//! Benchmark model zoo for the SmartExchange reproduction.
//!
//! The paper evaluates on nine networks across four datasets; this crate
//! provides:
//!
//! * [`zoo`] — exact layer-by-layer descriptors of all nine
//!   (VGG11, VGG19, ResNet50, ResNet164, MobileNetV2, EfficientNet-B0,
//!   DeepLabV3+, MLP-1, MLP-2), validated against published parameter
//!   counts;
//! * [`weights`] — deterministic synthetic weights with realistic magnitude
//!   statistics (Kaiming fan-in scaling), substituting for the unavailable
//!   pre-trained checkpoints (DESIGN.md);
//! * [`activations`] — synthetic post-ReLU activation maps with realistic
//!   element/bit/vector sparsity, plus the bit-sparsity statistics of
//!   Fig. 4;
//! * [`traces`] — per-layer [`se_ir::LayerTrace`] generation feeding the
//!   accelerator simulators (dense 8-bit weights for the baselines and
//!   SmartExchange-compressed weights for the SE accelerator, from the same
//!   underlying tensors);
//! * [`artifacts`] — persisted whole-network compression artifacts
//!   (`*.senet`), keyed like the `*.setrace` trace files;
//! * [`trainable`] — scaled-down trainable `se-nn` models (and the exact
//!   MLP-1/MLP-2) for the accuracy experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;

pub mod activations;
pub mod artifacts;
pub mod traces;
pub mod trainable;
pub mod weights;
pub mod zoo;

pub use error::ModelError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
