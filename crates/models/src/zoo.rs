//! Layer-by-layer descriptors of the paper's nine benchmark networks.
//!
//! Geometry follows the published architectures; residual/skip additions
//! and activation/pool layers carry no weights and are reflected only in
//! the spatial-size bookkeeping. Parameter totals are validated against the
//! published counts in this module's tests.

use crate::{ModelError, Result};
use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};

/// Incrementally builds a network descriptor while tracking the activation
/// shape `(C, H, W)`.
struct NetBuilder {
    layers: Vec<LayerDesc>,
    c: usize,
    h: usize,
    w: usize,
    idx: usize,
}

impl NetBuilder {
    fn new(input: (usize, usize, usize)) -> Self {
        NetBuilder { layers: Vec::new(), c: input.0, h: input.1, w: input.2, idx: 0 }
    }

    fn next_name(&mut self, prefix: &str) -> String {
        self.idx += 1;
        format!("{prefix}{}", self.idx)
    }

    fn conv(&mut self, out: usize, kernel: usize, stride: usize, padding: usize) {
        let name = self.next_name("conv");
        let desc = LayerDesc::new(
            name,
            LayerKind::Conv2d { in_channels: self.c, out_channels: out, kernel, stride, padding },
            (self.h, self.w),
        );
        let (e, f) = desc.output_hw().expect("builder geometry is valid");
        self.layers.push(desc);
        self.c = out;
        self.h = e;
        self.w = f;
    }

    fn dwconv(&mut self, kernel: usize, stride: usize, padding: usize) {
        let name = self.next_name("dwconv");
        let desc = LayerDesc::new(
            name,
            LayerKind::DepthwiseConv2d { channels: self.c, kernel, stride, padding },
            (self.h, self.w),
        );
        let (e, f) = desc.output_hw().expect("builder geometry is valid");
        self.layers.push(desc);
        self.h = e;
        self.w = f;
    }

    fn squeeze_excite(&mut self, reduced: usize) {
        let name = self.next_name("se");
        self.layers.push(LayerDesc::new(
            name,
            LayerKind::SqueezeExcite { channels: self.c, reduced: reduced.max(1) },
            (self.h, self.w),
        ));
    }

    fn linear(&mut self, out: usize) {
        let name = self.next_name("fc");
        let in_features = self.c * self.h * self.w;
        self.layers.push(LayerDesc::new(
            name,
            LayerKind::Linear { in_features, out_features: out },
            (1, 1),
        ));
        self.c = out;
        self.h = 1;
        self.w = 1;
    }

    /// Weightless max/avg pool: only updates the tracked spatial size.
    fn pool(&mut self, factor: usize) {
        self.h /= factor;
        self.w /= factor;
    }

    fn global_pool(&mut self) {
        self.h = 1;
        self.w = 1;
    }

    fn build(self, name: &str, dataset: Dataset) -> NetworkDesc {
        NetworkDesc::new(name, dataset, self.layers).expect("zoo geometry is valid")
    }
}

/// VGG11 on ImageNet (the "A" configuration).
pub fn vgg11() -> NetworkDesc {
    let mut b = NetBuilder::new((3, 224, 224));
    b.conv(64, 3, 1, 1);
    b.pool(2);
    b.conv(128, 3, 1, 1);
    b.pool(2);
    b.conv(256, 3, 1, 1);
    b.conv(256, 3, 1, 1);
    b.pool(2);
    b.conv(512, 3, 1, 1);
    b.conv(512, 3, 1, 1);
    b.pool(2);
    b.conv(512, 3, 1, 1);
    b.conv(512, 3, 1, 1);
    b.pool(2);
    b.linear(4096);
    b.linear(4096);
    b.linear(1000);
    b.build("VGG11", Dataset::ImageNet)
}

/// VGG19 adapted to CIFAR-10: 16 CONV layers plus the 512–512–512–10
/// classifier head of the `pytorch-vgg-cifar10` implementation the paper
/// cites (footnote 1 of Section III-C).
pub fn vgg19_cifar() -> NetworkDesc {
    let mut b = NetBuilder::new((3, 32, 32));
    for &(reps, ch) in &[(2usize, 64usize), (2, 128), (4, 256), (4, 512), (4, 512)] {
        for _ in 0..reps {
            b.conv(ch, 3, 1, 1);
        }
        b.pool(2);
    }
    b.linear(512);
    b.linear(512);
    b.linear(10);
    b.build("VGG19", Dataset::Cifar10)
}

/// Appends one ResNet bottleneck (`1×1 reduce → 3×3 → 1×1 expand`), plus a
/// `1×1` projection shortcut when the input/output shapes differ.
fn bottleneck(b: &mut NetBuilder, mid: usize, out: usize, stride: usize) {
    let needs_proj = b.c != out || stride != 1;
    let (in_c, in_h, in_w) = (b.c, b.h, b.w);
    b.conv(mid, 1, 1, 0);
    b.conv(mid, 3, stride, 1);
    b.conv(out, 1, 1, 0);
    if needs_proj {
        // Projection shortcut runs on the block input.
        let name = b.next_name("proj");
        b.layers.push(LayerDesc::new(
            name,
            LayerKind::Conv2d {
                in_channels: in_c,
                out_channels: out,
                kernel: 1,
                stride,
                padding: 0,
            },
            (in_h, in_w),
        ));
    }
}

/// ResNet50 on ImageNet.
pub fn resnet50() -> NetworkDesc {
    let mut b = NetBuilder::new((3, 224, 224));
    b.conv(64, 7, 2, 3);
    b.pool(2); // 3x3/2 max pool
    let stages: [(usize, usize, usize, usize); 4] =
        [(3, 64, 256, 1), (4, 128, 512, 2), (6, 256, 1024, 2), (3, 512, 2048, 2)];
    for &(blocks, mid, out, stride) in &stages {
        for i in 0..blocks {
            bottleneck(&mut b, mid, out, if i == 0 { stride } else { 1 });
        }
    }
    b.global_pool();
    b.linear(1000);
    b.build("ResNet50", Dataset::ImageNet)
}

/// ResNet164 on CIFAR-10 (pre-activation bottleneck, 18 blocks per stage).
pub fn resnet164() -> NetworkDesc {
    let mut b = NetBuilder::new((3, 32, 32));
    b.conv(16, 3, 1, 1);
    let stages: [(usize, usize, usize); 3] = [(16, 64, 1), (32, 128, 2), (64, 256, 2)];
    for &(mid, out, stride) in &stages {
        for i in 0..18 {
            bottleneck(&mut b, mid, out, if i == 0 { stride } else { 1 });
        }
    }
    b.global_pool();
    b.linear(10);
    b.build("ResNet164", Dataset::Cifar10)
}

/// Appends one MobileNetV2 inverted residual (`1×1 expand → 3×3 depth-wise
/// → 1×1 project`).
fn inverted_residual(b: &mut NetBuilder, expand: usize, out: usize, stride: usize, kernel: usize) {
    let hidden = b.c * expand;
    if expand != 1 {
        b.conv(hidden, 1, 1, 0);
    }
    b.dwconv(kernel, stride, kernel / 2);
    b.conv(out, 1, 1, 0);
}

/// MobileNetV2 on ImageNet.
pub fn mobilenet_v2() -> NetworkDesc {
    let mut b = NetBuilder::new((3, 224, 224));
    b.conv(32, 3, 2, 1);
    // (expand t, channels c, repeats n, stride s) per the paper's Table 2.
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for &(t, c, n, s) in &cfg {
        for i in 0..n {
            inverted_residual(&mut b, t, c, if i == 0 { s } else { 1 }, 3);
        }
    }
    b.conv(1280, 1, 1, 0);
    b.global_pool();
    b.linear(1000);
    b.build("MobileNetV2", Dataset::ImageNet)
}

/// Appends one EfficientNet MBConv block (expand → depth-wise →
/// squeeze-excite → project); the SE bottleneck is a quarter of the block's
/// *input* channels, as in the reference implementation.
fn mbconv(b: &mut NetBuilder, expand: usize, out: usize, stride: usize, kernel: usize) {
    let input_c = b.c;
    let hidden = input_c * expand;
    if expand != 1 {
        b.conv(hidden, 1, 1, 0);
    }
    b.dwconv(kernel, stride, kernel / 2);
    b.squeeze_excite((input_c / 4).max(1));
    b.conv(out, 1, 1, 0);
}

/// EfficientNet-B0 on ImageNet.
pub fn efficientnet_b0() -> NetworkDesc {
    let mut b = NetBuilder::new((3, 224, 224));
    b.conv(32, 3, 2, 1);
    // (expand, channels, repeats, stride, kernel) for the seven stages.
    let cfg: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    for &(t, c, n, s, k) in &cfg {
        for i in 0..n {
            mbconv(&mut b, t, c, if i == 0 { s } else { 1 }, k);
        }
    }
    b.conv(1280, 1, 1, 0);
    b.global_pool();
    b.linear(1000);
    b.build("EfficientNet-B0", Dataset::ImageNet)
}

/// DeepLabV3+ with a ResNet50 backbone (output stride 16) on CamVid,
/// evaluated at 360 × 480 (see DESIGN.md for the input-size note).
///
/// The last backbone stage keeps stride 1 (the paper's dilated convolutions
/// preserve resolution; dilation does not change weight geometry), followed
/// by the ASPP head and the two-stage decoder.
pub fn deeplab_v3plus() -> NetworkDesc {
    let mut b = NetBuilder::new((3, 360, 480));
    b.conv(64, 7, 2, 3);
    b.pool(2);
    let stages: [(usize, usize, usize, usize); 4] =
        [(3, 64, 256, 1), (4, 128, 512, 2), (6, 256, 1024, 2), (3, 512, 2048, 1)];
    for &(blocks, mid, out, stride) in &stages {
        for i in 0..blocks {
            bottleneck(&mut b, mid, out, if i == 0 { stride } else { 1 });
        }
    }
    // ASPP at output stride 16: 1x1 + three 3x3 (dilated) branches + image
    // pooling, all to 256 channels, then fused by a 1x1.
    let (aspp_h, aspp_w) = (b.h, b.w);
    for i in 0..5 {
        let name = format!("aspp{i}");
        let kernel = if i == 0 || i == 4 { 1 } else { 3 };
        b.layers.push(LayerDesc::new(
            name,
            LayerKind::Conv2d {
                in_channels: 2048,
                out_channels: 256,
                kernel,
                stride: 1,
                padding: kernel / 2,
            },
            (aspp_h, aspp_w),
        ));
    }
    b.c = 256 * 5;
    b.conv(256, 1, 1, 0);
    // Decoder: project low-level features (256ch at stride 4) to 48, concat
    // with 4x-upsampled ASPP output, refine with two 3x3 convs, classify.
    let (low_h, low_w) = (90, 120); // stride-4 feature map of 360x480
    b.layers.push(LayerDesc::new(
        "dec_lowlevel",
        LayerKind::Conv2d { in_channels: 256, out_channels: 48, kernel: 1, stride: 1, padding: 0 },
        (low_h, low_w),
    ));
    b.c = 256 + 48;
    b.h = low_h;
    b.w = low_w;
    b.conv(256, 3, 1, 1);
    b.conv(256, 3, 1, 1);
    b.conv(11, 1, 1, 0); // CamVid's 11 classes
    b.build("DeepLabV3+", Dataset::CamVid)
}

/// MLP-1 on MNIST (784–2048–1024–10, matching the ~14.1 MB FP32 size the
/// paper reports for the model of \[40\]).
pub fn mlp1() -> NetworkDesc {
    let mut b = NetBuilder::new((1, 28, 28));
    b.linear(2048);
    b.linear(1024);
    b.linear(10);
    b.build("MLP-1", Dataset::Mnist)
}

/// MLP-2 on MNIST (LeNet-300-100, the Cambricon-S MLP of \[56\]).
pub fn mlp2() -> NetworkDesc {
    let mut b = NetBuilder::new((1, 28, 28));
    b.linear(300);
    b.linear(100);
    b.linear(10);
    b.build("MLP-2", Dataset::Mnist)
}

/// All nine benchmark networks in the paper's presentation order.
pub fn all_models() -> Vec<NetworkDesc> {
    vec![
        vgg11(),
        resnet50(),
        mobilenet_v2(),
        efficientnet_b0(),
        vgg19_cifar(),
        resnet164(),
        deeplab_v3plus(),
        mlp1(),
        mlp2(),
    ]
}

/// The seven models used in the accelerator comparison (Figs. 10–13).
pub fn accelerator_benchmark_models() -> Vec<NetworkDesc> {
    vec![
        vgg11(),
        resnet50(),
        mobilenet_v2(),
        efficientnet_b0(),
        vgg19_cifar(),
        resnet164(),
        deeplab_v3plus(),
    ]
}

/// Looks a model up by its paper name (case-insensitive).
///
/// # Errors
///
/// Returns [`ModelError::UnknownModel`] for unrecognised names.
pub fn by_name(name: &str) -> Result<NetworkDesc> {
    match name.to_ascii_lowercase().as_str() {
        "vgg11" => Ok(vgg11()),
        "vgg19" => Ok(vgg19_cifar()),
        "resnet50" => Ok(resnet50()),
        "resnet164" => Ok(resnet164()),
        "mobilenetv2" | "mbv2" => Ok(mobilenet_v2()),
        "efficientnet-b0" | "eff-b0" | "efficientnetb0" => Ok(efficientnet_b0()),
        "deeplabv3+" | "deeplab" => Ok(deeplab_v3plus()),
        "mlp-1" | "mlp1" => Ok(mlp1()),
        "mlp-2" | "mlp2" => Ok(mlp2()),
        other => Err(ModelError::UnknownModel { name: other.to_string() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(net: &NetworkDesc) -> f64 {
        net.fp32_megabytes()
    }

    #[test]
    fn vgg11_matches_published_size() {
        let net = vgg11();
        // Canonical torchvision VGG11 weight count: ~132.86 M.
        let params = net.total_params();
        assert!((132_000_000..134_000_000).contains(&params), "VGG11 params {params}");
        // ~7.6 GMACs.
        let g = net.total_macs() as f64 / 1e9;
        assert!((7.0..8.2).contains(&g), "VGG11 GMACs {g}");
    }

    #[test]
    fn vgg19_cifar_matches_paper_mb() {
        // Paper Table II: 80.13 MB; the cited implementation's weights-only
        // total is ~78.4 MB (EXPERIMENTS.md records the delta).
        let size = mb(&vgg19_cifar());
        assert!((77.0..82.0).contains(&size), "VGG19 {size} MB");
    }

    #[test]
    fn resnet50_matches_published_size() {
        let net = resnet50();
        let params = net.total_params();
        // Weights-only ResNet50: ~25.5 M.
        assert!((24_500_000..26_500_000).contains(&params), "ResNet50 params {params}");
        let g = net.total_macs() as f64 / 1e9;
        assert!((3.7..4.4).contains(&g), "ResNet50 GMACs {g}");
    }

    #[test]
    fn resnet164_matches_paper_mb() {
        // Paper Table II: 6.75 MB.
        let size = mb(&resnet164());
        assert!((size - 6.75).abs() < 0.5, "ResNet164 {size} MB");
        // 164 layers: 3 stages x 18 blocks x 3 convs + stem + fc = 164.
        let convs = resnet164()
            .layers()
            .iter()
            .filter(|l| matches!(l.kind(), LayerKind::Conv2d { .. }))
            .count();
        assert!(convs >= 163, "conv count {convs}");
    }

    #[test]
    fn mobilenet_v2_matches_paper_mb() {
        // Paper Table III: 13.92 MB (we expect ~13.4 from weights only).
        let size = mb(&mobilenet_v2());
        assert!((12.5..14.5).contains(&size), "MBV2 {size} MB");
        let has_dw = mobilenet_v2()
            .layers()
            .iter()
            .any(|l| matches!(l.kind(), LayerKind::DepthwiseConv2d { .. }));
        assert!(has_dw);
    }

    #[test]
    fn efficientnet_b0_matches_paper_mb() {
        // Paper Table III: 20.40 MB.
        let size = mb(&efficientnet_b0());
        assert!((18.0..22.0).contains(&size), "Eff-B0 {size} MB");
        let se_blocks = efficientnet_b0()
            .layers()
            .iter()
            .filter(|l| matches!(l.kind(), LayerKind::SqueezeExcite { .. }))
            .count();
        assert_eq!(se_blocks, 16); // one per MBConv block
    }

    #[test]
    fn mlp_sizes_match_paper() {
        // Paper Table II: MLP-1 14.125 MB, MLP-2 1.07 MB.
        let m1 = mb(&mlp1());
        assert!((m1 - 14.125).abs() < 0.3, "MLP-1 {m1} MB");
        let m2 = mb(&mlp2());
        assert!((m2 - 1.02).abs() < 0.1, "MLP-2 {m2} MB");
    }

    #[test]
    fn deeplab_has_segmentation_head() {
        let net = deeplab_v3plus();
        let last = net.layers().last().unwrap();
        assert_eq!(last.out_channels(), 11);
        assert!(net.total_params() > 35_000_000);
        // Dense prediction: output spatial size stays large somewhere.
        assert!(net.layers().iter().any(|l| l.input_hw().0 >= 23));
    }

    #[test]
    fn all_models_have_valid_geometry() {
        for net in all_models() {
            assert!(net.total_macs() > 0, "{} has zero MACs", net.name());
            for l in net.layers() {
                assert!(l.output_hw().is_ok(), "{}:{} invalid", net.name(), l.name());
            }
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for net in all_models() {
            let found = by_name(net.name()).unwrap();
            assert_eq!(found.name(), net.name());
            assert_eq!(found.total_params(), net.total_params());
        }
        assert!(by_name("alexnet").is_err());
    }

    #[test]
    fn accelerator_set_is_the_paper_seven() {
        let names: Vec<String> =
            accelerator_benchmark_models().iter().map(|n| n.name().to_string()).collect();
        assert_eq!(
            names,
            vec![
                "VGG11",
                "ResNet50",
                "MobileNetV2",
                "EfficientNet-B0",
                "VGG19",
                "ResNet164",
                "DeepLabV3+"
            ]
        );
    }
}
