use std::fmt;

/// Errors produced by the model zoo.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// An unknown model name was requested.
    UnknownModel {
        /// The requested name.
        name: String,
    },
    /// An underlying interchange-format operation failed.
    Ir(se_ir::IrError),
    /// An underlying tensor operation failed.
    Tensor(se_tensor::TensorError),
    /// An underlying NN-stack operation failed.
    Nn(se_nn::NnError),
    /// An underlying compression operation failed.
    Core(se_core::CoreError),
    /// A trace-artifact file could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The rendered `std::io::Error` (kept as a string so the error
        /// type stays `Clone + PartialEq`).
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownModel { name } => write!(f, "unknown model: {name}"),
            ModelError::Ir(e) => write!(f, "format error: {e}"),
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
            ModelError::Nn(e) => write!(f, "nn error: {e}"),
            ModelError::Core(e) => write!(f, "compression error: {e}"),
            ModelError::Io { path, reason } => write!(f, "io error on {path}: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::UnknownModel { .. } => None,
            ModelError::Ir(e) => Some(e),
            ModelError::Tensor(e) => Some(e),
            ModelError::Nn(e) => Some(e),
            ModelError::Core(e) => Some(e),
            ModelError::Io { .. } => None,
        }
    }
}

impl From<se_ir::IrError> for ModelError {
    fn from(e: se_ir::IrError) -> Self {
        ModelError::Ir(e)
    }
}

impl From<se_tensor::TensorError> for ModelError {
    fn from(e: se_tensor::TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<se_nn::NnError> for ModelError {
    fn from(e: se_nn::NnError) -> Self {
        ModelError::Nn(e)
    }
}

impl From<se_core::CoreError> for ModelError {
    fn from(e: se_core::CoreError) -> Self {
        ModelError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ModelError::UnknownModel { name: "vgg99".into() };
        assert!(e.to_string().contains("vgg99"));
        assert!(e.source().is_none());
        let e = ModelError::Tensor(se_tensor::TensorError::Singular);
        assert!(e.source().is_some());
    }
}
