//! Persisted compression-side artifacts: whole-network
//! [`CompressedNetwork`]s written through the existing
//! `to_bytes`/`from_bytes` codec and keyed like the `*.setrace` trace
//! artifacts (`<net>-<options digest>.senet` under `--traces-dir`).
//!
//! The compression experiments (`se table2`, `se table3`, `se postproc`)
//! recompress every network from its synthetic seed on each run; caching
//! the [`CompressedNetwork`] trades that recomputation for one file read,
//! the same inverse-of-the-paper trade the simulation side already makes
//! for traces. Artifacts are self-populating: a cached run writes on miss
//! and replays on hit, and both paths produce bit-identical reports.

use crate::traces::{fnv1a, put_se_config, sanitize_net_name};
use crate::{weights, ModelError, Result};
use se_core::network::{CompressedNetwork, LayerReport};
use se_core::pipeline::{self, LayerJob, WeightSource};
use se_core::{CoreError, SeConfig};
use se_ir::serialize::ByteWriter;
use se_ir::{LayerDesc, NetworkDesc};
use se_tensor::Tensor;
use std::path::{Path, PathBuf};

/// File extension of persisted compressed networks.
pub const NETWORK_FILE_EXT: &str = "senet";

fn io_err(path: &Path, e: impl std::fmt::Display) -> ModelError {
    ModelError::Io { path: path.display().to_string(), reason: e.to_string() }
}

/// A stable 64-bit digest of everything that determines a compressed
/// network: the synthetic-weight seed and the full [`SeConfig`] (worker
/// counts excluded — compression is bit-identical across them). Keys the
/// artifact filename, so changed options can never replay a stale file.
pub fn compression_digest(cfg: &SeConfig, seed: u64) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(seed);
    // Domain tag so a compression digest can never collide with a trace
    // digest built from the same configuration.
    w.put_u8(b'C');
    put_se_config(&mut w, cfg);
    fnv1a(&w.into_bytes())
}

/// The artifact filename for a network compressed under `cfg` and `seed`:
/// `<sanitized-net-name>-<16-hex-digit digest>.senet`.
pub fn network_file_name(net_name: &str, cfg: &SeConfig, seed: u64) -> String {
    format!(
        "{}-{:016x}.{NETWORK_FILE_EXT}",
        sanitize_net_name(net_name),
        compression_digest(cfg, seed)
    )
}

/// Writes a compressed network into `dir` under [`network_file_name`]
/// using [`CompressedNetwork::to_bytes`], creating the directory if
/// needed. Published atomically (temp file + rename) so an interrupted
/// build never leaves a truncated artifact. Returns the file path.
///
/// # Errors
///
/// Propagates encoding and filesystem failures.
pub fn write_network_file(
    dir: &Path,
    net_name: &str,
    cfg: &SeConfig,
    seed: u64,
    network: &CompressedNetwork,
) -> Result<PathBuf> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let path = dir.join(network_file_name(net_name, cfg, seed));
    let bytes = network.to_bytes()?;
    let tmp = path.with_extension(format!("{NETWORK_FILE_EXT}.tmp-{}", std::process::id()));
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    Ok(path)
}

/// Serialized size in bytes of an artifact on disk, without reading or
/// decoding it — the byte-accurate cold-load cost when the artifact
/// file is the durable bottom tier of a tiered weight store.
///
/// # Errors
///
/// Propagates filesystem failures (missing file, permission).
pub fn artifact_bytes(path: &Path) -> Result<u64> {
    std::fs::metadata(path).map(|m| m.len()).map_err(|e| io_err(path, e))
}

/// Reads a compressed-network artifact via [`CompressedNetwork::from_bytes`].
///
/// # Errors
///
/// Propagates filesystem and decoding failures.
pub fn read_network_file(path: &Path) -> Result<CompressedNetwork> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    Ok(CompressedNetwork::from_bytes(&bytes)?)
}

/// Looks a network's compressed form up in the artifact directory:
/// `Ok(Some(_))` on a hit, `Ok(None)` when no artifact exists for these
/// options. The decoded artifact is validated against the network's layer
/// inventory (count and names), so a file planted under the wrong name is
/// a loud error, not a silently wrong replay.
///
/// # Errors
///
/// Propagates read/decode failures and layer-inventory mismatches.
pub fn cached_compressed_network(
    net: &NetworkDesc,
    cfg: &SeConfig,
    seed: u64,
    dir: &Path,
) -> Result<Option<CompressedNetwork>> {
    let path = dir.join(network_file_name(net.name(), cfg, seed));
    if !path.exists() {
        return Ok(None);
    }
    let network = read_network_file(&path)?;
    if network.reports.len() != net.layers().len() {
        return Err(io_err(
            &path,
            format!(
                "artifact holds {} layers, network {} has {}",
                network.reports.len(),
                net.name(),
                net.layers().len()
            ),
        ));
    }
    for (report, desc) in network.reports.iter().zip(net.layers()) {
        if report.name != desc.name() {
            return Err(io_err(
                &path,
                format!(
                    "artifact layer {:?} does not match network layer {:?}",
                    report.name,
                    desc.name()
                ),
            ));
        }
    }
    Ok(Some(network))
}

/// Compresses every layer of `net` from its synthetic weights on the
/// parallel work queue, keeping the compressed parts (unlike the
/// streaming report-only path) so the result can be persisted.
///
/// # Errors
///
/// Propagates weight-generation and compression failures.
pub fn compress_network(net: &NetworkDesc, cfg: &SeConfig, seed: u64) -> Result<CompressedNetwork> {
    let generate = |d: &LayerDesc| -> se_core::Result<Tensor> {
        weights::synthetic_weights(net.name(), d, seed)
            .map_err(|e| CoreError::InvalidWeights { reason: e.to_string() })
    };
    let jobs: Vec<LayerJob<'_>> = net
        .layers()
        .iter()
        .enumerate()
        .map(|(index, desc)| LayerJob { index, desc, weights: WeightSource::Generate(&generate) })
        .collect();
    let (parts, reports) = pipeline::compress_jobs(&jobs, cfg)?.into_iter().unzip();
    Ok(CompressedNetwork { parts, reports })
}

/// The per-layer compression reports for `net` under `cfg`/`seed`, through
/// the artifact cache when `dir` is given:
///
/// * **hit** — the persisted [`CompressedNetwork`] is replayed (reports
///   round-trip bit-identically, every `f32`);
/// * **miss with a directory** — the network is compressed once (keeping
///   parts) and the artifact written for subsequent runs;
/// * **no directory** — the streaming report-only path of
///   [`se_core::network::compress_network_reports`], which never holds a
///   whole network's parts in memory.
///
/// All three paths produce identical reports.
///
/// # Errors
///
/// Propagates compression, read/write, and validation failures.
pub fn network_reports_cached(
    net: &NetworkDesc,
    cfg: &SeConfig,
    seed: u64,
    dir: Option<&Path>,
) -> Result<Vec<LayerReport>> {
    let Some(dir) = dir else {
        let descs: Vec<LayerDesc> = net.layers().to_vec();
        return Ok(se_core::network::compress_network_reports(&descs, cfg, |d| {
            weights::synthetic_weights(net.name(), d, seed)
                .map_err(|e| CoreError::InvalidWeights { reason: e.to_string() })
        })?);
    };
    if let Some(cached) = cached_compressed_network(net, cfg, seed, dir)? {
        return Ok(cached.reports);
    }
    let network = compress_network(net, cfg, seed)?;
    write_network_file(dir, net.name(), cfg, seed, &network)?;
    Ok(network.reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("se-artifact-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg() -> SeConfig {
        SeConfig::default().with_max_iterations(4).unwrap()
    }

    #[test]
    fn digest_separates_options_and_domains() {
        let base = compression_digest(&cfg(), 0);
        assert_ne!(base, compression_digest(&cfg(), 1), "seed must change the digest");
        let other = cfg().with_max_iterations(5).unwrap();
        assert_ne!(base, compression_digest(&other, 0), "config must change the digest");
        // Same config, different artifact kind: different key space.
        let topts =
            crate::traces::TraceOptions { base_seed: 0, se_config: cfg(), conv_like_only: true };
        assert_ne!(base, crate::traces::options_digest(&topts));
        let name = network_file_name("EfficientNet-B0", &cfg(), 0);
        assert!(name.starts_with("efficientnet-b0-"));
        assert!(name.ends_with(".senet"));
    }

    #[test]
    fn roundtrip_and_cache_reports_are_bit_identical() {
        let net = zoo::mlp2();
        let dir = temp_dir("roundtrip");
        let direct = network_reports_cached(&net, &cfg(), 0, None).unwrap();

        // Miss with a directory: compresses, persists, same reports.
        let written = network_reports_cached(&net, &cfg(), 0, Some(&dir)).unwrap();
        assert_eq!(direct, written);
        let path = dir.join(network_file_name(net.name(), &cfg(), 0));
        assert!(path.exists());

        // Hit: replayed from disk, still identical — including parts.
        let replayed = network_reports_cached(&net, &cfg(), 0, Some(&dir)).unwrap();
        assert_eq!(direct, replayed);
        let full = cached_compressed_network(&net, &cfg(), 0, &dir).unwrap().unwrap();
        assert_eq!(full, compress_network(&net, &cfg(), 0).unwrap());

        // Other options miss.
        assert!(cached_compressed_network(&net, &cfg(), 7, &dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_mismatched_artifacts_are_loud_errors() {
        let net = zoo::mlp2();
        let dir = temp_dir("corrupt");
        network_reports_cached(&net, &cfg(), 0, Some(&dir)).unwrap();
        let path = dir.join(network_file_name(net.name(), &cfg(), 0));

        // Truncation: error, not a silent miss.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cached_compressed_network(&net, &cfg(), 0, &dir).is_err());
        std::fs::write(&path, &bytes).unwrap();

        // A valid artifact planted under another network's key: layer
        // inventory mismatch (count, then names).
        let other = se_ir::NetworkDesc::new(
            "other",
            se_ir::Dataset::Mnist,
            vec![
                se_ir::LayerDesc::new(
                    "lin1",
                    se_ir::LayerKind::Linear { in_features: 784, out_features: 10 },
                    (1, 1),
                ),
                se_ir::LayerDesc::new(
                    "lin2",
                    se_ir::LayerKind::Linear { in_features: 10, out_features: 10 },
                    (1, 1),
                ),
            ],
        )
        .unwrap();
        let planted = dir.join(network_file_name(other.name(), &cfg(), 0));
        std::fs::copy(&path, &planted).unwrap();
        let err = cached_compressed_network(&other, &cfg(), 0, &dir).unwrap_err();
        assert!(
            err.to_string().contains("does not match") || err.to_string().contains("layers"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
