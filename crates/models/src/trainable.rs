//! Trainable `se-nn` counterparts for the accuracy experiments.
//!
//! The MLPs are exact reproductions of the paper's MNIST models; the CNNs
//! are scaled-down VGG-style stand-ins (DESIGN.md records the substitution:
//! ImageNet/CIFAR training of the full architectures is the gate, and
//! accuracy-vs-compression *orderings* are preserved on the synthetic
//! tasks).

use crate::{ModelError, Result};
use se_core::SeConfig;
use se_ir::{LayerDesc, LayerKind};
use se_nn::layers::Layer;
use se_nn::model::Sequential;
use se_tensor::Tensor;

/// MLP-1: 784–2048–1024–10 (the power-of-2 quantization comparison of
/// \[40\]).
///
/// # Errors
///
/// Infallible for this static architecture.
pub fn mlp1_trainable(seed: u64) -> Result<Sequential> {
    Ok(Sequential::new(vec![
        Layer::flatten(),
        Layer::linear(784, 2048, seed)?,
        Layer::relu(),
        Layer::linear(2048, 1024, seed + 1)?,
        Layer::relu(),
        Layer::linear(1024, 10, seed + 2)?,
    ]))
}

/// MLP-2: LeNet-300-100 (the pruned+quantized MLP of Cambricon-S \[56\]).
///
/// # Errors
///
/// Infallible for this static architecture.
pub fn mlp2_trainable(seed: u64) -> Result<Sequential> {
    Ok(Sequential::new(vec![
        Layer::flatten(),
        Layer::linear(784, 300, seed)?,
        Layer::relu(),
        Layer::linear(300, 100, seed + 1)?,
        Layer::relu(),
        Layer::linear(100, 10, seed + 2)?,
    ]))
}

/// A scaled-down VGG-style CNN for `32×32×3` inputs (stand-in for the
/// VGG/ResNet accuracy experiments): three conv stages + classifier head.
///
/// # Errors
///
/// Infallible for this static architecture.
pub fn vgg_small(classes: usize, seed: u64) -> Result<Sequential> {
    Ok(Sequential::new(vec![
        Layer::conv2d(3, 16, 3, 1, 1, seed)?,
        Layer::relu(),
        Layer::max_pool(2), // 16x16
        Layer::conv2d(16, 32, 3, 1, 1, seed + 1)?,
        Layer::relu(),
        Layer::max_pool(2), // 8x8
        Layer::conv2d(32, 64, 3, 1, 1, seed + 2)?,
        Layer::relu(),
        Layer::max_pool(2), // 4x4
        Layer::flatten(),
        Layer::linear(64 * 4 * 4, classes, seed + 3)?,
    ]))
}

/// A compact depth-wise-separable CNN for `32×32×3` inputs (stand-in for
/// the MobileNetV2/EfficientNet compact-model experiments). Depth-wise
/// stages are modelled with grouped channels compressed per-channel.
///
/// # Errors
///
/// Infallible for this static architecture.
pub fn compact_small(classes: usize, seed: u64) -> Result<Sequential> {
    Ok(Sequential::new(vec![
        Layer::conv2d(3, 16, 3, 2, 1, seed)?, // 16x16
        Layer::relu(),
        Layer::conv2d(16, 32, 1, 1, 0, seed + 1)?,
        Layer::relu(),
        Layer::conv2d(32, 32, 3, 2, 1, seed + 2)?, // 8x8
        Layer::relu(),
        Layer::conv2d(32, 64, 1, 1, 0, seed + 3)?,
        Layer::relu(),
        Layer::global_avg_pool(),
        Layer::linear(64, classes, seed + 4)?,
    ]))
}

/// Descriptors for the weighted layers of a trainable model, in layer
/// order, paired with the model-layer index. Spatial input sizes are
/// derived by propagating `input_shape` through the stack.
///
/// # Errors
///
/// Propagates forward-shape failures.
pub fn weighted_layer_descs(
    model: &Sequential,
    input_shape: &[usize],
) -> Result<Vec<(usize, LayerDesc)>> {
    let zero = Tensor::zeros(input_shape);
    let (_, inputs) = model.forward_capturing(&zero).map_err(ModelError::from)?;
    let mut out = Vec::new();
    for (i, layer) in model.layers().iter().enumerate() {
        let Some(w) = layer.weights() else { continue };
        let in_shape = inputs[i].shape();
        let desc = if let Some(geom) = layer.conv_geom() {
            LayerDesc::new(
                format!("layer{i}"),
                LayerKind::Conv2d {
                    in_channels: geom.in_channels,
                    out_channels: geom.out_channels,
                    kernel: geom.kernel_h,
                    stride: geom.stride,
                    padding: geom.padding,
                },
                (in_shape[1], in_shape[2]),
            )
        } else {
            LayerDesc::new(
                format!("layer{i}"),
                LayerKind::Linear { in_features: w.shape()[1], out_features: w.shape()[0] },
                (1, 1),
            )
        };
        out.push((i, desc));
    }
    Ok(out)
}

/// The SmartExchange projection used during re-training: every weighted
/// layer is compressed and immediately reconstructed in place, so the model
/// carries exactly the weights the accelerator would rebuild from
/// `{Ce, B}`.
///
/// # Errors
///
/// Propagates compression failures.
pub fn se_projection(model: &mut Sequential, input_shape: &[usize], cfg: &SeConfig) -> Result<()> {
    let descs = weighted_layer_descs(model, input_shape)?;
    for (i, desc) in descs {
        let w = model.layers()[i].weights().expect("desc built from weighted layer").clone();
        let parts = se_core::layer::compress_layer(&desc, &w, cfg)?;
        let recon = se_core::layer::reconstruct_layer(&desc, &parts)?;
        *model.layers_mut()[i].weights_mut().expect("weighted layer") = recon;
    }
    Ok(())
}

/// Compresses a trainable model's weights and reports the resulting
/// storage, without mutating the model.
///
/// # Errors
///
/// Propagates compression failures.
pub fn compress_trainable(
    model: &Sequential,
    input_shape: &[usize],
    cfg: &SeConfig,
) -> Result<se_core::network::CompressedNetwork> {
    let descs = weighted_layer_descs(model, input_shape)?;
    let layers: Vec<(LayerDesc, Tensor)> = descs
        .into_iter()
        .map(|(i, d)| {
            let w = model.layers()[i].weights().expect("weighted layer").clone();
            (d, w)
        })
        .collect();
    Ok(se_core::network::compress_network(&layers, cfg)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_core::VectorSparsity;
    use se_nn::{data, train};

    #[test]
    fn mlp_shapes_match_zoo() {
        let m1 = mlp1_trainable(0).unwrap();
        // Weights only (exclude biases) must match the descriptor totals.
        let w: u64 = m1.weight_tensors().map(|t| t.len() as u64).sum();
        assert_eq!(w, crate::zoo::mlp1().total_params());
        let m2 = mlp2_trainable(0).unwrap();
        let w2: u64 = m2.weight_tensors().map(|t| t.len() as u64).sum();
        assert_eq!(w2, crate::zoo::mlp2().total_params());
    }

    #[test]
    fn weighted_descs_track_shapes() {
        let m = vgg_small(10, 1).unwrap();
        let descs = weighted_layer_descs(&m, &[3, 32, 32]).unwrap();
        assert_eq!(descs.len(), 4);
        // Second conv sees the pooled 16x16 map.
        assert_eq!(descs[1].1.input_hw(), (16, 16));
        assert_eq!(descs[3].1.kind(), &LayerKind::Linear { in_features: 1024, out_features: 10 });
    }

    #[test]
    fn projection_preserves_function_approximately() {
        let ds = data::gaussian_clusters(3, &[3, 8, 8], 8, 0.2, 11).unwrap();
        let mut m = Sequential::new(vec![
            Layer::conv2d(3, 8, 3, 1, 1, 40).unwrap(),
            Layer::relu(),
            Layer::global_avg_pool(),
            Layer::linear(8, 3, 41).unwrap(),
        ]);
        let cfg = train::TrainConfig::default().with_epochs(10).with_lr(0.05);
        train::train(&mut m, &ds, &cfg).unwrap();
        let acc_before = train::evaluate(&m, &ds).unwrap();
        let se_cfg = SeConfig::default()
            .with_max_iterations(8)
            .unwrap()
            .with_vector_sparsity(VectorSparsity::Threshold(1e-3))
            .unwrap();
        se_projection(&mut m, &[3, 8, 8], &se_cfg).unwrap();
        let acc_after = train::evaluate(&m, &ds).unwrap();
        assert!(
            acc_after >= acc_before - 0.35,
            "projection destroyed the model: {acc_before} -> {acc_after}"
        );
    }

    #[test]
    fn retraining_recovers_projection_loss() {
        let ds = data::gaussian_clusters(2, &[3, 8, 8], 12, 0.25, 13).unwrap();
        let mut m = compact_small(2, 50).unwrap();
        let cfg = train::TrainConfig::default().with_epochs(6).with_lr(0.04);
        train::train(&mut m, &ds, &cfg).unwrap();
        let se_cfg = SeConfig::default().with_max_iterations(5).unwrap();
        let report = train::retrain_with_projection(&mut m, &ds, &cfg, |model| {
            se_projection(model, &[3, 8, 8], &se_cfg)
                .map_err(|e| se_nn::NnError::InvalidLayer { reason: e.to_string() })
        })
        .unwrap();
        assert!(report.final_accuracy > 0.7, "accuracy {}", report.final_accuracy);
    }

    #[test]
    fn compress_trainable_reports_storage() {
        let m = vgg_small(10, 3).unwrap();
        let cfg = SeConfig::default().with_max_iterations(4).unwrap();
        let net = compress_trainable(&m, &[3, 32, 32], &cfg).unwrap();
        assert_eq!(net.reports.len(), 4);
        assert!(net.compression_rate() > 4.0);
    }
}
