//! Deterministic synthetic weights for the zoo models.
//!
//! Pre-trained checkpoints are a gate (DESIGN.md); we substitute Kaiming
//! fan-in-scaled Gaussians, which match the magnitude statistics real
//! trained CONV/FC weights exhibit closely enough for compression-rate and
//! accelerator-energy measurements (both depend on magnitudes and shapes,
//! not on task semantics).

use crate::Result;
use se_ir::{LayerDesc, LayerKind, NetworkDesc};
use se_tensor::{rng, Tensor};

/// A stable per-layer seed derived from the network and layer names, so
/// every layer's weights are reproducible in isolation (the streaming
/// compression path regenerates layers independently).
pub fn layer_seed(net_name: &str, layer_name: &str, base: u64) -> u64 {
    // FNV-1a over the two names, mixed with the base seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    for b in net_name.bytes().chain([b'/']).chain(layer_name.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fan-in of a layer (the denominator of the Kaiming initialisation).
fn fan_in(desc: &LayerDesc) -> usize {
    match *desc.kind() {
        LayerKind::Conv2d { in_channels, kernel, .. } => in_channels * kernel * kernel,
        LayerKind::DepthwiseConv2d { kernel, .. } => kernel * kernel,
        LayerKind::Linear { in_features, .. } => in_features,
        LayerKind::SqueezeExcite { channels, .. } => channels,
    }
}

/// The "natural" element-wise weight sparsity of each benchmark network —
/// trained-and-pruned checkpoints are the gate (DESIGN.md), so synthetic
/// weights are magnitude-pruned to the per-model sparsity the paper's
/// Tables II/III report. Compact models (MobileNetV2, EfficientNet-B0)
/// carry no sparsity, exactly as in Table III (`Spar. 0.00%`).
pub fn natural_sparsity(net_name: &str) -> f32 {
    match net_name.to_ascii_lowercase().as_str() {
        "vgg11" => 0.86,
        "resnet50" => 0.55,
        "vgg19" => 0.93,
        "resnet164" => 0.50,
        "mobilenetv2" | "efficientnet-b0" => 0.0,
        "deeplabv3+" => 0.55, // ResNet50 backbone sparsity
        "mlp-1" => 0.82,
        "mlp-2" => 0.90,
        _ => 0.0,
    }
}

/// Generates the synthetic weight tensor for one layer (shape per
/// [`LayerDesc::weight_shape`]): Kaiming-scaled Gaussians magnitude-pruned
/// to the network's [`natural_sparsity`] at *weight-vector* granularity
/// (length-`S` vectors along the kernel's last dimension).
///
/// Vector granularity models the structure SmartExchange re-training
/// enforces — and the paper's observation (after Mao et al. \[37\]) that
/// vector-wise pruning reaches the same sparsity at the same accuracy as
/// element-wise pruning. The baselines still see and exploit the resulting
/// *element* sparsity; the SE form additionally benefits from the
/// clustering, exactly the comparison the paper draws.
///
/// # Errors
///
/// Infallible for valid descriptors; kept fallible for interface stability.
pub fn synthetic_weights(net_name: &str, desc: &LayerDesc, base_seed: u64) -> Result<Tensor> {
    let mut r = rng::seeded(layer_seed(net_name, desc.name(), base_seed));
    let mut w = rng::kaiming_tensor(&mut r, &desc.weight_shape(), fan_in(desc));
    let sparsity = natural_sparsity(net_name);
    if sparsity > 0.0 {
        // A share of the sparsity is *global channel pruning* — the same
        // input channels zeroed across every filter, as Network-Slimming
        // style training produces (removing a channel of the previous
        // layer's output removes it from all of this layer's filters).
        // This is what lets the accelerator skip whole input-activation
        // fetches (Section IV-A).
        if let LayerKind::Conv2d { in_channels, out_channels, kernel, .. } = *desc.kind() {
            let chan_frac = 0.4 * sparsity;
            prune_input_channels(&mut w, out_channels, in_channels, kernel, chan_frac);
        }
        // The full target at weight-vector granularity (already-zero
        // channel vectors sort first, so the channel share is subsumed):
        // the kernel width for CONV (matching the (C·R) × S reshape), the
        // FC reshape width S = 3 for FC-style layers.
        let group = match *desc.kind() {
            LayerKind::Conv2d { kernel, .. } => kernel,
            LayerKind::DepthwiseConv2d { kernel, .. } => kernel,
            LayerKind::Linear { .. } | LayerKind::SqueezeExcite { .. } => 3,
        }
        .min(w.len())
        .max(1);
        vector_prune_in_place(&mut w, sparsity, group);
    }
    Ok(w)
}

/// Zeros the `fraction` of input channels with the smallest aggregate norm
/// across all filters.
fn prune_input_channels(
    w: &mut Tensor,
    out_channels: usize,
    in_channels: usize,
    kernel: usize,
    fraction: f32,
) {
    let per_chan = kernel * kernel;
    let per_filter = in_channels * per_chan;
    let count = ((in_channels as f64) * f64::from(fraction)).round() as usize;
    if count == 0 {
        return;
    }
    let mut norms: Vec<(usize, f32)> = (0..in_channels)
        .map(|ci| {
            let mut s = 0.0f32;
            for fi in 0..out_channels {
                let base = fi * per_filter + ci * per_chan;
                s += w.data()[base..base + per_chan].iter().map(|&x| x * x).sum::<f32>();
            }
            (ci, s)
        })
        .collect();
    norms.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"));
    for &(ci, _) in norms.iter().take(count.min(in_channels)) {
        for fi in 0..out_channels {
            let base = fi * per_filter + ci * per_chan;
            w.data_mut()[base..base + per_chan].fill(0.0);
        }
    }
}

/// Zeros the smallest-norm `fraction` of length-`group` weight vectors
/// (consecutive along the last dimension), in place.
fn vector_prune_in_place(w: &mut Tensor, fraction: f32, group: usize) {
    let vectors = w.len() / group;
    let prune = ((vectors as f64) * f64::from(fraction)).round() as usize;
    if prune == 0 || vectors == 0 {
        return;
    }
    let mut norms: Vec<(usize, f32)> = (0..vectors)
        .map(|v| {
            let s: f32 = w.data()[v * group..(v + 1) * group].iter().map(|&x| x * x).sum();
            (v, s)
        })
        .collect();
    norms.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"));
    for &(v, _) in norms.iter().take(prune.min(vectors)) {
        w.data_mut()[v * group..(v + 1) * group].fill(0.0);
    }
}

/// Like [`synthetic_weights`] but with an explicit sparsity target instead
/// of the network's [`natural_sparsity`] — used by sweeps such as Fig. 14
/// that vary the sparsity of one model. The same 40% global-channel share
/// applies, so input-activation skipping scales with the sweep as in the
/// paper.
///
/// # Errors
///
/// Infallible for valid descriptors; kept fallible for interface stability.
pub fn synthetic_weights_with_sparsity(
    net_name: &str,
    desc: &LayerDesc,
    base_seed: u64,
    sparsity: f32,
) -> Result<Tensor> {
    let mut r = rng::seeded(layer_seed(net_name, desc.name(), base_seed));
    let mut w = rng::kaiming_tensor(&mut r, &desc.weight_shape(), fan_in(desc));
    let sparsity = sparsity.clamp(0.0, 1.0);
    if sparsity > 0.0 {
        if let LayerKind::Conv2d { in_channels, out_channels, kernel, .. } = *desc.kind() {
            prune_input_channels(&mut w, out_channels, in_channels, kernel, 0.4 * sparsity);
        }
        let group = match *desc.kind() {
            LayerKind::Conv2d { kernel, .. } => kernel,
            LayerKind::DepthwiseConv2d { kernel, .. } => kernel,
            LayerKind::Linear { .. } | LayerKind::SqueezeExcite { .. } => 3,
        }
        .min(w.len())
        .max(1);
        vector_prune_in_place(&mut w, sparsity, group);
    }
    Ok(w)
}

/// Generates weights for every layer of a network.
///
/// # Errors
///
/// See [`synthetic_weights`].
pub fn network_weights(net: &NetworkDesc, base_seed: u64) -> Result<Vec<(LayerDesc, Tensor)>> {
    net.layers()
        .iter()
        .map(|l| Ok((l.clone(), synthetic_weights(net.name(), l, base_seed)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn weights_match_descriptor_shapes() {
        let net = zoo::mlp2();
        for (desc, w) in network_weights(&net, 1).unwrap() {
            assert_eq!(w.shape(), desc.weight_shape().as_slice());
            assert_eq!(w.len() as u64, desc.params());
        }
    }

    #[test]
    fn weights_are_deterministic_and_layer_local() {
        let net = zoo::mlp2();
        let a = synthetic_weights(net.name(), &net.layers()[1], 7).unwrap();
        let b = synthetic_weights(net.name(), &net.layers()[1], 7).unwrap();
        assert_eq!(a, b);
        let c = synthetic_weights(net.name(), &net.layers()[1], 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn different_networks_differ() {
        let l = zoo::mlp2().layers()[0].clone();
        let a = synthetic_weights("MLP-2", &l, 0).unwrap();
        let b = synthetic_weights("other", &l, 0).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn natural_sparsity_applied() {
        let net = zoo::vgg19_cifar();
        let w = synthetic_weights(net.name(), &net.layers()[4], 0).unwrap();
        let sp = w.sparsity();
        assert!((sp - 0.93).abs() < 0.01, "sparsity {sp}");
        // Compact models stay dense (Table III: Spar. 0.00%).
        let mb = zoo::mobilenet_v2();
        let wd = synthetic_weights(mb.name(), &mb.layers()[1], 0).unwrap();
        assert!(wd.sparsity() < 0.05, "sparsity {}", wd.sparsity());
    }

    #[test]
    fn magnitudes_follow_fan_in() {
        let net = zoo::vgg19_cifar();
        let first = &net.layers()[0]; // fan_in 27
        let later = &net.layers()[10]; // fan_in 512*9
        let wf = synthetic_weights(net.name(), first, 0).unwrap();
        let wl = synthetic_weights(net.name(), later, 0).unwrap();
        let std =
            |t: &Tensor| (t.data().iter().map(|&x| x * x).sum::<f32>() / t.len() as f32).sqrt();
        assert!(std(&wf) > 3.0 * std(&wl), "{} vs {}", std(&wf), std(&wl));
    }
}
