//! Bit-pragmatic (MICRO'17): bit-level activation sparsity.
//!
//! Pragmatic replaces parallel multipliers with serial lanes that process
//! only the *essential* (non-zero) bits of each activation, with dense
//! 8-bit weights. Architecturally this is the same lane geometry as the
//! SmartExchange PE array (the equalised 8 K bit-serial lanes of Table V),
//! so the model *reuses the validated SmartExchange engine* configured
//! with: dense weights, plain essential bits (no 4-bit Booth encoder), no
//! index selector, and no rebuild engines. The engine's geometry-keyed
//! schedule cache comes along for free: repeated layer shapes build their
//! tiling skeleton once per run.

use se_hw::sim::SeAccelerator;
use se_hw::{Accelerator, HwError, LayerResult, Result, SeAcceleratorConfig};
use se_ir::{LayerTrace, WeightData};

/// The Bit-pragmatic baseline accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct BitPragmatic {
    engine: SeAccelerator,
}

impl BitPragmatic {
    /// Creates the accelerator with the equalised Table V lane budget.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid resources.
    pub fn new(base: SeAcceleratorConfig) -> Result<Self> {
        let cfg = SeAcceleratorConfig {
            bit_serial: true,
            booth_encoder: false,
            index_select: false,
            compact_dedicated: false,
            ..base
        };
        Ok(BitPragmatic { engine: SeAccelerator::new(cfg)? })
    }

    /// [`BitPragmatic::new`] with the underlying engine's schedule cache
    /// drawn from the process-wide config-keyed registry
    /// ([`SeAccelerator::with_shared_schedules`]): separately constructed
    /// instances with the same resource budget share one memo table. The
    /// registry key is the *derived* Pragmatic configuration, so the cache
    /// is never shared with a SmartExchange lane. Results are
    /// bit-identical to [`BitPragmatic::new`].
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid resources.
    pub fn with_shared_schedules(base: SeAcceleratorConfig) -> Result<Self> {
        let cfg = SeAcceleratorConfig {
            bit_serial: true,
            booth_encoder: false,
            index_select: false,
            compact_dedicated: false,
            ..base
        };
        Ok(BitPragmatic { engine: SeAccelerator::with_shared_schedules(cfg)? })
    }

    /// The underlying engine configuration.
    pub fn config(&self) -> &SeAcceleratorConfig {
        self.engine.config()
    }
}

impl Default for BitPragmatic {
    fn default() -> Self {
        BitPragmatic::new(SeAcceleratorConfig::default()).expect("static config is valid")
    }
}

impl Accelerator for BitPragmatic {
    fn name(&self) -> &str {
        "Bit-pragmatic"
    }

    fn dram_bytes_per_cycle(&self) -> f64 {
        self.engine.dram_bytes_per_cycle()
    }

    fn process_layer(&self, trace: &LayerTrace) -> Result<LayerResult> {
        if !matches!(trace.weights(), WeightData::Dense(_)) {
            return Err(HwError::UnsupportedTrace {
                reason: format!(
                    "Bit-pragmatic processes dense weights; layer {} is SE-compressed",
                    trace.desc().name()
                ),
            });
        }
        self.engine.process_layer(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ir::{LayerDesc, LayerKind, QuantTensor};
    use se_tensor::rng;

    fn trace(act_scale: f32, seed: u64) -> LayerTrace {
        let desc = LayerDesc::new(
            "c",
            LayerKind::Conv2d { in_channels: 4, out_channels: 8, kernel: 3, stride: 1, padding: 1 },
            (8, 8),
        );
        let mut r = rng::seeded(seed);
        let w = rng::kaiming_tensor(&mut r, &[8, 4, 3, 3], 36);
        let a = rng::normal_tensor(&mut r, &[4, 8, 8], 1.0).map(|v| v.abs() * act_scale);
        LayerTrace::new(
            desc,
            WeightData::Dense(QuantTensor::quantize(&w, 8).unwrap()),
            QuantTensor::quantize(&a, 8).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn shared_schedule_results_match_private_cache_results() {
        let t = trace(1.0, 9);
        let private = BitPragmatic::default().process_layer(&t).unwrap();
        let shared = BitPragmatic::with_shared_schedules(SeAcceleratorConfig::default()).unwrap();
        assert_eq!(shared.process_layer(&t).unwrap(), private);
        assert_eq!(shared.config(), BitPragmatic::default().config());
    }

    #[test]
    fn processes_dense_traces() {
        let r = BitPragmatic::default().process_layer(&trace(1.0, 1)).unwrap();
        assert!(r.compute_cycles > 0);
        assert_eq!(r.ops.rebuild_shift_adds, 0);
        assert_eq!(r.mem.dram_weight_bytes, 8 * 4 * 9);
    }

    #[test]
    fn dense_batch_accounting_amortizes_weight_fetch() {
        let bp = BitPragmatic::default();
        let t = trace(1.0, 4);
        let one = bp.process_layer(&t).unwrap();
        assert_eq!(bp.process_batch(&t, 1).unwrap(), one);
        let b = bp.process_batch(&t, 4).unwrap();
        assert_eq!(b.mem.dram_weight_bytes, one.mem.dram_weight_bytes);
        assert_eq!(b.mem.dram_input_bytes, 4 * one.mem.dram_input_bytes);
        assert_eq!(b.ops.pe_lane_cycles, 4 * one.ops.pe_lane_cycles);
    }

    #[test]
    fn rejects_se_traces() {
        let t = trace(1.0, 2);
        let desc = t.desc().clone();
        let cfg = se_core::SeConfig::default().with_max_iterations(3).unwrap();
        let mut r = rng::seeded(3);
        let w = rng::kaiming_tensor(&mut r, &[8, 4, 3, 3], 36);
        let parts = se_core::layer::compress_layer(&desc, &w, &cfg).unwrap();
        let se_t = LayerTrace::new(desc, WeightData::Se(parts), t.input().clone()).unwrap();
        assert!(BitPragmatic::default().process_layer(&se_t).is_err());
    }

    #[test]
    fn no_booth_encoder_costs_more_than_booth() {
        // The same dense trace through the SE engine with Booth enabled
        // must not be slower than Pragmatic's plain-bits lanes.
        let t = trace(1.0, 4);
        let prag = BitPragmatic::default().process_layer(&t).unwrap();
        let booth_cfg = SeAcceleratorConfig {
            index_select: false,
            compact_dedicated: false,
            ..SeAcceleratorConfig::default()
        };
        let booth = SeAccelerator::new(booth_cfg).unwrap().process_layer(&t).unwrap();
        assert!(booth.compute_cycles <= prag.compute_cycles);
    }
}
