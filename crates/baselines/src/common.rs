//! Shared baseline resources and trace statistics.
//!
//! The geometry-derived half of the per-layer statistics (MAC counts,
//! element volumes, tiling shapes) is identical for every layer sharing a
//! shape; each baseline accelerator memoizes it in a [`GeometryCache`]
//! keyed by [`ScheduleKey::for_geometry`], so ResNet-style networks that
//! repeat a geometry 18× per stage derive it once. The data-dependent half
//! (weight/activation non-zero counts) is recomputed per layer.

use std::sync::{Arc, OnceLock};

use se_hw::schedule::{ScheduleCache, ScheduleKey};
use se_hw::{HwError, Result};
use se_ir::{LayerDesc, LayerKind, LayerTrace, QuantTensor, WeightData};

/// Equalised baseline resources (Table V): the same total on-chip SRAM as
/// the SmartExchange accelerator and 1 K 8-bit multipliers.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineConfig {
    /// 8-bit multipliers (1024 for all non-bit-serial baselines).
    pub multipliers: usize,
    /// Total on-chip SRAM in bytes (772 KB, matching the SE configuration).
    pub sram_bytes: f64,
    /// Fraction of SRAM dedicated to input activations (drives refetch).
    pub input_share: f64,
    /// DRAM bandwidth in bytes per cycle.
    pub dram_bytes_per_cycle: f64,
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            multipliers: 1024,
            sram_bytes: 772.0 * 1024.0,
            input_share: 0.5,
            dram_bytes_per_cycle: 64.0,
            frequency_hz: 1e9,
        }
    }
}

impl BaselineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidConfig`] for non-positive resources.
    pub fn validate(&self) -> Result<()> {
        if self.multipliers == 0
            || self.sram_bytes <= 0.0
            || !(0.0..=1.0).contains(&self.input_share)
            || self.dram_bytes_per_cycle <= 0.0
            || self.frequency_hz <= 0.0
        {
            return Err(HwError::InvalidConfig {
                reason: "baseline resources must be positive".into(),
            });
        }
        Ok(())
    }

    /// DRAM input traffic with the shared refetch rule: one pass when the
    /// input fits its SRAM share, one pass per output tile otherwise.
    pub fn input_dram_bytes(&self, input_bytes: u64, output_tiles: u64) -> u64 {
        if (input_bytes as f64) <= self.sram_bytes * self.input_share {
            input_bytes
        } else {
            input_bytes * output_tiles.max(1)
        }
    }
}

/// The geometry-derived half of [`DenseLayerStats`]: a pure function of
/// the layer descriptor, cached per shape (see [`GeometryCache`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseGeometry {
    /// Output channels / neurons (`M`).
    pub m: usize,
    /// Input channels / features (`C`).
    pub c: usize,
    /// Kernel side (1 for FC).
    pub kernel: usize,
    /// Output spatial positions (`E × F`; 1 for FC).
    pub spatial_out: usize,
    /// Total MACs of the dense layer.
    pub macs: u64,
    /// Total input elements.
    pub inputs: u64,
    /// Total output elements.
    pub outputs: u64,
}

/// Per-accelerator memo table of [`DenseGeometry`] by layer shape.
pub type GeometryCache = ScheduleCache<DenseGeometry>;

/// The process-wide shared [`GeometryCache`] behind the baselines'
/// `with_shared_geometry` constructors.
///
/// [`DenseGeometry`] is a pure function of the layer *shape* alone — no
/// accelerator configuration enters it — so, unlike the SmartExchange
/// engine's config-keyed schedule registry
/// ([`se_hw::schedule::ScheduleRegistry`]), a single registry entry is
/// safe for every baseline design at once: cluster replicas, the
/// per-model engines of a serving sweep, and all four designs share one
/// memo table, building each distinct shape's geometry once per process.
/// Sharing is observationally transparent (hits and misses are
/// bit-identical); only cache-length diagnostics can observe it.
pub fn shared_geometry_cache() -> GeometryCache {
    static SHARED: OnceLock<GeometryCache> = OnceLock::new();
    SHARED.get_or_init(GeometryCache::default).clone()
}

// Residency note: every baseline charges its (dense, CSR-compressed, or
// nnz-packed) weight DRAM exactly once per image, so a run's per-image
// weight + index DRAM traffic (`se_hw::RunResult::weight_footprint_bytes`)
// doubles as the design's weight-buffer residency footprint — what a model
// switch re-fetches and what a buffer must hold to keep the model resident
// (see `se_hw::residency`). The dense counterpart of the SmartExchange
// lane's compressed footprint; the invariant is pinned by tests below and
// per design.

/// Computes the geometry statistics for one layer descriptor.
///
/// # Errors
///
/// Propagates invalid layer geometry.
pub fn dense_geometry(desc: &LayerDesc) -> Result<DenseGeometry> {
    let (m, c, kernel) = match *desc.kind() {
        LayerKind::Conv2d { in_channels, out_channels, kernel, .. } => {
            (out_channels, in_channels, kernel)
        }
        LayerKind::DepthwiseConv2d { channels, kernel, .. } => (channels, 1, kernel),
        LayerKind::Linear { in_features, out_features } => (out_features, in_features, 1),
        LayerKind::SqueezeExcite { channels, reduced } => (2 * reduced, channels, 1),
    };
    let (e, f) = desc.output_hw()?;
    let spatial_out = match desc.kind() {
        LayerKind::Linear { .. } => 1,
        _ => e * f,
    };
    Ok(DenseGeometry {
        m,
        c,
        kernel,
        spatial_out,
        macs: desc.macs()?,
        inputs: desc.input_elems(),
        outputs: desc.output_elems()?,
    })
}

/// Dense layer statistics every baseline consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayerStats {
    /// Output channels / neurons (`M`).
    pub m: usize,
    /// Input channels / features (`C`).
    pub c: usize,
    /// Kernel side (1 for FC).
    pub kernel: usize,
    /// Output spatial positions (`E × F`; 1 for FC).
    pub spatial_out: usize,
    /// Total MACs of the dense layer.
    pub macs: u64,
    /// Total weights.
    pub weights: u64,
    /// Non-zero weights.
    pub weight_nnz: u64,
    /// Non-zero weights per output filter.
    pub filter_nnz: Vec<u64>,
    /// Non-zero weights per input channel.
    pub channel_w_nnz: Vec<u64>,
    /// Non-zero activations per input channel.
    pub channel_a_nnz: Vec<u64>,
    /// Total input elements.
    pub inputs: u64,
    /// Total non-zero input elements.
    pub input_nnz: u64,
    /// Total output elements.
    pub outputs: u64,
}

/// Extracts dense statistics from a trace (baselines require
/// [`WeightData::Dense`]), deriving the geometry half fresh.
///
/// # Errors
///
/// Returns [`HwError::UnsupportedTrace`] for SE-form weights or
/// squeeze-excite layers presented to designs that cannot run them.
pub fn dense_stats(trace: &LayerTrace) -> Result<DenseLayerStats> {
    let geom = dense_geometry(trace.desc())?;
    dense_stats_from(&geom, trace)
}

/// [`dense_stats`] with the geometry half served from a per-accelerator
/// cache: repeated layer shapes compute it once.
///
/// # Errors
///
/// As [`dense_stats`].
pub fn dense_stats_cached(cache: &GeometryCache, trace: &LayerTrace) -> Result<DenseLayerStats> {
    let desc = trace.desc();
    let geom: Arc<DenseGeometry> =
        cache.get_or_try_build(ScheduleKey::for_geometry(desc), || dense_geometry(desc))?;
    dense_stats_from(&geom, trace)
}

/// Combines cached geometry with the trace's data-dependent non-zero
/// counts.
fn dense_stats_from(geom: &DenseGeometry, trace: &LayerTrace) -> Result<DenseLayerStats> {
    let WeightData::Dense(qw) = trace.weights() else {
        return Err(HwError::UnsupportedTrace {
            reason: format!(
                "baseline accelerators process dense weights; layer {} is SE-compressed",
                trace.desc().name()
            ),
        });
    };
    let desc = trace.desc();
    let DenseGeometry { m, c, kernel, spatial_out, macs, inputs, outputs } = *geom;
    let per_filter = qw.len() / m.max(1);
    let mut filter_nnz = Vec::with_capacity(m);
    for fi in 0..m {
        let nz =
            qw.data()[fi * per_filter..(fi + 1) * per_filter].iter().filter(|&&x| x != 0).count()
                as u64;
        filter_nnz.push(nz);
    }
    let weight_nnz = filter_nnz.iter().sum();

    // Per-input-channel weight non-zeros (conv layout (M, C, R, S)).
    let mut channel_w_nnz = vec![0u64; c];
    match desc.kind() {
        LayerKind::Conv2d { .. } => {
            let per_chan = kernel * kernel;
            for fi in 0..m {
                #[allow(clippy::needless_range_loop)]
                for ci in 0..c {
                    let base = fi * per_filter + ci * per_chan;
                    channel_w_nnz[ci] +=
                        qw.data()[base..base + per_chan].iter().filter(|&&x| x != 0).count() as u64;
                }
            }
        }
        _ => {
            // FC-style: column ci of the (M, C) matrix.
            for (i, &x) in qw.data().iter().enumerate() {
                if x != 0 {
                    let ci = i % per_filter.max(1);
                    if ci < c {
                        channel_w_nnz[ci] += 1;
                    }
                }
            }
        }
    }

    let channel_a_nnz = channel_activation_nnz(trace.input(), c);
    let input_nnz = channel_a_nnz.iter().sum();

    Ok(DenseLayerStats {
        m,
        c,
        kernel,
        spatial_out,
        macs,
        weights: qw.len() as u64,
        weight_nnz,
        filter_nnz,
        channel_w_nnz,
        channel_a_nnz,
        inputs,
        input_nnz,
        outputs,
    })
}

fn channel_activation_nnz(q: &QuantTensor, channels: usize) -> Vec<u64> {
    let per = q.len() / channels.max(1);
    (0..channels)
        .map(|ci| {
            let lo = ci * per;
            let hi = ((ci + 1) * per).min(q.len());
            q.data()[lo..hi].iter().filter(|&&x| x != 0).count() as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ir::LayerDesc;
    use se_tensor::Tensor;

    fn trace() -> LayerTrace {
        let desc = LayerDesc::new(
            "c",
            LayerKind::Conv2d { in_channels: 2, out_channels: 2, kernel: 3, stride: 1, padding: 1 },
            (4, 4),
        );
        let mut w = Tensor::zeros(&[2, 2, 3, 3]);
        // Filter 0: 3 non-zeros in channel 0; filter 1: 1 non-zero in channel 1.
        w.set(&[0, 0, 0, 0], 1.0);
        w.set(&[0, 0, 1, 1], -0.5);
        w.set(&[0, 0, 2, 2], 0.25);
        w.set(&[1, 1, 1, 1], 0.125);
        let qw = QuantTensor::quantize(&w, 8).unwrap();
        let mut a = Tensor::zeros(&[2, 4, 4]);
        a.set(&[0, 0, 0], 1.0);
        a.set(&[1, 2, 2], 1.0);
        a.set(&[1, 3, 3], 0.5);
        let qa = QuantTensor::quantize(&a, 8).unwrap();
        LayerTrace::new(desc, WeightData::Dense(qw), qa).unwrap()
    }

    #[test]
    fn cached_stats_match_uncached_and_build_once() {
        let cache = GeometryCache::default();
        let t = trace();
        let fresh = dense_stats(&t).unwrap();
        let cached = dense_stats_cached(&cache, &t).unwrap();
        assert_eq!(fresh, cached);
        assert_eq!(cache.len(), 1);
        // Same shape again (different name/data does not matter): no growth.
        let again = dense_stats_cached(&cache, &t).unwrap();
        assert_eq!(again, fresh);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shared_geometry_cache_is_one_process_wide_table() {
        // Other tests insert into the same process-wide table
        // concurrently, so only monotonic properties are asserted.
        let a = shared_geometry_cache();
        let t = trace();
        let fresh = dense_stats(&t).unwrap();
        assert_eq!(dense_stats_cached(&a, &t).unwrap(), fresh);
        // A separately fetched handle sees the same entries (a hit, bit-
        // identical) — the whole point of the shared registry.
        let b = shared_geometry_cache();
        assert_eq!(dense_stats_cached(&b, &t).unwrap(), fresh);
        assert!(!b.is_empty());
    }

    #[test]
    fn residency_footprint_is_the_per_image_weight_dram() {
        use se_hw::{LayerResult, MemCounters, OpCounters, RunResult};
        let layer = |w: u64, i: u64| LayerResult {
            name: "l".into(),
            compute_cycles: 1,
            dram_cycles: 1,
            total_cycles: 1,
            mem: MemCounters { dram_weight_bytes: w, dram_index_bytes: i, ..Default::default() },
            ops: OpCounters::default(),
        };
        let run = RunResult { layers: vec![layer(100, 7), layer(50, 3)] };
        assert_eq!(run.weight_footprint_bytes(), 160);
        // Batching charges the footprint once per batch, so the residency
        // footprint — what a switch must re-fetch — is batch-invariant.
        let batched = run.amortized_over_batch(8, 64.0);
        assert_eq!(batched.weight_footprint_bytes(), 160);
    }

    #[test]
    fn stats_count_nonzeros() {
        let s = dense_stats(&trace()).unwrap();
        assert_eq!(s.weight_nnz, 4);
        assert_eq!(s.filter_nnz, vec![3, 1]);
        assert_eq!(s.channel_w_nnz, vec![3, 1]);
        assert_eq!(s.channel_a_nnz, vec![1, 2]);
        assert_eq!(s.macs, 2 * 16 * 2 * 9);
        assert_eq!(s.spatial_out, 16);
    }

    #[test]
    fn refetch_rule() {
        let cfg = BaselineConfig::default();
        assert_eq!(cfg.input_dram_bytes(1000, 4), 1000);
        let big = (cfg.sram_bytes * cfg.input_share) as u64 + 1;
        assert_eq!(cfg.input_dram_bytes(big, 4), big * 4);
    }

    #[test]
    fn validation() {
        BaselineConfig::default().validate().unwrap();
        let c = BaselineConfig { multipliers: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = BaselineConfig { input_share: 2.0, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_se_traces() {
        use se_ir::{Po2Set, SeLayer, SeLayout, SeSlice};
        use se_tensor::Mat;
        let desc = LayerDesc::new(
            "c",
            LayerKind::Conv2d { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 },
            (4, 4),
        );
        let po2 = Po2Set::default();
        let sl = SeSlice::new(Mat::zeros(3, 3), Mat::identity(3), &po2).unwrap();
        let layer = SeLayer::new(
            SeLayout::ConvPerFilter {
                out_channels: 1,
                in_channels: 1,
                kernel: 3,
                slices_per_filter: 1,
            },
            po2,
            vec![sl],
        )
        .unwrap();
        let qa = QuantTensor::quantize(&Tensor::zeros(&[1, 4, 4]), 8).unwrap();
        let t = LayerTrace::new(desc, WeightData::Se(vec![layer]), qa).unwrap();
        assert!(dense_stats(&t).is_err());
    }
}
