//! DianNao (ASPLOS'14): the classical dense DNN accelerator baseline.
//!
//! Design considerations per Table IV: dense models, no sparsity support.
//! The NFU processes `Tn × Tn` neuron/synapse tiles; with the equalised 1 K
//! multipliers the layer's compute time is MAC-throughput-bound. All
//! weights and activations move at 8 bits; zeros are fetched and multiplied
//! like any other value — which is exactly why the sparsity-aware designs
//! (and SmartExchange) beat it.

use crate::common::{dense_stats_cached, BaselineConfig, GeometryCache};
use se_hw::{Accelerator, LayerResult, MemCounters, OpCounters, Result};
use se_ir::LayerTrace;

/// The DianNao baseline accelerator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DianNao {
    cfg: BaselineConfig,
    geometry: GeometryCache,
}

impl DianNao {
    /// Creates the accelerator.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid resources.
    pub fn new(cfg: BaselineConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(DianNao { cfg, geometry: GeometryCache::default() })
    }

    /// [`DianNao::new`] with the geometry cache drawn from the
    /// process-wide registry ([`crate::common::shared_geometry_cache`]):
    /// separately constructed instances — cluster replicas, one engine per
    /// model — share one memo table. Results are bit-identical to
    /// [`DianNao::new`].
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid resources.
    pub fn with_shared_geometry(cfg: BaselineConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(DianNao { cfg, geometry: crate::common::shared_geometry_cache() })
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.cfg
    }
}

impl Accelerator for DianNao {
    fn name(&self) -> &str {
        "DianNao"
    }

    fn dram_bytes_per_cycle(&self) -> f64 {
        self.cfg.dram_bytes_per_cycle
    }

    fn process_layer(&self, trace: &LayerTrace) -> Result<LayerResult> {
        let s = dense_stats_cached(&self.geometry, trace)?;
        let mults = self.cfg.multipliers as u64;
        let compute_cycles = s.macs.div_ceil(mults);

        let m_tiles = (s.m as u64).div_ceil(16); // Tn = 16 output-neuron tiles
        let dram_input = self.cfg.input_dram_bytes(s.inputs, m_tiles);
        let mem = MemCounters {
            dram_input_bytes: dram_input,
            dram_output_bytes: s.outputs,
            dram_weight_bytes: s.weights,
            dram_index_bytes: 0,
            input_gb_read_bytes: s.macs / 16, // NBin broadcast across Tn outputs
            input_gb_write_bytes: dram_input,
            output_gb_read_bytes: 0,
            output_gb_write_bytes: s.outputs,
            weight_gb_read_bytes: s.macs, // one synapse byte per MAC from SB
            weight_gb_write_bytes: s.weights,
            rf_bytes: 0,
        };
        let ops = OpCounters {
            pe_lane_cycles: 0,
            macs: s.macs,
            accumulator_adds: s.macs,
            rebuild_shift_adds: 0,
            index_compares: 0,
            idle_lane_cycles: (compute_cycles * mults).saturating_sub(s.macs),
        };
        let dram_cycles =
            (mem.dram_total_bytes() as f64 / self.cfg.dram_bytes_per_cycle).ceil() as u64;
        Ok(LayerResult {
            name: trace.desc().name().to_string(),
            compute_cycles,
            dram_cycles,
            total_cycles: compute_cycles.max(dram_cycles),
            mem,
            ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ir::{LayerDesc, LayerKind, QuantTensor, WeightData};
    use se_tensor::{rng, Tensor};

    fn trace(c: usize, m: usize, hw: usize, seed: u64) -> LayerTrace {
        let desc = LayerDesc::new(
            "c",
            LayerKind::Conv2d { in_channels: c, out_channels: m, kernel: 3, stride: 1, padding: 1 },
            (hw, hw),
        );
        let mut r = rng::seeded(seed);
        let w = rng::kaiming_tensor(&mut r, &[m, c, 3, 3], c * 9);
        let a = rng::normal_tensor(&mut r, &[c, hw, hw], 1.0).map(f32::abs);
        LayerTrace::new(
            desc,
            WeightData::Dense(QuantTensor::quantize(&w, 8).unwrap()),
            QuantTensor::quantize(&a, 8).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn shared_geometry_results_match_private_cache_results() {
        let t = trace(8, 16, 16, 3);
        let private = DianNao::default().process_layer(&t).unwrap();
        let shared = DianNao::with_shared_geometry(BaselineConfig::default()).unwrap();
        assert_eq!(shared.process_layer(&t).unwrap(), private);
        // A second shared instance hits the same table, bit-identically.
        let again = DianNao::with_shared_geometry(BaselineConfig::default()).unwrap();
        assert_eq!(again.process_layer(&t).unwrap(), private);
    }

    #[test]
    fn cycles_are_throughput_bound() {
        let t = trace(8, 16, 16, 1);
        let d = DianNao::default();
        let r = d.process_layer(&t).unwrap();
        let macs = t.desc().macs().unwrap();
        assert_eq!(r.compute_cycles, macs.div_ceil(1024));
        assert_eq!(r.ops.macs, macs);
    }

    #[test]
    fn dense_weights_fully_fetched() {
        let t = trace(4, 8, 8, 2);
        let r = DianNao::default().process_layer(&t).unwrap();
        assert_eq!(r.mem.dram_weight_bytes, 8 * 4 * 9);
        assert_eq!(r.mem.dram_index_bytes, 0);
    }

    #[test]
    fn dense_batch_accounting_amortizes_weight_fetch() {
        let t = trace(8, 16, 16, 4);
        let d = DianNao::default();
        let one = d.process_layer(&t).unwrap();
        assert_eq!(d.process_batch(&t, 1).unwrap(), one);
        let b = d.process_batch(&t, 8).unwrap();
        // Dense weights fetched once per batch; activations per image.
        assert_eq!(b.mem.dram_weight_bytes, one.mem.dram_weight_bytes);
        assert_eq!(b.mem.dram_input_bytes, 8 * one.mem.dram_input_bytes);
        assert_eq!(b.ops.macs, 8 * one.ops.macs);
        assert_eq!(b.compute_cycles, 8 * one.compute_cycles);
        assert!(b.mem.dram_total_bytes() < 8 * one.mem.dram_total_bytes());
    }

    #[test]
    fn sparsity_does_not_help_diannao() {
        // Same geometry, one trace with many zero weights: identical cycles.
        let t_dense = trace(4, 8, 8, 3);
        let desc = t_dense.desc().clone();
        let zeros = Tensor::zeros(&[8, 4, 3, 3]);
        let t_zero = LayerTrace::new(
            desc,
            WeightData::Dense(QuantTensor::quantize(&zeros, 8).unwrap()),
            t_dense.input().clone(),
        )
        .unwrap();
        let d = DianNao::default();
        assert_eq!(
            d.process_layer(&t_dense).unwrap().compute_cycles,
            d.process_layer(&t_zero).unwrap().compute_cycles
        );
    }
}
