//! Baseline DNN accelerator models: DianNao, SCNN, Cambricon-X, and
//! Bit-pragmatic, on the shared SmartExchange substrate.
//!
//! The paper benchmarks its accelerator against these four designs
//! (Table IV), re-implemented as in-house simulators with **equalised
//! resources** (Table V): the same total on-chip SRAM and the same compute
//! budget (1 K 8-bit multipliers, or the equivalent 8 K bit-serial lanes).
//! This crate mirrors that methodology:
//!
//! | design | exploits | model |
//! |---|---|---|
//! | [`DianNao`] | nothing (dense) | MAC-throughput-bound NFU |
//! | [`CambriconX`] | unstructured weight sparsity | per-PE non-zero-weight scheduling with lockstep imbalance |
//! | [`Scnn`] | unstructured weight + activation sparsity | per-channel non-zero cartesian products with crossbar contention |
//! | [`BitPragmatic`] | bit-level activation sparsity | the shared bit-serial lane engine with plain essential bits |
//!
//! All four consume the *dense-weight* traces (`WeightData::Dense`) built
//! from exactly the same tensors as the SmartExchange traces, and produce
//! the same [`se_hw::LayerResult`] currency, so energy/latency comparisons
//! are apples-to-apples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cambricon;
pub mod common;
mod diannao;
mod pragmatic;
mod scnn;

pub use cambricon::CambriconX;
pub use common::BaselineConfig;
pub use diannao::DianNao;
pub use pragmatic::BitPragmatic;
pub use scnn::Scnn;

/// Result alias re-used from the hardware crate.
pub type Result<T> = se_hw::Result<T>;
