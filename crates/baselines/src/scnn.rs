//! SCNN (ISCA'17): unstructured weight sparsity + activation sparsity.
//!
//! SCNN's PT-IS-CP dataflow multiplies every non-zero weight by every
//! non-zero activation of the same input channel (all such cartesian
//! products contribute to some output in a convolution), scattering partial
//! products through a crossbar into accumulator banks. Both weights and
//! activations travel compressed. Bank conflicts in the crossbar cost a
//! calibrated contention factor (the original paper reports sustained
//! utilisation well below peak; we use 1.25).
//!
//! Per the paper's protocol, SCNN does not process FC or squeeze-excite
//! layers (it is a CONV-only design), and those traces are rejected.

use crate::common::{dense_stats_cached, BaselineConfig, GeometryCache};
use se_hw::{Accelerator, HwError, LayerResult, MemCounters, OpCounters, Result};
use se_ir::{LayerKind, LayerTrace};

/// Crossbar/accumulator-bank contention factor (calibrated constant).
const CONTENTION: f64 = 1.25;

/// The SCNN baseline accelerator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scnn {
    cfg: BaselineConfig,
    geometry: GeometryCache,
}

impl Scnn {
    /// Creates the accelerator.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid resources.
    pub fn new(cfg: BaselineConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Scnn { cfg, geometry: GeometryCache::default() })
    }

    /// [`Scnn::new`] with the geometry cache drawn from the process-wide
    /// registry ([`crate::common::shared_geometry_cache`]): separately
    /// constructed instances share one memo table. Results are
    /// bit-identical to [`Scnn::new`].
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid resources.
    pub fn with_shared_geometry(cfg: BaselineConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(Scnn { cfg, geometry: crate::common::shared_geometry_cache() })
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.cfg
    }
}

impl Accelerator for Scnn {
    fn name(&self) -> &str {
        "SCNN"
    }

    fn dram_bytes_per_cycle(&self) -> f64 {
        self.cfg.dram_bytes_per_cycle
    }

    fn process_layer(&self, trace: &LayerTrace) -> Result<LayerResult> {
        match trace.desc().kind() {
            LayerKind::Linear { .. } | LayerKind::SqueezeExcite { .. } => {
                return Err(HwError::UnsupportedTrace {
                    reason: format!(
                        "SCNN is designed for CONV layers; layer {} is {:?}",
                        trace.desc().name(),
                        trace.desc().kind()
                    ),
                });
            }
            LayerKind::Conv2d { .. } | LayerKind::DepthwiseConv2d { .. } => {}
        }
        let s = dense_stats_cached(&self.geometry, trace)?;

        // Useful multiplications: per input channel, every non-zero weight
        // pairs with every non-zero activation of that channel.
        let mut products: u64 = 0;
        for ci in 0..s.c {
            // Depth-wise layers pair channel c's kernel with channel c's map.
            let w_nnz = if s.c == 1 && s.channel_w_nnz.len() == 1 {
                s.channel_w_nnz[0]
            } else {
                s.channel_w_nnz[ci]
            };
            products += w_nnz * s.channel_a_nnz[ci.min(s.channel_a_nnz.len() - 1)];
        }

        let mults = self.cfg.multipliers as u64;
        let compute_cycles = ((products as f64 * CONTENTION) / mults as f64).ceil() as u64;

        // Compressed tensors: 8-bit value + 4-bit coordinate per non-zero.
        let weight_bytes = s.weight_nnz + (s.weight_nnz * 4).div_ceil(8);
        let act_bytes = s.input_nnz + (s.input_nnz * 4).div_ceil(8);
        let dram_input = self.cfg.input_dram_bytes(act_bytes, 1);
        let mem = MemCounters {
            dram_input_bytes: dram_input,
            dram_output_bytes: s.outputs,
            dram_weight_bytes: s.weight_nnz,
            dram_index_bytes: (s.weight_nnz * 4).div_ceil(8),
            input_gb_read_bytes: products / 4, // input reuse across the 4x4 mult array
            input_gb_write_bytes: dram_input,
            // Every partial product crosses the crossbar into an
            // accumulator bank (read-modify-write) — SCNN's structural
            // overhead for output-space scattering.
            output_gb_read_bytes: products,
            output_gb_write_bytes: products + s.outputs,
            weight_gb_read_bytes: products / 4,
            weight_gb_write_bytes: weight_bytes,
            rf_bytes: 0,
        };
        let ops = OpCounters {
            pe_lane_cycles: 0,
            macs: products,
            accumulator_adds: products,
            rebuild_shift_adds: 0,
            index_compares: s.weight_nnz + s.input_nnz, // coordinate decode
            idle_lane_cycles: (compute_cycles * mults).saturating_sub(products),
        };
        let dram_cycles =
            (mem.dram_total_bytes() as f64 / self.cfg.dram_bytes_per_cycle).ceil() as u64;
        Ok(LayerResult {
            name: trace.desc().name().to_string(),
            compute_cycles,
            dram_cycles,
            total_cycles: compute_cycles.max(dram_cycles),
            mem,
            ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ir::{LayerDesc, QuantTensor, WeightData};
    use se_tensor::{rng, Tensor};

    fn trace(w_keep: f32, a_keep: f32, seed: u64) -> LayerTrace {
        let desc = LayerDesc::new(
            "c",
            LayerKind::Conv2d { in_channels: 4, out_channels: 8, kernel: 3, stride: 1, padding: 1 },
            (8, 8),
        );
        let mut r = rng::seeded(seed);
        let w = rng::kaiming_tensor(&mut r, &[8, 4, 3, 3], 36).map(|v| {
            if v.abs() < (1.0 - w_keep) * 0.2 {
                0.0
            } else {
                v
            }
        });
        let a = rng::normal_tensor(&mut r, &[4, 8, 8], 1.0).map(|v| {
            if v < (1.0 - a_keep) {
                0.0
            } else {
                v
            }
        });
        LayerTrace::new(
            desc,
            WeightData::Dense(QuantTensor::quantize(&w, 8).unwrap()),
            QuantTensor::quantize(&a, 8).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn both_sparsities_reduce_cycles() {
        let scnn = Scnn::default();
        let dense = scnn.process_layer(&trace(1.0, 1.0, 1)).unwrap();
        let w_sparse = scnn.process_layer(&trace(0.3, 1.0, 1)).unwrap();
        let both = scnn.process_layer(&trace(0.3, 0.4, 1)).unwrap();
        assert!(w_sparse.compute_cycles < dense.compute_cycles);
        assert!(both.compute_cycles < w_sparse.compute_cycles);
    }

    #[test]
    fn activations_travel_compressed() {
        let scnn = Scnn::default();
        let dense = scnn.process_layer(&trace(1.0, 1.0, 2)).unwrap();
        let sparse = scnn.process_layer(&trace(1.0, 0.3, 2)).unwrap();
        assert!(sparse.mem.dram_input_bytes < dense.mem.dram_input_bytes);
    }

    #[test]
    fn dense_batch_accounting_amortizes_weight_fetch() {
        let scnn = Scnn::default();
        let t = trace(0.6, 0.5, 3);
        let one = scnn.process_layer(&t).unwrap();
        assert_eq!(scnn.process_batch(&t, 1).unwrap(), one);
        let b = scnn.process_batch(&t, 4).unwrap();
        // Compressed weights and their coordinates fetched once per batch.
        assert_eq!(b.mem.dram_weight_bytes, one.mem.dram_weight_bytes);
        assert_eq!(b.mem.dram_index_bytes, one.mem.dram_index_bytes);
        assert_eq!(b.mem.dram_input_bytes, 4 * one.mem.dram_input_bytes);
        assert_eq!(b.ops.macs, 4 * one.ops.macs);
    }

    #[test]
    fn fc_layers_rejected() {
        let desc =
            LayerDesc::new("fc", LayerKind::Linear { in_features: 8, out_features: 4 }, (1, 1));
        let t = LayerTrace::new(
            desc,
            WeightData::Dense(QuantTensor::quantize(&Tensor::zeros(&[4, 8]), 8).unwrap()),
            QuantTensor::quantize(&Tensor::full(&[8], 1.0), 8).unwrap(),
        )
        .unwrap();
        assert!(matches!(Scnn::default().process_layer(&t), Err(HwError::UnsupportedTrace { .. })));
    }
}
