//! Cambricon-X (MICRO'16): unstructured weight sparsity.
//!
//! 16 PEs each hold one output filter's non-zero weights and an indexing
//! unit that selects the matching activations; PEs run in lockstep per
//! output position, so the step time is governed by the PE with the most
//! non-zeros — the load imbalance that unstructured sparsity causes and
//! that the paper's *vector-wise* sparsity avoids. Weights travel
//! compressed (8-bit value + 4-bit step index); activations travel dense
//! and are selected on chip.

use crate::common::{dense_stats_cached, BaselineConfig, GeometryCache};
use se_hw::{Accelerator, LayerResult, MemCounters, OpCounters, Result};
use se_ir::LayerTrace;

/// Per-PE multiplier lanes in the original design.
const LANES_PER_PE: u64 = 16;
/// Parallel PEs (16 PEs × 16 lanes × 4 replicas = the equalised 1 K lanes).
const PES: u64 = 16;
/// Replication factor to reach the equalised multiplier budget.
const REPLICAS: u64 = 4;

/// The Cambricon-X baseline accelerator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CambriconX {
    cfg: BaselineConfig,
    geometry: GeometryCache,
}

impl CambriconX {
    /// Creates the accelerator.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid resources.
    pub fn new(cfg: BaselineConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(CambriconX { cfg, geometry: GeometryCache::default() })
    }

    /// [`CambriconX::new`] with the geometry cache drawn from the
    /// process-wide registry ([`crate::common::shared_geometry_cache`]):
    /// separately constructed instances share one memo table. Results are
    /// bit-identical to [`CambriconX::new`].
    ///
    /// # Errors
    ///
    /// Returns a configuration error for invalid resources.
    pub fn with_shared_geometry(cfg: BaselineConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(CambriconX { cfg, geometry: crate::common::shared_geometry_cache() })
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.cfg
    }
}

impl Accelerator for CambriconX {
    fn name(&self) -> &str {
        "Cambricon-X"
    }

    fn dram_bytes_per_cycle(&self) -> f64 {
        self.cfg.dram_bytes_per_cycle
    }

    fn process_layer(&self, trace: &LayerTrace) -> Result<LayerResult> {
        let s = dense_stats_cached(&self.geometry, trace)?;

        // Filters are distributed over PES×REPLICAS parallel filter slots;
        // each slot processes its filter's non-zeros at LANES_PER_PE per
        // cycle, lockstepped per output position within a PE group. Narrow
        // layers fold the spare slots across output positions.
        let slots = PES * REPLICAS;
        let spatial_fold = (slots / (s.m as u64).max(1)).max(1);
        let mut compute_cycles = 0u64;
        for group in s.filter_nnz.chunks(slots as usize) {
            let worst = group.iter().copied().max().unwrap_or(0);
            compute_cycles +=
                worst.div_ceil(LANES_PER_PE) * (s.spatial_out as u64).div_ceil(spatial_fold);
        }

        // Compressed weights: 8-bit value + 4-bit step index per non-zero.
        let weight_bytes = s.weight_nnz;
        let index_bytes = (s.weight_nnz * 4).div_ceil(8);
        let m_tiles = (s.m as u64).div_ceil(slots);
        let dram_input = self.cfg.input_dram_bytes(s.inputs, m_tiles);

        let effective_macs: u64 = s.weight_nnz * s.spatial_out as u64;
        let mem = MemCounters {
            dram_input_bytes: dram_input,
            dram_output_bytes: s.outputs,
            dram_weight_bytes: weight_bytes,
            dram_index_bytes: index_bytes,
            input_gb_read_bytes: effective_macs / LANES_PER_PE,
            input_gb_write_bytes: dram_input,
            output_gb_read_bytes: 0,
            output_gb_write_bytes: s.outputs,
            weight_gb_read_bytes: effective_macs + index_bytes,
            weight_gb_write_bytes: weight_bytes + index_bytes,
            rf_bytes: 0,
        };
        let lanes = self.cfg.multipliers as u64;
        let ops = OpCounters {
            pe_lane_cycles: 0,
            macs: effective_macs,
            accumulator_adds: effective_macs,
            rebuild_shift_adds: 0,
            // The indexing unit examines every weight position once per
            // output position to steer activations.
            index_compares: s.weights * s.spatial_out as u64 / LANES_PER_PE.max(1),
            idle_lane_cycles: (compute_cycles * lanes).saturating_sub(effective_macs),
        };
        let dram_cycles =
            (mem.dram_total_bytes() as f64 / self.cfg.dram_bytes_per_cycle).ceil() as u64;
        Ok(LayerResult {
            name: trace.desc().name().to_string(),
            compute_cycles,
            dram_cycles,
            total_cycles: compute_cycles.max(dram_cycles),
            mem,
            ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ir::{LayerDesc, LayerKind, QuantTensor, WeightData};
    use se_tensor::{rng, Tensor};

    fn trace_with_sparsity(keep: f32, seed: u64) -> LayerTrace {
        let desc = LayerDesc::new(
            "c",
            LayerKind::Conv2d {
                in_channels: 8,
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            (8, 8),
        );
        let mut r = rng::seeded(seed);
        let mut w = rng::kaiming_tensor(&mut r, &[16, 8, 3, 3], 72);
        // Magnitude-prune to the requested density.
        let n = w.len();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| w.data()[a].abs().partial_cmp(&w.data()[b].abs()).unwrap());
        for &i in idx.iter().take(((1.0 - keep) * n as f32) as usize) {
            w.data_mut()[i] = 0.0;
        }
        let a = rng::normal_tensor(&mut r, &[8, 8, 8], 1.0).map(f32::abs);
        LayerTrace::new(
            desc,
            WeightData::Dense(QuantTensor::quantize(&w, 8).unwrap()),
            QuantTensor::quantize(&a, 8).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn weight_sparsity_cuts_cycles_and_traffic() {
        let cx = CambriconX::default();
        let dense = cx.process_layer(&trace_with_sparsity(1.0, 1)).unwrap();
        let sparse = cx.process_layer(&trace_with_sparsity(0.25, 1)).unwrap();
        assert!(sparse.compute_cycles < dense.compute_cycles);
        assert!(sparse.mem.dram_weight_bytes < dense.mem.dram_weight_bytes);
        assert!(sparse.mem.dram_index_bytes > 0);
    }

    #[test]
    fn dense_batch_accounting_amortizes_weight_fetch() {
        let cx = CambriconX::default();
        let t = trace_with_sparsity(0.5, 2);
        let one = cx.process_layer(&t).unwrap();
        assert_eq!(cx.process_batch(&t, 1).unwrap(), one);
        let b = cx.process_batch(&t, 4).unwrap();
        assert_eq!(b.mem.dram_weight_bytes, one.mem.dram_weight_bytes);
        assert_eq!(b.mem.dram_index_bytes, one.mem.dram_index_bytes);
        assert_eq!(b.mem.dram_input_bytes, 4 * one.mem.dram_input_bytes);
        assert_eq!(b.compute_cycles, 4 * one.compute_cycles);
    }

    #[test]
    fn lockstep_imbalance_costs_cycles() {
        // One filter dense, the rest empty: the worst PE dominates.
        let desc = LayerDesc::new(
            "c",
            LayerKind::Conv2d { in_channels: 2, out_channels: 4, kernel: 3, stride: 1, padding: 1 },
            (4, 4),
        );
        let mut w = Tensor::zeros(&[4, 2, 3, 3]);
        for i in 0..18 {
            w.data_mut()[i] = 1.0; // filter 0 fully dense
        }
        let a = Tensor::full(&[2, 4, 4], 1.0);
        let t = LayerTrace::new(
            desc,
            WeightData::Dense(QuantTensor::quantize(&w, 8).unwrap()),
            QuantTensor::quantize(&a, 8).unwrap(),
        )
        .unwrap();
        let r = CambriconX::default().process_layer(&t).unwrap();
        // 18 nnz in the worst filter -> ceil(18/16) = 2 cycles per output
        // position; 4 filters over 64 slots fold the 16 positions 16-way.
        assert_eq!(r.compute_cycles, 2);
    }

    #[test]
    fn zero_weight_layer_is_free_compute() {
        let desc = LayerDesc::new(
            "c",
            LayerKind::Conv2d { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 },
            (4, 4),
        );
        let t = LayerTrace::new(
            desc,
            WeightData::Dense(QuantTensor::quantize(&Tensor::zeros(&[1, 1, 3, 3]), 8).unwrap()),
            QuantTensor::quantize(&Tensor::full(&[1, 4, 4], 1.0), 8).unwrap(),
        )
        .unwrap();
        let r = CambriconX::default().process_layer(&t).unwrap();
        assert_eq!(r.compute_cycles, 0);
        assert_eq!(r.mem.dram_weight_bytes, 0);
    }
}
