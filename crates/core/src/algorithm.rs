//! The SmartExchange decomposition algorithm (Algorithm 1 of the paper).
//!
//! Given a weight matrix `W ∈ R^{m×n}`, find `Ce ∈ R^{m×r}` and
//! `B ∈ R^{r×n}` (with `r = n` here, as in the paper's practice) such that
//! `W ≈ Ce·B`, every non-zero of `Ce` is `±2^p`, and `Ce` is vector-wise
//! sparse. The solver alternates:
//!
//! 1. **Quantize** — normalise each `Ce` column to unit norm (folding the
//!    scale into `B` to avoid scale ambiguity), then round every non-zero to
//!    the nearest power of two; `δ(Ce)` is the quantization difference.
//! 2. **Fit** — solve the two unconstrained least-squares problems
//!    `B ← argmin‖W − CeB‖` then `Ce ← argmin‖W − CeB‖`.
//! 3. **Sparsify** — zero small `Ce` rows (vector-wise), keeping any
//!    channel-pruned rows at zero.
//!
//! After the loop, `Ce` is re-quantized and `B` re-fitted (and optionally
//! quantized to its 8-bit stored form).

use crate::{sparsify, CoreError, Result, SeConfig};
use se_ir::{Po2Set, SeSlice};
use se_tensor::{linalg, Mat};

/// The result of decomposing one matrix: `W ≈ ce · basis`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Coefficient matrix (`m × r`); every entry is in the configured
    /// power-of-2 set.
    pub ce: Mat,
    /// Basis matrix (`r × n`).
    pub basis: Mat,
}

impl Decomposition {
    /// Rebuilds the approximated weight matrix `Ce · B`.
    ///
    /// # Errors
    ///
    /// Returns a tensor error only if the factors were mutated into
    /// incompatible shapes after construction.
    pub fn reconstruct(&self) -> Result<Mat> {
        Ok(self.ce.matmul(&self.basis)?)
    }

    /// Relative Frobenius reconstruction error `‖W − CeB‖_F / ‖W‖_F`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tensor`] on shape mismatch with `w`.
    pub fn reconstruction_error(&self, w: &Mat) -> Result<f32> {
        let recon = self.reconstruct()?;
        let diff = w.sub(&recon)?.frobenius_norm();
        let denom = w.frobenius_norm();
        Ok(if denom > 0.0 { diff / denom } else { diff })
    }

    /// Converts into the interchange [`SeSlice`] format, validating the
    /// power-of-2 invariant against `po2`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ir`] if any coefficient is not representable —
    /// which indicates the decomposition was produced with a different
    /// alphabet.
    pub fn into_se_slice(self, po2: &Po2Set) -> Result<SeSlice> {
        Ok(SeSlice::new(self.ce, self.basis, po2)?)
    }
}

/// One iteration's measurements (the series plotted in Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// 1-based iteration index.
    pub iteration: usize,
    /// `‖W − CeB‖_F / ‖W‖_F` at the end of the iteration.
    pub recon_error: f32,
    /// Element-wise sparsity of `Ce` in `[0, 1]`.
    pub ce_sparsity: f32,
    /// Vector-wise (row) sparsity of `Ce` in `[0, 1]`.
    pub ce_row_sparsity: f32,
    /// `‖B − I‖_F / ‖I‖_F` — how far the basis has moved from its identity
    /// initialisation.
    pub basis_identity_dist: f32,
    /// Quantization difference `‖δ(Ce)‖_F` measured in Step 1.
    pub quant_delta: f32,
}

/// The full per-iteration evolution of a decomposition run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecompositionTrace {
    /// Records in iteration order.
    pub records: Vec<IterationRecord>,
}

/// Decomposes `w` with the given configuration.
///
/// Channel pruning (if enabled in `cfg`) groups rows in `w.cols()`-sized
/// groups, which is correct for the CONV reshape where each input channel
/// contributes `R = S = n` consecutive rows; use
/// [`decompose_with_channel_mask`] to supply an explicit mask instead.
///
/// # Errors
///
/// Returns [`CoreError::InvalidWeights`] for empty or non-finite inputs and
/// propagates linear-algebra failures.
pub fn decompose(w: &Mat, cfg: &SeConfig) -> Result<Decomposition> {
    Ok(decompose_traced(w, cfg)?.0)
}

/// Like [`decompose`], also returning the per-iteration trace (Fig. 9).
///
/// # Errors
///
/// See [`decompose`].
pub fn decompose_traced(w: &Mat, cfg: &SeConfig) -> Result<(Decomposition, DecompositionTrace)> {
    let mask = cfg.channel_prune_threshold().map(|t| {
        let group = w.cols().max(1);
        sparsify::channel_mask(w, group, t)
    });
    decompose_with_channel_mask(w, cfg, mask.as_deref())
}

/// Decomposes `w` with an explicit channel keep-mask (`None` disables
/// channel pruning). The mask has one flag per group of `w.cols()`
/// consecutive rows.
///
/// # Errors
///
/// Returns [`CoreError::InvalidWeights`] for empty/non-finite inputs and
/// propagates linear-algebra failures.
pub fn decompose_with_channel_mask(
    w: &Mat,
    cfg: &SeConfig,
    channel_mask: Option<&[bool]>,
) -> Result<(Decomposition, DecompositionTrace)> {
    validate_weights(w)?;
    let n = w.cols();
    let mut ce = w.clone();
    let mut basis = Mat::identity(n);
    let identity_norm = (n as f32).sqrt();

    // Channel-wise sparsification happens once, up front (Algorithm 1,
    // line 1): the paper observes the pruned channel structure does not
    // change over iterations.
    if let Some(mask) = channel_mask {
        sparsify::apply_channel_mask(&mut ce, mask, n);
    }
    let forced_zero = forced_zero_rows(&ce, channel_mask, n);

    let mut trace = DecompositionTrace::default();
    for iteration in 1..=cfg.max_iterations() {
        // Step 1: quantize Ce to powers of 2 (on unit-norm columns).
        normalize_columns(&mut ce, &mut basis);
        let delta = quantize_in_place(&mut ce, cfg.po2());

        // Record the *quantized* state (the solution the hardware would
        // use if we stopped here) — this is the series Fig. 9 plots; the
        // subsequent unconstrained refit is exact for full-rank bases and
        // would always read as zero error.
        trace.records.push(IterationRecord {
            iteration,
            recon_error: relative_error(w, &ce, &basis)?,
            ce_sparsity: ce.sparsity(),
            ce_row_sparsity: ce.zero_rows() as f32 / ce.rows() as f32,
            basis_identity_dist: basis.sub(&Mat::identity(n))?.frobenius_norm() / identity_norm,
            quant_delta: delta,
        });

        // Step 2: fit B, then fit Ce (two unconstrained least squares).
        basis = fit_basis(&ce, w, cfg.ridge())?;
        ce = fit_coefficients(w, &basis, cfg.ridge())?;
        apply_forced_zeros(&mut ce, &forced_zero);

        // Step 3: vector-wise sparsify Ce.
        sparsify::vector_sparsify(&mut ce, cfg.vector_sparsity());

        if delta <= cfg.tol() {
            break;
        }
    }

    // Conclude: re-quantize Ce and re-fit B (Algorithm 1, line 8).
    normalize_columns(&mut ce, &mut basis);
    quantize_in_place(&mut ce, cfg.po2());
    apply_forced_zeros(&mut ce, &forced_zero);
    basis = fit_basis(&ce, w, cfg.ridge())?;
    if cfg.quantize_basis() {
        quantize_basis_8bit(&mut basis);
    }

    Ok((Decomposition { ce, basis }, trace))
}

/// Quantized coefficient matrices routinely develop linearly dependent
/// columns (identical power-of-2 patterns), so the least-squares fits retry
/// with escalating ridge regularisation rather than failing.
pub(crate) fn fit_basis(ce: &Mat, w: &Mat, ridge: f32) -> Result<Mat> {
    let mut r = ridge.max(1e-9);
    for _ in 0..6 {
        match linalg::lstsq_left(ce, w, r) {
            Ok(b) => return Ok(b),
            Err(se_tensor::TensorError::Singular) => r *= 100.0,
            Err(e) => return Err(e.into()),
        }
    }
    Err(CoreError::Tensor(se_tensor::TensorError::Singular))
}

/// See [`fit_basis`]; the same escalation for the coefficient fit.
fn fit_coefficients(w: &Mat, basis: &Mat, ridge: f32) -> Result<Mat> {
    let mut r = ridge.max(1e-9);
    for _ in 0..6 {
        match linalg::lstsq_right(w, basis, r) {
            Ok(c) => return Ok(c),
            Err(se_tensor::TensorError::Singular) => r *= 100.0,
            Err(e) => return Err(e.into()),
        }
    }
    Err(CoreError::Tensor(se_tensor::TensorError::Singular))
}

fn validate_weights(w: &Mat) -> Result<()> {
    if w.is_empty() {
        return Err(CoreError::InvalidWeights { reason: "weight matrix is empty".into() });
    }
    if w.data().iter().any(|x| !x.is_finite()) {
        return Err(CoreError::InvalidWeights {
            reason: "weight matrix contains non-finite values".into(),
        });
    }
    Ok(())
}

/// Rows forced to zero by channel pruning; vector sparsity is recomputed
/// every iteration, but channel-pruned rows must stay zero through refits.
fn forced_zero_rows(ce: &Mat, mask: Option<&[bool]>, group: usize) -> Vec<bool> {
    let mut forced = vec![false; ce.rows()];
    if let Some(mask) = mask {
        if group > 0 && mask.len() * group == ce.rows() {
            for (c, &keep) in mask.iter().enumerate() {
                if !keep {
                    for f in &mut forced[c * group..(c + 1) * group] {
                        *f = true;
                    }
                }
            }
        }
    }
    forced
}

fn apply_forced_zeros(ce: &mut Mat, forced: &[bool]) {
    for (i, &z) in forced.iter().enumerate() {
        if z {
            ce.row_mut(i).fill(0.0);
        }
    }
}

/// Normalises each column of `ce` to unit L2 norm, folding the scale into
/// the corresponding row of `basis` so `ce · basis` is unchanged.
fn normalize_columns(ce: &mut Mat, basis: &mut Mat) {
    let (rows, cols) = (ce.rows(), ce.cols());
    for j in 0..cols {
        let norm = (0..rows)
            .map(|i| {
                let v = ce.get(i, j) as f64;
                v * v
            })
            .sum::<f64>()
            .sqrt() as f32;
        if norm <= f32::MIN_POSITIVE {
            continue; // fully-pruned column: leave as is
        }
        let inv = 1.0 / norm;
        for i in 0..rows {
            let v = ce.get(i, j) * inv;
            ce.set(i, j, v);
        }
        for k in 0..basis.cols() {
            let v = basis.get(j, k) * norm;
            basis.set(j, k, v);
        }
    }
}

/// Rounds every entry of `ce` to the nearest element of `po2`, returning the
/// Frobenius norm of the change (`‖δ(Ce)‖`).
fn quantize_in_place(ce: &mut Mat, po2: &Po2Set) -> f32 {
    let mut delta_sq = 0.0f64;
    for v in ce.data_mut() {
        let q = po2.quantize(*v);
        let d = (q - *v) as f64;
        delta_sq += d * d;
        *v = q;
    }
    delta_sq.sqrt() as f32
}

/// Quantizes the basis to its 8-bit fixed-point stored form (symmetric,
/// per-matrix scale), in place.
fn quantize_basis_8bit(basis: &mut Mat) {
    let max_abs = basis.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 {
        return;
    }
    let scale = max_abs / 127.0;
    for v in basis.data_mut() {
        *v = (*v / scale).round().clamp(-127.0, 127.0) * scale;
    }
}

fn relative_error(w: &Mat, ce: &Mat, basis: &Mat) -> Result<f32> {
    let recon = ce.matmul(basis)?;
    let num = w.sub(&recon)?.frobenius_norm();
    let den = w.frobenius_norm();
    Ok(if den > 0.0 { num / den } else { num })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorSparsity;
    use se_tensor::rng;

    fn cfg() -> SeConfig {
        SeConfig::default()
    }

    #[test]
    fn po2_diagonal_is_exactly_recovered() {
        // W whose rows are already po2 multiples of identity basis rows.
        let w = Mat::from_rows(&[
            &[0.5, 0.0, 0.0],
            &[0.0, -0.25, 0.0],
            &[0.0, 0.0, 1.0],
            &[0.125, 0.0, 0.0],
        ])
        .unwrap();
        let c = cfg().with_vector_sparsity(VectorSparsity::None).unwrap();
        let d = decompose(&w, &c).unwrap();
        let err = d.reconstruction_error(&w).unwrap();
        assert!(err < 0.02, "error {err}");
    }

    #[test]
    fn all_coefficients_are_representable() {
        let mut r = rng::seeded(11);
        let w = rng::normal_mat(&mut r, 96, 3, 0.05);
        let d = decompose(&w, &cfg()).unwrap();
        let po2 = *cfg().po2();
        assert!(d.ce.data().iter().all(|&x| po2.contains(x)));
    }

    #[test]
    fn random_matrix_error_is_bounded() {
        let mut r = rng::seeded(3);
        let w = rng::normal_mat(&mut r, 192, 3, 0.06);
        let c = cfg().with_vector_sparsity(VectorSparsity::None).unwrap();
        let d = decompose(&w, &c).unwrap();
        let err = d.reconstruction_error(&w).unwrap();
        // Power-of-2 quantization with a fitted basis keeps the error well
        // under the "quantize W directly" level (~0.2 for Gaussians).
        assert!(err < 0.35, "error {err}");
    }

    #[test]
    fn keep_fraction_guarantees_row_sparsity() {
        let mut r = rng::seeded(5);
        let w = rng::normal_mat(&mut r, 60, 3, 0.1);
        let c = cfg().with_vector_sparsity(VectorSparsity::KeepFraction(0.4)).unwrap();
        let d = decompose(&w, &c).unwrap();
        let zero_rows = d.ce.zero_rows();
        assert!(zero_rows >= 36, "only {zero_rows} zero rows"); // 60% of 60
    }

    #[test]
    fn channel_mask_rows_stay_zero() {
        let mut r = rng::seeded(8);
        let w = rng::normal_mat(&mut r, 12, 3, 0.1); // 4 channels of 3 rows
        let mask = vec![true, false, true, false];
        let (d, _) = decompose_with_channel_mask(&w, &cfg(), Some(&mask)).unwrap();
        for ch in [1usize, 3] {
            for row in ch * 3..(ch + 1) * 3 {
                assert!(d.ce.row(row).iter().all(|&x| x == 0.0), "row {row} not zero");
            }
        }
    }

    #[test]
    fn trace_has_expected_shape() {
        let mut r = rng::seeded(21);
        let w = rng::normal_mat(&mut r, 192, 3, 0.08);
        let c = cfg().with_max_iterations(20).unwrap();
        let (_, trace) = decompose_traced(&w, &c).unwrap();
        assert_eq!(trace.records.len(), 20);
        assert_eq!(trace.records[0].iteration, 1);
        // Fig. 9 shape: the basis moves away from identity over iterations.
        let first = trace.records.first().unwrap();
        let last = trace.records.last().unwrap();
        assert!(last.basis_identity_dist > 0.0);
        // The algorithm remedies the early error spike: final error is no
        // worse than the first iteration's.
        assert!(last.recon_error <= first.recon_error * 1.5 + 0.05);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            decompose(&Mat::zeros(0, 0), &cfg()),
            Err(CoreError::InvalidWeights { .. })
        ));
        let mut w = Mat::zeros(2, 2);
        w.set(0, 0, f32::NAN);
        assert!(matches!(decompose(&w, &cfg()), Err(CoreError::InvalidWeights { .. })));
    }

    #[test]
    fn all_zero_matrix_decomposes_to_zero() {
        let w = Mat::zeros(6, 3);
        let d = decompose(&w, &cfg()).unwrap();
        assert_eq!(d.ce.sparsity(), 1.0);
        assert!(d.reconstruct().unwrap().frobenius_norm() == 0.0);
    }

    #[test]
    fn into_se_slice_roundtrip() {
        let mut r = rng::seeded(13);
        let w = rng::normal_mat(&mut r, 24, 3, 0.1);
        let d = decompose(&w, &cfg()).unwrap();
        let recon_direct = d.reconstruct().unwrap();
        let slice = d.into_se_slice(cfg().po2()).unwrap();
        let recon_slice = slice.reconstruct();
        assert_eq!(recon_direct, recon_slice);
    }

    #[test]
    fn basis_quantization_is_applied() {
        let mut r = rng::seeded(17);
        let w = rng::normal_mat(&mut r, 48, 3, 0.1);
        let d = decompose(&w, &cfg()).unwrap();
        // All basis entries are integer multiples of the 8-bit scale.
        let max_abs = d.basis.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = max_abs / 127.0;
        for &b in d.basis.data() {
            let q = (b / scale).round();
            assert!((b - q * scale).abs() < 1e-6);
        }
    }

    #[test]
    fn disabled_basis_quantization() {
        let mut r = rng::seeded(19);
        let w = rng::normal_mat(&mut r, 48, 3, 0.1);
        let c = cfg().with_quantize_basis(false);
        let dq = decompose(&w, &cfg()).unwrap();
        let dn = decompose(&w, &c).unwrap();
        // Unquantized basis fits at least as well.
        assert!(
            dn.reconstruction_error(&w).unwrap() <= dq.reconstruction_error(&w).unwrap() + 1e-4
        );
    }

    #[test]
    fn decomposition_is_deterministic() {
        let mut r = rng::seeded(23);
        let w = rng::normal_mat(&mut r, 33, 3, 0.1);
        let a = decompose(&w, &cfg()).unwrap();
        let b = decompose(&w, &cfg()).unwrap();
        assert_eq!(a, b);
    }
}
