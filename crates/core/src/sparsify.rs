//! Sparsification primitives: channel-wise and vector-wise (row) pruning of
//! coefficient matrices (Step 3 of Algorithm 1).
//!
//! The paper enforces two granularities simultaneously:
//!
//! * **channel-wise** — whole input channels (groups of `R` consecutive rows
//!   of the reshaped weight matrix) are pruned once, up front, driven by a
//!   per-channel saliency (the paper uses batch-norm scaling factors; with
//!   synthetic weights we use the channel's L2 norm — see DESIGN.md);
//! * **vector-wise** — individual rows (length-`S` weight vectors) are
//!   zeroed by magnitude, which is the structured sparsity the accelerator's
//!   index selector exploits.

use crate::VectorSparsity;
use se_tensor::Mat;

/// Root-mean-square of a slice (0 for empty).
fn rms(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() / xs.len() as f64).sqrt() as f32
}

/// Applies the vector-wise sparsification policy in place, zeroing whole
/// rows of `ce`. Returns the number of rows that are zero afterwards
/// (including rows that were already zero).
///
/// # Examples
///
/// ```
/// use se_core::{sparsify, VectorSparsity};
/// use se_tensor::Mat;
///
/// let mut ce = Mat::from_rows(&[&[1.0, 1.0], &[0.001, 0.0], &[0.5, 0.5]]).unwrap();
/// let zeroed = sparsify::vector_sparsify(&mut ce, VectorSparsity::Threshold(0.01));
/// assert_eq!(zeroed, 1);
/// assert_eq!(ce.row(1), &[0.0, 0.0]);
/// ```
pub fn vector_sparsify(ce: &mut Mat, policy: VectorSparsity) -> usize {
    let rows = ce.rows();
    match policy {
        VectorSparsity::None => (0..rows).filter(|&i| rms(ce.row(i)) == 0.0).count(),
        VectorSparsity::Threshold(theta) => {
            let mut zeroed = 0;
            for i in 0..rows {
                if rms(ce.row(i)) < theta {
                    ce.row_mut(i).fill(0.0);
                }
                if ce.row(i).iter().all(|&x| x == 0.0) {
                    zeroed += 1;
                }
            }
            zeroed
        }
        VectorSparsity::KeepFraction(frac) => {
            let keep = (((rows as f64) * f64::from(frac)).round() as usize).min(rows);
            let mut norms: Vec<(usize, f32)> = (0..rows).map(|i| (i, rms(ce.row(i)))).collect();
            // Sort by descending norm; stable on ties so results are
            // deterministic.
            norms.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite norms"));
            for &(i, _) in norms.iter().skip(keep) {
                ce.row_mut(i).fill(0.0);
            }
            (0..rows).filter(|&i| ce.row(i).iter().all(|&x| x == 0.0)).count()
        }
        VectorSparsity::RelativeThreshold(frac) => {
            let norms: Vec<f32> = (0..rows).map(|i| rms(ce.row(i))).collect();
            let live: Vec<f32> = norms.iter().copied().filter(|&n| n > 0.0).collect();
            if live.is_empty() {
                return rows;
            }
            let mean = live.iter().sum::<f32>() / live.len() as f32;
            let theta = frac * mean;
            let mut zeroed = 0;
            for (i, &n) in norms.iter().enumerate() {
                if n < theta {
                    ce.row_mut(i).fill(0.0);
                }
                if ce.row(i).iter().all(|&x| x == 0.0) {
                    zeroed += 1;
                }
            }
            zeroed
        }
    }
}

/// Computes a per-channel keep mask for a reshaped weight matrix whose rows
/// come in consecutive groups of `group_rows` (one group per input channel).
///
/// A channel is pruned (`false`) when its saliency — the RMS of its rows —
/// falls below `rel_threshold ×` the mean channel saliency. This mirrors the
/// paper's batch-norm-scale criterion with the norm standing in for the
/// unavailable BN statistics.
///
/// Returns one flag per channel. If `group_rows` is zero or does not divide
/// the row count, every channel is kept (no pruning is better than wrong
/// pruning).
pub fn channel_mask(w: &Mat, group_rows: usize, rel_threshold: f32) -> Vec<bool> {
    if group_rows == 0 || w.rows() % group_rows != 0 {
        return vec![true; w.rows().checked_div(group_rows).unwrap_or(0)];
    }
    let channels = w.rows() / group_rows;
    let saliency: Vec<f32> = (0..channels)
        .map(|c| {
            let start = c * group_rows;
            let elems: Vec<f32> =
                (start..start + group_rows).flat_map(|r| w.row(r).iter().copied()).collect();
            rms(&elems)
        })
        .collect();
    let mean = saliency.iter().sum::<f32>() / channels.max(1) as f32;
    saliency.iter().map(|&s| s >= rel_threshold * mean).collect()
}

/// Zeros every row belonging to a pruned channel (mask `false`), in place.
///
/// Rows are grouped as in [`channel_mask`]. Group/row mismatches leave the
/// matrix untouched.
pub fn apply_channel_mask(ce: &mut Mat, mask: &[bool], group_rows: usize) {
    if group_rows == 0 || ce.rows() != mask.len() * group_rows {
        return;
    }
    for (c, &keep) in mask.iter().enumerate() {
        if keep {
            continue;
        }
        for r in c * group_rows..(c + 1) * group_rows {
            ce.row_mut(r).fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_zeroes_small_rows() {
        let mut ce = Mat::from_rows(&[&[0.002, 0.001], &[1.0, 0.0], &[0.0, 0.0]]).unwrap();
        let zeroed = vector_sparsify(&mut ce, VectorSparsity::Threshold(0.01));
        assert_eq!(zeroed, 2); // the small row and the already-zero row
        assert_eq!(ce.row(0), &[0.0, 0.0]);
        assert_eq!(ce.row(1), &[1.0, 0.0]);
    }

    #[test]
    fn none_policy_only_counts() {
        let mut ce = Mat::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap();
        let zeroed = vector_sparsify(&mut ce, VectorSparsity::None);
        assert_eq!(zeroed, 1);
        assert_eq!(ce.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn keep_fraction_exact_count() {
        let mut ce = Mat::from_rows(&[&[4.0, 0.0], &[1.0, 0.0], &[3.0, 0.0], &[2.0, 0.0]]).unwrap();
        let zeroed = vector_sparsify(&mut ce, VectorSparsity::KeepFraction(0.5));
        assert_eq!(zeroed, 2);
        // Largest two rows (4.0 and 3.0) survive.
        assert_eq!(ce.row(0), &[4.0, 0.0]);
        assert_eq!(ce.row(1), &[0.0, 0.0]);
        assert_eq!(ce.row(2), &[3.0, 0.0]);
        assert_eq!(ce.row(3), &[0.0, 0.0]);
    }

    #[test]
    fn keep_fraction_one_keeps_everything() {
        let mut ce = Mat::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let zeroed = vector_sparsify(&mut ce, VectorSparsity::KeepFraction(1.0));
        assert_eq!(zeroed, 0);
    }

    #[test]
    fn keep_fraction_zero_zeroes_everything() {
        let mut ce = Mat::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let zeroed = vector_sparsify(&mut ce, VectorSparsity::KeepFraction(0.0));
        assert_eq!(zeroed, 2);
        assert_eq!(ce.sparsity(), 1.0);
    }

    #[test]
    fn channel_mask_prunes_weak_channels() {
        // 3 channels of 2 rows; channel 1 is tiny.
        let w = Mat::from_rows(&[
            &[1.0, 1.0],
            &[1.0, 1.0],
            &[0.001, 0.0],
            &[0.0, 0.001],
            &[2.0, 2.0],
            &[2.0, 2.0],
        ])
        .unwrap();
        let mask = channel_mask(&w, 2, 0.1);
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn apply_channel_mask_zeroes_groups() {
        let mut ce = Mat::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]).unwrap();
        apply_channel_mask(&mut ce, &[false, true], 2);
        assert_eq!(ce.row(0), &[0.0]);
        assert_eq!(ce.row(1), &[0.0]);
        assert_eq!(ce.row(2), &[3.0]);
    }

    #[test]
    fn mismatched_groups_are_noops() {
        let w = Mat::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        // 2 does not divide 3: everything kept.
        assert!(channel_mask(&w, 2, 10.0).iter().all(|&b| b));
        let mut ce = w.clone();
        apply_channel_mask(&mut ce, &[false], 2);
        assert_eq!(ce, w);
    }
}
