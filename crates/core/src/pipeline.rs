//! Deterministic parallel execution of independent per-item jobs.
//!
//! The primitives here — [`run_ordered`], [`try_run_ordered`], and the 2-D
//! [`try_run_grid`] — run a batch of independent jobs on a shared work
//! queue drained by [`std::thread::scope`] workers and reassemble the
//! results **in item order**, which makes the parallel output bit-identical
//! to a serial run: every job's work happens on exactly one thread with
//! exactly the same inputs regardless of the worker count, and only the
//! reassembly order is fixed, not the completion order. Three subsystems
//! ride this queue: whole-network compression (the [`LayerJob`] batch of
//! this module), trace generation (`se-models`), and the five-accelerator
//! simulation grid (`se-bench`'s `(layer, accelerator)` fan-out).
//!
//! SmartExchange compresses each layer independently — the decomposition
//! of Algorithm 1 never looks across layers — so whole-network compression
//! is an embarrassingly parallel batch of [`LayerJob`]s.
//!
//! The worker count comes from [`SeConfig::parallelism`] (default: all
//! available cores); `parallelism = 1` degenerates to an inline loop with
//! no thread spawned at all.
//!
//! For *streaming* work — concurrent pipeline stages rather than a batch
//! of independent jobs — the module also provides [`bounded`], a bounded
//! multi-producer multi-consumer channel whose blocking send is the
//! backpressure between stages (the staged serving runtime of `se-serve`
//! is built on it).
//!
//! # Error determinism
//!
//! A serial run reports the error of the *first* failing layer. Workers
//! here publish the lowest failing index seen so far and skip queued jobs
//! behind it; because a job is only skipped when a *lower* index has
//! already failed, the minimal failing index is always computed, and the
//! error returned is exactly the one the serial run reports.
//!
//! # Examples
//!
//! ```
//! use se_core::{pipeline, SeConfig};
//! use se_ir::{LayerDesc, LayerKind};
//! use se_tensor::rng;
//!
//! # fn main() -> Result<(), se_core::CoreError> {
//! let mut r = rng::seeded(5);
//! let layers: Vec<_> = (0..4)
//!     .map(|i| {
//!         let desc = LayerDesc::new(
//!             format!("c{i}"),
//!             LayerKind::Conv2d { in_channels: 4, out_channels: 8, kernel: 3, stride: 1, padding: 1 },
//!             (8, 8),
//!         );
//!         (desc, rng::kaiming_tensor(&mut r, &[8, 4, 3, 3], 36))
//!     })
//!     .collect();
//! let serial = pipeline::compress_network(&layers, &SeConfig::default().with_parallelism(1)?)?;
//! let parallel = pipeline::compress_network(&layers, &SeConfig::default().with_parallelism(4)?)?;
//! assert_eq!(serial, parallel); // bit-identical, including every f32
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::network::{compress_layer_reported, CompressedNetwork, LayerReport};
use crate::{CoreError, Result, SeConfig};
use se_ir::{LayerDesc, SeLayer};
use se_tensor::Tensor;

/// Where a job's weight tensor comes from.
pub enum WeightSource<'a> {
    /// The caller already owns the tensor (the in-memory network path).
    Borrowed(&'a Tensor),
    /// The tensor is generated on the worker thread and dropped with the
    /// job (the streaming path for ImageNet-scale models, where holding
    /// every layer's weights at once would be large).
    Generate(&'a (dyn Fn(&LayerDesc) -> Result<Tensor> + Sync)),
}

impl std::fmt::Debug for WeightSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightSource::Borrowed(t) => f.debug_tuple("Borrowed").field(&t.shape()).finish(),
            WeightSource::Generate(_) => f.debug_tuple("Generate").finish(),
        }
    }
}

/// One unit of work on the compression queue: compress the layer at
/// network position `index`.
#[derive(Debug)]
pub struct LayerJob<'a> {
    /// Position of the layer within the network (reassembly key).
    pub index: usize,
    /// Layer geometry.
    pub desc: &'a LayerDesc,
    /// Weight tensor source.
    pub weights: WeightSource<'a>,
}

impl LayerJob<'_> {
    /// Runs the job: resolves the weights and compresses the layer,
    /// tagging failures with the layer name exactly as the serial
    /// [`crate::network::compress_network`] historically did.
    fn run(&self, cfg: &SeConfig) -> Result<(Vec<SeLayer>, LayerReport)> {
        let owned;
        let weights = match self.weights {
            WeightSource::Borrowed(t) => t,
            WeightSource::Generate(f) => {
                owned = f(self.desc)?;
                &owned
            }
        };
        compress_layer_reported(self.desc, weights, cfg).map_err(|e| match e {
            CoreError::InvalidWeights { reason } => {
                CoreError::InvalidWeights { reason: format!("{}: {reason}", self.desc.name()) }
            }
            other => other,
        })
    }
}

/// Runs `f` over every item of `items`, spreading the calls across up to
/// `workers` scoped threads, and returns the outputs **in item order**.
///
/// This is the deterministic work-queue primitive behind the compression
/// pipeline (and the trace generators in `se-models`): each item is
/// processed exactly once on exactly one thread, so any per-item
/// computation — floating-point included — is bit-identical to a serial
/// loop; only wall-clock time depends on `workers`.
///
/// `workers` is clamped to `[1, items.len()]`; `workers <= 1` runs inline
/// without spawning.
pub fn run_ordered<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i, &items[i]);
                *slots[i].lock().expect("result slot never poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot never poisoned")
                .expect("every queue index was drained exactly once")
        })
        .collect()
}

/// Fallible [`run_ordered`]: runs `f` over every item and returns outputs
/// in item order, or the failure of the **lowest-indexed** failing item —
/// the same error a serial in-order run reports. Items queued behind an
/// already-failed index are skipped (their results could never be
/// observed); the minimal failing index is always computed because an item
/// is only skipped when a *lower* index has already failed.
///
/// Generic over the error type so any subsystem (compression, trace
/// generation, simulation) can put its own jobs on the queue.
///
/// # Errors
///
/// The lowest-indexed failure of `f`.
pub fn try_run_ordered<I, O, E, F>(
    items: &[I],
    workers: usize,
    f: F,
) -> std::result::Result<Vec<O>, E>
where
    I: Sync,
    O: Send,
    E: Send,
    F: Fn(usize, &I) -> std::result::Result<O, E> + Sync,
{
    // Lowest failing index observed so far; items behind it are skipped.
    let failed_at = AtomicUsize::new(usize::MAX);
    let results = run_ordered(items, workers, |i, item| {
        if i > failed_at.load(Ordering::Relaxed) {
            return None;
        }
        let out = f(i, item);
        if out.is_err() {
            failed_at.fetch_min(i, Ordering::Relaxed);
        }
        Some(out)
    });
    let mut done = Vec::with_capacity(items.len());
    for out in results {
        match out {
            Some(Ok(v)) => done.push(v),
            // The lowest-indexed error: everything before it succeeded.
            Some(Err(e)) => return Err(e),
            // Skipped behind a failure; the error above is reached first.
            None => unreachable!("skipped item precedes the failing index"),
        }
    }
    Ok(done)
}

/// Fans a 2-D grid of jobs — every `(item, lane)` pair — onto the work
/// queue and reassembles the outputs **item-major** (`out[i][l]` is item
/// `i` through lane `l`). This is the five-accelerator simulation shape:
/// items are layer traces, lanes are accelerators, and every job is
/// independent of every other, so results are bit-identical for every
/// worker count.
///
/// # Errors
///
/// The failure of the lowest `(item, lane)` coordinate in item-major
/// order — the same error a serial item-then-lane loop reports.
pub fn try_run_grid<I, O, E, F>(
    items: &[I],
    lanes: usize,
    workers: usize,
    f: F,
) -> std::result::Result<Vec<Vec<O>>, E>
where
    I: Sync,
    O: Send,
    E: Send,
    F: Fn(usize, &I, usize) -> std::result::Result<O, E> + Sync,
{
    if lanes == 0 {
        return Ok(items.iter().map(|_| Vec::new()).collect());
    }
    let coords: Vec<(usize, usize)> =
        (0..items.len()).flat_map(|i| (0..lanes).map(move |l| (i, l))).collect();
    let flat = try_run_ordered(&coords, workers, |_, &(i, l)| f(i, &items[i], l))?;
    let mut flat = flat.into_iter();
    Ok((0..items.len()).map(|_| flat.by_ref().take(lanes).collect()).collect())
}

/// The configuration each worker compresses its layers with: the total
/// thread budget `cfg.parallelism()` is split between the outer job queue
/// and the per-layer decomposition threads of `crate::layer` (which also
/// read `parallelism`), so nested parallelism never oversubscribes —
/// `outer × inner ≤ cfg.parallelism()`. With more jobs than budget the
/// inner level degrades to inline; with a few big layers the leftover
/// budget goes to the per-layer level.
pub fn worker_config(cfg: &SeConfig, jobs: usize) -> SeConfig {
    let outer = cfg.parallelism().clamp(1, jobs.max(1));
    let inner = (cfg.parallelism() / outer).max(1);
    cfg.clone().with_parallelism(inner).expect("inner worker count is at least 1")
}

/// Compresses a batch of [`LayerJob`]s on the work queue and reassembles
/// `(parts, report)` pairs in network order.
///
/// # Errors
///
/// Returns the failure of the lowest-indexed failing job — the same error
/// a serial in-order run reports.
pub fn compress_jobs(
    jobs: &[LayerJob<'_>],
    cfg: &SeConfig,
) -> Result<Vec<(Vec<SeLayer>, LayerReport)>> {
    let wcfg = worker_config(cfg, jobs.len());
    try_run_ordered(jobs, cfg.parallelism(), |_, job| job.run(&wcfg))
}

/// Parallel whole-network compression: the engine behind
/// [`crate::network::compress_network`].
///
/// # Errors
///
/// Propagates the first (lowest-index) per-layer failure, identifying the
/// offending layer.
pub fn compress_network(
    layers: &[(LayerDesc, Tensor)],
    cfg: &SeConfig,
) -> Result<CompressedNetwork> {
    let jobs: Vec<LayerJob<'_>> = layers
        .iter()
        .enumerate()
        .map(|(index, (desc, w))| LayerJob { index, desc, weights: WeightSource::Borrowed(w) })
        .collect();
    let (parts, reports) = compress_jobs(&jobs, cfg)?.into_iter().unzip();
    Ok(CompressedNetwork { parts, reports })
}

/// Parallel streaming compression: the engine behind
/// [`crate::network::compress_network_reports`]. Weights are generated on
/// the worker threads and dropped with each job, so peak memory is bounded
/// by `cfg.parallelism()` layers rather than the whole network.
///
/// # Errors
///
/// Propagates the first (lowest-index) per-layer failure.
pub fn compress_network_reports<F>(
    descs: &[LayerDesc],
    cfg: &SeConfig,
    weights_for: F,
) -> Result<Vec<LayerReport>>
where
    F: Fn(&LayerDesc) -> Result<Tensor> + Sync,
{
    let jobs: Vec<LayerJob<'_>> = descs
        .iter()
        .enumerate()
        .map(|(index, desc)| LayerJob {
            index,
            desc,
            weights: WeightSource::Generate(&weights_for),
        })
        .collect();
    let wcfg = worker_config(cfg, jobs.len());
    // Parts are dropped inside the worker (only the report crosses the
    // queue), which is what keeps the streaming path's memory bounded.
    try_run_ordered(&jobs, cfg.parallelism(), |_, job| job.run(&wcfg).map(|(_, report)| report))
}

// ---------------------------------------------------------------------------
// Streaming: the bounded channel behind pipelined stage handoff.
// ---------------------------------------------------------------------------

/// Interior of a bounded channel: one mutex-guarded queue plus the two
/// condition variables of the classic bounded-buffer protocol.
struct ChannelShared<T> {
    state: Mutex<ChannelState<T>>,
    /// Signaled when an item is enqueued or the last sender disconnects.
    not_empty: Condvar,
    /// Signaled when an item is dequeued or the last receiver disconnects.
    not_full: Condvar,
    cap: usize,
}

struct ChannelState<T> {
    buf: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// The sending half of a [`bounded`] channel. Cloneable: the channel
/// closes for receivers when the **last** sender drops.
pub struct Sender<T> {
    shared: Arc<ChannelShared<T>>,
}

/// The receiving half of a [`bounded`] channel. Cloneable (multiple
/// consumers compete for items — a worker pool shares one receiver); the
/// channel closes for senders when the **last** receiver drops.
pub struct Receiver<T> {
    shared: Arc<ChannelShared<T>>,
}

/// Creates a bounded multi-producer multi-consumer channel of capacity
/// `cap` (clamped to at least 1): the streaming counterpart of this
/// module's batch queue, connecting pipeline *stages* that run
/// concurrently. [`Sender::send`] blocks while the buffer is full — the
/// backpressure that keeps a fast stage from outrunning a slow one — and
/// [`Receiver::recv`] blocks while it is empty. Dropping the last half of
/// either side closes the channel, which is the whole shutdown/drain
/// protocol: a stage simply returns when `recv` yields `None`, and
/// in-flight items are never dropped.
///
/// (Unlike [`std::sync::mpsc::sync_channel`] the receiver is cloneable,
/// so a pool of workers can drain one stage's output concurrently.)
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(ChannelShared {
        state: Mutex::new(ChannelState { buf: VecDeque::new(), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap: cap.max(1),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Sends one item, blocking while the channel is at capacity.
    ///
    /// # Errors
    ///
    /// Returns the item back when every receiver has disconnected (the
    /// downstream stage is gone, so the item could never be observed).
    pub fn send(&self, item: T) -> std::result::Result<(), T> {
        let mut state = self.shared.state.lock().expect("channel mutex never poisoned");
        loop {
            if state.receivers == 0 {
                return Err(item);
            }
            if state.buf.len() < self.shared.cap {
                state.buf.push_back(item);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel mutex never poisoned");
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, blocking while the channel is empty.
    /// Returns `None` once every sender has disconnected **and** the
    /// buffer is drained — the graceful end-of-stream signal.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("channel mutex never poisoned");
        loop {
            if let Some(item) = state.buf.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state = self.shared.not_empty.wait(state).expect("channel mutex never poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel mutex never poisoned").senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel mutex never poisoned").receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel mutex never poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake every blocked receiver so it can observe end-of-stream.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel mutex never poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake every blocked sender so it can observe the broken pipe.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").field("cap", &self.shared.cap).finish()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").field("cap", &self.shared.cap).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ir::LayerKind;
    use se_tensor::rng;

    fn conv_desc(name: &str, in_ch: usize, out_ch: usize) -> LayerDesc {
        LayerDesc::new(
            name,
            LayerKind::Conv2d {
                in_channels: in_ch,
                out_channels: out_ch,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            (8, 8),
        )
    }

    fn six_layer_net(seed: u64) -> Vec<(LayerDesc, Tensor)> {
        let mut r = rng::seeded(seed);
        let chans = [3usize, 8, 8, 16, 16, 8];
        (0..6)
            .map(|i| {
                let (ci, co) = (chans[i], chans[(i + 1) % 6].max(4));
                let desc = conv_desc(&format!("c{i}"), ci, co);
                let w = rng::kaiming_tensor(&mut r, &[co, ci, 3, 3], ci * 9);
                (desc, w)
            })
            .collect()
    }

    fn cfg(parallelism: usize) -> SeConfig {
        SeConfig::default().with_max_iterations(5).unwrap().with_parallelism(parallelism).unwrap()
    }

    #[test]
    fn run_ordered_preserves_item_order() {
        let items: Vec<usize> = (0..64).collect();
        let doubled = run_ordered(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(doubled, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_ordered_handles_empty_and_oversubscribed() {
        let empty: Vec<u32> = vec![];
        assert!(run_ordered(&empty, 4, |_, &x| x).is_empty());
        let one = vec![7u32];
        assert_eq!(run_ordered(&one, 16, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn grid_is_item_major_and_order_preserving() {
        let items: Vec<usize> = (0..9).collect();
        for workers in [1usize, 3, 8] {
            let grid: Vec<Vec<(usize, usize)>> =
                try_run_grid::<_, _, CoreError, _>(&items, 4, workers, |i, &item, lane| {
                    assert_eq!(i, item);
                    Ok((item, lane))
                })
                .unwrap();
            assert_eq!(grid.len(), 9);
            for (i, row) in grid.iter().enumerate() {
                assert_eq!(row, &[(i, 0), (i, 1), (i, 2), (i, 3)], "workers = {workers}");
            }
        }
    }

    #[test]
    fn grid_handles_degenerate_shapes() {
        let none: Vec<u32> = vec![];
        let empty = try_run_grid::<_, u32, CoreError, _>(&none, 3, 4, |_, &x, _| Ok(x)).unwrap();
        assert!(empty.is_empty());
        let lanes0 =
            try_run_grid::<_, u32, CoreError, _>(&[1u32, 2], 0, 4, |_, &x, _| Ok(x)).unwrap();
        assert_eq!(lanes0, vec![Vec::<u32>::new(), Vec::new()]);
    }

    #[test]
    fn grid_reports_the_item_major_lowest_error() {
        let items: Vec<usize> = (0..6).collect();
        // Fail at (1, 2) and (3, 0): item-major order makes (1, 2) first.
        for workers in [1usize, 2, 8] {
            let err = try_run_grid::<_, (), String, _>(&items, 3, workers, |i, _, lane| {
                if (i, lane) == (1, 2) || (i, lane) == (3, 0) {
                    Err(format!("fail at ({i}, {lane})"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert_eq!(err, "fail at (1, 2)", "workers = {workers}");
        }
    }

    #[test]
    fn worker_config_splits_the_thread_budget() {
        let cfg = |n: usize| SeConfig::default().with_parallelism(n).unwrap();
        // More jobs than budget: inner level degrades to inline.
        assert_eq!(worker_config(&cfg(8), 100).parallelism(), 1);
        // Fewer jobs than budget: leftover budget goes per-layer.
        assert_eq!(worker_config(&cfg(8), 2).parallelism(), 4);
        assert_eq!(worker_config(&cfg(8), 3).parallelism(), 2);
        // Degenerate cases stay valid.
        assert_eq!(worker_config(&cfg(1), 10).parallelism(), 1);
        assert_eq!(worker_config(&cfg(4), 0).parallelism(), 4);
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let layers = six_layer_net(17);
        let serial = compress_network(&layers, &cfg(1)).unwrap();
        for workers in [2usize, 3, 4, 8] {
            let parallel = compress_network(&layers, &cfg(workers)).unwrap();
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn streaming_reports_match_owned_in_parallel() {
        let layers = six_layer_net(23);
        let owned = compress_network(&layers, &cfg(4)).unwrap();
        let descs: Vec<_> = layers.iter().map(|(d, _)| d.clone()).collect();
        let streamed = compress_network_reports(&descs, &cfg(4), |d| {
            Ok(layers
                .iter()
                .find(|(ld, _)| ld.name() == d.name())
                .map(|(_, w)| w.clone())
                .expect("known layer"))
        })
        .unwrap();
        assert_eq!(owned.reports, streamed);
    }

    #[test]
    fn error_reported_matches_serial_first_failure() {
        let mut layers = six_layer_net(31);
        // Two failures: the pipeline must report the lower-indexed one.
        layers[1].1 = Tensor::zeros(&[2, 2]);
        layers[4].1 = Tensor::zeros(&[3, 3]);
        let serial_err = compress_network(&layers, &cfg(1)).unwrap_err();
        for workers in [2usize, 4, 8] {
            let parallel_err = compress_network(&layers, &cfg(workers)).unwrap_err();
            assert_eq!(serial_err.to_string(), parallel_err.to_string());
            assert!(parallel_err.to_string().contains("c1"), "err {parallel_err}");
        }
    }

    #[test]
    fn generated_weights_failure_is_deterministic() {
        let layers = six_layer_net(5);
        let descs: Vec<_> = layers.iter().map(|(d, _)| d.clone()).collect();
        let failing = |d: &LayerDesc| -> Result<Tensor> {
            if d.name() == "c2" {
                Err(CoreError::InvalidWeights { reason: "synthetic failure".into() })
            } else {
                Ok(layers
                    .iter()
                    .find(|(ld, _)| ld.name() == d.name())
                    .map(|(_, w)| w.clone())
                    .expect("known layer"))
            }
        };
        let e1 = compress_network_reports(&descs, &cfg(1), failing).unwrap_err();
        let e4 = compress_network_reports(&descs, &cfg(4), failing).unwrap_err();
        assert_eq!(e1.to_string(), e4.to_string());
    }

    #[test]
    fn channel_delivers_in_fifo_order() {
        let (tx, rx) = bounded::<u32>(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        assert_eq!(rx.recv(), None, "closed and drained");
    }

    #[test]
    fn channel_close_semantics() {
        // All receivers gone: send returns the item.
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));

        // All senders gone: buffered items still drain, then None.
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn channel_applies_backpressure_and_supports_mpmc() {
        // Capacity-1 channel, 2 producers × 25 items, 2 consumers: every
        // item crosses exactly once, with senders blocking on the full
        // buffer throughout.
        let (tx, rx) = bounded::<u32>(1);
        let received = std::thread::scope(|scope| {
            for p in 0..2u32 {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..25 {
                        tx.send(p * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<u32> =
                consumers.into_iter().flat_map(|c| c.join().expect("consumer thread")).collect();
            all.sort_unstable();
            all
        });
        let mut expected: Vec<u32> = (0..25).flat_map(|i| [i, 100 + i]).collect::<Vec<_>>();
        expected.sort_unstable();
        assert_eq!(received, expected);
    }
}
