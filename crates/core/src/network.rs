//! Whole-network compression: applies the SmartExchange algorithm to every
//! layer of a network and aggregates the storage accounting that backs the
//! paper's Tables II and III.
//!
//! Since the decomposition never looks across layers, both entry points
//! here execute on the parallel work queue of [`crate::pipeline`]
//! (worker count from [`SeConfig::parallelism`], default all cores) with
//! results reassembled in network order — output is bit-identical to a
//! serial run for every worker count.

use crate::{layer, pipeline, CoreError, Result, SeConfig};
use se_ir::{storage, LayerDesc, SeLayer};
use se_tensor::Tensor;

/// Per-layer compression report.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Original parameter count.
    pub params: u64,
    /// Storage breakdown of the compressed form.
    pub storage: storage::SeStorage,
    /// Vector-wise sparsity of the coefficient matrices in `[0, 1]`.
    pub vector_sparsity: f32,
    /// Relative Frobenius reconstruction error.
    pub recon_error: f32,
}

/// A compressed network: per-layer compressed weights plus reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedNetwork {
    /// Per-layer compressed weight parts, in network order (one entry per
    /// layer, each holding one or more [`SeLayer`]s).
    pub parts: Vec<Vec<SeLayer>>,
    /// Per-layer reports, in network order.
    pub reports: Vec<LayerReport>,
}

impl CompressedNetwork {
    /// Total storage across all layers.
    pub fn total_storage(&self) -> storage::SeStorage {
        let mut s = storage::SeStorage::default();
        for r in &self.reports {
            s.accumulate(&r.storage);
        }
        s
    }

    /// Total original parameters.
    pub fn total_params(&self) -> u64 {
        self.reports.iter().map(|r| r.params).sum()
    }

    /// Overall compression rate vs FP32 (the paper's `CR` column).
    pub fn compression_rate(&self) -> f64 {
        storage::compression_rate(self.total_params(), &self.total_storage())
    }

    /// Parameter-weighted overall sparsity (the paper's `Spar.` column: the
    /// ratio of pruned to total parameters).
    pub fn overall_sparsity(&self) -> f64 {
        let total: u64 = self.total_params();
        if total == 0 {
            return 0.0;
        }
        let pruned: f64 =
            self.reports.iter().map(|r| f64::from(r.vector_sparsity) * r.params as f64).sum();
        pruned / total as f64
    }

    /// Parameter-weighted mean reconstruction error.
    pub fn mean_recon_error(&self) -> f64 {
        let total = self.total_params();
        if total == 0 {
            return 0.0;
        }
        self.reports.iter().map(|r| f64::from(r.recon_error) * r.params as f64).sum::<f64>()
            / total as f64
    }
}

/// Compresses one layer and produces its report alongside the parts.
///
/// # Errors
///
/// Propagates decomposition and shape-validation failures.
pub fn compress_layer_reported(
    desc: &LayerDesc,
    weights: &Tensor,
    cfg: &SeConfig,
) -> Result<(Vec<SeLayer>, LayerReport)> {
    let parts = layer::compress_layer(desc, weights, cfg)?;
    let mut st = storage::SeStorage::default();
    let mut rows = 0usize;
    let mut zero_rows = 0usize;
    for p in &parts {
        st.accumulate(&storage::se_layer_storage(p));
        rows += p.total_rows();
        zero_rows += p.total_rows() - p.total_nonzero_rows();
    }
    let recon = layer::reconstruct_layer(desc, &parts)?;
    let diff = weights.sub(&recon).map_err(CoreError::from)?.norm();
    let denom = weights.norm();
    let report = LayerReport {
        name: desc.name().to_string(),
        params: desc.params(),
        storage: st,
        vector_sparsity: if rows > 0 { zero_rows as f32 / rows as f32 } else { 0.0 },
        recon_error: if denom > 0.0 { diff / denom } else { diff },
    };
    Ok((parts, report))
}

/// Compresses every layer of a network given `(descriptor, weights)` pairs.
///
/// # Errors
///
/// Propagates per-layer failures, identifying the offending layer.
///
/// # Examples
///
/// ```
/// use se_core::{network, SeConfig};
/// use se_ir::{LayerDesc, LayerKind};
/// use se_tensor::rng;
///
/// # fn main() -> Result<(), se_core::CoreError> {
/// let mut r = rng::seeded(1);
/// let desc = LayerDesc::new(
///     "c1",
///     LayerKind::Conv2d { in_channels: 4, out_channels: 8, kernel: 3, stride: 1, padding: 1 },
///     (8, 8),
/// );
/// let w = rng::kaiming_tensor(&mut r, &[8, 4, 3, 3], 36);
/// let cfg = SeConfig::default().with_max_iterations(5)?;
/// let net = network::compress_network(&[(desc, w)], &cfg)?;
/// assert!(net.compression_rate() > 4.0);
/// # Ok(())
/// # }
/// ```
pub fn compress_network(
    layers: &[(LayerDesc, Tensor)],
    cfg: &SeConfig,
) -> Result<CompressedNetwork> {
    pipeline::compress_network(layers, cfg)
}

/// Streaming variant of [`compress_network`] that keeps only the reports,
/// generating weights on demand and dropping compressed parts immediately —
/// used for ImageNet-scale models where holding every `Ce` would be large.
/// Weights are generated on the worker threads, so `weights_for` must be
/// `Fn + Sync`; peak memory is bounded by [`SeConfig::parallelism`] layers.
///
/// # Errors
///
/// Propagates per-layer failures, identifying the offending layer.
pub fn compress_network_reports<F>(
    descs: &[LayerDesc],
    cfg: &SeConfig,
    weights_for: F,
) -> Result<Vec<LayerReport>>
where
    F: Fn(&LayerDesc) -> Result<Tensor> + Sync,
{
    pipeline::compress_network_reports(descs, cfg, weights_for)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorSparsity;
    use se_ir::LayerKind;
    use se_tensor::rng;

    fn small_net() -> Vec<(LayerDesc, Tensor)> {
        let mut r = rng::seeded(71);
        vec![
            (
                LayerDesc::new(
                    "c1",
                    LayerKind::Conv2d {
                        in_channels: 3,
                        out_channels: 8,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                    (8, 8),
                ),
                rng::kaiming_tensor(&mut r, &[8, 3, 3, 3], 27),
            ),
            (
                LayerDesc::new(
                    "fc",
                    LayerKind::Linear { in_features: 12, out_features: 4 },
                    (1, 1),
                ),
                rng::kaiming_tensor(&mut r, &[4, 12], 12),
            ),
        ]
    }

    fn cfg() -> SeConfig {
        SeConfig::default().with_max_iterations(6).unwrap()
    }

    #[test]
    fn network_compression_rates_exceed_fp32_to_4bit_floor() {
        let net = compress_network(&small_net(), &cfg()).unwrap();
        assert_eq!(net.reports.len(), 2);
        // 32-bit -> ~4-bit coefficients plus overheads: CR must beat 4x.
        assert!(net.compression_rate() > 4.0, "CR {}", net.compression_rate());
        assert!(net.total_params() > 0);
    }

    #[test]
    fn sparsity_is_weighted_by_params() {
        let c = cfg().with_vector_sparsity(VectorSparsity::KeepFraction(0.25)).unwrap();
        let net = compress_network(&small_net(), &c).unwrap();
        assert!(net.overall_sparsity() > 0.5, "sparsity {}", net.overall_sparsity());
    }

    #[test]
    fn reports_match_parts() {
        let net = compress_network(&small_net(), &cfg()).unwrap();
        for (parts, report) in net.parts.iter().zip(&net.reports) {
            let mut st = storage::SeStorage::default();
            for p in parts {
                st.accumulate(&storage::se_layer_storage(p));
            }
            assert_eq!(st, report.storage);
        }
    }

    #[test]
    fn streaming_variant_matches_owned() {
        let layers = small_net();
        let owned = compress_network(&layers, &cfg()).unwrap();
        let descs: Vec<_> = layers.iter().map(|(d, _)| d.clone()).collect();
        let streamed = compress_network_reports(&descs, &cfg(), |d| {
            Ok(layers
                .iter()
                .find(|(ld, _)| ld.name() == d.name())
                .map(|(_, w)| w.clone())
                .expect("known layer"))
        })
        .unwrap();
        assert_eq!(owned.reports, streamed);
    }

    #[test]
    fn error_identifies_layer() {
        let mut layers = small_net();
        layers[1].1 = Tensor::zeros(&[3, 3]); // wrong shape
        let err = compress_network(&layers, &cfg()).unwrap_err();
        assert!(err.to_string().contains("fc"), "error was {err}");
    }

    #[test]
    fn recon_error_reported_and_bounded() {
        let net = compress_network(&small_net(), &cfg()).unwrap();
        for r in &net.reports {
            assert!(r.recon_error.is_finite());
            assert!(r.recon_error < 0.6, "{}: {}", r.name, r.recon_error);
        }
        assert!(net.mean_recon_error() < 0.6);
    }
}
