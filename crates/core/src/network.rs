//! Whole-network compression: applies the SmartExchange algorithm to every
//! layer of a network and aggregates the storage accounting that backs the
//! paper's Tables II and III.
//!
//! Since the decomposition never looks across layers, both entry points
//! here execute on the parallel work queue of [`crate::pipeline`]
//! (worker count from [`SeConfig::parallelism`], default all cores) with
//! results reassembled in network order — output is bit-identical to a
//! serial run for every worker count.

use crate::{layer, pipeline, CoreError, Result, SeConfig};
use se_ir::{storage, LayerDesc, SeLayer};
use se_tensor::Tensor;

/// Per-layer compression report.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Original parameter count.
    pub params: u64,
    /// Storage breakdown of the compressed form.
    pub storage: storage::SeStorage,
    /// Vector-wise sparsity of the coefficient matrices in `[0, 1]`.
    pub vector_sparsity: f32,
    /// Relative Frobenius reconstruction error.
    pub recon_error: f32,
}

/// A compressed network: per-layer compressed weights plus reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedNetwork {
    /// Per-layer compressed weight parts, in network order (one entry per
    /// layer, each holding one or more [`SeLayer`]s).
    pub parts: Vec<Vec<SeLayer>>,
    /// Per-layer reports, in network order.
    pub reports: Vec<LayerReport>,
}

impl CompressedNetwork {
    /// Total storage across all layers.
    pub fn total_storage(&self) -> storage::SeStorage {
        let mut s = storage::SeStorage::default();
        for r in &self.reports {
            s.accumulate(&r.storage);
        }
        s
    }

    /// Total original parameters.
    pub fn total_params(&self) -> u64 {
        self.reports.iter().map(|r| r.params).sum()
    }

    /// Overall compression rate vs FP32 (the paper's `CR` column).
    pub fn compression_rate(&self) -> f64 {
        storage::compression_rate(self.total_params(), &self.total_storage())
    }

    /// Parameter-weighted overall sparsity (the paper's `Spar.` column: the
    /// ratio of pruned to total parameters).
    pub fn overall_sparsity(&self) -> f64 {
        let total: u64 = self.total_params();
        if total == 0 {
            return 0.0;
        }
        let pruned: f64 =
            self.reports.iter().map(|r| f64::from(r.vector_sparsity) * r.params as f64).sum();
        pruned / total as f64
    }

    /// Parameter-weighted mean reconstruction error.
    pub fn mean_recon_error(&self) -> f64 {
        let total = self.total_params();
        if total == 0 {
            return 0.0;
        }
        self.reports.iter().map(|r| f64::from(r.recon_error) * r.params as f64).sum::<f64>()
            / total as f64
    }

    /// Serializes the compressed network to the versioned binary format of
    /// [`se_ir::serialize`] (payload kind `CompressedNetwork`; layout in
    /// `docs/TRACE_FORMAT.md`). `Ce` matrices are stored as compact
    /// power-of-2 codes, so the file is within a small factor of the
    /// paper's CR accounting rather than FP32 size.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ir`] if a field exceeds its layout width.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        use se_ir::serialize as ser;
        let mut w = ser::ByteWriter::new();
        ser::write_header(&mut w, ser::PayloadKind::CompressedNetwork);
        let layers = u32::try_from(self.parts.len())
            .map_err(|_| CoreError::InvalidConfig { reason: "more than u32::MAX layers".into() })?;
        w.put_u32(layers);
        for (parts, report) in self.parts.iter().zip(&self.reports) {
            w.put_str(&report.name).map_err(CoreError::from)?;
            w.put_u64(report.params);
            w.put_u64(report.storage.ce_bits);
            w.put_u64(report.storage.basis_bits);
            w.put_u64(report.storage.index_bits);
            w.put_f32(report.vector_sparsity);
            w.put_f32(report.recon_error);
            w.put_u32(parts.len() as u32);
            for part in parts {
                ser::write_se_layer(&mut w, part).map_err(CoreError::from)?;
            }
        }
        Ok(w.into_bytes())
    }

    /// Deserializes a compressed network written by
    /// [`CompressedNetwork::to_bytes`]; the round trip is bit-identical
    /// (every `f32`, every report field).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ir`] on malformed bytes (bad magic, version or
    /// payload-kind mismatch, truncation, or failed re-validation).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        use se_ir::serialize as ser;
        let mut r = ser::ByteReader::new(bytes);
        ser::expect_header(&mut r, ser::PayloadKind::CompressedNetwork).map_err(CoreError::from)?;
        let layers = r.get_u32().map_err(CoreError::from)? as usize;
        let mut parts = Vec::with_capacity(layers.min(r.remaining()));
        let mut reports = Vec::with_capacity(layers.min(r.remaining()));
        for _ in 0..layers {
            let name = r.get_str().map_err(CoreError::from)?;
            let params = r.get_u64().map_err(CoreError::from)?;
            let storage = storage::SeStorage {
                ce_bits: r.get_u64().map_err(CoreError::from)?,
                basis_bits: r.get_u64().map_err(CoreError::from)?,
                index_bits: r.get_u64().map_err(CoreError::from)?,
            };
            let vector_sparsity = r.get_f32().map_err(CoreError::from)?;
            let recon_error = r.get_f32().map_err(CoreError::from)?;
            let n = r.get_u32().map_err(CoreError::from)? as usize;
            let mut layer_parts = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                layer_parts.push(ser::read_se_layer(&mut r).map_err(CoreError::from)?);
            }
            parts.push(layer_parts);
            reports.push(LayerReport { name, params, storage, vector_sparsity, recon_error });
        }
        r.expect_end().map_err(CoreError::from)?;
        Ok(CompressedNetwork { parts, reports })
    }
}

/// Compresses one layer and produces its report alongside the parts.
///
/// # Errors
///
/// Propagates decomposition and shape-validation failures.
pub fn compress_layer_reported(
    desc: &LayerDesc,
    weights: &Tensor,
    cfg: &SeConfig,
) -> Result<(Vec<SeLayer>, LayerReport)> {
    let parts = layer::compress_layer(desc, weights, cfg)?;
    let mut st = storage::SeStorage::default();
    let mut rows = 0usize;
    let mut zero_rows = 0usize;
    for p in &parts {
        st.accumulate(&storage::se_layer_storage(p));
        rows += p.total_rows();
        zero_rows += p.total_rows() - p.total_nonzero_rows();
    }
    let recon = layer::reconstruct_layer(desc, &parts)?;
    let diff = weights.sub(&recon).map_err(CoreError::from)?.norm();
    let denom = weights.norm();
    let report = LayerReport {
        name: desc.name().to_string(),
        params: desc.params(),
        storage: st,
        vector_sparsity: if rows > 0 { zero_rows as f32 / rows as f32 } else { 0.0 },
        recon_error: if denom > 0.0 { diff / denom } else { diff },
    };
    Ok((parts, report))
}

/// Compresses every layer of a network given `(descriptor, weights)` pairs.
///
/// # Errors
///
/// Propagates per-layer failures, identifying the offending layer.
///
/// # Examples
///
/// ```
/// use se_core::{network, SeConfig};
/// use se_ir::{LayerDesc, LayerKind};
/// use se_tensor::rng;
///
/// # fn main() -> Result<(), se_core::CoreError> {
/// let mut r = rng::seeded(1);
/// let desc = LayerDesc::new(
///     "c1",
///     LayerKind::Conv2d { in_channels: 4, out_channels: 8, kernel: 3, stride: 1, padding: 1 },
///     (8, 8),
/// );
/// let w = rng::kaiming_tensor(&mut r, &[8, 4, 3, 3], 36);
/// let cfg = SeConfig::default().with_max_iterations(5)?;
/// let net = network::compress_network(&[(desc, w)], &cfg)?;
/// assert!(net.compression_rate() > 4.0);
/// # Ok(())
/// # }
/// ```
pub fn compress_network(
    layers: &[(LayerDesc, Tensor)],
    cfg: &SeConfig,
) -> Result<CompressedNetwork> {
    pipeline::compress_network(layers, cfg)
}

/// Streaming variant of [`compress_network`] that keeps only the reports,
/// generating weights on demand and dropping compressed parts immediately —
/// used for ImageNet-scale models where holding every `Ce` would be large.
/// Weights are generated on the worker threads, so `weights_for` must be
/// `Fn + Sync`; peak memory is bounded by [`SeConfig::parallelism`] layers.
///
/// # Errors
///
/// Propagates per-layer failures, identifying the offending layer.
pub fn compress_network_reports<F>(
    descs: &[LayerDesc],
    cfg: &SeConfig,
    weights_for: F,
) -> Result<Vec<LayerReport>>
where
    F: Fn(&LayerDesc) -> Result<Tensor> + Sync,
{
    pipeline::compress_network_reports(descs, cfg, weights_for)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorSparsity;
    use se_ir::LayerKind;
    use se_tensor::rng;

    fn small_net() -> Vec<(LayerDesc, Tensor)> {
        let mut r = rng::seeded(71);
        vec![
            (
                LayerDesc::new(
                    "c1",
                    LayerKind::Conv2d {
                        in_channels: 3,
                        out_channels: 8,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                    (8, 8),
                ),
                rng::kaiming_tensor(&mut r, &[8, 3, 3, 3], 27),
            ),
            (
                LayerDesc::new(
                    "fc",
                    LayerKind::Linear { in_features: 12, out_features: 4 },
                    (1, 1),
                ),
                rng::kaiming_tensor(&mut r, &[4, 12], 12),
            ),
        ]
    }

    fn cfg() -> SeConfig {
        SeConfig::default().with_max_iterations(6).unwrap()
    }

    #[test]
    fn network_compression_rates_exceed_fp32_to_4bit_floor() {
        let net = compress_network(&small_net(), &cfg()).unwrap();
        assert_eq!(net.reports.len(), 2);
        // 32-bit -> ~4-bit coefficients plus overheads: CR must beat 4x.
        assert!(net.compression_rate() > 4.0, "CR {}", net.compression_rate());
        assert!(net.total_params() > 0);
    }

    #[test]
    fn sparsity_is_weighted_by_params() {
        let c = cfg().with_vector_sparsity(VectorSparsity::KeepFraction(0.25)).unwrap();
        let net = compress_network(&small_net(), &c).unwrap();
        assert!(net.overall_sparsity() > 0.5, "sparsity {}", net.overall_sparsity());
    }

    #[test]
    fn reports_match_parts() {
        let net = compress_network(&small_net(), &cfg()).unwrap();
        for (parts, report) in net.parts.iter().zip(&net.reports) {
            let mut st = storage::SeStorage::default();
            for p in parts {
                st.accumulate(&storage::se_layer_storage(p));
            }
            assert_eq!(st, report.storage);
        }
    }

    #[test]
    fn streaming_variant_matches_owned() {
        let layers = small_net();
        let owned = compress_network(&layers, &cfg()).unwrap();
        let descs: Vec<_> = layers.iter().map(|(d, _)| d.clone()).collect();
        let streamed = compress_network_reports(&descs, &cfg(), |d| {
            Ok(layers
                .iter()
                .find(|(ld, _)| ld.name() == d.name())
                .map(|(_, w)| w.clone())
                .expect("known layer"))
        })
        .unwrap();
        assert_eq!(owned.reports, streamed);
    }

    #[test]
    fn error_identifies_layer() {
        let mut layers = small_net();
        layers[1].1 = Tensor::zeros(&[3, 3]); // wrong shape
        let err = compress_network(&layers, &cfg()).unwrap_err();
        assert!(err.to_string().contains("fc"), "error was {err}");
    }

    #[test]
    fn serialized_roundtrip_is_bit_identical() {
        let net = compress_network(&small_net(), &cfg()).unwrap();
        let bytes = net.to_bytes().unwrap();
        let back = CompressedNetwork::from_bytes(&bytes).unwrap();
        assert_eq!(net, back);
        // Parts decode to working SE layers.
        assert_eq!(back.parts[0][0].reconstruct_weights().unwrap().shape(), &[8, 3, 3, 3]);
        // Wrong payload kind and corrupt headers are rejected.
        assert!(CompressedNetwork::from_bytes(&bytes[..10]).is_err());
        let mut wrong = bytes.clone();
        wrong[6] = 1; // TraceSet tag
        assert!(CompressedNetwork::from_bytes(&wrong).is_err());
    }

    #[test]
    fn recon_error_reported_and_bounded() {
        let net = compress_network(&small_net(), &cfg()).unwrap();
        for r in &net.reports {
            assert!(r.recon_error.is_finite());
            assert!(r.recon_error < 0.6, "{}: {}", r.name, r.recon_error);
        }
        assert!(net.mean_recon_error() < 0.6);
    }
}
