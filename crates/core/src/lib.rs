//! The SmartExchange algorithm (ISCA 2020) — the paper's primary
//! contribution.
//!
//! SmartExchange represents each layer-wise DNN weight matrix `W ∈ R^{m×n}`
//! as the product of a small basis matrix `B ∈ R^{r×n}` and a large
//! coefficient matrix `Ce ∈ R^{m×r}` that is simultaneously
//!
//! 1. **sparse** — channel-wise and vector-wise (whole rows zeroed), and
//! 2. **readily quantized** — every non-zero entry is `±2^p`,
//!
//! so weights are *rebuilt* on-chip with cheap shift-and-add operations
//! instead of being fetched from expensive memory. This crate implements:
//!
//! * [`algorithm`] — the alternating heuristic of Algorithm 1
//!   (quantize → fit `B` → fit `Ce` → sparsify), with a per-iteration
//!   evolution trace (Fig. 9);
//! * [`layer`] — the per-layer application rules of Section III-C
//!   (CONV reshape, 1×1-CONV-as-FC, FC row reshape with padding/slicing);
//! * [`network`] — whole-network compression with storage accounting;
//! * [`pipeline`] — the deterministic parallel work queue that network
//!   compression (and the `se-models` trace generators) execute on;
//! * [`baselines`] — the compression baselines the paper compares against
//!   in Fig. 8 (magnitude/channel pruning, uniform and power-of-2
//!   quantization, low-rank decomposition).
//!
//! # Examples
//!
//! ```
//! use se_core::{algorithm, SeConfig};
//! use se_tensor::{rng, Mat};
//!
//! # fn main() -> Result<(), se_core::CoreError> {
//! let mut r = rng::seeded(7);
//! let w = rng::normal_mat(&mut r, 48, 3, 0.1);
//! let cfg = SeConfig::default();
//! let result = algorithm::decompose(&w, &cfg)?;
//! // Every coefficient is 0 or ±2^p:
//! assert!(result.ce.data().iter().all(|&x| cfg.po2().contains(x)));
//! // And the rebuilt weights stay close to the originals:
//! let rel = result.reconstruction_error(&w)?;
//! assert!(rel < 0.35, "relative error {rel}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod error;

pub mod algorithm;
pub mod baselines;
pub mod layer;
pub mod log;
pub mod network;
pub mod pipeline;
pub mod sparsify;

pub use config::{SeConfig, VectorSparsity};
pub use error::CoreError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
