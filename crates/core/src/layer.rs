//! Applying the SmartExchange algorithm to DNN layers (Section III-C).
//!
//! * **CONV, `R = S > 1`** — each of the `M` filters is reshaped to a
//!   `(C·R) × S` matrix and decomposed independently (parallelised along the
//!   output-channel axis, as the paper notes); matrices with many rows are
//!   sliced along the first dimension.
//! * **CONV, `R = S = 1`** — reshaped to `(M, C)` and treated as FC.
//! * **FC** — every weight row (length `C`, zero-padded to a multiple of
//!   `S`) is reshaped to a `(C/S) × S` matrix and decomposed.
//! * **Depth-wise CONV** — per-channel `R × S` kernels decompose as
//!   single-channel filters.
//! * **Squeeze-and-excite** — its two FC matrices are compressed with the
//!   FC rule.

use crate::{algorithm, sparsify, CoreError, Result, SeConfig};
use se_ir::{LayerDesc, LayerKind, SeLayer, SeLayout, SeSlice};
use se_tensor::{Mat, Tensor};

/// Splits `total` rows into chunks of at most `max_rows`, returning the
/// chunk boundaries (deterministic, near-equal sizes).
fn chunk_bounds(total: usize, max_rows: usize) -> Vec<(usize, usize)> {
    let chunks = total.div_ceil(max_rows).max(1);
    let base = total.div_ceil(chunks);
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    while start < total {
        let end = (start + base).min(total);
        out.push((start, end));
        start = end;
    }
    out
}

/// Decomposes one reshaped unit (a filter matrix or FC row matrix),
/// slicing it into row chunks and applying an optional per-row forced-zero
/// mask (from channel pruning).
fn decompose_unit(
    unit: &Mat,
    cfg: &SeConfig,
    forced_rows: Option<&[bool]>,
) -> Result<Vec<SeSlice>> {
    let bounds = chunk_bounds(unit.rows(), cfg.max_unit_rows());
    let mut slices = Vec::with_capacity(bounds.len());
    for &(r0, r1) in &bounds {
        let mut chunk = unit.row_slice(r0, r1);
        // Pre-zero channel-pruned rows so the group structure is respected
        // even when chunk boundaries split a channel.
        if let Some(mask) = forced_rows {
            for (i, row) in (r0..r1).enumerate() {
                if mask[row] {
                    chunk.row_mut(i).fill(0.0);
                }
            }
        }
        let group_mask = forced_rows.map(|mask| {
            // Convert the row mask into a per-row "channel" mask with group
            // size 1 semantics: decompose_with_channel_mask expects groups
            // of `cols` rows, so we instead mark rows via a synthetic mask
            // only when they align; otherwise rely on the pre-zeroing plus
            // per-iteration re-zeroing below.
            mask[r0..r1].to_vec()
        });
        let slice = decompose_chunk(&chunk, cfg, group_mask.as_deref())?;
        slices.push(slice);
    }
    Ok(slices)
}

/// Decomposes a chunk with per-row forced zeros.
fn decompose_chunk(chunk: &Mat, cfg: &SeConfig, forced: Option<&[bool]>) -> Result<SeSlice> {
    // `decompose_with_channel_mask` takes group-of-n masks; we need per-row
    // control, so emulate it: run the decomposition, then re-zero and refit
    // the basis if any forced row was refilled.
    let (mut d, _) = algorithm::decompose_with_channel_mask(chunk, cfg, None)?;
    if let Some(mask) = forced {
        let mut touched = false;
        for (i, &z) in mask.iter().enumerate() {
            if z && d.ce.row(i).iter().any(|&x| x != 0.0) {
                d.ce.row_mut(i).fill(0.0);
                touched = true;
            }
        }
        if touched {
            d.basis = algorithm::fit_basis(&d.ce, chunk, cfg.ridge())?;
        }
    }
    d.into_se_slice(cfg.po2())
}

/// Runs `f` over `0..units` on the [`crate::pipeline`] work queue,
/// returning per-unit results in order (lowest-index error on failure).
/// The thread budget comes from the caller (derived from
/// [`SeConfig::parallelism`], capped at 4 — per-unit work is too small to
/// feed more), so a network-level pipeline running many layer jobs
/// concurrently can force this inner level inline instead of
/// oversubscribing the machine (see `crate::pipeline::worker_config`).
/// Results are bit-identical for every budget: units are independent and
/// reassembled in unit order.
fn parallel_units<T, F>(units: usize, budget: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let indices: Vec<usize> = (0..units).collect();
    crate::pipeline::try_run_ordered(&indices, budget.clamp(1, 4), |_, &u| f(u))
}

/// Compresses a standard CONV weight tensor `(M, C, R, S)` with `R = S > 1`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidWeights`] for non-4-D or non-square-kernel
/// weights, and propagates decomposition failures.
pub fn compress_conv(w: &Tensor, cfg: &SeConfig) -> Result<SeLayer> {
    let shape = w.shape();
    if shape.len() != 4 || shape[2] != shape[3] || shape[2] < 2 {
        return Err(CoreError::InvalidWeights {
            reason: format!("expected (M,C,R,S) with R=S>1, found {shape:?}"),
        });
    }
    let (m, c, k) = (shape[0], shape[1], shape[2]);
    let unit_rows = c * k;
    let slices_per_filter = chunk_bounds(unit_rows, cfg.max_unit_rows()).len();

    let per_filter = parallel_units(m, cfg.parallelism(), |fi| {
        let data = &w.data()[fi * unit_rows * k..(fi + 1) * unit_rows * k];
        let unit = Mat::from_vec(data.to_vec(), unit_rows, k)?;
        // Channel pruning: one group of R rows per input channel.
        let forced = cfg.channel_prune_threshold().map(|t| {
            let mask = sparsify::channel_mask(&unit, k, t);
            let mut rows = vec![false; unit_rows];
            for (ch, &keep) in mask.iter().enumerate() {
                if !keep {
                    for r in &mut rows[ch * k..(ch + 1) * k] {
                        *r = true;
                    }
                }
            }
            rows
        });
        decompose_unit(&unit, cfg, forced.as_deref())
    })?;

    let layout =
        SeLayout::ConvPerFilter { out_channels: m, in_channels: c, kernel: k, slices_per_filter };
    Ok(SeLayer::new(layout, *cfg.po2(), per_filter.into_iter().flatten().collect())?)
}

/// Compresses a depth-wise CONV weight tensor `(C, R, S)` (one kernel per
/// channel, decomposed as `C` single-channel filters).
///
/// # Errors
///
/// Returns [`CoreError::InvalidWeights`] for non-3-D or non-square kernels.
pub fn compress_depthwise(w: &Tensor, cfg: &SeConfig) -> Result<SeLayer> {
    let shape = w.shape();
    if shape.len() != 3 || shape[1] != shape[2] || shape[1] < 2 {
        return Err(CoreError::InvalidWeights {
            reason: format!("expected (C,R,S) with R=S>1, found {shape:?}"),
        });
    }
    let (c, k) = (shape[0], shape[1]);
    let per_channel = parallel_units(c, cfg.parallelism(), |ci| {
        let data = &w.data()[ci * k * k..(ci + 1) * k * k];
        let unit = Mat::from_vec(data.to_vec(), k, k)?;
        decompose_unit(&unit, cfg, None)
    })?;
    let layout = SeLayout::ConvPerFilter {
        out_channels: c,
        in_channels: 1,
        kernel: k,
        slices_per_filter: 1,
    };
    Ok(SeLayer::new(layout, *cfg.po2(), per_channel.into_iter().flatten().collect())?)
}

/// Compresses an FC weight matrix `(M, C)` (also used for 1×1 CONV).
///
/// Each row is zero-padded to a multiple of `cfg.fc_width()` and reshaped to
/// a `(C_pad / S) × S` matrix before decomposition.
///
/// # Errors
///
/// Returns [`CoreError::InvalidWeights`] for empty matrices.
pub fn compress_fc(w: &Mat, cfg: &SeConfig) -> Result<SeLayer> {
    if w.is_empty() {
        return Err(CoreError::InvalidWeights { reason: "empty FC weight matrix".into() });
    }
    let (m, c) = (w.rows(), w.cols());
    let s = cfg.fc_width();
    let padded = c.div_ceil(s) * s;
    let unit_rows = padded / s;
    let slices_per_row = chunk_bounds(unit_rows, cfg.max_unit_rows()).len();

    let per_row = parallel_units(m, cfg.parallelism(), |ri| {
        let mut data = w.row(ri).to_vec();
        data.resize(padded, 0.0);
        let unit = Mat::from_vec(data, unit_rows, s)?;
        decompose_unit(&unit, cfg, None)
    })?;

    let layout = SeLayout::FcPerRow { out_features: m, in_features: c, width: s, slices_per_row };
    Ok(SeLayer::new(layout, *cfg.po2(), per_row.into_iter().flatten().collect())?)
}

/// Compresses a layer's weight tensor according to its descriptor,
/// returning one [`SeLayer`] per weight matrix (two for squeeze-excite).
///
/// Weight tensor conventions per [`LayerKind`]:
/// `(M, C, R, S)` for CONV, `(C, R, S)` for depth-wise, `(M, C)` for FC,
/// and `(2, channels, reduced)` for squeeze-excite (block 0 is the squeeze
/// FC transposed, block 1 the excite FC).
///
/// # Errors
///
/// Returns [`CoreError::InvalidWeights`] if the tensor does not match the
/// descriptor, and propagates decomposition failures.
pub fn compress_layer(desc: &LayerDesc, w: &Tensor, cfg: &SeConfig) -> Result<Vec<SeLayer>> {
    let expect = desc.weight_shape();
    if w.shape() != expect.as_slice() {
        return Err(CoreError::InvalidWeights {
            reason: format!(
                "layer {}: weights {:?} do not match descriptor shape {expect:?}",
                desc.name(),
                w.shape()
            ),
        });
    }
    match *desc.kind() {
        LayerKind::Conv2d { kernel, in_channels, out_channels, .. } => {
            if kernel == 1 {
                let mat = Mat::from_vec(w.data().to_vec(), out_channels, in_channels)?;
                Ok(vec![compress_fc(&mat, cfg)?])
            } else {
                Ok(vec![compress_conv(w, cfg)?])
            }
        }
        LayerKind::DepthwiseConv2d { .. } => Ok(vec![compress_depthwise(w, cfg)?]),
        LayerKind::Linear { in_features, out_features } => {
            let mat = Mat::from_vec(w.data().to_vec(), out_features, in_features)?;
            Ok(vec![compress_fc(&mat, cfg)?])
        }
        LayerKind::SqueezeExcite { channels, reduced } => {
            let block = channels * reduced;
            // Block 0 holds the squeeze FC as (channels, reduced) = W1ᵀ.
            let squeeze_t = Mat::from_vec(w.data()[..block].to_vec(), channels, reduced)?;
            let squeeze = squeeze_t.transpose(); // (reduced, channels)
            let excite = Mat::from_vec(w.data()[block..].to_vec(), channels, reduced)?;
            Ok(vec![compress_fc(&squeeze, cfg)?, compress_fc(&excite, cfg)?])
        }
    }
}

/// Rebuilds a layer's dense weight tensor from its compressed form,
/// inverting [`compress_layer`]'s conventions.
///
/// # Errors
///
/// Returns [`CoreError::InvalidWeights`] if the compressed parts do not
/// match the descriptor.
pub fn reconstruct_layer(desc: &LayerDesc, parts: &[SeLayer]) -> Result<Tensor> {
    let check_parts = |n: usize| -> Result<()> {
        if parts.len() != n {
            return Err(CoreError::InvalidWeights {
                reason: format!(
                    "layer {}: expected {n} compressed part(s), found {}",
                    desc.name(),
                    parts.len()
                ),
            });
        }
        Ok(())
    };
    match *desc.kind() {
        LayerKind::Conv2d { kernel, in_channels, out_channels, .. } => {
            check_parts(1)?;
            let t = parts[0].reconstruct_weights()?;
            if kernel == 1 {
                Ok(t.reshape(&[out_channels, in_channels, 1, 1])?)
            } else {
                Ok(t)
            }
        }
        LayerKind::DepthwiseConv2d { channels, kernel, .. } => {
            check_parts(1)?;
            let t = parts[0].reconstruct_weights()?;
            Ok(t.reshape(&[channels, kernel, kernel])?)
        }
        LayerKind::Linear { .. } => {
            check_parts(1)?;
            parts[0].reconstruct_weights().map_err(CoreError::from)
        }
        LayerKind::SqueezeExcite { channels, reduced } => {
            check_parts(2)?;
            let squeeze = parts[0].reconstruct_weights()?.to_mat()?; // (reduced, channels)
            let excite = parts[1].reconstruct_weights()?; // (channels, reduced)
            let mut data = squeeze.transpose().into_vec();
            data.extend_from_slice(excite.data());
            Ok(Tensor::from_vec(data, &[2, channels, reduced])?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VectorSparsity;
    use se_tensor::rng;

    fn cfg() -> SeConfig {
        SeConfig::default().with_max_iterations(8).unwrap()
    }

    fn rel_err(a: &Tensor, b: &Tensor) -> f32 {
        let d = a.sub(b).unwrap().norm();
        d / a.norm().max(1e-12)
    }

    #[test]
    fn chunk_bounds_cover_everything() {
        assert_eq!(chunk_bounds(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(chunk_bounds(8, 4), vec![(0, 4), (4, 8)]);
        assert_eq!(chunk_bounds(3, 100), vec![(0, 3)]);
        // Near-equal chunks rather than one tiny remainder.
        assert_eq!(chunk_bounds(9, 4), vec![(0, 3), (3, 6), (6, 9)]);
    }

    #[test]
    fn conv_compress_reconstruct_is_close() {
        let mut r = rng::seeded(31);
        let w = rng::kaiming_tensor(&mut r, &[8, 4, 3, 3], 4 * 9);
        let c = cfg().with_vector_sparsity(VectorSparsity::None).unwrap();
        let se = compress_conv(&w, &c).unwrap();
        let recon = se.reconstruct_weights().unwrap();
        assert_eq!(recon.shape(), w.shape());
        let err = rel_err(&w, &recon);
        assert!(err < 0.3, "relative error {err}");
    }

    #[test]
    fn conv_slicing_respects_max_rows() {
        let mut r = rng::seeded(37);
        let w = rng::kaiming_tensor(&mut r, &[2, 16, 3, 3], 16 * 9);
        let c = cfg().with_max_unit_rows(16).unwrap(); // 48 rows/filter -> 3 slices
        let se = compress_conv(&w, &c).unwrap();
        match se.layout() {
            SeLayout::ConvPerFilter { slices_per_filter, .. } => {
                assert_eq!(*slices_per_filter, 3)
            }
            other => panic!("unexpected layout {other:?}"),
        }
        assert_eq!(se.slices().len(), 6);
        assert!(se.slices().iter().all(|s| s.ce().rows() <= 16));
        let recon = se.reconstruct_weights().unwrap();
        assert_eq!(recon.shape(), w.shape());
    }

    #[test]
    fn fc_compress_handles_padding() {
        let mut r = rng::seeded(41);
        let w = rng::normal_mat(&mut r, 4, 10, 0.1); // 10 not divisible by 3
        let se = compress_fc(&w, &cfg()).unwrap();
        let recon = se.reconstruct_weights().unwrap();
        assert_eq!(recon.shape(), &[4, 10]);
        let werr = rel_err(&Tensor::from(w), &recon);
        assert!(werr < 0.45, "relative error {werr}");
    }

    #[test]
    fn depthwise_compress_roundtrip() {
        let mut r = rng::seeded(43);
        let w = rng::kaiming_tensor(&mut r, &[6, 3, 3], 9);
        let c = cfg().with_vector_sparsity(VectorSparsity::None).unwrap();
        let se = compress_depthwise(&w, &c).unwrap();
        let recon = se.reconstruct_weights().unwrap();
        assert_eq!(recon.shape(), &[6, 1, 3, 3]);
        // Repack through reconstruct_layer instead for the (C,R,S) shape.
        let desc = LayerDesc::new(
            "dw",
            LayerKind::DepthwiseConv2d { channels: 6, kernel: 3, stride: 1, padding: 1 },
            (8, 8),
        );
        let repacked = reconstruct_layer(&desc, &[se]).unwrap();
        assert_eq!(repacked.shape(), &[6, 3, 3]);
        let err = rel_err(&w, &repacked);
        assert!(err < 0.35, "relative error {err}");
    }

    #[test]
    fn pointwise_conv_goes_through_fc_path() {
        let mut r = rng::seeded(47);
        let desc = LayerDesc::new(
            "pw",
            LayerKind::Conv2d { in_channels: 9, out_channels: 4, kernel: 1, stride: 1, padding: 0 },
            (8, 8),
        );
        let w = rng::kaiming_tensor(&mut r, &[4, 9, 1, 1], 9);
        let parts = compress_layer(&desc, &w, &cfg()).unwrap();
        assert_eq!(parts.len(), 1);
        assert!(matches!(parts[0].layout(), SeLayout::FcPerRow { .. }));
        let recon = reconstruct_layer(&desc, &parts).unwrap();
        assert_eq!(recon.shape(), &[4, 9, 1, 1]);
    }

    #[test]
    fn squeeze_excite_produces_two_parts() {
        let mut r = rng::seeded(53);
        let desc =
            LayerDesc::new("se", LayerKind::SqueezeExcite { channels: 12, reduced: 3 }, (8, 8));
        let w = rng::kaiming_tensor(&mut r, &[2, 12, 3], 12);
        let parts = compress_layer(&desc, &w, &cfg()).unwrap();
        assert_eq!(parts.len(), 2);
        let recon = reconstruct_layer(&desc, &parts).unwrap();
        assert_eq!(recon.shape(), &[2, 12, 3]);
        let err = rel_err(&w, &recon);
        assert!(err < 0.5, "relative error {err}");
    }

    #[test]
    fn compress_layer_validates_shape() {
        let desc = LayerDesc::new(
            "c",
            LayerKind::Conv2d { in_channels: 3, out_channels: 8, kernel: 3, stride: 1, padding: 1 },
            (8, 8),
        );
        let wrong = Tensor::zeros(&[8, 3, 5, 5]);
        assert!(matches!(
            compress_layer(&desc, &wrong, &cfg()),
            Err(CoreError::InvalidWeights { .. })
        ));
    }

    #[test]
    fn channel_pruning_zeroes_weak_channels() {
        let mut r = rng::seeded(59);
        // Build a conv filter where channel 1 is ~100x weaker.
        let mut w = rng::kaiming_tensor(&mut r, &[1, 3, 3, 3], 27);
        for kr in 0..3 {
            for ks in 0..3 {
                let v = w.at(&[0, 1, kr, ks]) * 0.001;
                w.set(&[0, 1, kr, ks], v);
            }
        }
        let c = cfg().with_channel_prune(Some(0.2)).unwrap();
        let se = compress_conv(&w, &c).unwrap();
        let recon = se.reconstruct_weights().unwrap();
        for kr in 0..3 {
            for ks in 0..3 {
                assert_eq!(recon.at(&[0, 1, kr, ks]), 0.0, "pruned channel must stay zero");
            }
        }
    }

    #[test]
    fn reconstruct_layer_part_count_checked() {
        let desc =
            LayerDesc::new("fc", LayerKind::Linear { in_features: 6, out_features: 2 }, (1, 1));
        assert!(matches!(reconstruct_layer(&desc, &[]), Err(CoreError::InvalidWeights { .. })));
    }

    #[test]
    fn vector_sparsity_visible_in_layout_stats() {
        let mut r = rng::seeded(61);
        let w = rng::kaiming_tensor(&mut r, &[4, 8, 3, 3], 72);
        let c = cfg().with_vector_sparsity(VectorSparsity::KeepFraction(0.5)).unwrap();
        let se = compress_conv(&w, &c).unwrap();
        assert!(se.vector_sparsity() >= 0.45, "sparsity {}", se.vector_sparsity());
    }
}
