//! A tiny leveled stderr logger honoring `SE_LOG`.
//!
//! The CLI's progress notes used to be ad-hoc `eprintln!` calls; they now
//! go through the [`crate::se_info!`]-family macros, which check the
//! process-wide level (parsed once from `SE_LOG=error|warn|info|debug`,
//! default `warn`) before formatting anything. Everything still goes to
//! **stderr** — stdout carries only report output, so CI stdout diffs
//! stay clean by construction regardless of the level.

use std::sync::OnceLock;

/// Log severity, ordered: a message is printed when its level is at or
/// below the configured maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error,
    /// Suspicious conditions worth surfacing by default.
    Warn,
    /// Progress notes (the former ad-hoc stderr chatter).
    Info,
    /// Internal detail for debugging.
    Debug,
}

impl Level {
    /// Parses an `SE_LOG` value (case-insensitive); `None` when the
    /// string names no level.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

static MAX_LEVEL: OnceLock<Level> = OnceLock::new();

/// The process-wide maximum level: `SE_LOG` parsed once on first use
/// (unparseable or unset values fall back to [`Level::Warn`]).
pub fn max_level() -> Level {
    *MAX_LEVEL.get_or_init(|| {
        std::env::var("SE_LOG").ok().and_then(|v| Level::parse(&v)).unwrap_or(Level::Warn)
    })
}

/// Whether a message at `level` would be printed. The macros check this
/// before formatting, so disabled levels cost one comparison.
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

/// Logs to stderr at error level (printed unless `SE_LOG` is invalidly strict).
#[macro_export]
macro_rules! se_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) { eprintln!($($arg)*); }
    };
}

/// Logs to stderr at warn level (the default maximum).
#[macro_export]
macro_rules! se_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) { eprintln!($($arg)*); }
    };
}

/// Logs to stderr at info level (silent unless `SE_LOG=info|debug`).
#[macro_export]
macro_rules! se_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) { eprintln!($($arg)*); }
    };
}

/// Logs to stderr at debug level (silent unless `SE_LOG=debug`).
#[macro_export]
macro_rules! se_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) { eprintln!($($arg)*); }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_case_insensitively() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" Info "), Some(Level::Info));
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn severity_orders_error_lowest() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn enabled_respects_the_cached_maximum() {
        // The cache is process-wide; whatever it resolved to, the
        // ordering invariants hold (error is never below the maximum).
        assert!(enabled(Level::Error));
        assert_eq!(enabled(Level::Debug), max_level() >= Level::Debug);
    }
}
