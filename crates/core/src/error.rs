use std::fmt;

/// Errors produced by the SmartExchange algorithm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration value was out of its valid range.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The input weights were unusable (wrong rank, empty, non-finite).
    InvalidWeights {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying tensor/linear-algebra operation failed.
    Tensor(se_tensor::TensorError),
    /// An interchange-format operation failed.
    Ir(se_ir::IrError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::InvalidWeights { reason } => write!(f, "invalid weights: {reason}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Ir(e) => write!(f, "format error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<se_tensor::TensorError> for CoreError {
    fn from(e: se_tensor::TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<se_ir::IrError> for CoreError {
    fn from(e: se_ir::IrError) -> Self {
        CoreError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::InvalidConfig { reason: "x".into() }.to_string().contains("x"));
        assert!(CoreError::Tensor(se_tensor::TensorError::Singular)
            .to_string()
            .contains("singular"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e = CoreError::Ir(se_ir::IrError::InvalidPo2 { reason: "r".into() });
        assert!(e.source().is_some());
    }
}
