//! Compression baselines the paper benchmarks SmartExchange against in
//! Fig. 8 and Section V-A:
//!
//! * element-wise **magnitude pruning** (Han et al.-style);
//! * structured **channel pruning** (Network-Slimming / ThiNet-style);
//! * **uniform fixed-point quantization** (DoReFa / S8 / FP8 / WAGEUBN
//!   stand-ins at the matching bit widths);
//! * **power-of-2 quantization alone** (the \[40\] comparison);
//! * **low-rank decomposition alone** (truncated SVD).
//!
//! Each baseline returns the dense weights to substitute back into a model
//! (for accuracy measurement) plus its storage cost in bits (for the model-
//! size axis). Storage follows each family's standard accounting: pruned
//! models store non-zeros + a 1-bit position bitmap, quantized models store
//! every weight at the reduced width, low-rank stores both factors at FP32.

use crate::{CoreError, Result};
use se_ir::Po2Set;
use se_tensor::{linalg, Mat, Tensor};

/// A baseline compression outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// The compressed weights, densified back to the original shape.
    pub weights: Tensor,
    /// Total storage of the compressed representation, in bits.
    pub storage_bits: u64,
}

impl BaselineResult {
    /// Model-size in megabytes.
    pub fn megabytes(&self) -> f64 {
        self.storage_bits as f64 / 8.0 / (1024.0 * 1024.0)
    }
}

fn check_fraction(f: f32, what: &str) -> Result<()> {
    if !(0.0..=1.0).contains(&f) {
        return Err(CoreError::InvalidConfig {
            reason: format!("{what} fraction {f} must be in [0, 1]"),
        });
    }
    Ok(())
}

/// Element-wise magnitude pruning: keeps the `keep_fraction` largest-|w|
/// entries, zeroing the rest. Storage: kept weights at FP32 plus a 1-bit
/// presence bitmap per position.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for fractions outside `[0, 1]`.
pub fn magnitude_prune(w: &Tensor, keep_fraction: f32) -> Result<BaselineResult> {
    check_fraction(keep_fraction, "keep")?;
    let n = w.len();
    let keep = ((n as f64) * f64::from(keep_fraction)).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        w.data()[b].abs().partial_cmp(&w.data()[a].abs()).expect("finite weights")
    });
    let mut out = vec![0.0f32; n];
    for &i in order.iter().take(keep) {
        out[i] = w.data()[i];
    }
    let weights = Tensor::from_vec(out, w.shape())?;
    let storage_bits = keep as u64 * 32 + n as u64;
    Ok(BaselineResult { weights, storage_bits })
}

/// Structured channel pruning for CONV weights `(M, C, R, S)`: keeps the
/// `keep_fraction` output channels with the largest L2 norm, zeroing the
/// others. Storage: kept filters at FP32, no index overhead (the pruned
/// model is simply narrower, as in ThiNet).
///
/// # Errors
///
/// Returns [`CoreError::InvalidWeights`] for non-4-D tensors and
/// [`CoreError::InvalidConfig`] for bad fractions.
pub fn channel_prune(w: &Tensor, keep_fraction: f32) -> Result<BaselineResult> {
    check_fraction(keep_fraction, "keep")?;
    let shape = w.shape().to_vec();
    if shape.len() != 4 {
        return Err(CoreError::InvalidWeights {
            reason: format!("channel pruning expects (M,C,R,S), found {shape:?}"),
        });
    }
    let m = shape[0];
    let per = shape[1] * shape[2] * shape[3];
    let keep = ((m as f64) * f64::from(keep_fraction)).round() as usize;
    let mut norms: Vec<(usize, f32)> = (0..m)
        .map(|i| {
            let fs = &w.data()[i * per..(i + 1) * per];
            (i, fs.iter().map(|&x| x * x).sum::<f32>())
        })
        .collect();
    norms.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
    let kept: std::collections::HashSet<usize> = norms.iter().take(keep).map(|&(i, _)| i).collect();
    let mut out = w.data().to_vec();
    for i in 0..m {
        if !kept.contains(&i) {
            out[i * per..(i + 1) * per].fill(0.0);
        }
    }
    Ok(BaselineResult {
        weights: Tensor::from_vec(out, &shape)?,
        storage_bits: (keep * per) as u64 * 32,
    })
}

/// Uniform symmetric fixed-point quantization at `bits` bits per weight.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for `bits` outside `2..=16`.
pub fn uniform_quantize(w: &Tensor, bits: u32) -> Result<BaselineResult> {
    if !(2..=16).contains(&bits) {
        return Err(CoreError::InvalidConfig {
            reason: format!("uniform quantization bits {bits} must be in 2..=16"),
        });
    }
    let qmax = ((1u32 << (bits - 1)) - 1) as f32;
    let max_abs = w.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
    let weights = w.map(|x| (x / scale).round().clamp(-qmax, qmax) * scale);
    Ok(BaselineResult { weights, storage_bits: w.len() as u64 * u64::from(bits) })
}

/// Power-of-2 quantization alone (no decomposition, no structured
/// sparsity): every weight is scaled into the alphabet's range and rounded
/// to the nearest `±2^p` (or zero).
///
/// # Errors
///
/// Never fails for finite inputs; propagates alphabet errors otherwise.
pub fn po2_quantize(w: &Tensor, po2: &Po2Set) -> Result<BaselineResult> {
    let max_abs = w.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let top = (po2.max_exp() as f32).exp2();
    let scale = if max_abs > 0.0 { max_abs / top } else { 1.0 };
    let weights = w.map(|x| po2.quantize(x / scale) * scale);
    Ok(BaselineResult { weights, storage_bits: w.len() as u64 * u64::from(po2.code_bits()) })
}

/// Low-rank (decomposition-alone) compression: the best rank-`rank`
/// approximation of a 2-D weight matrix via SVD, stored as the two FP32
/// factors.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if `rank` is zero or exceeds
/// `min(m, n)`; propagates SVD failures.
pub fn low_rank(w: &Mat, rank: usize) -> Result<BaselineResult> {
    let max_rank = w.rows().min(w.cols());
    if rank == 0 || rank > max_rank {
        return Err(CoreError::InvalidConfig {
            reason: format!("rank {rank} must be in 1..={max_rank}"),
        });
    }
    let svd = linalg::svd(w)?;
    let approx = svd.truncate(rank)?;
    let storage_bits = ((w.rows() + w.cols()) * rank) as u64 * 32;
    Ok(BaselineResult { weights: approx.into(), storage_bits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_tensor::rng;

    fn tensor(n: usize, seed: u64) -> Tensor {
        let mut r = rng::seeded(seed);
        rng::normal_tensor(&mut r, &[n], 1.0)
    }

    #[test]
    fn magnitude_prune_keeps_largest() {
        let w = Tensor::from_vec(vec![0.1, -5.0, 0.2, 3.0], &[4]).unwrap();
        let r = magnitude_prune(&w, 0.5).unwrap();
        assert_eq!(r.weights.data(), &[0.0, -5.0, 0.0, 3.0]);
        assert_eq!(r.storage_bits, 2 * 32 + 4);
    }

    #[test]
    fn magnitude_prune_extremes() {
        let w = tensor(16, 1);
        assert_eq!(magnitude_prune(&w, 1.0).unwrap().weights, w);
        assert_eq!(magnitude_prune(&w, 0.0).unwrap().weights.sparsity(), 1.0);
        assert!(magnitude_prune(&w, 1.5).is_err());
    }

    #[test]
    fn channel_prune_zeroes_weak_filters() {
        let mut w = Tensor::zeros(&[3, 1, 2, 2]);
        for (i, scale) in [(0usize, 1.0f32), (1, 10.0), (2, 0.1)] {
            for j in 0..4 {
                w.data_mut()[i * 4 + j] = scale;
            }
        }
        let r = channel_prune(&w, 0.34).unwrap(); // keep 1 of 3
        assert!(r.weights.data()[4..8].iter().all(|&x| x == 10.0));
        assert!(r.weights.data()[0..4].iter().all(|&x| x == 0.0));
        assert_eq!(r.storage_bits, 4 * 32);
    }

    #[test]
    fn channel_prune_needs_4d() {
        assert!(channel_prune(&tensor(8, 2), 0.5).is_err());
    }

    #[test]
    fn uniform_quantize_error_scales_with_bits() {
        let w = tensor(512, 3);
        let e8 = uniform_quantize(&w, 8).unwrap().weights.sub(&w).unwrap().norm();
        let e4 = uniform_quantize(&w, 4).unwrap().weights.sub(&w).unwrap().norm();
        let e2 = uniform_quantize(&w, 2).unwrap().weights.sub(&w).unwrap().norm();
        assert!(e8 < e4 && e4 < e2, "{e8} {e4} {e2}");
        assert!(uniform_quantize(&w, 1).is_err());
    }

    #[test]
    fn po2_quantize_produces_scaled_powers() {
        let w = Tensor::from_vec(vec![1.0, 0.5, 0.26, -0.12], &[4]).unwrap();
        let po2 = Po2Set::default();
        let r = po2_quantize(&w, &po2).unwrap();
        // scale = 1.0; outputs must be in the alphabet.
        for &x in r.weights.data() {
            assert!(po2.contains(x), "{x} not po2");
        }
        assert_eq!(r.storage_bits, 4 * 4);
    }

    #[test]
    fn low_rank_reduces_error_with_rank() {
        let mut r = rng::seeded(9);
        let w = rng::normal_mat(&mut r, 16, 8, 1.0);
        let full = low_rank(&w, 8).unwrap();
        let e_full = full.weights.sub(&w.clone().into()).unwrap().norm();
        let r2 = low_rank(&w, 2).unwrap();
        let e2 = r2.weights.sub(&w.clone().into()).unwrap().norm();
        assert!(e_full < 1e-2, "full-rank error {e_full}");
        assert!(e2 > e_full);
        assert_eq!(r2.storage_bits, (16 + 8) * 2 * 32);
        assert!(low_rank(&w, 0).is_err());
        assert!(low_rank(&w, 9).is_err());
    }

    #[test]
    fn storage_ordering_matches_families() {
        // For the same tensor: 4-bit po2 < 8-bit uniform < FP32 dense.
        let w = tensor(1000, 5);
        let po2 = po2_quantize(&w, &Po2Set::default()).unwrap();
        let u8b = uniform_quantize(&w, 8).unwrap();
        assert!(po2.storage_bits < u8b.storage_bits);
        assert!(u8b.storage_bits < 1000 * 32);
        assert!(po2.megabytes() < u8b.megabytes());
    }
}
