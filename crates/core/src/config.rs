use crate::{CoreError, Result};
use se_ir::Po2Set;

/// The vector-wise (row) sparsification policy for the coefficient matrix
/// `Ce` (Step 3 of Algorithm 1).
///
/// The paper uses manually-controlled per-layer hard thresholds
/// ("we use hard thresholds for channel and vector-wise sparsity … for
/// implementation convenience"); [`VectorSparsity::Threshold`] reproduces
/// that. [`VectorSparsity::KeepFraction`] instead targets an exact sparsity
/// ratio, which is what the paper's sparsity-sweep experiment (Fig. 14)
/// needs, and corresponds to choosing `Sc` in Eq. (2) directly.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum VectorSparsity {
    /// No vector-wise sparsification.
    None,
    /// Zero every `Ce` row whose root-mean-square falls below this absolute
    /// threshold (the paper's `θ`, e.g. `4e-3` for VGG19/CIFAR-10).
    Threshold(f32),
    /// Keep only the given fraction of rows (by L2 norm), zeroing the rest;
    /// `KeepFraction(0.4)` produces 60% vector-wise sparsity.
    KeepFraction(f32),
    /// Zero rows whose RMS falls below `fraction ×` the mean RMS of the
    /// currently non-zero rows — a scale-free version of the paper's
    /// per-layer manual thresholds that works across layers of very
    /// different weight magnitudes.
    RelativeThreshold(f32),
}

impl VectorSparsity {
    fn validate(&self) -> Result<()> {
        match *self {
            VectorSparsity::None => Ok(()),
            VectorSparsity::Threshold(t) if t.is_finite() && t >= 0.0 => Ok(()),
            VectorSparsity::Threshold(t) => Err(CoreError::InvalidConfig {
                reason: format!("vector sparsity threshold {t} must be finite and >= 0"),
            }),
            VectorSparsity::KeepFraction(f) if (0.0..=1.0).contains(&f) => Ok(()),
            VectorSparsity::KeepFraction(f) => Err(CoreError::InvalidConfig {
                reason: format!("keep fraction {f} must be in [0, 1]"),
            }),
            VectorSparsity::RelativeThreshold(f) if f.is_finite() && f >= 0.0 => Ok(()),
            VectorSparsity::RelativeThreshold(f) => Err(CoreError::InvalidConfig {
                reason: format!("relative threshold {f} must be finite and >= 0"),
            }),
        }
    }
}

/// Configuration of the SmartExchange algorithm.
///
/// Defaults follow the paper: 4-bit power-of-2 coefficients, 30 iterations,
/// `tol = 1e-10`, FC reshape width `S = 3`, threshold-based vector sparsity
/// with `θ = 4e-3` (the VGG19/CIFAR-10 setting of Section III-C).
///
/// # Examples
///
/// ```
/// use se_core::{SeConfig, VectorSparsity};
///
/// # fn main() -> Result<(), se_core::CoreError> {
/// let cfg = SeConfig::default()
///     .with_max_iterations(10)?
///     .with_vector_sparsity(VectorSparsity::KeepFraction(0.5))?;
/// assert_eq!(cfg.max_iterations(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SeConfig {
    po2: Po2Set,
    max_iterations: usize,
    tol: f32,
    ridge: f32,
    vector_sparsity: VectorSparsity,
    channel_prune_threshold: Option<f32>,
    fc_width: usize,
    max_unit_rows: usize,
    quantize_basis: bool,
    parallelism: usize,
}

impl Default for SeConfig {
    fn default() -> Self {
        SeConfig {
            po2: Po2Set::default(),
            max_iterations: 30,
            tol: 1e-10,
            ridge: 1e-6,
            vector_sparsity: VectorSparsity::Threshold(4e-3),
            channel_prune_threshold: None,
            fc_width: 3,
            max_unit_rows: 768,
            quantize_basis: true,
            parallelism: default_parallelism(),
        }
    }
}

/// The default worker count for the parallel work queue: the
/// `SE_PARALLELISM` environment variable when set to a positive integer
/// (CI pins it to enforce bit-identical results across worker counts),
/// otherwise every available core (layers are independent jobs; see
/// [`crate::pipeline`]).
fn default_parallelism() -> usize {
    match std::env::var("SE_PARALLELISM").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

impl SeConfig {
    /// The power-of-2 alphabet for `Ce` entries.
    pub fn po2(&self) -> &Po2Set {
        &self.po2
    }

    /// Maximum alternating iterations (paper: 30).
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Convergence tolerance on the quantization difference `‖δ(Ce)‖`
    /// (paper: `1e-10`).
    pub fn tol(&self) -> f32 {
        self.tol
    }

    /// Tikhonov ridge added to the least-squares normal matrices so
    /// fully-pruned rows/columns cannot make them singular.
    pub fn ridge(&self) -> f32 {
        self.ridge
    }

    /// Vector-wise sparsification policy.
    pub fn vector_sparsity(&self) -> VectorSparsity {
        self.vector_sparsity
    }

    /// Channel-pruning threshold (fraction of the mean channel saliency
    /// below which a channel is pruned), or `None` to skip channel pruning.
    pub fn channel_prune_threshold(&self) -> Option<f32> {
        self.channel_prune_threshold
    }

    /// Reshape width `S` for FC layers and 1×1 CONVs (paper: the CONV
    /// kernel size, i.e. 3).
    pub fn fc_width(&self) -> usize {
        self.fc_width
    }

    /// Maximum rows per decomposition unit before slicing along the first
    /// dimension (Section III-C: "sliced into smaller matrices along the
    /// first dimension" when `S×C ≫ S`).
    pub fn max_unit_rows(&self) -> usize {
        self.max_unit_rows
    }

    /// Whether to quantize the basis matrices to 8-bit fixed point at the
    /// end (the stored representation the paper's CR accounting assumes).
    pub fn quantize_basis(&self) -> bool {
        self.quantize_basis
    }

    /// Sets the power-of-2 alphabet.
    pub fn with_po2(mut self, po2: Po2Set) -> Self {
        self.po2 = po2;
        self
    }

    /// Sets the iteration budget.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `n == 0`.
    pub fn with_max_iterations(mut self, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "max_iterations must be at least 1".into(),
            });
        }
        self.max_iterations = n;
        Ok(self)
    }

    /// Sets the convergence tolerance.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for negative or non-finite
    /// tolerances.
    pub fn with_tol(mut self, tol: f32) -> Result<Self> {
        if !tol.is_finite() || tol < 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("tol {tol} must be finite and >= 0"),
            });
        }
        self.tol = tol;
        Ok(self)
    }

    /// Sets the vector-wise sparsification policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for out-of-range parameters.
    pub fn with_vector_sparsity(mut self, v: VectorSparsity) -> Result<Self> {
        v.validate()?;
        self.vector_sparsity = v;
        self.validate_self()
    }

    /// Enables channel pruning with the given relative threshold (channels
    /// whose saliency is below `threshold ×` the mean saliency are pruned),
    /// or disables it with `None`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for negative or non-finite
    /// thresholds.
    pub fn with_channel_prune(mut self, threshold: Option<f32>) -> Result<Self> {
        if let Some(t) = threshold {
            if !t.is_finite() || t < 0.0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!("channel prune threshold {t} must be finite and >= 0"),
                });
            }
        }
        self.channel_prune_threshold = threshold;
        Ok(self)
    }

    /// Sets the FC reshape width `S`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `s == 0`.
    pub fn with_fc_width(mut self, s: usize) -> Result<Self> {
        if s == 0 {
            return Err(CoreError::InvalidConfig { reason: "fc_width must be positive".into() });
        }
        self.fc_width = s;
        Ok(self)
    }

    /// Sets the slicing bound (rows per decomposition unit).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `rows == 0`.
    pub fn with_max_unit_rows(mut self, rows: usize) -> Result<Self> {
        if rows == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "max_unit_rows must be positive".into(),
            });
        }
        self.max_unit_rows = rows;
        Ok(self)
    }

    /// Enables or disables final 8-bit basis quantization.
    pub fn with_quantize_basis(mut self, q: bool) -> Self {
        self.quantize_basis = q;
        self
    }

    /// Worker-thread count for whole-network compression (default: all
    /// available cores). Results are bit-identical for every value; see
    /// [`crate::pipeline`].
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Sets the worker-thread count for whole-network compression.
    ///
    /// `1` forces the fully serial path; results are bit-identical for
    /// every value (only wall-clock time changes).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `n == 0`.
    pub fn with_parallelism(mut self, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "parallelism must be at least 1".into(),
            });
        }
        self.parallelism = n;
        Ok(self)
    }

    fn validate_self(self) -> Result<Self> {
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SeConfig::default();
        assert_eq!(c.max_iterations(), 30);
        assert_eq!(c.tol(), 1e-10);
        assert_eq!(c.fc_width(), 3);
        assert_eq!(c.po2().code_bits(), 4);
        assert!(matches!(c.vector_sparsity(), VectorSparsity::Threshold(t) if t == 4e-3));
        assert!(c.quantize_basis());
    }

    #[test]
    fn builder_validation() {
        assert!(SeConfig::default().with_max_iterations(0).is_err());
        assert!(SeConfig::default().with_tol(-1.0).is_err());
        assert!(SeConfig::default().with_tol(f32::NAN).is_err());
        assert!(SeConfig::default()
            .with_vector_sparsity(VectorSparsity::KeepFraction(1.5))
            .is_err());
        assert!(SeConfig::default().with_vector_sparsity(VectorSparsity::Threshold(-0.1)).is_err());
        assert!(SeConfig::default().with_channel_prune(Some(-1.0)).is_err());
        assert!(SeConfig::default().with_fc_width(0).is_err());
        assert!(SeConfig::default().with_max_unit_rows(0).is_err());
        assert!(SeConfig::default().with_parallelism(0).is_err());
    }

    #[test]
    fn parallelism_defaults_to_available_cores() {
        let c = SeConfig::default();
        assert!(c.parallelism() >= 1);
        let forced = SeConfig::default().with_parallelism(4).unwrap();
        assert_eq!(forced.parallelism(), 4);
    }

    #[test]
    fn builder_chains() {
        let c = SeConfig::default()
            .with_max_iterations(5)
            .unwrap()
            .with_vector_sparsity(VectorSparsity::KeepFraction(0.4))
            .unwrap()
            .with_quantize_basis(false);
        assert_eq!(c.max_iterations(), 5);
        assert!(!c.quantize_basis());
    }
}
