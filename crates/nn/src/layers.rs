//! Trainable layers with exact single-sample backpropagation.
//!
//! Layers operate on single-sample tensors (`(C, H, W)` spatial or `(N,)`
//! flat); mini-batches are handled by gradient accumulation in the training
//! loop. This keeps the implementation small and exactly testable with
//! finite differences, and is fast enough for the scaled-down accuracy
//! experiments (see DESIGN.md).

use crate::{NnError, Result};
use se_tensor::conv::{col2im, conv2d, im2col, Conv2dGeom};
use se_tensor::{rng, Mat, Tensor};

/// A 2-D convolution layer (square kernels, symmetric padding).
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    geom: Conv2dGeom,
    weights: Tensor,
    bias: Vec<f32>,
    grad_w: Tensor,
    grad_b: Vec<f32>,
    vel_w: Tensor,
    vel_b: Vec<f32>,
    cache: Option<(usize, usize, Mat)>, // input H, W, im2col matrix
}

/// A fully-connected layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    weights: Tensor, // (out, in)
    bias: Vec<f32>,
    grad_w: Tensor,
    grad_b: Vec<f32>,
    vel_w: Tensor,
    vel_b: Vec<f32>,
    cache: Option<Tensor>, // input
}

/// Per-channel batch normalisation with running statistics.
///
/// Training uses per-sample channel statistics (and updates the running
/// averages); inference uses the running averages. The backward pass treats
/// the normalisation statistics as constants — the frozen-statistics
/// approximation noted in DESIGN.md, adequate for the small models trained
/// here.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm2d {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    eps: f32,
    momentum: f32,
    grad_gamma: Vec<f32>,
    grad_beta: Vec<f32>,
    cache: Option<(Tensor, Vec<f32>, Vec<f32>)>, // normalised x, mean, var
}

/// One trainable or structural layer of a [`Sequential`](crate::model::Sequential)
/// model.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variants documented via constructors below
pub enum Layer {
    Conv2d(Conv2d),
    Linear(Linear),
    BatchNorm2d(BatchNorm2d),
    ReLU { mask: Option<Vec<bool>> },
    MaxPool2d { size: usize, cache: Option<(Vec<usize>, Vec<usize>)> }, // shape, argmax
    GlobalAvgPool { cache: Option<Vec<usize>> },
    Flatten { cache: Option<Vec<usize>> },
}

impl Layer {
    /// A convolution layer with Kaiming-initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for zero-sized dimensions or stride.
    pub fn conv2d(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Result<Layer> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::InvalidLayer {
                reason: "conv2d dimensions and stride must be positive".into(),
            });
        }
        let geom = Conv2dGeom {
            in_channels,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        };
        let mut r = rng::seeded(seed);
        let shape = [out_channels, in_channels, kernel, kernel];
        let fan_in = in_channels * kernel * kernel;
        Ok(Layer::Conv2d(Conv2d {
            geom,
            weights: rng::kaiming_tensor(&mut r, &shape, fan_in),
            bias: vec![0.0; out_channels],
            grad_w: Tensor::zeros(&shape),
            grad_b: vec![0.0; out_channels],
            vel_w: Tensor::zeros(&shape),
            vel_b: vec![0.0; out_channels],
            cache: None,
        }))
    }

    /// A fully-connected layer with Kaiming-initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for zero-sized dimensions.
    pub fn linear(in_features: usize, out_features: usize, seed: u64) -> Result<Layer> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidLayer {
                reason: "linear dimensions must be positive".into(),
            });
        }
        let mut r = rng::seeded(seed);
        let shape = [out_features, in_features];
        Ok(Layer::Linear(Linear {
            weights: rng::kaiming_tensor(&mut r, &shape, in_features),
            bias: vec![0.0; out_features],
            grad_w: Tensor::zeros(&shape),
            grad_b: vec![0.0; out_features],
            vel_w: Tensor::zeros(&shape),
            vel_b: vec![0.0; out_features],
            cache: None,
        }))
    }

    /// A batch-normalisation layer over `channels` feature maps.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for zero channels.
    pub fn batch_norm(channels: usize) -> Result<Layer> {
        if channels == 0 {
            return Err(NnError::InvalidLayer { reason: "batch_norm needs channels".into() });
        }
        Ok(Layer::BatchNorm2d(BatchNorm2d {
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            eps: 1e-5,
            momentum: 0.1,
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            cache: None,
        }))
    }

    /// A ReLU activation.
    pub fn relu() -> Layer {
        Layer::ReLU { mask: None }
    }

    /// A max-pooling layer with `size × size` windows and matching stride.
    pub fn max_pool(size: usize) -> Layer {
        Layer::MaxPool2d { size: size.max(1), cache: None }
    }

    /// A global average pool `(C, H, W) → (C,)`.
    pub fn global_avg_pool() -> Layer {
        Layer::GlobalAvgPool { cache: None }
    }

    /// A flattening layer `(C, H, W) → (C·H·W,)`.
    pub fn flatten() -> Layer {
        Layer::Flatten { cache: None }
    }

    /// Inference forward pass (no caching, `&self`).
    ///
    /// # Errors
    ///
    /// Returns shape errors when `x` does not match the layer.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Conv2d(c) => {
                let out = conv2d(&c.weights, x, &c.geom)?;
                Ok(add_channel_bias(out, &c.bias))
            }
            Layer::Linear(l) => linear_forward(l, x),
            Layer::BatchNorm2d(b) => bn_forward(b, x, false).map(|(y, _, _)| y),
            Layer::ReLU { .. } => Ok(x.map(|v| v.max(0.0))),
            Layer::MaxPool2d { size, .. } => max_pool_forward(x, *size).map(|(y, _)| y),
            Layer::GlobalAvgPool { .. } => global_avg_forward(x),
            Layer::Flatten { .. } => Ok(x.reshape(&[x.len()])?),
        }
    }

    /// Training forward pass: computes the output and caches what backward
    /// needs.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `x` does not match the layer.
    pub fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Conv2d(c) => {
                let (h, w) = (x.shape()[1], x.shape()[2]);
                let cols = im2col(x, &c.geom)?;
                let w_mat = weights_as_mat(&c.weights)?;
                let out = w_mat.matmul(&cols)?;
                let (e, f) = c.geom.output_size(h, w)?;
                c.cache = Some((h, w, cols));
                let out = Tensor::from_vec(out.into_vec(), &[c.geom.out_channels, e, f])?;
                Ok(add_channel_bias(out, &c.bias))
            }
            Layer::Linear(l) => {
                l.cache = Some(x.clone());
                linear_forward(l, x)
            }
            Layer::BatchNorm2d(b) => {
                let (y, mean, var) = bn_forward(b, x, true)?;
                b.update_running(&mean, &var);
                let xhat = compute_xhat(x, &mean, &var, b.eps);
                b.cache = Some((xhat, mean, var));
                Ok(y)
            }
            Layer::ReLU { mask } => {
                *mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
                Ok(x.map(|v| v.max(0.0)))
            }
            Layer::MaxPool2d { size, cache } => {
                let (y, argmax) = max_pool_forward(x, *size)?;
                *cache = Some((x.shape().to_vec(), argmax));
                Ok(y)
            }
            Layer::GlobalAvgPool { cache } => {
                *cache = Some(x.shape().to_vec());
                global_avg_forward(x)
            }
            Layer::Flatten { cache } => {
                *cache = Some(x.shape().to_vec());
                Ok(x.reshape(&[x.len()])?)
            }
        }
    }

    /// Backward pass: accumulates parameter gradients (scaled later by the
    /// optimizer) and returns the gradient w.r.t. the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] if called before
    /// [`Layer::forward_train`].
    pub fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Conv2d(c) => {
                let (h, w, cols) = c.cache.take().ok_or_else(|| no_cache("Conv2d"))?;
                let m = c.geom.out_channels;
                let dout_mat = Mat::from_vec(dout.data().to_vec(), m, dout.len() / m)?;
                // dW = dOut · colsᵀ
                let dw = dout_mat.matmul(&cols.transpose())?;
                accumulate(c.grad_w.data_mut(), dw.data());
                for (i, g) in c.grad_b.iter_mut().enumerate() {
                    *g += dout_mat.row(i).iter().sum::<f32>();
                }
                // dx = col2im(Wᵀ · dOut)
                let w_mat = weights_as_mat(&c.weights)?;
                let dcols = w_mat.transpose().matmul(&dout_mat)?;
                Ok(col2im(&dcols, &c.geom, h, w)?)
            }
            Layer::Linear(l) => {
                let x = l.cache.take().ok_or_else(|| no_cache("Linear"))?;
                let (out_f, in_f) = (l.weights.shape()[0], l.weights.shape()[1]);
                for i in 0..out_f {
                    let d = dout.data()[i];
                    l.grad_b[i] += d;
                    let row = &mut l.grad_w.data_mut()[i * in_f..(i + 1) * in_f];
                    for (g, &xv) in row.iter_mut().zip(x.data()) {
                        *g += d * xv;
                    }
                }
                let mut dx = vec![0.0f32; in_f];
                for i in 0..out_f {
                    let d = dout.data()[i];
                    if d == 0.0 {
                        continue;
                    }
                    let row = &l.weights.data()[i * in_f..(i + 1) * in_f];
                    for (dxv, &wv) in dx.iter_mut().zip(row) {
                        *dxv += d * wv;
                    }
                }
                Ok(Tensor::from_vec(dx, &[in_f])?)
            }
            Layer::BatchNorm2d(b) => {
                let (xhat, _mean, var) = b.cache.take().ok_or_else(|| no_cache("BatchNorm2d"))?;
                let c = b.gamma.len();
                let per = xhat.len() / c;
                let mut dx = vec![0.0f32; xhat.len()];
                #[allow(clippy::needless_range_loop)]
                for ch in 0..c {
                    let inv_std = 1.0 / (var[ch] + b.eps).sqrt();
                    for i in 0..per {
                        let idx = ch * per + i;
                        let d = dout.data()[idx];
                        b.grad_gamma[ch] += d * xhat.data()[idx];
                        b.grad_beta[ch] += d;
                        dx[idx] = d * b.gamma[ch] * inv_std;
                    }
                }
                Ok(Tensor::from_vec(dx, xhat.shape())?)
            }
            Layer::ReLU { mask } => {
                let mask = mask.take().ok_or_else(|| no_cache("ReLU"))?;
                let data =
                    dout.data().iter().zip(&mask).map(|(&d, &m)| if m { d } else { 0.0 }).collect();
                Ok(Tensor::from_vec(data, dout.shape())?)
            }
            Layer::MaxPool2d { cache, .. } => {
                let (shape, argmax) = cache.take().ok_or_else(|| no_cache("MaxPool2d"))?;
                let mut dx = vec![0.0f32; shape.iter().product()];
                for (o, &src) in argmax.iter().enumerate() {
                    dx[src] += dout.data()[o];
                }
                Ok(Tensor::from_vec(dx, &shape)?)
            }
            Layer::GlobalAvgPool { cache } => {
                let shape = cache.take().ok_or_else(|| no_cache("GlobalAvgPool"))?;
                let (c, h, w) = (shape[0], shape[1], shape[2]);
                let inv = 1.0 / (h * w) as f32;
                let mut dx = vec![0.0f32; c * h * w];
                for ch in 0..c {
                    let d = dout.data()[ch] * inv;
                    dx[ch * h * w..(ch + 1) * h * w].fill(d);
                }
                Ok(Tensor::from_vec(dx, &shape)?)
            }
            Layer::Flatten { cache } => {
                let shape = cache.take().ok_or_else(|| no_cache("Flatten"))?;
                Ok(dout.reshape(&shape)?)
            }
        }
    }

    /// Applies accumulated gradients with SGD + momentum, averaging over
    /// `batch` samples, then clears the gradients.
    pub fn apply_grads(&mut self, lr: f32, momentum: f32, batch: usize) {
        let scale = 1.0 / batch.max(1) as f32;
        match self {
            Layer::Conv2d(c) => {
                sgd_update(
                    c.weights.data_mut(),
                    c.grad_w.data_mut(),
                    c.vel_w.data_mut(),
                    lr,
                    momentum,
                    scale,
                );
                sgd_update(&mut c.bias, &mut c.grad_b, &mut c.vel_b, lr, momentum, scale);
            }
            Layer::Linear(l) => {
                sgd_update(
                    l.weights.data_mut(),
                    l.grad_w.data_mut(),
                    l.vel_w.data_mut(),
                    lr,
                    momentum,
                    scale,
                );
                sgd_update(&mut l.bias, &mut l.grad_b, &mut l.vel_b, lr, momentum, scale);
            }
            Layer::BatchNorm2d(b) => {
                for (g, grad) in b.gamma.iter_mut().zip(&mut b.grad_gamma) {
                    *g -= lr * *grad * scale;
                    *grad = 0.0;
                }
                for (bta, grad) in b.beta.iter_mut().zip(&mut b.grad_beta) {
                    *bta -= lr * *grad * scale;
                    *grad = 0.0;
                }
            }
            _ => {}
        }
    }

    /// The layer's weight tensor, if it has one
    /// (`(M, C, R, S)` for conv, `(out, in)` for linear).
    pub fn weights(&self) -> Option<&Tensor> {
        match self {
            Layer::Conv2d(c) => Some(&c.weights),
            Layer::Linear(l) => Some(&l.weights),
            _ => None,
        }
    }

    /// Mutable access to the weight tensor (used by compression projections).
    pub fn weights_mut(&mut self) -> Option<&mut Tensor> {
        match self {
            Layer::Conv2d(c) => Some(&mut c.weights),
            Layer::Linear(l) => Some(&mut l.weights),
            _ => None,
        }
    }

    /// Batch-norm scale factors (`γ`), if this is a batch-norm layer — the
    /// channel-pruning saliency the paper uses.
    pub fn bn_gamma(&self) -> Option<&[f32]> {
        match self {
            Layer::BatchNorm2d(b) => Some(&b.gamma),
            _ => None,
        }
    }

    /// Number of trainable parameters.
    pub fn params(&self) -> u64 {
        match self {
            Layer::Conv2d(c) => (c.weights.len() + c.bias.len()) as u64,
            Layer::Linear(l) => (l.weights.len() + l.bias.len()) as u64,
            Layer::BatchNorm2d(b) => (b.gamma.len() * 2) as u64,
            _ => 0,
        }
    }

    /// The convolution geometry, if this is a conv layer.
    pub fn conv_geom(&self) -> Option<&Conv2dGeom> {
        match self {
            Layer::Conv2d(c) => Some(&c.geom),
            _ => None,
        }
    }
}

fn no_cache(layer: &str) -> NnError {
    NnError::InvalidLayer { reason: format!("{layer}::backward called without forward_train") }
}

fn accumulate(acc: &mut [f32], add: &[f32]) {
    for (a, &b) in acc.iter_mut().zip(add) {
        *a += b;
    }
}

fn sgd_update(w: &mut [f32], g: &mut [f32], v: &mut [f32], lr: f32, momentum: f32, scale: f32) {
    for ((wv, gv), vv) in w.iter_mut().zip(g.iter_mut()).zip(v.iter_mut()) {
        *vv = momentum * *vv + *gv * scale;
        *wv -= lr * *vv;
        *gv = 0.0;
    }
}

fn weights_as_mat(w: &Tensor) -> Result<Mat> {
    let s = w.shape();
    Ok(Mat::from_vec(w.data().to_vec(), s[0], s[1] * s[2] * s[3])?)
}

fn add_channel_bias(mut out: Tensor, bias: &[f32]) -> Tensor {
    let per = out.len() / bias.len().max(1);
    for (c, &b) in bias.iter().enumerate() {
        if b != 0.0 {
            for v in &mut out.data_mut()[c * per..(c + 1) * per] {
                *v += b;
            }
        }
    }
    out
}

fn linear_forward(l: &Linear, x: &Tensor) -> Result<Tensor> {
    let (out_f, in_f) = (l.weights.shape()[0], l.weights.shape()[1]);
    if x.len() != in_f {
        return Err(NnError::InvalidLayer {
            reason: format!("linear expects {in_f} inputs, found {}", x.len()),
        });
    }
    let mut out = Vec::with_capacity(out_f);
    for i in 0..out_f {
        let row = &l.weights.data()[i * in_f..(i + 1) * in_f];
        let dot: f32 = row.iter().zip(x.data()).map(|(&w, &v)| w * v).sum();
        out.push(dot + l.bias[i]);
    }
    Ok(Tensor::from_vec(out, &[out_f])?)
}

fn channel_stats(x: &Tensor, channels: usize) -> (Vec<f32>, Vec<f32>) {
    let per = x.len() / channels;
    let mut means = Vec::with_capacity(channels);
    let mut vars = Vec::with_capacity(channels);
    for c in 0..channels {
        let slice = &x.data()[c * per..(c + 1) * per];
        let mean = slice.iter().sum::<f32>() / per as f32;
        let var = slice.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / per as f32;
        means.push(mean);
        vars.push(var);
    }
    (means, vars)
}

fn compute_xhat(x: &Tensor, mean: &[f32], var: &[f32], eps: f32) -> Tensor {
    let c = mean.len();
    let per = x.len() / c;
    let mut out = x.clone();
    for ch in 0..c {
        let inv = 1.0 / (var[ch] + eps).sqrt();
        for v in &mut out.data_mut()[ch * per..(ch + 1) * per] {
            *v = (*v - mean[ch]) * inv;
        }
    }
    out
}

fn bn_forward(b: &BatchNorm2d, x: &Tensor, train: bool) -> Result<(Tensor, Vec<f32>, Vec<f32>)> {
    let c = b.gamma.len();
    if x.len() % c != 0 || x.is_empty() {
        return Err(NnError::InvalidLayer {
            reason: format!("batch_norm over {c} channels got {} elements", x.len()),
        });
    }
    let (mean, var) =
        if train { channel_stats(x, c) } else { (b.running_mean.clone(), b.running_var.clone()) };
    let per = x.len() / c;
    let mut out = x.clone();
    for ch in 0..c {
        let inv = 1.0 / (var[ch] + b.eps).sqrt();
        let (g, bt) = (b.gamma[ch], b.beta[ch]);
        for v in &mut out.data_mut()[ch * per..(ch + 1) * per] {
            *v = (*v - mean[ch]) * inv * g + bt;
        }
    }
    Ok((out, mean, var))
}

impl BatchNorm2d {
    /// Folds a training-time statistics update into the running averages.
    pub(crate) fn update_running(&mut self, mean: &[f32], var: &[f32]) {
        for i in 0..self.gamma.len() {
            self.running_mean[i] =
                (1.0 - self.momentum) * self.running_mean[i] + self.momentum * mean[i];
            self.running_var[i] =
                (1.0 - self.momentum) * self.running_var[i] + self.momentum * var[i];
        }
    }
}

fn max_pool_forward(x: &Tensor, size: usize) -> Result<(Tensor, Vec<usize>)> {
    let s = x.shape();
    if s.len() != 3 {
        return Err(NnError::InvalidLayer {
            reason: format!("max_pool expects (C,H,W), found {s:?}"),
        });
    }
    let (c, h, w) = (s[0], s[1], s[2]);
    let (oh, ow) = (h / size, w / size);
    if oh == 0 || ow == 0 {
        return Err(NnError::InvalidLayer {
            reason: format!("max_pool window {size} larger than input {h}x{w}"),
        });
    }
    let mut out = Vec::with_capacity(c * oh * ow);
    let mut argmax = Vec::with_capacity(c * oh * ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for ky in 0..size {
                    for kx in 0..size {
                        let idx = (ch * h + oy * size + ky) * w + ox * size + kx;
                        let v = x.data()[idx];
                        if v > best {
                            best = v;
                            best_idx = idx;
                        }
                    }
                }
                out.push(best);
                argmax.push(best_idx);
            }
        }
    }
    Ok((Tensor::from_vec(out, &[c, oh, ow])?, argmax))
}

fn global_avg_forward(x: &Tensor) -> Result<Tensor> {
    let s = x.shape();
    if s.len() != 3 {
        return Err(NnError::InvalidLayer {
            reason: format!("global_avg_pool expects (C,H,W), found {s:?}"),
        });
    }
    let (c, h, w) = (s[0], s[1], s[2]);
    let inv = 1.0 / (h * w) as f32;
    let out =
        (0..c).map(|ch| x.data()[ch * h * w..(ch + 1) * h * w].iter().sum::<f32>() * inv).collect();
    Ok(Tensor::from_vec(out, &[c])?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check for a scalar loss `sum(out * d)`.
    fn grad_check_weights(mut layer: Layer, x: &Tensor, tol: f32) {
        let out = layer.forward_train(x).unwrap();
        // Loss = sum(out); dLoss/dout = ones.
        let dout = Tensor::full(out.shape(), 1.0);
        let _ = layer.backward(&dout).unwrap();
        let analytic = match &layer {
            Layer::Conv2d(c) => c.grad_w.clone(),
            Layer::Linear(l) => l.grad_w.clone(),
            _ => panic!("weight grad check on weightless layer"),
        };
        let eps = 1e-2;
        let n_checks = analytic.len().min(12);
        for i in 0..n_checks {
            let orig = layer.weights().unwrap().data()[i];
            layer.weights_mut().unwrap().data_mut()[i] = orig + eps;
            let up = layer.forward(x).unwrap().sum();
            layer.weights_mut().unwrap().data_mut()[i] = orig - eps;
            let down = layer.forward(x).unwrap().sum();
            layer.weights_mut().unwrap().data_mut()[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "weight {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn grad_check_input(mut layer: Layer, x: &Tensor, tol: f32) {
        let out = layer.forward_train(x).unwrap();
        let dout = Tensor::full(out.shape(), 1.0);
        let dx = layer.backward(&dout).unwrap();
        let eps = 1e-2;
        for i in 0..x.len().min(10) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let up = layer.forward(&xp).unwrap().sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let down = layer.forward(&xm).unwrap().sum();
            let numeric = (up - down) / (2.0 * eps);
            let a = dx.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "input {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn conv_weight_gradients_match_finite_differences() {
        let mut r = rng::seeded(1);
        let x = rng::normal_tensor(&mut r, &[2, 5, 5], 1.0);
        let layer = Layer::conv2d(2, 3, 3, 1, 1, 2).unwrap();
        grad_check_weights(layer, &x, 2e-2);
    }

    #[test]
    fn conv_input_gradients_match_finite_differences() {
        let mut r = rng::seeded(3);
        let x = rng::normal_tensor(&mut r, &[2, 4, 4], 1.0);
        let layer = Layer::conv2d(2, 2, 3, 2, 1, 4).unwrap();
        grad_check_input(layer, &x, 2e-2);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut r = rng::seeded(5);
        let x = rng::normal_tensor(&mut r, &[6], 1.0);
        grad_check_weights(Layer::linear(6, 4, 6).unwrap(), &x, 1e-2);
        grad_check_input(Layer::linear(6, 4, 7).unwrap(), &x, 1e-2);
    }

    #[test]
    fn relu_masks_gradient() {
        let x = Tensor::from_vec(vec![1.0, -1.0, 2.0, -0.5], &[4]).unwrap();
        let mut layer = Layer::relu();
        let out = layer.forward_train(&x).unwrap();
        assert_eq!(out.data(), &[1.0, 0.0, 2.0, 0.0]);
        let dx = layer.backward(&Tensor::full(&[4], 1.0)).unwrap();
        assert_eq!(dx.data(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 4, 4],
        )
        .unwrap();
        let mut layer = Layer::max_pool(2);
        let out = layer.forward_train(&x).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
        let dx = layer.backward(&Tensor::full(&[1, 2, 2], 1.0)).unwrap();
        assert_eq!(dx.data()[5], 1.0); // position of 6.0
        assert_eq!(dx.data()[0], 0.0);
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 2, 2]).unwrap();
        let mut layer = Layer::global_avg_pool();
        let out = layer.forward_train(&x).unwrap();
        assert_eq!(out.data(), &[4.0]);
        let dx = layer.backward(&Tensor::full(&[1], 4.0)).unwrap();
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn flatten_reshapes_both_ways() {
        let x = Tensor::zeros(&[2, 3, 4]);
        let mut layer = Layer::flatten();
        let out = layer.forward_train(&x).unwrap();
        assert_eq!(out.shape(), &[24]);
        let dx = layer.backward(&Tensor::zeros(&[24])).unwrap();
        assert_eq!(dx.shape(), &[2, 3, 4]);
    }

    #[test]
    fn batch_norm_normalises_in_training() {
        let mut r = rng::seeded(9);
        let x = rng::normal_tensor(&mut r, &[2, 8, 8], 3.0).map(|v| v + 5.0);
        let mut layer = Layer::batch_norm(2).unwrap();
        let out = layer.forward_train(&x).unwrap();
        // Per-channel output should be ~zero-mean, unit-var.
        for ch in 0..2 {
            let slice = &out.data()[ch * 64..(ch + 1) * 64];
            let mean = slice.iter().sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
        }
    }

    #[test]
    fn bias_applied_per_channel() {
        let mut layer = Layer::conv2d(1, 2, 1, 1, 0, 11).unwrap();
        if let Layer::Conv2d(c) = &mut layer {
            c.weights.data_mut().fill(0.0);
            c.bias = vec![1.5, -2.5];
        }
        let x = Tensor::zeros(&[1, 2, 2]);
        let out = layer.forward(&x).unwrap();
        assert_eq!(out.data(), &[1.5, 1.5, 1.5, 1.5, -2.5, -2.5, -2.5, -2.5]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut layer = Layer::relu();
        assert!(layer.backward(&Tensor::zeros(&[1])).is_err());
    }

    #[test]
    fn sgd_moves_weights_against_gradient() {
        let mut layer = Layer::linear(2, 1, 13).unwrap();
        let before = layer.weights().unwrap().clone();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let _ = layer.forward_train(&x).unwrap();
        let _ = layer.backward(&Tensor::full(&[1], 1.0)).unwrap();
        layer.apply_grads(0.1, 0.0, 1);
        let after = layer.weights().unwrap();
        // grad = x = [1,1], so weights decrease by 0.1.
        assert!((after.data()[0] - (before.data()[0] - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn constructors_validate() {
        assert!(Layer::conv2d(0, 1, 3, 1, 1, 0).is_err());
        assert!(Layer::conv2d(1, 1, 3, 0, 1, 0).is_err());
        assert!(Layer::linear(0, 1, 0).is_err());
        assert!(Layer::batch_norm(0).is_err());
    }
}
