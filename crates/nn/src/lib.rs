//! Minimal neural-network stack for the SmartExchange reproduction.
//!
//! The paper's accuracy experiments need trainable networks; with no
//! PyTorch/GPU available (see DESIGN.md) this crate provides a compact,
//! dependency-free substitute: convolution / linear / batch-norm / pooling
//! layers with exact backpropagation, SGD with momentum, softmax
//! cross-entropy, deterministic synthetic datasets, and the alternating
//! re-training loop of Section III-C (one SGD epoch, then a weight
//! projection supplied by the caller — the SmartExchange re-training
//! recipe).
//!
//! # Examples
//!
//! Train a tiny MLP on a synthetic two-class problem:
//!
//! ```
//! use se_nn::{data, layers::Layer, model::Sequential, train};
//!
//! # fn main() -> Result<(), se_nn::NnError> {
//! let ds = data::gaussian_clusters(2, &[8], 40, 0.3, 42)?;
//! let mut model = Sequential::new(vec![
//!     Layer::linear(8, 16, 1)?,
//!     Layer::relu(),
//!     Layer::linear(16, 2, 2)?,
//! ]);
//! let cfg = train::TrainConfig::default().with_epochs(12).with_lr(0.05);
//! let report = train::train(&mut model, &ds, &cfg)?;
//! assert!(report.final_accuracy > 0.9, "accuracy {}", report.final_accuracy);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;

pub mod data;
pub mod layers;
pub mod loss;
pub mod model;
pub mod train;

pub use error::NnError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
