//! The [`Sequential`] model container.

use crate::{layers::Layer, Result};
use se_tensor::Tensor;

/// A feed-forward stack of layers.
///
/// # Examples
///
/// ```
/// use se_nn::{layers::Layer, model::Sequential};
/// use se_tensor::Tensor;
///
/// # fn main() -> Result<(), se_nn::NnError> {
/// let model = Sequential::new(vec![
///     Layer::conv2d(1, 4, 3, 1, 1, 0)?,
///     Layer::relu(),
///     Layer::global_avg_pool(),
///     Layer::linear(4, 2, 1)?,
/// ]);
/// let logits = model.forward(&Tensor::zeros(&[1, 8, 8]))?;
/// assert_eq!(logits.shape(), &[2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    /// Creates a model from an ordered list of layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        Sequential { layers }
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by compression projections to
    /// rewrite weights in place).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total trainable parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Inference forward pass.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur)?;
        }
        Ok(cur)
    }

    /// Inference forward pass that also returns the *input* to every layer
    /// (used to capture the activation traces the accelerator simulators
    /// consume).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_capturing(&self, x: &Tensor) -> Result<(Tensor, Vec<Tensor>)> {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            inputs.push(cur.clone());
            cur = layer.forward(&cur)?;
        }
        Ok((cur, inputs))
    }

    /// Training forward pass (caches intermediates inside each layer).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward_train(&cur)?;
        }
        Ok(cur)
    }

    /// Backward pass from the loss gradient, accumulating per-layer
    /// parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns an error if called without a matching
    /// [`Sequential::forward_train`].
    pub fn backward(&mut self, dlogits: &Tensor) -> Result<()> {
        let mut grad = dlogits.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(())
    }

    /// Applies accumulated gradients (SGD + momentum) and clears them.
    pub fn apply_grads(&mut self, lr: f32, momentum: f32, batch: usize) {
        for layer in &mut self.layers {
            layer.apply_grads(lr, momentum, batch);
        }
    }

    /// Iterates over the weight tensors of conv/linear layers.
    pub fn weight_tensors(&self) -> impl Iterator<Item = &Tensor> {
        self.layers.iter().filter_map(Layer::weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_tensor::rng;

    fn tiny_cnn() -> Sequential {
        Sequential::new(vec![
            Layer::conv2d(1, 4, 3, 1, 1, 10).unwrap(),
            Layer::relu(),
            Layer::max_pool(2),
            Layer::flatten(),
            Layer::linear(4 * 4 * 4, 3, 11).unwrap(),
        ])
    }

    #[test]
    fn forward_shapes_flow() {
        let m = tiny_cnn();
        let out = m.forward(&Tensor::zeros(&[1, 8, 8])).unwrap();
        assert_eq!(out.shape(), &[3]);
    }

    #[test]
    fn capture_returns_layer_inputs() {
        let m = tiny_cnn();
        let mut r = rng::seeded(2);
        let x = rng::normal_tensor(&mut r, &[1, 8, 8], 1.0);
        let (_, inputs) = m.forward_capturing(&x).unwrap();
        assert_eq!(inputs.len(), 5);
        assert_eq!(inputs[0], x);
        assert_eq!(inputs[1].shape(), &[4, 8, 8]); // conv output feeds relu
        assert_eq!(inputs[4].shape(), &[64]); // flattened into linear
    }

    #[test]
    fn train_cycle_changes_weights() {
        let mut m = tiny_cnn();
        let before: Vec<Tensor> = m.weight_tensors().cloned().collect();
        let mut r = rng::seeded(3);
        let x = rng::normal_tensor(&mut r, &[1, 8, 8], 1.0);
        let out = m.forward_train(&x).unwrap();
        let (_, grad) = crate::loss::cross_entropy(&out, 0).unwrap();
        m.backward(&grad).unwrap();
        m.apply_grads(0.1, 0.9, 1);
        let after: Vec<Tensor> = m.weight_tensors().cloned().collect();
        assert_ne!(before, after);
    }

    #[test]
    fn params_count() {
        let m = tiny_cnn();
        // conv: 4*1*9 + 4 bias; linear: 64*3 + 3 bias.
        assert_eq!(m.params(), (36 + 4 + 192 + 3) as u64);
    }
}
