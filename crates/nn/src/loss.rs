//! Softmax cross-entropy loss and classification metrics.

use crate::{NnError, Result};
use se_tensor::Tensor;

/// Numerically-stable softmax of a logit vector.
pub fn softmax(logits: &Tensor) -> Tensor {
    let max = logits.max().unwrap_or(0.0);
    let exps: Vec<f32> = logits.data().iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::from_vec(exps.into_iter().map(|e| e / sum.max(1e-30)).collect(), logits.shape())
        .expect("shape preserved")
}

/// Softmax cross-entropy: returns `(loss, dLoss/dlogits)` for one sample.
///
/// # Errors
///
/// Returns [`NnError::InvalidData`] if `label` is out of range.
pub fn cross_entropy(logits: &Tensor, label: usize) -> Result<(f32, Tensor)> {
    if label >= logits.len() {
        return Err(NnError::InvalidData {
            reason: format!("label {label} out of range for {} classes", logits.len()),
        });
    }
    let probs = softmax(logits);
    let loss = -(probs.data()[label].max(1e-30)).ln();
    let mut grad = probs;
    grad.data_mut()[label] -= 1.0;
    Ok((loss, grad))
}

/// Index of the largest logit (`0` for an empty vector).
pub fn argmax(logits: &Tensor) -> usize {
    logits
        .data()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let p = softmax(&t);
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert!(p.data()[2] > p.data()[1] && p.data()[1] > p.data()[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let b = softmax(&Tensor::from_vec(vec![1001.0, 1002.0], &[2]).unwrap());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let t = Tensor::from_vec(vec![0.5, -0.5, 0.0], &[3]).unwrap();
        let (loss, grad) = cross_entropy(&t, 1).unwrap();
        assert!(loss > 0.0);
        let p = softmax(&t);
        assert!((grad.data()[0] - p.data()[0]).abs() < 1e-6);
        assert!((grad.data()[1] - (p.data()[1] - 1.0)).abs() < 1e-6);
        // Gradient sums to zero.
        assert!(grad.sum().abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_rejects_bad_label() {
        let t = Tensor::zeros(&[3]);
        assert!(cross_entropy(&t, 3).is_err());
    }

    #[test]
    fn perfect_prediction_has_low_loss() {
        let t = Tensor::from_vec(vec![10.0, -10.0], &[2]).unwrap();
        let (loss, _) = cross_entropy(&t, 0).unwrap();
        assert!(loss < 1e-4);
    }

    #[test]
    fn argmax_basic() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5], &[3]).unwrap();
        assert_eq!(argmax(&t), 1);
    }
}
