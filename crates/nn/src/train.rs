//! Training loops: plain SGD and the paper's alternating re-training
//! (Section III-C: one SGD epoch, then a compression projection, repeated).

use crate::{data::Dataset, loss, model::Sequential, NnError, Result};
use rand::rngs::StdRng;
use rand::RngExt;
use se_tensor::rng;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    lr: f32,
    momentum: f32,
    epochs: usize,
    batch_size: usize,
    seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { lr: 0.02, momentum: 0.9, epochs: 10, batch_size: 8, seed: 0 }
    }
}

impl TrainConfig {
    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// Number of epochs.
    pub fn epochs(&self) -> usize {
        self.epochs
    }

    /// Mini-batch size (gradients are accumulated then averaged).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Shuffle seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Sets the momentum coefficient.
    pub fn with_momentum(mut self, m: f32) -> Self {
        self.momentum = m;
        self
    }

    /// Sets the epoch count.
    pub fn with_epochs(mut self, e: usize) -> Self {
        self.epochs = e;
        self
    }

    /// Sets the mini-batch size.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.batch_size = b.max(1);
        self
    }

    /// Sets the shuffle seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch, in order.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training set after the final epoch.
    pub final_accuracy: f32,
}

fn shuffled_indices(n: usize, r: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    // Fisher–Yates with the workspace RNG (keeps rand's shuffle API out of
    // the picture and the ordering stable across rand versions).
    for i in (1..n).rev() {
        let j = r.random_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Runs one epoch of mini-batch SGD; returns the mean sample loss.
///
/// # Errors
///
/// Propagates forward/backward failures.
pub fn train_epoch(
    model: &mut Sequential,
    ds: &Dataset,
    cfg: &TrainConfig,
    r: &mut StdRng,
) -> Result<f32> {
    let order = shuffled_indices(ds.len(), r);
    let mut total_loss = 0.0f64;
    for batch in order.chunks(cfg.batch_size) {
        for &i in batch {
            let logits = model.forward_train(&ds.inputs()[i])?;
            let (loss, grad) = loss::cross_entropy(&logits, ds.labels()[i])?;
            total_loss += f64::from(loss);
            model.backward(&grad)?;
        }
        model.apply_grads(cfg.lr, cfg.momentum, batch.len());
    }
    Ok((total_loss / ds.len() as f64) as f32)
}

/// Classification accuracy of `model` on `ds`, in `[0, 1]`.
///
/// # Errors
///
/// Propagates forward failures.
pub fn evaluate(model: &Sequential, ds: &Dataset) -> Result<f32> {
    let mut correct = 0usize;
    for (x, &label) in ds.inputs().iter().zip(ds.labels()) {
        let logits = model.forward(x)?;
        if loss::argmax(&logits) == label {
            correct += 1;
        }
    }
    Ok(correct as f32 / ds.len() as f32)
}

/// Trains `model` on `ds` for `cfg.epochs()` epochs.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for a non-positive learning rate and
/// propagates layer failures.
pub fn train(model: &mut Sequential, ds: &Dataset, cfg: &TrainConfig) -> Result<TrainReport> {
    if cfg.lr <= 0.0 || !cfg.lr.is_finite() {
        return Err(NnError::InvalidConfig { reason: format!("lr {} must be positive", cfg.lr) });
    }
    let mut r = rng::seeded(cfg.seed);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        epoch_losses.push(train_epoch(model, ds, cfg, &mut r)?);
    }
    let final_accuracy = evaluate(model, ds)?;
    Ok(TrainReport { epoch_losses, final_accuracy })
}

/// The paper's re-training recipe: alternate one SGD epoch with a weight
/// projection (the SmartExchange algorithm re-applied to keep the `Ce`
/// structure), then project once more at the end so the returned model is
/// exactly in compressed form.
///
/// The projection is supplied as a closure so this crate stays independent
/// of the compression implementation; `se-core`'s layer compression +
/// reconstruction is the intended argument.
///
/// # Errors
///
/// Propagates training and projection failures.
pub fn retrain_with_projection<P>(
    model: &mut Sequential,
    ds: &Dataset,
    cfg: &TrainConfig,
    mut project: P,
) -> Result<TrainReport>
where
    P: FnMut(&mut Sequential) -> Result<()>,
{
    if cfg.lr <= 0.0 || !cfg.lr.is_finite() {
        return Err(NnError::InvalidConfig { reason: format!("lr {} must be positive", cfg.lr) });
    }
    let mut r = rng::seeded(cfg.seed);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        epoch_losses.push(train_epoch(model, ds, cfg, &mut r)?);
        project(model)?;
    }
    let final_accuracy = evaluate(model, ds)?;
    Ok(TrainReport { epoch_losses, final_accuracy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use crate::layers::Layer;

    fn mlp(seed: u64) -> Sequential {
        Sequential::new(vec![
            Layer::linear(8, 24, seed).unwrap(),
            Layer::relu(),
            Layer::linear(24, 3, seed + 1).unwrap(),
        ])
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let ds = data::gaussian_clusters(3, &[8], 30, 0.25, 5).unwrap();
        let mut model = mlp(1);
        let cfg = TrainConfig::default().with_epochs(15).with_lr(0.05);
        let report = train(&mut model, &ds, &cfg).unwrap();
        assert!(report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap());
        assert!(report.final_accuracy > 0.9, "accuracy {}", report.final_accuracy);
    }

    #[test]
    fn cnn_trains_on_digits() {
        let ds = data::procedural_digits(6, 9).unwrap();
        let mut model = Sequential::new(vec![
            Layer::conv2d(1, 6, 3, 2, 1, 20).unwrap(),
            Layer::relu(),
            Layer::max_pool(2),
            Layer::flatten(),
            Layer::linear(6 * 7 * 7, 10, 21).unwrap(),
        ]);
        let cfg = TrainConfig::default().with_epochs(8).with_lr(0.05).with_batch_size(4);
        let report = train(&mut model, &ds, &cfg).unwrap();
        assert!(report.final_accuracy > 0.8, "accuracy {}", report.final_accuracy);
    }

    #[test]
    fn evaluate_on_untrained_is_chancey() {
        let ds = data::gaussian_clusters(4, &[8], 25, 0.2, 6).unwrap();
        let model = Sequential::new(vec![Layer::linear(8, 4, 3).unwrap()]);
        let acc = evaluate(&model, &ds).unwrap();
        assert!(acc < 0.8); // untrained should not be near-perfect
    }

    #[test]
    fn rejects_bad_lr() {
        let ds = data::gaussian_clusters(2, &[4], 4, 0.1, 7).unwrap();
        let mut model = Sequential::new(vec![Layer::linear(4, 2, 0).unwrap()]);
        assert!(train(&mut model, &ds, &TrainConfig::default().with_lr(0.0)).is_err());
        assert!(train(&mut model, &ds, &TrainConfig::default().with_lr(f32::NAN)).is_err());
    }

    #[test]
    fn retrain_applies_projection_every_epoch() {
        let ds = data::gaussian_clusters(2, &[6], 10, 0.2, 8).unwrap();
        let mut model = Sequential::new(vec![
            Layer::linear(6, 8, 30).unwrap(),
            Layer::relu(),
            Layer::linear(8, 2, 31).unwrap(),
        ]);
        let cfg = TrainConfig::default().with_epochs(4).with_lr(0.03);
        let mut calls = 0;
        let report = retrain_with_projection(&mut model, &ds, &cfg, |m| {
            calls += 1;
            // A crude projection: zero the smallest half of each weight row.
            for layer in m.layers_mut() {
                if let Some(w) = layer.weights_mut() {
                    let n = w.len();
                    let mut idx: Vec<usize> = (0..n).collect();
                    idx.sort_by(|&a, &b| {
                        w.data()[a].abs().partial_cmp(&w.data()[b].abs()).unwrap()
                    });
                    for &i in idx.iter().take(n / 4) {
                        w.data_mut()[i] = 0.0;
                    }
                }
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(calls, 4);
        // Projected model still learns the easy task.
        assert!(report.final_accuracy > 0.8, "accuracy {}", report.final_accuracy);
        // And the structure holds after the final projection.
        let w0 = model.layers()[0].weights().unwrap();
        assert!(w0.sparsity() >= 0.2);
    }

    #[test]
    fn shuffle_is_seeded() {
        let mut a = rng::seeded(1);
        let mut b = rng::seeded(1);
        assert_eq!(shuffled_indices(10, &mut a), shuffled_indices(10, &mut b));
    }
}
