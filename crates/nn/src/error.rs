use std::fmt;

/// Errors produced by the NN stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer was configured with invalid dimensions.
    InvalidLayer {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A dataset was invalid (empty, label out of range, shape mismatch).
    InvalidData {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// Training configuration was out of range.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying tensor operation failed.
    Tensor(se_tensor::TensorError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InvalidLayer { reason } => write!(f, "invalid layer: {reason}"),
            NnError::InvalidData { reason } => write!(f, "invalid data: {reason}"),
            NnError::InvalidConfig { reason } => write!(f, "invalid training config: {reason}"),
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<se_tensor::TensorError> for NnError {
    fn from(e: se_tensor::TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NnError::InvalidLayer { reason: "bad".into() }.to_string().contains("bad"));
        assert!(NnError::Tensor(se_tensor::TensorError::Singular).to_string().contains("singular"));
    }
}
