//! Deterministic synthetic datasets.
//!
//! The paper's accuracy numbers come from ImageNet/CIFAR-10/MNIST/CamVid;
//! those gates are substituted (DESIGN.md) with procedurally generated
//! tasks that preserve what the compression experiments measure: how much
//! accuracy a redundant model loses under each compression scheme.
//!
//! * [`gaussian_clusters`] — classification of noisy class templates
//!   (arbitrary tensor shape, works for CNNs and MLPs);
//! * [`procedural_digits`] — an MNIST-like 28×28 digit task rendered from a
//!   built-in 7×5 glyph font with jitter and noise (for the MLP-1/MLP-2
//!   experiments).

use crate::{NnError, Result};
use rand::rngs::StdRng;
use rand::RngExt;
use se_tensor::{rng, Tensor};

/// A labelled dataset of single-sample tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    inputs: Vec<Tensor>,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating labels against the class count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidData`] for empty data, mismatched lengths,
    /// or out-of-range labels.
    pub fn new(inputs: Vec<Tensor>, labels: Vec<usize>, classes: usize) -> Result<Self> {
        if inputs.is_empty() || inputs.len() != labels.len() {
            return Err(NnError::InvalidData {
                reason: format!(
                    "{} inputs vs {} labels (both must be non-zero and equal)",
                    inputs.len(),
                    labels.len()
                ),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(NnError::InvalidData {
                reason: format!("label {bad} out of range for {classes} classes"),
            });
        }
        Ok(Dataset { inputs, labels, classes })
    }

    /// The sample tensors.
    pub fn inputs(&self) -> &[Tensor] {
        &self.inputs
    }

    /// The labels, parallel to [`Dataset::inputs`].
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty (never true for constructed datasets).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Splits into `(front, back)` with `front` holding `fraction` of the
    /// samples (interleaved by index so both halves keep class balance).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidData`] if either split would be empty.
    pub fn split(&self, fraction: f32) -> Result<(Dataset, Dataset)> {
        let stride = (1.0 / (1.0 - fraction).max(1e-6)).round().max(2.0) as usize;
        let mut a_in = Vec::new();
        let mut a_lab = Vec::new();
        let mut b_in = Vec::new();
        let mut b_lab = Vec::new();
        for i in 0..self.len() {
            if i % stride == stride - 1 {
                b_in.push(self.inputs[i].clone());
                b_lab.push(self.labels[i]);
            } else {
                a_in.push(self.inputs[i].clone());
                a_lab.push(self.labels[i]);
            }
        }
        Ok((Dataset::new(a_in, a_lab, self.classes)?, Dataset::new(b_in, b_lab, self.classes)?))
    }
}

/// Noisy-template classification: each class is a random Gaussian template
/// of the given shape; samples are `template + noise·N(0,1)`.
///
/// # Errors
///
/// Returns [`NnError::InvalidData`] for zero classes/samples or an empty
/// shape.
pub fn gaussian_clusters(
    classes: usize,
    shape: &[usize],
    per_class: usize,
    noise: f32,
    seed: u64,
) -> Result<Dataset> {
    if classes == 0 || per_class == 0 || shape.iter().product::<usize>() == 0 {
        return Err(NnError::InvalidData {
            reason: "classes, per_class and shape must be non-zero".into(),
        });
    }
    let mut r = rng::seeded(seed);
    let templates: Vec<Tensor> =
        (0..classes).map(|_| rng::normal_tensor(&mut r, shape, 1.0)).collect();
    let mut inputs = Vec::with_capacity(classes * per_class);
    let mut labels = Vec::with_capacity(classes * per_class);
    for (c, t) in templates.iter().enumerate() {
        for _ in 0..per_class {
            let n = rng::normal_tensor(&mut r, shape, noise);
            inputs.push(t.add(&n)?);
            labels.push(c);
        }
    }
    Dataset::new(inputs, labels, classes)
}

/// 7×5 glyph bitmaps for the digits 0–9 (row-major, one string per row).
const GLYPHS: [[&str; 7]; 10] = [
    ["01110", "10001", "10011", "10101", "11001", "10001", "01110"],
    ["00100", "01100", "00100", "00100", "00100", "00100", "01110"],
    ["01110", "10001", "00001", "00010", "00100", "01000", "11111"],
    ["11110", "00001", "00001", "01110", "00001", "00001", "11110"],
    ["00010", "00110", "01010", "10010", "11111", "00010", "00010"],
    ["11111", "10000", "11110", "00001", "00001", "10001", "01110"],
    ["00110", "01000", "10000", "11110", "10001", "10001", "01110"],
    ["11111", "00001", "00010", "00100", "01000", "01000", "01000"],
    ["01110", "10001", "10001", "01110", "10001", "10001", "01110"],
    ["01110", "10001", "10001", "01111", "00001", "00010", "01100"],
];

/// An MNIST-like task: 28×28 single-channel images of the digits 0–9,
/// rendered from a built-in glyph font at 3× scale with ±3 px position
/// jitter, per-sample intensity jitter, and Gaussian pixel noise.
///
/// # Errors
///
/// Returns [`NnError::InvalidData`] for `per_class == 0`.
pub fn procedural_digits(per_class: usize, seed: u64) -> Result<Dataset> {
    if per_class == 0 {
        return Err(NnError::InvalidData { reason: "per_class must be non-zero".into() });
    }
    let mut r = rng::seeded(seed);
    let mut inputs = Vec::with_capacity(10 * per_class);
    let mut labels = Vec::with_capacity(10 * per_class);
    for digit in 0..10usize {
        for _ in 0..per_class {
            inputs.push(render_digit(digit, &mut r));
            labels.push(digit);
        }
    }
    Dataset::new(inputs, labels, 10)
}

fn render_digit(digit: usize, r: &mut StdRng) -> Tensor {
    const SIZE: usize = 28;
    const SCALE: usize = 3; // glyph covers 21 x 15 px
    let jitter_y = r.random_range(0..=6) as isize; // glyph height 21: fits 0..=7
    let jitter_x = r.random_range(0..=12) as isize; // glyph width 15: fits 0..=13
    let intensity = 0.75 + 0.25 * r.random::<f32>();
    let mut img = vec![0.0f32; SIZE * SIZE];
    for (gy, row) in GLYPHS[digit].iter().enumerate() {
        for (gx, ch) in row.bytes().enumerate() {
            if ch != b'1' {
                continue;
            }
            for sy in 0..SCALE {
                for sx in 0..SCALE {
                    let y = gy as isize * SCALE as isize + sy as isize + jitter_y;
                    let x = gx as isize * SCALE as isize + sx as isize + jitter_x;
                    if (0..SIZE as isize).contains(&y) && (0..SIZE as isize).contains(&x) {
                        img[y as usize * SIZE + x as usize] = intensity;
                    }
                }
            }
        }
    }
    for px in &mut img {
        *px = (*px + 0.08 * rng::normal(r)).clamp(0.0, 1.0);
    }
    Tensor::from_vec(img, &[1, SIZE, SIZE]).expect("static shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_clusters_shapes_and_balance() {
        let ds = gaussian_clusters(3, &[2, 4, 4], 5, 0.1, 1).unwrap();
        assert_eq!(ds.len(), 15);
        assert_eq!(ds.classes(), 3);
        assert_eq!(ds.inputs()[0].shape(), &[2, 4, 4]);
        let count_c0 = ds.labels().iter().filter(|&&l| l == 0).count();
        assert_eq!(count_c0, 5);
    }

    #[test]
    fn gaussian_clusters_are_separable_at_low_noise() {
        let ds = gaussian_clusters(2, &[16], 10, 0.05, 2).unwrap();
        // Nearest-template classification should be perfect at this noise.
        let t0 = &ds.inputs()[0];
        let t1 = &ds.inputs()[10];
        let d_same = ds.inputs()[1].sub(t0).unwrap().norm();
        let d_diff = ds.inputs()[1].sub(t1).unwrap().norm();
        assert!(d_same < d_diff);
    }

    #[test]
    fn digits_render_deterministically() {
        let a = procedural_digits(2, 7).unwrap();
        let b = procedural_digits(2, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert_eq!(a.inputs()[0].shape(), &[1, 28, 28]);
    }

    #[test]
    fn digits_have_ink() {
        let ds = procedural_digits(1, 3).unwrap();
        for (img, &label) in ds.inputs().iter().zip(ds.labels()) {
            let ink = img.data().iter().filter(|&&p| p > 0.5).count();
            assert!(ink > 20, "digit {label} has only {ink} bright pixels");
        }
    }

    #[test]
    fn split_preserves_all_samples() {
        let ds = gaussian_clusters(2, &[4], 20, 0.1, 4).unwrap();
        let (train, test) = ds.split(0.75).unwrap();
        assert_eq!(train.len() + test.len(), ds.len());
        assert!(train.len() > test.len());
    }

    #[test]
    fn validation_errors() {
        assert!(Dataset::new(vec![], vec![], 2).is_err());
        assert!(Dataset::new(vec![Tensor::zeros(&[1])], vec![5], 2).is_err());
        assert!(gaussian_clusters(0, &[4], 1, 0.1, 0).is_err());
        assert!(procedural_digits(0, 0).is_err());
    }
}
