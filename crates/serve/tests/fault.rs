//! Failure-injection invariants, property-tested over random workloads
//! and random fault plans:
//!
//! * **conservation**: completed + rejected + lost == submitted — a kill
//!   re-routes or loses its victims, it never silently drops one;
//! * **determinism under churn**: the staged runtime's `ClusterRun`
//!   (report, events, per-request outcomes) equals the serial sim bit for
//!   bit at every exec-worker count, with faults and autoscaling active;
//! * **outcome completeness**: exactly one terminal outcome per request,
//!   in id order, and the served/rejected/lost split matches the report's
//!   counters.

use proptest::prelude::*;
use se_serve::cluster::{simulate_cluster_run, ClusterSpec, ModelService, RouterPolicy};
use se_serve::fault::{AutoscalePolicy, FaultAction, FaultEvent, FaultPlan};
use se_serve::queue::BatchPolicy;
use se_serve::workload::Request;
use se_serve::{run_cluster_staged, Disposition, NoWork, StagedConfig};

fn service(name: &str, base: u64, per: u64, max_batch: usize, footprint: u64) -> ModelService {
    let streamed: Vec<u64> = (1..=max_batch as u64).map(|k| base + per * k).collect();
    let resident: Vec<u64> = streamed.iter().map(|c| c - c / 4).collect();
    ModelService {
        name: name.into(),
        streamed,
        resident,
        footprint_bytes: footprint,
        switch_cycles: base / 2,
    }
}

fn router_of(idx: usize) -> RouterPolicy {
    match idx % 3 {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        _ => RouterPolicy::ModelAffinity,
    }
}

/// Builds a valid plan from raw per-instance draws: instance `i` gets a
/// kill at `kill_ats[i]` when `flags[i]` has bit 0 set, plus a restart
/// strictly after it when bit 1 is also set. Events are then ordered by
/// `(at, instance)`, which preserves each instance's kill-then-restart
/// history (the restart time is strictly larger).
fn plan_of(
    instances: usize,
    kill_ats: &[u64],
    restart_gaps: &[u64],
    flags: &[usize],
    auto_raw: u64,
) -> FaultPlan {
    let mut events = Vec::new();
    for i in 0..instances.min(kill_ats.len()) {
        if flags[i] & 1 != 0 {
            events.push(FaultEvent { at: kill_ats[i], instance: i, action: FaultAction::Kill });
            if flags[i] & 2 != 0 {
                events.push(FaultEvent {
                    at: kill_ats[i] + 1 + restart_gaps[i],
                    instance: i,
                    action: FaultAction::Restart,
                });
            }
        }
    }
    events.sort_unstable_by_key(|e| (e.at, e.instance));
    let autoscale = (auto_raw >= 2)
        .then_some(AutoscalePolicy { spawn_above: auto_raw, drain_below: auto_raw / 2 });
    FaultPlan { events, autoscale }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under a random fault plan (kills, restarts, sometimes autoscaling)
    /// on a random mixed-model stream: every request reaches exactly one
    /// terminal state, the books balance, and the staged runtime replays
    /// the sim bit for bit across worker counts.
    #[test]
    fn random_churn_conserves_requests_and_replays_identically(
        gaps in proptest::collection::vec(0u64..1200, 1..70),
        model_picks in proptest::collection::vec(0usize..3, 70..71),
        instances in 2usize..6,
        router_idx in 0usize..3,
        max_batch in 1usize..5,
        max_wait in 0u64..2000,
        queue_cap in 1usize..10,
        raw_deadline in 0u64..6000,
        raw_buffer in 0u64..2000,
        kill_ats in proptest::collection::vec(1u64..40_000, 5..6),
        restart_gaps in proptest::collection::vec(0u64..30_000, 5..6),
        flags in proptest::collection::vec(0usize..4, 5..6),
        auto_raw in 0u64..6,
    ) {
        let deadline_budget = (raw_deadline >= 500).then_some(raw_deadline);
        let buffer = (raw_buffer >= 400).then_some(raw_buffer);
        let services = [
            service("a", 300, 60, max_batch, 700),
            service("b", 250, 90, max_batch, 500),
            service("c", 400, 30, max_batch, 900),
        ];
        let mut requests = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for (i, g) in gaps.iter().enumerate() {
            t += g;
            requests.push(Request {
                model: model_picks[i],
                arrival: t,
                deadline: deadline_budget.map(|d| t + d),
            });
        }
        let faults = plan_of(instances, &kill_ats, &restart_gaps, &flags, auto_raw);
        let scripted = !faults.events.is_empty();
        let spec = ClusterSpec {
            instances,
            router: router_of(router_idx),
            policy: BatchPolicy { max_batch, max_wait, queue_cap },
            buffer_bytes: buffer,
            tiers: None,
            faults,
        };
        let oracle = simulate_cluster_run(&requests, &services, &spec).unwrap();

        // Conservation: served + rejected + lost accounts for every
        // submitted request exactly once.
        prop_assert!(oracle.report.conserves(requests.len()),
            "completed {} + rejected {} + lost {} != submitted {}",
            oracle.report.completed(), oracle.report.rejected, oracle.report.lost,
            requests.len());

        // Outcome completeness and report consistency.
        prop_assert_eq!(oracle.outcomes.len(), requests.len());
        let (mut served, mut rejected, mut lost) = (0usize, 0u64, 0u64);
        for (id, outcome) in oracle.outcomes.iter().enumerate() {
            prop_assert_eq!(outcome.id, id);
            match outcome.disposition {
                Disposition::Rejected => rejected += 1,
                Disposition::Served { .. } => served += 1,
                Disposition::Lost { .. } => lost += 1,
            }
        }
        prop_assert_eq!(served, oracle.report.completed());
        prop_assert_eq!(rejected, oracle.report.rejected);
        prop_assert_eq!(lost, oracle.report.lost);
        if !scripted {
            prop_assert_eq!(oracle.report.lost, 0);
            prop_assert_eq!(oracle.report.killed_batches, 0);
        }

        // The staged runtime replays the same churn bit for bit at every
        // worker count — fault plan, autoscaling, and all.
        for exec_workers in [1usize, 3] {
            let cfg = StagedConfig { exec_workers, channel_cap: 2, chunk: 5 };
            let staged = run_cluster_staged(&requests, &services, &spec, &cfg, &NoWork).unwrap();
            prop_assert!(staged == oracle, "staged != sim at exec_workers = {}", exec_workers);
        }
    }
}

/// A directed chaos scenario (the shape the CI smoke runs): four mixed
/// SE+dense-style instances, one killed mid-run and restarted later. The
/// books must balance, goodput must degrade but not collapse, and the
/// restarted instance's cold buffer must show up as extra weight fetches.
#[test]
fn one_kill_mid_run_degrades_goodput_proportionally_not_to_zero() {
    let services = [service("se", 200, 40, 4, 300), service("dense", 260, 50, 4, 1600)];
    let requests: Vec<Request> = (0..120)
        .map(|i| Request {
            model: (i % 2) as usize,
            arrival: i * 180,
            deadline: Some(i * 180 + 4000),
        })
        .collect();
    let healthy_spec = ClusterSpec {
        instances: 4,
        router: RouterPolicy::RoundRobin,
        policy: BatchPolicy { max_batch: 4, max_wait: 120, queue_cap: 16 },
        buffer_bytes: Some(2000),
        tiers: None,
        faults: FaultPlan::default(),
    };
    let churn_spec = ClusterSpec {
        faults: FaultPlan {
            // Instance 1's first batch (requests 1/5/9/13, all model 1)
            // runs over [2340, 2815]: the kill lands mid-execution.
            events: vec![
                FaultEvent { at: 2_500, instance: 1, action: FaultAction::Kill },
                FaultEvent { at: 15_000, instance: 1, action: FaultAction::Restart },
            ],
            autoscale: None,
        },
        ..healthy_spec.clone()
    };
    let healthy = simulate_cluster_run(&requests, &services, &healthy_spec).unwrap();
    let churned = simulate_cluster_run(&requests, &services, &churn_spec).unwrap();

    assert!(healthy.report.conserves(120));
    assert!(churned.report.conserves(120));
    assert_eq!(healthy.report.lost, 0);

    // Goodput under churn: worse than healthy, but nowhere near zero —
    // the other three instances keep serving and victims are re-routed.
    let healthy_good = healthy.report.goodput_per_s(1e9);
    let churned_good = churned.report.goodput_per_s(1e9);
    assert!(churned_good <= healthy_good);
    assert!(
        churned_good >= healthy_good / 2.0,
        "one dead instance of four must not halve goodput: {churned_good} vs {healthy_good}"
    );

    // The kill and restart are on the books, and the cold restart forces
    // re-fetches the healthy run never pays.
    let tags: Vec<&str> = churned.report.events.iter().map(|e| e.kind.tag()).collect();
    assert_eq!(tags, ["kill", "restart"]);
    assert!(churned.report.killed_batches >= 1);
    assert!(churned.report.rerouted >= 1, "victims re-enter the router");
    assert!(
        churned.report.residency.fetches > healthy.report.residency.fetches,
        "a cold restart must force weight re-fetches: {} !> {}",
        churned.report.residency.fetches,
        healthy.report.residency.fetches
    );
}
