//! The staged runtime's determinism contract, property-tested against the
//! discrete-event sim as oracle:
//!
//! * **open-loop** random arrival traces and batch policies: the staged
//!   report equals `queue::simulate_open_loop` bit for bit, for random
//!   worker counts, channel capacities, and admission chunk sizes;
//! * **closed-loop** random workloads: equality with
//!   `queue::simulate_closed_loop`;
//! * **mixed-model cluster** streams (random routers, deadlines, and
//!   weight buffers): the full `ClusterRun` — per-request outcomes
//!   included — equals `simulate_cluster_run`;
//! * **graceful drain**: shutdown loses no request — every issued request
//!   is accounted for exactly once (served or rejected) even at the
//!   smallest channel capacity, where every stage blocks on backpressure.

use proptest::prelude::*;
use se_serve::cluster::{simulate_cluster_run, ClusterSpec, ModelService, RouterPolicy};
use se_serve::fault::FaultPlan;
use se_serve::queue::{self, BatchPolicy};
use se_serve::workload::Request;
use se_serve::{
    run_cluster_staged, run_queue_staged_closed, run_queue_staged_open, Disposition, NoWork,
    StagedConfig,
};

/// A service whose batch table grows linearly (`base + per·k`), with a
/// model-specific footprint so residency decisions differ per model.
fn service(name: &str, base: u64, per: u64, max_batch: usize, footprint: u64) -> ModelService {
    let streamed: Vec<u64> = (1..=max_batch as u64).map(|k| base + per * k).collect();
    let resident: Vec<u64> = streamed.iter().map(|c| c - c / 4).collect();
    ModelService {
        name: name.into(),
        streamed,
        resident,
        footprint_bytes: footprint,
        switch_cycles: base / 2,
    }
}

fn router_of(idx: usize) -> RouterPolicy {
    match idx % 3 {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        _ => RouterPolicy::ModelAffinity,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Open loop: staged == sim, bit for bit, over random traces, batch
    /// policies, and staged tuning knobs.
    #[test]
    fn staged_open_loop_equals_sim_on_random_traces(
        gaps in proptest::collection::vec(0u64..2000, 1..60),
        max_batch in 1usize..6,
        max_wait in 0u64..3000,
        queue_cap in 1usize..12,
        base in 100u64..4000,
        per in 1u64..500,
        exec_workers in 1usize..5,
        channel_cap in 1usize..5,
        chunk in 1usize..9,
    ) {
        let mut arrivals = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for g in &gaps {
            t += g;
            arrivals.push(t);
        }
        let exec: Vec<u64> = (1..=max_batch as u64).map(|k| base + per * k).collect();
        let policy = BatchPolicy { max_batch, max_wait, queue_cap };
        let sim = queue::simulate_open_loop(&arrivals, &exec, &policy).unwrap();
        let cfg = StagedConfig { exec_workers, channel_cap, chunk };
        let staged = run_queue_staged_open(&arrivals, &exec, &policy, &cfg, &NoWork).unwrap();
        prop_assert_eq!(&staged, &sim);
        // Graceful drain: every request is accounted for, none twice.
        prop_assert_eq!(staged.completed() + staged.rejected as usize, arrivals.len());
    }

    /// Closed loop: staged == sim over random concurrency and knobs. The
    /// closed loop has no admission stage (arrivals are a function of
    /// completions), so this exercises the scheduler-owned generation.
    #[test]
    fn staged_closed_loop_equals_sim_on_random_workloads(
        requests in 1usize..120,
        concurrency in 1usize..12,
        max_batch in 1usize..6,
        max_wait in 0u64..2000,
        queue_cap in 1usize..8,
        base in 100u64..3000,
        per in 1u64..400,
        exec_workers in 1usize..5,
        channel_cap in 1usize..4,
    ) {
        let exec: Vec<u64> = (1..=max_batch as u64).map(|k| base + per * k).collect();
        let policy = BatchPolicy { max_batch, max_wait, queue_cap };
        let sim = queue::simulate_closed_loop(requests, concurrency, &exec, &policy).unwrap();
        let cfg = StagedConfig { exec_workers, channel_cap, chunk: 1 };
        let staged =
            run_queue_staged_closed(requests, concurrency, &exec, &policy, &cfg, &NoWork).unwrap();
        prop_assert_eq!(&staged, &sim);
        // Closed loops never reject: every request completes.
        prop_assert_eq!(staged.completed(), requests);
    }

    /// Mixed-model cluster streams: random routers, instance counts,
    /// deadlines, and weight buffers. Equality of the whole `ClusterRun`
    /// — report and per-request outcome set — at random staged knobs.
    #[test]
    fn staged_cluster_equals_sim_on_random_mixed_streams(
        gaps in proptest::collection::vec(0u64..1500, 1..80),
        model_picks in proptest::collection::vec(0usize..3, 80..81),
        instances in 1usize..4,
        router_idx in 0usize..3,
        max_batch in 1usize..5,
        max_wait in 0u64..2500,
        queue_cap in 1usize..10,
        raw_deadline in 0u64..6000,
        raw_buffer in 0u64..2000,
        exec_workers in 1usize..5,
        channel_cap in 1usize..4,
        chunk in 1usize..7,
    ) {
        // Low raw values mean "absent" (the vendored proptest stub has no
        // Option strategy).
        let deadline_budget = (raw_deadline >= 500).then_some(raw_deadline);
        let buffer = (raw_buffer >= 400).then_some(raw_buffer);
        let services = [
            service("a", 300, 60, max_batch, 700),
            service("b", 250, 90, max_batch, 500),
            service("c", 400, 30, max_batch, 900),
        ];
        let mut requests = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for (i, g) in gaps.iter().enumerate() {
            t += g;
            requests.push(Request {
                model: model_picks[i],
                arrival: t,
                deadline: deadline_budget.map(|d| t + d),
            });
        }
        let spec = ClusterSpec {
            instances,
            router: router_of(router_idx),
            policy: BatchPolicy { max_batch, max_wait, queue_cap },
            buffer_bytes: buffer,
            tiers: None,
            faults: FaultPlan::default(),
        };
        let oracle = simulate_cluster_run(&requests, &services, &spec).unwrap();
        let cfg = StagedConfig { exec_workers, channel_cap, chunk };
        let staged = run_cluster_staged(&requests, &services, &spec, &cfg, &NoWork).unwrap();
        prop_assert_eq!(&staged, &oracle);

        // Graceful drain, outcome-level: exactly one outcome per request,
        // in id order, and the served/rejected split matches the report.
        prop_assert_eq!(staged.outcomes.len(), requests.len());
        let mut served = 0usize;
        let mut rejected = 0u64;
        for (id, outcome) in staged.outcomes.iter().enumerate() {
            prop_assert_eq!(outcome.id, id);
            match outcome.disposition {
                Disposition::Rejected => rejected += 1,
                Disposition::Served { .. } => served += 1,
                Disposition::Lost { .. } => {
                    return Err(TestCaseError::fail("no faults scripted, nothing may be lost"));
                }
            }
        }
        prop_assert_eq!(served, staged.report.completed());
        prop_assert_eq!(rejected, staged.report.rejected);
    }
}

/// The drain edge cases proptest shrinks away from: an empty trace, a
/// trace smaller than one chunk, and a channel capacity of 1 with many
/// more launched batches than the pipeline can buffer — the shutdown
/// paths where a dropped sender must still flush everything downstream.
#[test]
fn drain_holds_at_the_boundaries() {
    let exec = [100u64, 150, 200];
    let policy = BatchPolicy { max_batch: 3, max_wait: 50, queue_cap: 2 };
    let tight = StagedConfig { exec_workers: 4, channel_cap: 1, chunk: 64 };

    let empty = run_queue_staged_open(&[], &exec, &policy, &tight, &NoWork).unwrap();
    assert_eq!(empty.completed(), 0);
    assert_eq!(empty.rejected, 0);

    let one = run_queue_staged_open(&[7], &exec, &policy, &tight, &NoWork).unwrap();
    assert_eq!(one.completed(), 1);

    // 500 near-simultaneous arrivals against cap-1 channels: most are
    // rejected by the bounded queue, and served + rejected must still
    // account for every single one.
    let arrivals: Vec<u64> = (0..500).map(|i| i / 10).collect();
    let report = run_queue_staged_open(&arrivals, &exec, &policy, &tight, &NoWork).unwrap();
    assert_eq!(report.completed() + report.rejected as usize, arrivals.len());
    assert!(report.rejected > 0, "the bounded queue must overflow in this trace");
    assert_eq!(report, queue::simulate_open_loop(&arrivals, &exec, &policy).unwrap());
}
