//! Serving-subsystem invariants: the batch-amortization property (a batch
//! of N identical images matches N single-image runs on every
//! activation-side statistic while weight-side DRAM is charged once) and
//! the end-to-end determinism of the serving pipeline across worker
//! counts.

use proptest::prelude::*;
use se_baselines::BaselineConfig;
use se_hw::SeAcceleratorConfig;
use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};
use se_models::traces::{trace_pairs, TraceOptions};
use se_serve::queue::{self, BatchPolicy};
use se_serve::workload::{self, ArrivalPattern};
use se_serve::{BatchEngine, SE_LANE};

fn conv(name: &str, ci: usize, co: usize, k: usize, hw: usize) -> LayerDesc {
    LayerDesc::new(
        name,
        LayerKind::Conv2d { in_channels: ci, out_channels: co, kernel: k, stride: 1, padding: 1 },
        (hw, hw),
    )
}

fn engine() -> BatchEngine {
    BatchEngine::new(SeAcceleratorConfig::default(), BaselineConfig::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every accelerator lane and random CONV geometry: a batch of N
    /// identical images equals the sum of N single-image runs on every
    /// activation-side statistic (input/output DRAM, global-buffer
    /// traffic, compute work), while weight-side DRAM accesses — the
    /// compressed weights, their indices, the weight-buffer fill, and the
    /// rebuild register-file traffic — are charged exactly once.
    #[test]
    fn batch_of_n_matches_n_singles_except_weight_side(
        seed in 0u64..200,
        ci in 2usize..5,
        co in 2usize..9,
        k in 1usize..4,
        n in 2u64..9,
    ) {
        let net = NetworkDesc::new(
            "prop",
            Dataset::Cifar10,
            vec![conv("c", ci, co, k, 8)],
        ).unwrap();
        let opts = TraceOptions::fast().with_seed(seed);
        let pair = trace_pairs(&net, &opts).unwrap().remove(0);
        let e = engine();
        for lane in 0..5 {
            let accel = e.accelerator(lane);
            let trace = if lane == SE_LANE { &pair.se } else { &pair.dense };
            let single = accel.process_layer(trace).unwrap();
            let batch = accel.process_batch(trace, n as usize).unwrap();

            // Activation-side: exactly N single-image runs.
            prop_assert_eq!(batch.mem.dram_input_bytes, n * single.mem.dram_input_bytes);
            prop_assert_eq!(batch.mem.dram_output_bytes, n * single.mem.dram_output_bytes);
            prop_assert_eq!(batch.mem.input_gb_read_bytes, n * single.mem.input_gb_read_bytes);
            prop_assert_eq!(batch.mem.input_gb_write_bytes, n * single.mem.input_gb_write_bytes);
            prop_assert_eq!(batch.mem.output_gb_read_bytes, n * single.mem.output_gb_read_bytes);
            prop_assert_eq!(batch.mem.output_gb_write_bytes, n * single.mem.output_gb_write_bytes);
            prop_assert_eq!(batch.mem.weight_gb_read_bytes, n * single.mem.weight_gb_read_bytes);
            prop_assert_eq!(batch.ops.pe_lane_cycles, n * single.ops.pe_lane_cycles);
            prop_assert_eq!(batch.ops.macs, n * single.ops.macs);
            prop_assert_eq!(batch.ops.accumulator_adds, n * single.ops.accumulator_adds);
            prop_assert_eq!(batch.ops.index_compares, n * single.ops.index_compares);
            prop_assert_eq!(batch.compute_cycles, n * single.compute_cycles);

            // Weight-side DRAM and rebuild: charged once per batch.
            prop_assert_eq!(batch.mem.dram_weight_bytes, single.mem.dram_weight_bytes);
            prop_assert_eq!(batch.mem.dram_index_bytes, single.mem.dram_index_bytes);
            prop_assert_eq!(batch.mem.weight_gb_write_bytes, single.mem.weight_gb_write_bytes);
            prop_assert_eq!(batch.mem.rf_bytes, single.mem.rf_bytes);
            prop_assert_eq!(batch.ops.rebuild_shift_adds, single.ops.rebuild_shift_adds);

            // And batch = 1 is the single-image result, bit for bit.
            prop_assert_eq!(accel.process_batch(trace, 1).unwrap(), single.clone());
        }
    }
}

/// A serving run end to end, returning a value that captures everything
/// `se serve` would print: per-request latencies, batch sizes, rejects.
fn serve_once(sim_workers: usize, trace_workers: usize) -> (queue::ServeReport, Vec<u64>) {
    let net = NetworkDesc::new(
        "det",
        Dataset::Cifar10,
        vec![conv("c1", 3, 8, 3, 8), conv("c2", 8, 8, 3, 8), conv("c3", 8, 8, 3, 8)],
    )
    .unwrap();
    let opts = TraceOptions::fast()
        .with_se_config(TraceOptions::fast().se_config.with_parallelism(trace_workers).unwrap());
    let pairs = trace_pairs(&net, &opts).unwrap();
    let e = engine();
    let per_image = e.per_image_se(&pairs, sim_workers).unwrap();
    let policy = BatchPolicy { max_batch: 4, max_wait: 2_000, queue_cap: 64 };
    let exec = e.latency_table(SE_LANE, &per_image, policy.max_batch);
    let arrivals = workload::open_loop_arrivals(
        48,
        200_000.0,
        SeAcceleratorConfig::default().frequency_hz,
        ArrivalPattern::Burst { size: 3 },
    )
    .unwrap();
    (queue::simulate_open_loop(&arrivals, &exec, &policy).unwrap(), exec)
}

#[test]
fn serving_pipeline_is_bit_identical_across_worker_counts() {
    let (serial, exec1) = serve_once(1, 1);
    assert!(serial.completed() > 0);
    for workers in [2usize, 4, 8] {
        let (parallel, exec) = serve_once(workers, workers.min(4));
        assert_eq!(serial, parallel, "workers = {workers}");
        assert_eq!(exec1, exec, "latency table must not depend on workers");
    }
}

#[test]
fn batched_serving_beats_single_image_serving_on_throughput() {
    let net = NetworkDesc::new("thr", Dataset::Cifar10, vec![conv("c1", 3, 8, 3, 8)]).unwrap();
    let pairs = trace_pairs(&net, &TraceOptions::fast()).unwrap();
    // A bandwidth-starved configuration makes the weight fetch the
    // bottleneck — the regime where batch amortization pays in latency.
    let se_cfg = SeAcceleratorConfig { dram_bytes_per_cycle: 0.25, ..Default::default() };
    let e = BatchEngine::new(se_cfg, BaselineConfig::default()).unwrap();
    let per_image = e.per_image_se(&pairs, 2).unwrap();
    let exec = e.latency_table(SE_LANE, &per_image, 8);
    // A closed loop saturates the server; wider batches finish the same
    // demand sooner because each batch fetches weights once.
    let singles = queue::simulate_closed_loop(
        64,
        8,
        &exec,
        &BatchPolicy { max_batch: 1, ..Default::default() },
    )
    .unwrap();
    let batched = queue::simulate_closed_loop(
        64,
        8,
        &exec,
        &BatchPolicy { max_batch: 8, ..Default::default() },
    )
    .unwrap();
    assert_eq!(singles.completed(), 64);
    assert_eq!(batched.completed(), 64);
    assert!(
        batched.makespan < singles.makespan,
        "batched {} !< single {}",
        batched.makespan,
        singles.makespan
    );
}
