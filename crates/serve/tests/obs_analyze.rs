//! Conservation of the trace analytics engine, property-tested over
//! random traces × fault plans × residency stacks: the windowed
//! aggregates of `se_obs::analyze` must fold back exactly to the
//! stream totals, and the stream totals must re-derive the
//! `ClusterReport` the run itself produced — served, missed, rejected,
//! lost, killed batches, and tier traffic all agree, at every window
//! width.

use proptest::prelude::*;
use se_obs::analyze::analyze;
use se_obs::Recorder;
use se_serve::cluster::{
    simulate_cluster_run_obs, ClusterSpec, ModelService, RouterPolicy, TierSpec,
};
use se_serve::fault::{AutoscalePolicy, FaultAction, FaultEvent, FaultPlan};
use se_serve::queue::BatchPolicy;
use se_serve::workload::Request;

fn service(name: &str, base: u64, per: u64, max_batch: usize, footprint: u64) -> ModelService {
    let streamed: Vec<u64> = (1..=max_batch as u64).map(|k| base + per * k).collect();
    let resident: Vec<u64> = streamed.iter().map(|c| c - c / 4).collect();
    ModelService {
        name: name.into(),
        streamed,
        resident,
        footprint_bytes: footprint,
        switch_cycles: base / 2,
    }
}

fn router_of(idx: usize) -> RouterPolicy {
    match idx % 3 {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        _ => RouterPolicy::ModelAffinity,
    }
}

fn plan_of(
    instances: usize,
    kill_ats: &[u64],
    restart_gaps: &[u64],
    flags: &[usize],
    auto_raw: u64,
) -> FaultPlan {
    let mut events = Vec::new();
    for i in 0..instances.min(kill_ats.len()) {
        if flags[i] & 1 != 0 {
            events.push(FaultEvent { at: kill_ats[i], instance: i, action: FaultAction::Kill });
            if flags[i] & 2 != 0 {
                events.push(FaultEvent {
                    at: kill_ats[i] + 1 + restart_gaps[i],
                    instance: i,
                    action: FaultAction::Restart,
                });
            }
        }
    }
    events.sort_unstable_by_key(|e| (e.at, e.instance));
    let autoscale = (auto_raw >= 2)
        .then_some(AutoscalePolicy { spawn_above: auto_raw, drain_below: auto_raw / 2 });
    FaultPlan { events, autoscale }
}

fn residency_of(raw: usize, cap: u64) -> (Option<u64>, Option<Vec<TierSpec>>) {
    match raw % 3 {
        0 => (None, None),
        1 => (Some(cap), None),
        _ => (
            None,
            Some(vec![
                TierSpec::new("buf", cap, 64.0),
                TierSpec::new("dram", cap * 4, 8.0),
                TierSpec::new("ssd", cap * 16, 1.0),
            ]),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Over random workloads, fault plans, and tier stacks, and at every
    /// window width: windows fold exactly to totals, and totals re-derive
    /// the run's own `ClusterReport`.
    #[test]
    fn windows_fold_to_totals_and_totals_rederive_the_report(
        gaps in proptest::collection::vec(0u64..1000, 1..60),
        model_picks in proptest::collection::vec(0usize..3, 60..61),
        instances in 2usize..5,
        router_idx in 0usize..3,
        max_batch in 1usize..5,
        max_wait in 0u64..1500,
        queue_cap in 1usize..8,
        raw_deadline in 0u64..6000,
        residency_raw in 0usize..3,
        tier_cap in 500u64..3000,
        kill_ats in proptest::collection::vec(1u64..40_000, 4..5),
        restart_gaps in proptest::collection::vec(0u64..30_000, 4..5),
        flags in proptest::collection::vec(0usize..4, 4..5),
        auto_raw in 0u64..6,
        window_raw in 0u64..5000,
    ) {
        // Window draw spans the extremes: single-cycle, mid-size, and
        // one window covering the whole run.
        let window = match window_raw {
            0 => 1,
            1 => 1 << 40,
            w => w,
        };
        let deadline_budget = (raw_deadline >= 500).then_some(raw_deadline);
        let services = [
            service("a", 300, 60, max_batch, 700),
            service("b", 250, 90, max_batch, 500),
            service("c", 400, 30, max_batch, 900),
        ];
        let mut requests = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for (i, g) in gaps.iter().enumerate() {
            t += g;
            requests.push(Request {
                model: model_picks[i],
                arrival: t,
                deadline: deadline_budget.map(|d| t + d),
            });
        }
        let (buffer_bytes, tiers) = residency_of(residency_raw, tier_cap);
        let spec = ClusterSpec {
            instances,
            router: router_of(router_idx),
            policy: BatchPolicy { max_batch, max_wait, queue_cap },
            buffer_bytes,
            tiers,
            faults: plan_of(instances, &kill_ats, &restart_gaps, &flags, auto_raw),
        };

        let mut rec = Recorder::new();
        let run = simulate_cluster_run_obs(&requests, &services, &spec, &mut rec).unwrap();
        let report = &run.report;
        let a = analyze(rec.events(), window);

        // The fold property: the dense windows partition the stream.
        prop_assert_eq!(&a.fold_windows(), &a.totals);

        // The totals re-derive the run's own report.
        prop_assert!(a.totals.conserves());
        prop_assert!(report.conserves(requests.len()));
        prop_assert_eq!(a.totals.submitted as usize, requests.len());
        prop_assert_eq!(a.totals.served as usize, report.completed());
        prop_assert_eq!(a.totals.missed, report.misses);
        prop_assert_eq!(a.totals.rejected, report.rejected);
        prop_assert_eq!(a.totals.lost, report.lost);
        prop_assert_eq!(a.totals.batches_killed, report.killed_batches);
        // Every launched batch completes or is killed.
        prop_assert_eq!(
            a.totals.batches_launched,
            a.totals.batches_completed + a.totals.batches_killed
        );

        // Tier traffic: the event stream carries the same story the
        // report's per-tier counters tell.
        if let Some(stack) = &spec.tiers {
            prop_assert_eq!(report.tier_traffic.len(), stack.len());
            prop_assert_eq!(a.totals.tier_hits, report.tier_traffic[0].hits);
            let promotions: u64 = report.tier_traffic.iter().map(|t| t.promotions).sum();
            prop_assert_eq!(a.totals.tier_promotions, promotions);
        }

        // Attribution: segments of every served request sum to its
        // latency, and the missed/lost splits match the report.
        let mut missed = 0u64;
        let mut lost = 0u64;
        for at in &a.attributions {
            if at.lost {
                lost += 1;
                continue;
            }
            // Segments of a served lifetime sum to its latency.
            prop_assert_eq!(
                at.reroute + at.queue + at.formation + at.cold + at.exec,
                at.done - at.arrival
            );
            if at.missed {
                missed += 1;
            }
        }
        prop_assert_eq!(missed, report.misses);
        prop_assert_eq!(lost, report.lost);
    }
}
