//! Determinism of the observability event stream, property-tested over
//! random traces × fault plans × residency stacks:
//!
//! * **non-perturbation**: running with a recording sink produces exactly
//!   the same `ClusterRun` as running blind — observation never changes a
//!   scheduling decision;
//! * **runtime equality**: the virtual-time event stream of the staged
//!   runtime equals the serial sim's **bit for bit** at every exec-worker
//!   count (the core runs serially in both, so the stream is a pure
//!   function of the trace and spec);
//! * **bookkeeping**: the stream's terminal events re-derive the report's
//!   counters (served/rejected/lost), and wall-clock annotations never
//!   appear unless explicitly opted in via `SE_TRACE_WALL=1`.

use proptest::prelude::*;
use se_obs::{EventKind, Recorder};
use se_serve::cluster::{
    simulate_cluster_run, simulate_cluster_run_obs, ClusterSpec, ModelService, RouterPolicy,
    TierSpec,
};
use se_serve::fault::{AutoscalePolicy, FaultAction, FaultEvent, FaultPlan};
use se_serve::queue::BatchPolicy;
use se_serve::workload::Request;
use se_serve::{run_cluster_staged_obs, NoWork, StagedConfig};

fn service(name: &str, base: u64, per: u64, max_batch: usize, footprint: u64) -> ModelService {
    let streamed: Vec<u64> = (1..=max_batch as u64).map(|k| base + per * k).collect();
    let resident: Vec<u64> = streamed.iter().map(|c| c - c / 4).collect();
    ModelService {
        name: name.into(),
        streamed,
        resident,
        footprint_bytes: footprint,
        switch_cycles: base / 2,
    }
}

fn router_of(idx: usize) -> RouterPolicy {
    match idx % 3 {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::JoinShortestQueue,
        _ => RouterPolicy::ModelAffinity,
    }
}

/// Same valid-plan construction as `tests/fault.rs`: optional kill per
/// instance, optional strictly-later restart, events ordered by
/// `(at, instance)`.
fn plan_of(
    instances: usize,
    kill_ats: &[u64],
    restart_gaps: &[u64],
    flags: &[usize],
    auto_raw: u64,
) -> FaultPlan {
    let mut events = Vec::new();
    for i in 0..instances.min(kill_ats.len()) {
        if flags[i] & 1 != 0 {
            events.push(FaultEvent { at: kill_ats[i], instance: i, action: FaultAction::Kill });
            if flags[i] & 2 != 0 {
                events.push(FaultEvent {
                    at: kill_ats[i] + 1 + restart_gaps[i],
                    instance: i,
                    action: FaultAction::Restart,
                });
            }
        }
    }
    events.sort_unstable_by_key(|e| (e.at, e.instance));
    let autoscale = (auto_raw >= 2)
        .then_some(AutoscalePolicy { spawn_above: auto_raw, drain_below: auto_raw / 2 });
    FaultPlan { events, autoscale }
}

/// Residency draw: nothing, the flat weight buffer, or a 3-deep tier
/// stack (buf/dram/ssd shape) — the three `Residency` arms.
fn residency_of(raw: usize, cap: u64) -> (Option<u64>, Option<Vec<TierSpec>>) {
    match raw % 3 {
        0 => (None, None),
        1 => (Some(cap), None),
        _ => (
            None,
            Some(vec![
                TierSpec::new("buf", cap, 64.0),
                TierSpec::new("dram", cap * 4, 8.0),
                TierSpec::new("ssd", cap * 16, 1.0),
            ]),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Over random mixed-model traces, churn plans, and residency stacks:
    /// observation does not perturb outcomes, and sim and staged runtimes
    /// emit byte-identical virtual-time event streams at 1 and 4 workers.
    #[test]
    fn event_stream_is_identical_across_runtimes_and_worker_counts(
        gaps in proptest::collection::vec(0u64..1000, 1..60),
        model_picks in proptest::collection::vec(0usize..3, 60..61),
        instances in 2usize..5,
        router_idx in 0usize..3,
        max_batch in 1usize..5,
        max_wait in 0u64..1500,
        queue_cap in 1usize..8,
        raw_deadline in 0u64..6000,
        residency_raw in 0usize..3,
        tier_cap in 500u64..3000,
        kill_ats in proptest::collection::vec(1u64..40_000, 4..5),
        restart_gaps in proptest::collection::vec(0u64..30_000, 4..5),
        flags in proptest::collection::vec(0usize..4, 4..5),
        auto_raw in 0u64..6,
    ) {
        let deadline_budget = (raw_deadline >= 500).then_some(raw_deadline);
        let services = [
            service("a", 300, 60, max_batch, 700),
            service("b", 250, 90, max_batch, 500),
            service("c", 400, 30, max_batch, 900),
        ];
        let mut requests = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for (i, g) in gaps.iter().enumerate() {
            t += g;
            requests.push(Request {
                model: model_picks[i],
                arrival: t,
                deadline: deadline_budget.map(|d| t + d),
            });
        }
        let (buffer_bytes, tiers) = residency_of(residency_raw, tier_cap);
        let spec = ClusterSpec {
            instances,
            router: router_of(router_idx),
            policy: BatchPolicy { max_batch, max_wait, queue_cap },
            buffer_bytes,
            tiers,
            faults: plan_of(instances, &kill_ats, &restart_gaps, &flags, auto_raw),
        };

        let plain = simulate_cluster_run(&requests, &services, &spec).unwrap();
        let mut sim_rec = Recorder::new();
        let observed =
            simulate_cluster_run_obs(&requests, &services, &spec, &mut sim_rec).unwrap();
        prop_assert!(observed == plain, "observation must not perturb the run");

        // Terminal events re-derive the report's books.
        let (mut served, mut rejected, mut lost) = (0usize, 0u64, 0u64);
        for event in sim_rec.events() {
            match event.kind {
                EventKind::Served { .. } => served += 1,
                EventKind::Rejected { .. } => rejected += 1,
                EventKind::Lost { .. } => lost += 1,
                EventKind::StageWall { .. } => {
                    prop_assert!(false, "wall annotations are opt-in and never default-on");
                }
                _ => {}
            }
        }
        prop_assert_eq!(served, plain.report.completed());
        prop_assert_eq!(rejected, plain.report.rejected);
        prop_assert_eq!(lost, plain.report.lost);

        // The staged runtime narrates the same stream bit for bit at
        // every worker count — and still matches the blind run.
        for exec_workers in [1usize, 4] {
            let cfg = StagedConfig { exec_workers, channel_cap: 2, chunk: 5 };
            let mut staged_rec = Recorder::new();
            let staged = run_cluster_staged_obs(
                &requests, &services, &spec, &cfg, &NoWork, &mut staged_rec,
            )
            .unwrap();
            prop_assert!(staged == plain, "staged != sim at exec_workers = {}", exec_workers);
            prop_assert!(
                staged_rec.events() == sim_rec.events(),
                "event stream diverged at exec_workers = {} ({} vs {} events)",
                exec_workers,
                staged_rec.len(),
                sim_rec.len()
            );
        }
    }
}

/// A disabled sink must take the plain (unobserved) code path and record
/// nothing, while an enabled sink on the same trace sees the full story:
/// admissions, batch spans, the kill/restart pair, and — with a tier
/// stack — per-tier admission events.
#[test]
fn directed_churned_tiered_run_tells_the_whole_story() {
    let services = [service("se", 200, 40, 4, 300), service("dense", 260, 50, 4, 1600)];
    let requests: Vec<Request> = (0..120)
        .map(|i| Request {
            model: (i % 2) as usize,
            arrival: i * 180,
            deadline: Some(i * 180 + 4000),
        })
        .collect();
    let spec = ClusterSpec {
        instances: 4,
        router: RouterPolicy::RoundRobin,
        policy: BatchPolicy { max_batch: 4, max_wait: 120, queue_cap: 16 },
        buffer_bytes: None,
        tiers: Some(vec![
            TierSpec::new("buf", 1700, 64.0),
            TierSpec::new("dram", 6800, 8.0),
            TierSpec::new("ssd", 27_200, 1.0),
        ]),
        faults: FaultPlan {
            events: vec![
                FaultEvent { at: 2_500, instance: 1, action: FaultAction::Kill },
                FaultEvent { at: 15_000, instance: 1, action: FaultAction::Restart },
            ],
            autoscale: None,
        },
    };

    let plain = simulate_cluster_run(&requests, &services, &spec).unwrap();
    let mut null = se_obs::NullSink;
    let blind = simulate_cluster_run_obs(&requests, &services, &spec, &mut null).unwrap();
    assert_eq!(blind, plain, "a disabled sink must not perturb the run");

    let mut rec = Recorder::new();
    let observed = simulate_cluster_run_obs(&requests, &services, &spec, &mut rec).unwrap();
    assert_eq!(observed, plain);

    let count = |pred: &dyn Fn(&EventKind) -> bool| -> usize {
        rec.events().iter().filter(|e| pred(&e.kind)).count()
    };
    assert_eq!(
        count(&|k| matches!(k, EventKind::InstanceKilled { instance: 1, .. })),
        1,
        "the scripted kill is on the stream"
    );
    assert_eq!(count(&|k| matches!(k, EventKind::InstanceRestarted { instance: 1 })), 1);
    assert!(count(&|k| matches!(k, EventKind::BatchLaunched { .. })) >= 1);
    assert!(
        count(&|k| matches!(
            k,
            EventKind::TierHit { .. }
                | EventKind::TierPromoted { .. }
                | EventKind::TierColdFetch { .. }
                | EventKind::TierStreamed { .. }
        )) >= 1,
        "a tiered run narrates its admissions"
    );
    assert_eq!(count(&|k| matches!(k, EventKind::Served { .. })), plain.report.completed());

    // Virtual timestamps are monotone per batch: a batch completes at or
    // after it launches, and every kill precedes its restart.
    let launch = rec
        .events()
        .iter()
        .find(|e| matches!(e.kind, EventKind::BatchLaunched { .. }))
        .expect("at least one launch");
    if let EventKind::BatchLaunched { done, .. } = launch.kind {
        assert!(done >= launch.at);
    }
}
