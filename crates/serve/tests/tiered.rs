//! Property tests locking down the tiered weight store and its serving
//! integration:
//!
//! * **tier conservation**: over random admission streams, stacks, and
//!   restarts, `admissions == Σ tier hits + cold_fetches + streams`, and
//!   no tier ever holds more bytes than its capacity;
//! * **degenerate-stack equivalence**: a one-tier store is the legacy
//!   `WeightBuffer`, admission by admission;
//! * **determinism**: the staged runtime equals the serial sim bit for
//!   bit over random tier stacks crossed with random fault plans;
//! * **cost ordering** (directed): a post-restart cold load is strictly
//!   costlier than a DRAM-backed promotion, and the SE lane moves
//!   strictly fewer bottom-tier bytes than every dense lane through an
//!   identical stack.

use proptest::prelude::*;
use se_hw::residency::{Admission, TierAdmission, TierSpec, TieredStore, WeightBuffer};
use se_serve::cluster::{simulate_cluster_run, ClusterSpec, ModelService, RouterPolicy};
use se_serve::fault::{FaultAction, FaultEvent, FaultPlan};
use se_serve::queue::BatchPolicy;
use se_serve::workload::Request;
use se_serve::{run_cluster_staged, NoWork, StagedConfig};

fn stack_of(caps: &[u64], bws: &[u64]) -> Vec<TierSpec> {
    caps.iter()
        .zip(bws)
        .enumerate()
        .map(|(k, (&cap, &bw))| TierSpec::new(&format!("t{k}"), cap, (bw + 1) as f64))
        .collect()
}

fn service(name: &str, base: u64, per: u64, max_batch: usize, footprint: u64) -> ModelService {
    let streamed: Vec<u64> = (1..=max_batch as u64).map(|k| base + per * k).collect();
    let resident: Vec<u64> = streamed.iter().map(|c| c - c / 4).collect();
    ModelService {
        name: name.into(),
        streamed,
        resident,
        footprint_bytes: footprint,
        switch_cycles: base / 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over a random stack, a random admission stream, and periodic cold
    /// restarts: every admission is exactly one of {tier hit, cold fetch,
    /// stream}, occupancy never exceeds any tier's capacity, a fitting
    /// footprint always lands in the top tier, and the legacy summary
    /// splits the same total.
    #[test]
    fn random_streams_conserve_admissions_and_respect_capacity(
        caps in proptest::collection::vec(1u64..3000, 1..5),
        bws in proptest::collection::vec(0u64..63, 5..6),
        picks in proptest::collection::vec(0usize..6, 1..120),
        sizes in proptest::collection::vec(1u64..1500, 6..7),
        restart_every in 1usize..40,
    ) {
        let specs = stack_of(&caps, &bws);
        let mut store = TieredStore::new(specs.clone());
        for (i, &m) in picks.iter().enumerate() {
            let bytes = sizes[m];
            let adm = store.admit(m, bytes);
            for (k, spec) in specs.iter().enumerate() {
                prop_assert!(
                    store.occupied_bytes(k) <= spec.capacity_bytes,
                    "tier {} over capacity: {} > {}",
                    k, store.occupied_bytes(k), spec.capacity_bytes
                );
            }
            if bytes > specs[0].capacity_bytes {
                prop_assert!(matches!(adm, TierAdmission::Streamed { .. }));
                prop_assert!(!store.is_resident_top(m), "streamed models never install");
            } else {
                prop_assert!(store.is_resident_top(m), "a fitting admission ends resident on top");
                prop_assert!(adm.cycles() == 0 || !matches!(adm, TierAdmission::Hit));
            }
            if (i + 1) % restart_every == 0 {
                store.cold_restart();
            }
        }

        // The conservation law the store documents.
        let tier_hits: u64 = store.tier_stats().iter().map(|t| t.hits).sum();
        prop_assert_eq!(store.admissions(), tier_hits + store.cold_fetches() + store.streams());
        prop_assert_eq!(store.admissions(), picks.len() as u64);

        // Every lower-tier hit is a promotion, and the legacy summary
        // splits the same admission count: hits at the top, everything
        // byte-moving under `fetches`.
        let lower_hits: u64 = store.tier_stats().iter().skip(1).map(|t| t.hits).sum();
        let promotions: u64 = store.tier_stats().iter().map(|t| t.promotions).sum();
        prop_assert_eq!(lower_hits, promotions);
        prop_assert_eq!(store.summary().hits, store.tier_stats()[0].hits);
        prop_assert_eq!(store.summary().hits + store.summary().fetches, store.admissions());
    }

    /// A one-tier stack is the legacy `WeightBuffer`: same admission
    /// classification, same eviction victims, same occupancy, same
    /// summary counters, on any stream with restarts mixed in.
    #[test]
    fn a_one_tier_store_is_exactly_the_legacy_weight_buffer(
        cap in 1u64..4000,
        picks in proptest::collection::vec(0usize..5, 1..100),
        sizes in proptest::collection::vec(1u64..2000, 5..6),
        restart_every in 1usize..30,
    ) {
        let mut store = TieredStore::new(vec![TierSpec::new("buf", cap, 8.0)]);
        let mut buf = WeightBuffer::new(cap);
        for (i, &m) in picks.iter().enumerate() {
            let bytes = sizes[m];
            let tiered = store.admit(m, bytes);
            let legacy = buf.admit(m, bytes);
            match (&tiered, &legacy) {
                (TierAdmission::Hit, Admission::Resident) => {}
                (TierAdmission::Streamed { cycles }, Admission::Streamed) => {
                    // One tier: nothing deeper to haul from.
                    prop_assert_eq!(*cycles, 0);
                }
                (TierAdmission::Cold { evicted, .. }, Admission::Fetched { evicted: legacy_ev }) => {
                    prop_assert_eq!(evicted, legacy_ev);
                }
                other => prop_assert!(false, "diverging admissions: {:?}", other),
            }
            prop_assert_eq!(store.occupied_bytes(0), buf.occupied_bytes());
            prop_assert_eq!(store.is_resident_top(m), buf.is_resident(m));
            if (i + 1) % restart_every == 0 {
                store.cold_restart();
                buf.cold_restart();
            }
        }
        prop_assert_eq!(store.summary(), buf.stats());
    }

    /// The staged runtime replays the serial sim bit for bit over random
    /// tier stacks crossed with random fault plans, and the cluster
    /// report's tier traffic is exactly the per-instance fold.
    #[test]
    fn staged_equals_sim_over_random_tier_stacks_and_fault_plans(
        caps in proptest::collection::vec(1u64..2500, 2..5),
        bws in proptest::collection::vec(0u64..31, 5..6),
        gaps in proptest::collection::vec(0u64..1000, 1..60),
        model_picks in proptest::collection::vec(0usize..3, 60..61),
        instances in 2usize..5,
        router_idx in 0usize..3,
        max_batch in 1usize..4,
        kill_at in 1u64..30_000,
        restart_gap in 0u64..20_000,
        fault_kind in 0usize..3,
    ) {
        let tiers = stack_of(&caps, &bws);
        let services = [
            service("a", 300, 60, max_batch, 700),
            service("b", 250, 90, max_batch, 500),
            service("c", 400, 30, max_batch, 900),
        ];
        let mut requests = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for (i, g) in gaps.iter().enumerate() {
            t += g;
            requests.push(Request { model: model_picks[i], arrival: t, deadline: Some(t + 5000) });
        }
        let mut events = Vec::new();
        if fault_kind >= 1 {
            events.push(FaultEvent { at: kill_at, instance: 0, action: FaultAction::Kill });
            if fault_kind == 2 {
                events.push(FaultEvent {
                    at: kill_at + 1 + restart_gap,
                    instance: 0,
                    action: FaultAction::Restart,
                });
            }
        }
        let spec = ClusterSpec {
            instances,
            router: match router_idx {
                0 => RouterPolicy::RoundRobin,
                1 => RouterPolicy::JoinShortestQueue,
                _ => RouterPolicy::ModelAffinity,
            },
            policy: BatchPolicy { max_batch, max_wait: 500, queue_cap: 8 },
            buffer_bytes: None,
            tiers: Some(tiers.clone()),
            faults: FaultPlan { events, autoscale: None },
        };
        let oracle = simulate_cluster_run(&requests, &services, &spec).unwrap();

        prop_assert!(oracle.report.conserves(requests.len()));
        prop_assert_eq!(oracle.report.tier_traffic.len(), tiers.len());
        // The report's tier traffic is the elementwise per-instance fold.
        for (k, total) in oracle.report.tier_traffic.iter().enumerate() {
            let mut folded = se_serve::TierStats::default();
            for inst in &oracle.report.per_instance {
                if let Some(t) = inst.tier_traffic.get(k) {
                    folded.accumulate(t);
                }
            }
            prop_assert_eq!(&folded, total);
        }

        for exec_workers in [1usize, 3] {
            let cfg = StagedConfig { exec_workers, channel_cap: 2, chunk: 5 };
            let staged = run_cluster_staged(&requests, &services, &spec, &cfg, &NoWork).unwrap();
            prop_assert!(staged == oracle, "staged != sim at exec_workers = {}", exec_workers);
        }
    }
}

/// The acceptance ordering on a buf ↔ DRAM ↔ SSD stack: promoting out of
/// DRAM is cheap, a cold load after a restart walks from SSD and costs
/// strictly more.
#[test]
fn a_cold_load_after_restart_costs_strictly_more_than_a_dram_promotion() {
    let mut store = TieredStore::new(vec![
        TierSpec::new("buf", 1000, 16.0),
        TierSpec::new("dram", 10_000, 4.0),
        TierSpec::new("ssd", 1 << 30, 1.0),
    ]);
    assert!(matches!(store.admit(0, 800), TierAdmission::Cold { .. }));
    // Admitting model 1 displaces model 0 out of the buffer into DRAM.
    match store.admit(1, 800) {
        TierAdmission::Cold { evicted, .. } => assert_eq!(evicted, vec![0]),
        other => panic!("expected an evicting cold load, got {other:?}"),
    }
    let dram_walk = match store.admit(0, 800) {
        TierAdmission::Promoted { from: 1, cycles, .. } => cycles,
        other => panic!("expected a DRAM promotion, got {other:?}"),
    };
    assert_eq!(dram_walk, 200, "800 B over the 4 B/cycle DRAM link");

    // A restart wipes the volatile tiers; nothing was demoted as far as
    // SSD, so the model re-loads cold through the whole stack.
    store.cold_restart();
    let cold_walk = match store.admit(0, 800) {
        TierAdmission::Cold { cycles, .. } => cycles,
        other => panic!("expected a cold load after restart, got {other:?}"),
    };
    assert_eq!(cold_walk, 800 + 200, "SSD haul plus the DRAM crossing");
    assert!(cold_walk > dram_walk);
}

/// The same ordering observed end to end: a kill + restart on a tiered
/// cluster forces post-restart cold loads, so the churned run reads
/// strictly more bytes out of the bottom tier than the healthy one.
#[test]
fn a_restart_forces_bottom_tier_reloads_the_healthy_run_never_pays() {
    let services = [service("se", 200, 40, 4, 300), service("dense", 260, 50, 4, 700)];
    let requests: Vec<Request> = (0..120)
        .map(|i| Request { model: (i % 2) as usize, arrival: i * 180, deadline: None })
        .collect();
    let healthy_spec = ClusterSpec {
        instances: 2,
        router: RouterPolicy::RoundRobin,
        policy: BatchPolicy { max_batch: 4, max_wait: 120, queue_cap: 16 },
        buffer_bytes: None,
        tiers: Some(vec![
            TierSpec::new("buf", 1100, 16.0),
            TierSpec::new("dram", 4000, 4.0),
            TierSpec::new("ssd", 1 << 30, 1.0),
        ]),
        faults: FaultPlan::default(),
    };
    let churn_spec = ClusterSpec {
        faults: FaultPlan {
            events: vec![
                FaultEvent { at: 2_500, instance: 1, action: FaultAction::Kill },
                FaultEvent { at: 15_000, instance: 1, action: FaultAction::Restart },
            ],
            autoscale: None,
        },
        ..healthy_spec.clone()
    };
    let healthy = simulate_cluster_run(&requests, &services, &healthy_spec).unwrap();
    let churned = simulate_cluster_run(&requests, &services, &churn_spec).unwrap();
    assert!(healthy.report.conserves(120));
    assert!(churned.report.conserves(120));

    let bottom =
        |run: &se_serve::cluster::ClusterRun| run.report.tier_traffic.last().unwrap().bytes_up;
    assert!(
        bottom(&churned) > bottom(&healthy),
        "a cold restart must re-read the bottom tier: {} !> {}",
        bottom(&churned),
        bottom(&healthy)
    );
}

/// The figure-of-merit the stack exists to show: through an identical
/// buf ↔ DRAM ↔ SSD stack under an identical request stream, the
/// compressed SE lane's footprint fits where the dense lanes' do not,
/// so SE moves strictly fewer bottom-tier bytes than every dense lane.
#[test]
fn se_moves_strictly_fewer_bottom_tier_bytes_than_every_dense_lane() {
    let tiers = vec![
        TierSpec::new("buf", 1000, 16.0),
        TierSpec::new("dram", 2000, 4.0),
        TierSpec::new("ssd", 1 << 30, 1.0),
    ];
    let spec = ClusterSpec {
        instances: 2,
        router: RouterPolicy::RoundRobin,
        policy: BatchPolicy { max_batch: 4, max_wait: 120, queue_cap: 16 },
        buffer_bytes: None,
        tiers: Some(tiers),
        faults: FaultPlan::default(),
    };
    // Two models per lane, alternating — the SE pair fits the buffer
    // together, each dense pair thrashes it.
    let lanes = [("se", 400, 450), ("dense-a", 900, 950), ("dense-b", 800, 1800)];
    let requests: Vec<Request> = (0..160)
        .map(|i| Request { model: (i % 2) as usize, arrival: i * 150, deadline: None })
        .collect();
    let bottom_bytes: Vec<u64> = lanes
        .iter()
        .map(|&(name, fp0, fp1)| {
            let services = [
                service(&format!("{name}-0"), 200, 40, 4, fp0),
                service(&format!("{name}-1"), 220, 45, 4, fp1),
            ];
            let run = simulate_cluster_run(&requests, &services, &spec).unwrap();
            run.report.tier_traffic.last().unwrap().bytes_up
        })
        .collect();
    for (lane, &dense) in lanes.iter().zip(&bottom_bytes).skip(1) {
        assert!(
            bottom_bytes[0] < dense,
            "SE must move fewer bottom-tier bytes than {}: {} !< {}",
            lane.0,
            bottom_bytes[0],
            dense
        );
    }
}
