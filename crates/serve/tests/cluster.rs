//! Cluster-subsystem invariants:
//!
//! * a 1-instance, round-robin, no-deadline, no-residency cluster is
//!   **bit-identical** to the single-instance serving queue (property
//!   test over random arrivals and policies);
//! * cluster results are bit-identical across worker counts of the
//!   per-image simulation;
//! * residency: N requests to one resident model fetch weights once;
//!   alternating two models at a too-small buffer evicts on every switch;
//! * the acceptance comparison: on a mixed two-model workload at a fixed
//!   per-instance weight buffer, the SmartExchange lane refetches fewer
//!   weights and sustains no worse goodput than every dense baseline.

use proptest::prelude::*;
use se_baselines::BaselineConfig;
use se_hw::SeAcceleratorConfig;
use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};
use se_models::traces::{trace_pairs, TraceOptions};
use se_serve::cluster::{simulate_cluster, ClusterSpec, ModelService, RouterPolicy};
use se_serve::fault::FaultPlan;
use se_serve::queue::{self, BatchPolicy};
use se_serve::workload::Request;
use se_serve::{BatchEngine, ACCEL_NAMES, SE_LANE};

fn conv(name: &str, ci: usize, co: usize, hw: usize) -> LayerDesc {
    LayerDesc::new(
        name,
        LayerKind::Conv2d { in_channels: ci, out_channels: co, kernel: 3, stride: 1, padding: 1 },
        (hw, hw),
    )
}

/// The mixed two-model workload's nets (small, distinct footprints).
fn two_models() -> Vec<NetworkDesc> {
    vec![
        NetworkDesc::new(
            "alpha",
            Dataset::Cifar10,
            vec![conv("a1", 3, 8, 8), conv("a2", 8, 8, 8), conv("a3", 8, 8, 8)],
        )
        .unwrap(),
        NetworkDesc::new(
            "beta",
            Dataset::Cifar10,
            vec![conv("b1", 3, 16, 8), conv("b2", 16, 8, 8)],
        )
        .unwrap(),
    ]
}

/// A single-model service whose batch tables are the given exec table
/// (streamed == resident, zero footprint): the exact execution model of
/// the single-instance queue.
fn stream_only_service(exec: &[u64]) -> ModelService {
    ModelService {
        name: "m".into(),
        streamed: exec.to_vec(),
        resident: exec.to_vec(),
        footprint_bytes: 0,
        switch_cycles: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A 1-instance cluster with round-robin routing, no deadlines, and no
    /// residency modeling makes exactly the decisions of
    /// `queue::simulate_open_loop`: same latencies, batch sizes,
    /// rejections, and makespan, bit for bit, over random arrivals and
    /// batch policies.
    #[test]
    fn one_instance_cluster_is_bit_identical_to_the_serving_queue(
        gaps in proptest::collection::vec(0u64..2000, 1..60),
        max_batch in 1usize..6,
        max_wait in 0u64..3000,
        queue_cap in 1usize..12,
        base in 100u64..4000,
        per in 1u64..500,
    ) {
        let mut arrivals = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for g in &gaps {
            t += g;
            arrivals.push(t);
        }
        let exec: Vec<u64> = (1..=max_batch as u64).map(|k| base + per * k).collect();
        let policy = BatchPolicy { max_batch, max_wait, queue_cap };
        let serve = queue::simulate_open_loop(&arrivals, &exec, &policy).unwrap();

        let requests: Vec<Request> = arrivals
            .iter()
            .map(|&arrival| Request { model: 0, arrival, deadline: None })
            .collect();
        let spec = ClusterSpec {
            instances: 1,
            router: RouterPolicy::RoundRobin,
            policy,
            buffer_bytes: None,
            tiers: None,
            faults: FaultPlan::default(),
        };
        let cluster = simulate_cluster(&requests, &[stream_only_service(&exec)], &spec).unwrap();

        prop_assert_eq!(&cluster.latencies, &serve.latencies);
        prop_assert_eq!(&cluster.batch_sizes, &serve.batch_sizes);
        prop_assert_eq!(cluster.rejected, serve.rejected);
        prop_assert_eq!(cluster.makespan, serve.makespan);
        prop_assert_eq!(cluster.misses, 0);
    }
}

/// The full engine-backed path: per-image simulation at several worker
/// counts must produce bit-identical cluster reports (the serial cluster
/// loop inherits the grid's determinism).
#[test]
fn cluster_reports_are_bit_identical_across_worker_counts() {
    let models = two_models();
    let spec = ClusterSpec {
        instances: 3,
        router: RouterPolicy::JoinShortestQueue,
        policy: BatchPolicy { max_batch: 4, max_wait: 500, queue_cap: 32 },
        buffer_bytes: Some(2048),
        tiers: None,
        faults: FaultPlan::default(),
    };
    let requests: Vec<Request> = (0..40)
        .map(|i| Request {
            model: i % 2,
            arrival: i as u64 * 700,
            deadline: Some(i as u64 * 700 + 2500),
        })
        .collect();
    let mut baseline = None;
    for workers in [1usize, 4] {
        let engine =
            BatchEngine::new(SeAcceleratorConfig::default(), BaselineConfig::default()).unwrap();
        let services: Vec<ModelService> = models
            .iter()
            .map(|net| {
                let pairs = trace_pairs(net, &TraceOptions::fast()).unwrap();
                let per_image = engine.per_image_se(&pairs, workers).unwrap();
                ModelService::from_engine(&engine, SE_LANE, net.name(), &per_image, 4)
            })
            .collect();
        let report = simulate_cluster(&requests, &services, &spec).unwrap();
        assert!(report.completed() > 0);
        match &baseline {
            None => baseline = Some(report),
            Some(b) => assert_eq!(&report, b, "workers = {workers}"),
        }
    }
}

/// Residency mechanics through the real engine: one model served
/// repeatedly fetches its weights exactly once; two models alternating
/// through a buffer that holds only one evict on every switch.
#[test]
fn residency_fetches_once_when_resident_and_thrashes_when_not() {
    let models = two_models();
    let engine =
        BatchEngine::new(SeAcceleratorConfig::default(), BaselineConfig::default()).unwrap();
    let services: Vec<ModelService> = models
        .iter()
        .map(|net| {
            let pairs = trace_pairs(net, &TraceOptions::fast()).unwrap();
            let per_image = engine.per_image_se(&pairs, 2).unwrap();
            ModelService::from_engine(&engine, SE_LANE, net.name(), &per_image, 4)
        })
        .collect();
    let spec = |buffer: u64| ClusterSpec {
        instances: 1,
        router: RouterPolicy::RoundRobin,
        policy: BatchPolicy { max_batch: 4, max_wait: 0, queue_cap: 64 },
        buffer_bytes: Some(buffer),
        tiers: None,
        faults: FaultPlan::default(),
    };

    // One model, far-apart arrivals (every batch is a single): weights are
    // fetched once, then every batch is a residency hit.
    let single: Vec<Request> =
        (0..12).map(|i| Request { model: 0, arrival: i * 50_000, deadline: None }).collect();
    let roomy = services[0].footprint_bytes + 1;
    let r = simulate_cluster(&single, &services, &spec(roomy)).unwrap();
    assert_eq!(r.residency.fetches, 1, "one resident model fetches weights once");
    assert_eq!(r.residency.hits, 11);
    assert_eq!(r.residency.evictions, 0);
    assert_eq!(r.residency.bytes_fetched, services[0].footprint_bytes);

    // Two models alternating through a buffer that holds either but not
    // both: every batch is a switch, every switch an eviction (after the
    // first).
    let alternating: Vec<Request> = (0..12)
        .map(|i| Request { model: (i % 2) as usize, arrival: i * 50_000, deadline: None })
        .collect();
    let fits_one = services.iter().map(|s| s.footprint_bytes).max().unwrap() + 1;
    assert!(fits_one < services.iter().map(|s| s.footprint_bytes).sum::<u64>());
    let r = simulate_cluster(&alternating, &services, &spec(fits_one)).unwrap();
    assert_eq!(r.residency.fetches, 12, "every alternation refetches");
    assert_eq!(r.residency.hits, 0);
    assert_eq!(r.residency.evictions, 11, "every fetch after the first evicts the other model");
}

/// The acceptance comparison: same mixed two-model request stream, same
/// per-instance weight buffer, every lane. The SmartExchange lane's
/// compressed footprints both fit (two cold fetches, then residency
/// hits); the dense footprints do not, so the dense lanes re-fetch on
/// (nearly) every switch — and under a DRAM-bandwidth-constrained node
/// that costs them deadlines. Asserts: strictly fewer weight fetches and
/// no worse goodput for SmartExchange than for every dense baseline.
#[test]
fn se_lane_refetches_less_and_sustains_goodput_vs_dense_at_equal_buffer() {
    let models = two_models();
    // A bandwidth-constrained serving node: 2 B/cycle makes the weight
    // stream the bottleneck, which is exactly the regime the paper's
    // trade targets.
    let se_cfg = SeAcceleratorConfig { dram_bytes_per_cycle: 2.0, ..Default::default() };
    let baseline_cfg = BaselineConfig { dram_bytes_per_cycle: 2.0, ..Default::default() };
    let engine = BatchEngine::new(se_cfg, baseline_cfg).unwrap();
    let per_lane_services: Vec<Option<Vec<ModelService>>> = (0..ACCEL_NAMES.len())
        .map(|lane| {
            models
                .iter()
                .map(|net| {
                    let pairs = trace_pairs(net, &TraceOptions::fast()).unwrap();
                    let runs = engine.per_image_comparison(&pairs, 2).unwrap();
                    runs[lane]
                        .as_ref()
                        .map(|r| ModelService::from_engine(&engine, lane, net.name(), r, 4))
                })
                .collect()
        })
        .collect();

    // Both SE footprints fit a 2 KB buffer together; no dense pair does.
    let se = per_lane_services[SE_LANE].as_ref().unwrap();
    let buffer = 2048u64;
    assert!(se.iter().map(|s| s.footprint_bytes).sum::<u64>() <= buffer);
    let spec = ClusterSpec {
        instances: 1,
        router: RouterPolicy::RoundRobin,
        policy: BatchPolicy { max_batch: 4, max_wait: 0, queue_cap: 64 },
        buffer_bytes: Some(buffer),
        tiers: None,
        faults: FaultPlan::default(),
    };
    // Interleaved models, uniform arrivals, a deadline the resident SE
    // lane can hold.
    let requests: Vec<Request> = (0..48)
        .map(|i| Request {
            model: (i % 2) as usize,
            arrival: i * 6000,
            deadline: Some(i * 6000 + 2000),
        })
        .collect();

    let se_report = simulate_cluster(&requests, se, &spec).unwrap();
    assert_eq!(se_report.completed(), 48);
    for (lane, services) in per_lane_services.iter().enumerate() {
        if lane == SE_LANE {
            continue;
        }
        let services = services.as_ref().expect("both nets are plain CONV stacks");
        assert!(
            services.iter().map(|s| s.footprint_bytes).sum::<u64>() > buffer,
            "{}: dense pair must overflow the buffer",
            ACCEL_NAMES[lane]
        );
        let dense = simulate_cluster(&requests, services, &spec).unwrap();
        assert!(
            se_report.residency.fetches < dense.residency.fetches,
            "{}: SE fetches {} !< dense {}",
            ACCEL_NAMES[lane],
            se_report.residency.fetches,
            dense.residency.fetches
        );
        assert!(
            se_report.residency.bytes_fetched < dense.residency.bytes_fetched,
            "{}: SE refetch bytes must be smaller",
            ACCEL_NAMES[lane]
        );
        assert!(
            se_report.goodput_per_s(1e9) >= dense.goodput_per_s(1e9),
            "{}: SE goodput {} !>= dense {}",
            ACCEL_NAMES[lane],
            se_report.goodput_per_s(1e9),
            dense.goodput_per_s(1e9)
        );
        assert!(
            se_report.misses <= dense.misses,
            "{}: SE misses {} !<= dense {}",
            ACCEL_NAMES[lane],
            se_report.misses,
            dense.misses
        );
    }
    // The SE lane really is resident: two cold fetches, then hits.
    assert_eq!(se_report.residency.fetches, 2);
    assert_eq!(se_report.residency.evictions, 0);
}
