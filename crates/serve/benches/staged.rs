//! Criterion benches for the staged runtime's moving parts:
//!
//! * **stage handoff** — one `bounded` send/recv round trip, single- and
//!   cross-thread, at several capacities: the per-event overhead every
//!   pipeline stage pays;
//! * **batch formation** — the scheduler's admit → plan → launch cycle on
//!   a saturated queue (the `ClusterCore` work between two handoffs),
//!   measured through the public open-loop entry point with a no-op
//!   execution stage;
//! * **end-to-end floor** — the whole staged pipeline with `NoWork`
//!   against the serial sim on the same trace: the cost of the threads
//!   and channels themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use se_core::pipeline::bounded;
use se_serve::queue::{self, BatchPolicy};
use se_serve::{run_queue_staged_open, NoWork, StagedConfig};
use std::hint::black_box;

fn exec_table(max_batch: usize) -> Vec<u64> {
    (1..=max_batch as u64).map(|k| 4000 + 600 * k).collect()
}

fn trace(n: u64) -> Vec<u64> {
    // Saturating arrivals: every admission finds a non-empty queue, so
    // plan invalidation and batch formation run on every request.
    (0..n).map(|i| i * 700).collect()
}

fn bench_channel_handoff(c: &mut Criterion) {
    // Same-thread ping: the raw lock + condvar cost of one send/recv.
    let mut group = c.benchmark_group("staged_channel");
    group.sample_size(30);
    for cap in [1usize, 64] {
        let (tx, rx) = bounded::<u64>(cap);
        group.bench_function(&format!("send_recv_same_thread_cap{cap}"), |b| {
            b.iter(|| {
                tx.send(black_box(7)).unwrap();
                black_box(rx.recv().unwrap())
            })
        });
    }
    // Cross-thread stream: 4096 events through a dedicated echo thread,
    // the pattern of the scheduler → exec-pool edge under backpressure.
    group.bench_function("stream_4096_cross_thread_cap64", |b| {
        b.iter(|| {
            let (tx, rx) = bounded::<u64>(64);
            let handle = std::thread::spawn(move || {
                let mut acc = 0u64;
                while let Some(v) = rx.recv() {
                    acc = acc.wrapping_add(v);
                }
                acc
            });
            for i in 0..4096u64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            black_box(handle.join().unwrap())
        })
    });
    group.finish();
}

fn bench_batch_formation(c: &mut Criterion) {
    // The serial sim is pure scheduler: admit, plan, launch, record —
    // no channels, no threads. This is the batch-formation cost floor.
    let policy = BatchPolicy { max_batch: 8, max_wait: 1500, queue_cap: 64 };
    let exec = exec_table(8);
    let arrivals = trace(4096);
    let mut group = c.benchmark_group("staged_scheduler");
    group.sample_size(20);
    group.bench_function("sim_4096_requests_batch8", |b| {
        b.iter(|| black_box(queue::simulate_open_loop(&arrivals, &exec, &policy).unwrap()))
    });
    group.finish();
}

fn bench_pipeline_floor(c: &mut Criterion) {
    // The full staged pipeline with NoWork: sim cost + thread spawn +
    // every per-event handoff. The gap to `sim_4096_requests_batch8` is
    // the pipeline overhead `se bench serve` amortizes with real work.
    let policy = BatchPolicy { max_batch: 8, max_wait: 1500, queue_cap: 64 };
    let exec = exec_table(8);
    let arrivals = trace(4096);
    let mut group = c.benchmark_group("staged_pipeline");
    group.sample_size(20);
    for workers in [1usize, 4] {
        let cfg = StagedConfig { exec_workers: workers, channel_cap: 64, chunk: 64 };
        group.bench_function(&format!("nowork_4096_requests_workers{workers}"), |b| {
            b.iter(|| {
                black_box(run_queue_staged_open(&arrivals, &exec, &policy, &cfg, &NoWork).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_channel_handoff, bench_batch_formation, bench_pipeline_floor);
criterion_main!(benches);
