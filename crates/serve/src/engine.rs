//! The batch engine: per-image simulation fan-out plus weight-fetch
//! amortization across batch sizes.
//!
//! A batch of N images of the same layer runs the data path N times but
//! fetches (and, on SmartExchange, rebuilds) the weights once, so a batched
//! result is a pure function of the per-image [`LayerResult`] and the batch
//! size — `se_hw`'s `amortized_over_batch` accounting. The engine therefore
//! simulates each trace **once per image** on the deterministic
//! `(layer, accelerator)` grid of [`se_core::pipeline`] — hitting the same
//! geometry-keyed schedule caches as the comparison runner, so an N-image
//! batch reuses one schedule skeleton per distinct shape — and derives
//! every requested batch size from that single pass. This keeps a whole
//! batch-size sweep as cheap as one per-image simulation and, by
//! construction, bit-identical for every worker count.

use crate::{BoxError, Result};
use se_baselines::{BaselineConfig, BitPragmatic, CambriconX, DianNao, Scnn};
use se_core::pipeline;
use se_hw::sim::SeAccelerator;
use se_hw::{Accelerator, HwError, LayerResult, RunResult, SeAcceleratorConfig};
use se_models::traces::TracePair;

/// Names of the five accelerators in presentation order (matches
/// `se_bench::runner::ACCEL_NAMES`).
pub const ACCEL_NAMES: [&str; 5] =
    ["DianNao", "SCNN", "Cambricon-X", "Bit-pragmatic", "SmartExchange"];

/// Index of the SmartExchange lane in [`ACCEL_NAMES`]-ordered arrays.
pub const SE_LANE: usize = 4;

/// The five accelerator instances behind the serving subsystem. Each
/// carries its per-run geometry/schedule cache, shared across all grid
/// jobs and batch sizes of this engine.
#[derive(Debug, Clone)]
pub struct BatchEngine {
    diannao: DianNao,
    scnn: Scnn,
    cambricon: CambriconX,
    pragmatic: BitPragmatic,
    se: SeAccelerator,
}

impl BatchEngine {
    /// Creates the engine with the given accelerator configurations.
    ///
    /// Every lane draws its schedule/geometry cache from the process-wide
    /// config-keyed registries (`SeAccelerator::with_shared_schedules`,
    /// `se_baselines::common::shared_geometry_cache`), so separately
    /// constructed engines with the same configurations — one per model in
    /// a serving sweep, cluster replicas, repeated figure runs — build each
    /// schedule skeleton once per process. Sharing is observationally
    /// transparent: results are bit-identical to private-cache engines.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(se_cfg: SeAcceleratorConfig, baseline_cfg: BaselineConfig) -> Result<Self> {
        Ok(BatchEngine {
            diannao: DianNao::with_shared_geometry(baseline_cfg.clone()).map_err(BoxError::from)?,
            scnn: Scnn::with_shared_geometry(baseline_cfg.clone()).map_err(BoxError::from)?,
            cambricon: CambriconX::with_shared_geometry(baseline_cfg).map_err(BoxError::from)?,
            pragmatic: BitPragmatic::with_shared_schedules(se_cfg.clone())
                .map_err(BoxError::from)?,
            se: SeAccelerator::with_shared_schedules(se_cfg).map_err(BoxError::from)?,
        })
    }

    /// The accelerator behind `lane` (indexed like [`ACCEL_NAMES`]).
    ///
    /// # Panics
    ///
    /// Panics on `lane >= 5`.
    pub fn accelerator(&self, lane: usize) -> &dyn Accelerator {
        match lane {
            0 => &self.diannao,
            1 => &self.scnn,
            2 => &self.cambricon,
            3 => &self.pragmatic,
            SE_LANE => &self.se,
            other => panic!("lane {other} out of range (5 accelerators)"),
        }
    }

    /// Simulates the pairs through the SmartExchange accelerator once per
    /// image, fanning the layers out over `workers` threads; results are
    /// reassembled in network order (bit-identical for every worker
    /// count).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn per_image_se(&self, pairs: &[TracePair], workers: usize) -> Result<RunResult> {
        let layers =
            pipeline::try_run_ordered(pairs, workers, |_, pair| self.se.process_layer(&pair.se))
                .map_err(BoxError::from)?;
        Ok(RunResult { layers })
    }

    /// One `(layer, accelerator)` grid job: a pure function of the trace
    /// pair, so grid scheduling can never leak into results. `Ok(None)`
    /// marks a design that cannot run the layer (`UnsupportedTrace`, e.g.
    /// SCNN on squeeze-excite); real failures propagate. The SmartExchange
    /// lane consumes the compressed trace and supports every layer, so all
    /// its errors propagate. This is the single five-lane dispatch both
    /// this engine and `se_bench::runner`'s chunked comparison sweep use.
    ///
    /// # Errors
    ///
    /// Propagates unexpected simulator failures.
    pub fn simulate_lane(
        &self,
        pair: &TracePair,
        lane: usize,
    ) -> se_hw::Result<Option<LayerResult>> {
        if lane == SE_LANE {
            return self.se.process_layer(&pair.se).map(Some);
        }
        match self.accelerator(lane).process_layer(&pair.dense) {
            Ok(layer) => Ok(Some(layer)),
            Err(HwError::UnsupportedTrace { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Simulates the pairs through all five accelerators once per image on
    /// the `(layer, accelerator)` grid. A design that cannot run a layer
    /// turns its whole lane to `None`. Every grid job runs even on a lane
    /// already known dead — the single-chunk semantics of
    /// `se_bench::runner::compare_pairs`, to which results here are
    /// bit-identical on the same pairs (the chunked streaming sweep adds a
    /// dead-lane skip at chunk boundaries; doing so mid-grid would make
    /// job purity depend on completion order).
    ///
    /// # Errors
    ///
    /// Propagates unexpected simulator failures.
    pub fn per_image_comparison(
        &self,
        pairs: &[TracePair],
        workers: usize,
    ) -> Result<[Option<RunResult>; 5]> {
        let grid = pipeline::try_run_grid(pairs, ACCEL_NAMES.len(), workers, |_, pair, lane| {
            self.simulate_lane(pair, lane)
        })
        .map_err(BoxError::from)?;
        let mut runs: [Option<RunResult>; 5] = std::array::from_fn(|_| Some(RunResult::default()));
        for per_pair in grid {
            for (lane, result) in per_pair.into_iter().enumerate() {
                match result {
                    Some(layer) => {
                        if let Some(run) = runs[lane].as_mut() {
                            run.layers.push(layer);
                        }
                    }
                    None => runs[lane] = None,
                }
            }
        }
        Ok(runs)
    }

    /// The batched result for `lane`: `per_image` (one image through that
    /// lane) re-accounted for a batch of `batch` images with the weights
    /// held resident — weight-side DRAM and rebuild work once per batch,
    /// activation traffic and compute per image, DRAM transfer time
    /// re-derived at the lane's configured bandwidth. `batch = 1`
    /// reproduces `per_image` exactly.
    pub fn batched(&self, lane: usize, per_image: &RunResult, batch: usize) -> RunResult {
        per_image.amortized_over_batch(batch as u64, self.accelerator(lane).dram_bytes_per_cycle())
    }

    /// One batched layer through `lane` (the layer-granular version of
    /// [`BatchEngine::batched`], used by tests and diagnostics).
    pub fn batched_layer(&self, lane: usize, per_image: &LayerResult, batch: usize) -> LayerResult {
        per_image.amortized_over_batch(batch as u64, self.accelerator(lane).dram_bytes_per_cycle())
    }

    /// Batch-latency table for `lane`: `table[k - 1]` is the total cycle
    /// count of a batch of `k` images, for `k` in `1..=max_batch` — the
    /// execution model the serving queue consumes. Derived from one
    /// per-image pass, so the whole table costs no extra simulation.
    pub fn latency_table(&self, lane: usize, per_image: &RunResult, max_batch: usize) -> Vec<u64> {
        (1..=max_batch.max(1)).map(|k| self.batched(lane, per_image, k).total_cycles()).collect()
    }

    /// [`BatchEngine::latency_table`] with the model's weights already
    /// resident on chip: the per-batch weight fetch and buffer fill are
    /// dropped (`RunResult::with_weights_resident`) — the execution model
    /// of a batch on a model that stayed resident across batches. The
    /// one-time load a switch pays instead is
    /// `se_hw::residency::fetch_cycles` of
    /// [`RunResult::weight_footprint_bytes`].
    pub fn resident_latency_table(
        &self,
        lane: usize,
        per_image: &RunResult,
        max_batch: usize,
    ) -> Vec<u64> {
        let bw = self.accelerator(lane).dram_bytes_per_cycle();
        (1..=max_batch.max(1))
            .map(|k| self.batched(lane, per_image, k).with_weights_resident(bw).total_cycles())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};
    use se_models::traces::{trace_pairs, TraceOptions};

    fn tiny() -> NetworkDesc {
        let conv = |name: &str, ci: usize, co: usize| {
            LayerDesc::new(
                name,
                LayerKind::Conv2d {
                    in_channels: ci,
                    out_channels: co,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                (8, 8),
            )
        };
        NetworkDesc::new(
            "tiny",
            Dataset::Cifar10,
            vec![
                conv("c1", 3, 8),
                conv("c2", 8, 8),
                LayerDesc::new("se1", LayerKind::SqueezeExcite { channels: 8, reduced: 2 }, (8, 8)),
            ],
        )
        .unwrap()
    }

    fn engine() -> BatchEngine {
        BatchEngine::new(SeAcceleratorConfig::default(), BaselineConfig::default()).unwrap()
    }

    #[test]
    fn per_image_results_are_worker_count_invariant() {
        let pairs = trace_pairs(&tiny(), &TraceOptions::fast()).unwrap();
        let e = engine();
        let serial = e.per_image_comparison(&pairs, 1).unwrap();
        assert!(serial[1].is_none(), "SCNN lane drops on squeeze-excite");
        assert!(serial[SE_LANE].is_some());
        for workers in [2usize, 4, 8] {
            assert_eq!(e.per_image_comparison(&pairs, workers).unwrap(), serial);
            assert_eq!(
                &e.per_image_se(&pairs, workers).unwrap(),
                serial[SE_LANE].as_ref().unwrap()
            );
        }
    }

    #[test]
    fn batch_one_is_the_per_image_result() {
        let pairs = trace_pairs(&tiny(), &TraceOptions::fast()).unwrap();
        let e = engine();
        let per_image = e.per_image_se(&pairs, 2).unwrap();
        assert_eq!(e.batched(SE_LANE, &per_image, 1), per_image);
        assert_eq!(e.latency_table(SE_LANE, &per_image, 3)[0], per_image.total_cycles());
    }

    #[test]
    fn growing_batches_amortize_weight_dram_per_image() {
        let pairs = trace_pairs(&tiny(), &TraceOptions::fast()).unwrap();
        let e = engine();
        let per_image = e.per_image_se(&pairs, 2).unwrap();
        let weight_per_image = |n: usize| {
            let m = e.batched(SE_LANE, &per_image, n).mem_totals();
            (m.dram_weight_bytes + m.dram_index_bytes) as f64 / n as f64
        };
        assert!(weight_per_image(4) < weight_per_image(1));
        assert!(weight_per_image(16) < weight_per_image(4));
    }

    #[test]
    fn lane_bandwidths_come_from_their_configs() {
        let e = engine();
        for lane in 0..5 {
            assert!(e.accelerator(lane).dram_bytes_per_cycle() > 0.0, "lane {lane}");
        }
        assert_eq!(
            e.accelerator(SE_LANE).dram_bytes_per_cycle(),
            SeAcceleratorConfig::default().dram_bytes_per_cycle
        );
    }
}
