//! Batched inference serving on top of the simulation stack.
//!
//! The paper evaluates batch-size-1 latency, which leaves the canonical
//! memory-for-computation trade of serving on the table: amortizing each
//! layer's weight fetch (and, on SmartExchange, the basis + coefficient
//! rebuild) across a batch of images. This crate turns the per-image
//! simulators into a request-driven serving subsystem with three parts:
//!
//! * [`engine`] — the **batch engine**: runs trace pairs through the five
//!   accelerators once per image on the deterministic work queue of
//!   [`se_core::pipeline`] (reusing each accelerator's geometry-keyed
//!   schedule cache, so an N-image batch shares one schedule skeleton) and
//!   derives batched results in which weights are charged once per batch
//!   while activation traffic and compute scale with the batch size
//!   (`se_hw`'s `amortized_over_batch` accounting).
//! * [`queue`] — the **serving front**: a bounded FIFO request queue with a
//!   batch aggregator (max-batch-size + max-wait policies) drained by a
//!   simulated single accelerator, emitting per-request latency and
//!   aggregate throughput statistics.
//! * [`workload`] — deterministic synthetic arrival processes (uniform,
//!   burst, closed-loop), optionally mixed-model with per-request
//!   deadlines, that drive the queue and the cluster.
//! * [`cluster`] — the **cluster front**: N instances behind one request
//!   stream with round-robin / join-shortest-queue / model-affinity
//!   routing, earliest-deadline-first batch formation, and per-instance
//!   weight-buffer residency (`se_hw::residency`) charging a full
//!   footprint re-fetch on every model switch — where SmartExchange's
//!   smaller footprint becomes fewer evictions and higher goodput.
//! * [`sched`] — the **scheduling core** shared by the serial sim and the
//!   staged runtime: admission, routing, EDF batch formation, and
//!   residency as one virtual-time state machine emitting a canonical
//!   event stream.
//! * [`fault`] — **failure injection and elastic membership**: scripted
//!   kill/restart events and queue-depth autoscaling consumed by the
//!   scheduling core, so both runtimes replay the same churn by
//!   construction. Killed batches re-route their requests with original
//!   arrival and deadline intact; restarted instances rejoin with cold
//!   weight buffers.
//! * [`staged`] — the **staged runtime**: admission → scheduling →
//!   execution → collection as concurrent threads over bounded channels,
//!   producing outcomes bit-identical to the sim while fanning real
//!   per-batch work across cores.
//!
//! # Determinism contract
//!
//! Given a fixed arrival order, every result here is **bit-identical for
//! any worker count**: the only parallel stage (the per-image simulation
//! grid) reassembles in network order, batching is pure integer/f64
//! arithmetic on those results, and the queue simulation is a serial
//! discrete-event loop. The staged runtime inherits the contract by
//! construction (outcome equality with the sim, collector re-ordering by
//! launch sequence). `batch = 1` reproduces today's single-image numbers
//! exactly. See `docs/SERVING.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod engine;
pub mod fault;
pub mod queue;
pub mod sched;
pub mod staged;
pub mod workload;

pub use cluster::{
    ClusterReport, ClusterRun, ClusterSpec, ModelService, RouterPolicy, TierSpec, TierStats,
};
pub use engine::{BatchEngine, ACCEL_NAMES, SE_LANE};
pub use fault::{
    AutoscalePolicy, ClusterEvent, ClusterEventKind, FaultAction, FaultEvent, FaultPlan,
};
pub use queue::{BatchPolicy, ServeReport};
pub use sched::{Disposition, PlannedBatch, Queued, RequestOutcome, SchedEvent};
pub use staged::{
    run_cluster_staged, run_cluster_staged_obs, run_queue_staged_closed,
    run_queue_staged_closed_obs, run_queue_staged_open, run_queue_staged_open_obs, EngineWork,
    ExecWork, NoWork, StagedConfig,
};
pub use workload::{ArrivalPattern, Request};

/// Boxed error alias (`Send + Sync` so serving jobs can cross the parallel
/// work queue).
pub type BoxError = Box<dyn std::error::Error + Send + Sync>;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BoxError>;
