//! The serving front: a bounded FIFO request queue with a batch
//! aggregator, simulated as a deterministic discrete-event loop.
//!
//! Requests arrive at simulated cycle timestamps and queue FIFO. The
//! aggregator closes a batch when either (a) [`BatchPolicy::max_batch`]
//! requests are waiting, or (b) the oldest waiting request has been queued
//! for [`BatchPolicy::max_wait`] cycles — the standard latency/throughput
//! dial of batched serving. A single simulated accelerator executes batches
//! back-to-back; the execution time of a batch of `k` images comes from the
//! caller-supplied table (built by
//! [`crate::engine::BatchEngine::latency_table`], where weight fetches are
//! amortized across the batch). Open-loop arrivals that find the bounded
//! queue full are rejected.
//!
//! The whole simulation is serial integer arithmetic over a fixed arrival
//! order, so its output is bit-identical for any worker count of the
//! surrounding harness — the determinism contract of `se serve`.
//!
//! Since the staged-runtime refactor the actual scheduling decisions live
//! in the shared [`crate::sched`] core (a 1-instance, round-robin,
//! no-residency cluster *is* this queue — long enforced by property
//! test); this module keeps the single-accelerator entry points and the
//! [`ServeReport`] shape.

use crate::cluster::router::RouterPolicy;
use crate::cluster::sim::{ClusterSpec, ModelService};
use crate::sched::{self, ClusterCore, SchedEvent};
use crate::workload::Request;
use crate::{BoxError, Result};

/// Batch-formation policy of the serving front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum images per batch; the aggregator closes a batch as soon as
    /// this many requests are waiting.
    pub max_batch: usize,
    /// Maximum cycles the oldest queued request may wait before the
    /// aggregator closes the batch short (0 = never wait for company).
    pub max_wait: u64,
    /// Bounded queue capacity: an open-loop arrival that finds this many
    /// requests already waiting is rejected. Closed-loop workloads are
    /// bounded by their concurrency instead and ignore this field.
    pub queue_cap: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_batch: 8, max_wait: 0, queue_cap: 1024 }
    }
}

impl BatchPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Rejects a zero batch size or queue capacity.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(BoxError::from("max batch size must be at least 1"));
        }
        if self.queue_cap == 0 {
            return Err(BoxError::from("queue capacity must be at least 1"));
        }
        Ok(())
    }
}

/// Outcome of one serving simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeReport {
    /// Per-request latency in cycles (completion − arrival), in completion
    /// order — which, for the FIFO queue, is arrival order over the
    /// admitted requests.
    pub latencies: Vec<u64>,
    /// Sizes of the executed batches, in execution order.
    pub batch_sizes: Vec<usize>,
    /// Open-loop arrivals rejected by the bounded queue.
    pub rejected: u64,
    /// Completion time of the last batch, in cycles.
    pub makespan: u64,
}

impl ServeReport {
    /// Requests served to completion.
    pub fn completed(&self) -> usize {
        self.latencies.len()
    }

    /// Mean executed batch size in images.
    pub fn mean_batch(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            return 0.0;
        }
        self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
    }

    /// Mean request latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
    }

    /// The `p`-th latency percentile in cycles (see [`percentile`]);
    /// `None` when nothing completed.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        percentile(&self.latencies, p)
    }

    /// Completed requests whose latency exceeded `budget` cycles — the
    /// deadline misses of a workload where every request carries the same
    /// relative deadline (deadline = arrival + budget, and latency =
    /// completion − arrival, so `latency > budget` is exactly a miss).
    /// Shared with the cluster lane's per-request deadline accounting.
    pub fn misses_over_budget(&self, budget: u64) -> u64 {
        self.latencies.iter().filter(|&&l| l > budget).count() as u64
    }

    /// Sustained throughput in images per second at `frequency_hz`.
    pub fn throughput_per_s(&self, frequency_hz: f64) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.completed() as f64 / (self.makespan as f64 / frequency_hz)
    }

    /// How many batches of each size ran: `histogram[k - 1]` counts the
    /// executed batches of exactly `k` images (`k` up to `max_batch`).
    pub fn batch_histogram(&self, max_batch: usize) -> Vec<u64> {
        let mut h = vec![0u64; max_batch.max(1)];
        let last = h.len() - 1;
        for &k in &self.batch_sizes {
            h[(k - 1).min(last)] += 1;
        }
        h
    }
}

/// The `p`-th percentile of `values` (`p` in `[0, 100]`; nearest-rank on
/// the sorted values). `None` for an empty sample — a run where every
/// request was rejected or lost has *no* latency percentile, and must
/// not print the `0` of a perfect run (reports render it as `-`). The
/// single percentile definition shared by the serving and cluster
/// reports, so their latency columns are directly comparable.
pub fn percentile(values: &[u64], p: f64) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((p.clamp(0.0, 100.0) / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

/// Validates the policy against the execution table (shared by both entry
/// points and the staged runtime).
pub(crate) fn validate_exec(exec: &[u64], policy: &BatchPolicy) -> Result<()> {
    policy.validate()?;
    if exec.len() < policy.max_batch {
        return Err(BoxError::from(format!(
            "execution table covers batches up to {}, policy allows {}",
            exec.len(),
            policy.max_batch
        )));
    }
    Ok(())
}

/// The single-accelerator server as a 1-instance cluster: one model whose
/// batch table is `exec` (no residency modeling, so streamed == resident
/// and every batch charges the table directly).
pub(crate) fn single_instance(exec: &[u64], policy: BatchPolicy) -> (ModelService, ClusterSpec) {
    let service = ModelService {
        name: "serve".into(),
        streamed: exec.to_vec(),
        resident: exec.to_vec(),
        footprint_bytes: 0,
        switch_cycles: 0,
    };
    let spec = ClusterSpec {
        instances: 1,
        router: RouterPolicy::RoundRobin,
        policy,
        buffer_bytes: None,
        tiers: None,
        faults: crate::fault::FaultPlan::default(),
    };
    (service, spec)
}

/// Folds one scheduling event into a [`ServeReport`]. Launched batches
/// must arrive in launch order (the single instance executes serially, so
/// completion times are non-decreasing).
pub(crate) fn record_event(event: &SchedEvent, report: &mut ServeReport) {
    match event {
        SchedEvent::Rejected(..) => report.rejected += 1,
        // The single-instance entry points never script faults, so no
        // batch is ever killed and no request lost here.
        SchedEvent::Lost(..) => {
            debug_assert!(false, "single-instance queues have no fault plan");
        }
        SchedEvent::Launched(batch) => {
            debug_assert!(batch.killed_at.is_none(), "single-instance queues have no fault plan");
            for m in &batch.members {
                report.latencies.push(batch.done - m.req.arrival);
            }
            report.batch_sizes.push(batch.members.len());
            report.makespan = report.makespan.max(batch.done);
        }
    }
}

/// Simulates an **open-loop** workload: requests arrive at the given cycle
/// timestamps (non-decreasing) regardless of service progress — the
/// uniform/burst workloads of [`crate::workload`]. `exec[k - 1]` is the
/// execution time of a batch of `k` images (see
/// [`crate::engine::BatchEngine::latency_table`]).
///
/// # Errors
///
/// Rejects an invalid policy, an empty execution table, or a table shorter
/// than `max_batch`.
pub fn simulate_open_loop(
    arrivals: &[u64],
    exec: &[u64],
    policy: &BatchPolicy,
) -> Result<ServeReport> {
    open_loop_inner(arrivals, exec, policy, None)
}

/// [`simulate_open_loop`] with observability: scheduling decisions are
/// additionally narrated into `sink` as virtual-time [`se_obs::Event`]s.
/// A disabled sink skips the observed path entirely; the report is
/// identical either way.
///
/// # Errors
///
/// Same conditions as [`simulate_open_loop`].
pub fn simulate_open_loop_obs(
    arrivals: &[u64],
    exec: &[u64],
    policy: &BatchPolicy,
    sink: &mut dyn se_obs::EventSink,
) -> Result<ServeReport> {
    let obs = sink.enabled().then_some(sink);
    open_loop_inner(arrivals, exec, policy, obs)
}

fn open_loop_inner(
    arrivals: &[u64],
    exec: &[u64],
    policy: &BatchPolicy,
    obs: Option<&mut dyn se_obs::EventSink>,
) -> Result<ServeReport> {
    validate_exec(exec, policy)?;
    debug_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "arrivals must be sorted");
    let (service, spec) = single_instance(exec, policy.clone());
    let services = [service];
    let mut core = ClusterCore::with_obs(&services, &spec, obs)?;
    let mut report = ServeReport::default();
    sched::drive_open_loop(
        &mut core,
        arrivals
            .iter()
            .enumerate()
            .map(|(id, &arrival)| (id, Request { model: 0, arrival, deadline: None })),
        &mut |event| {
            record_event(&event, &mut report);
            true
        },
    );
    Ok(report)
}

/// Simulates a **closed-loop** workload: `concurrency` clients each keep
/// exactly one request in flight, submitting the next the moment the
/// previous completes, until `requests` total have been issued. The
/// bounded queue never rejects here — at most `concurrency` requests are
/// outstanding — so [`BatchPolicy::queue_cap`] is ignored.
///
/// # Errors
///
/// Rejects an invalid policy, a zero concurrency, or an execution table
/// shorter than `max_batch`.
pub fn simulate_closed_loop(
    requests: usize,
    concurrency: usize,
    exec: &[u64],
    policy: &BatchPolicy,
) -> Result<ServeReport> {
    closed_loop_inner(requests, concurrency, exec, policy, None)
}

/// [`simulate_closed_loop`] with observability: scheduling decisions are
/// additionally narrated into `sink` as virtual-time [`se_obs::Event`]s.
/// A disabled sink skips the observed path entirely; the report is
/// identical either way.
///
/// # Errors
///
/// Same conditions as [`simulate_closed_loop`].
pub fn simulate_closed_loop_obs(
    requests: usize,
    concurrency: usize,
    exec: &[u64],
    policy: &BatchPolicy,
    sink: &mut dyn se_obs::EventSink,
) -> Result<ServeReport> {
    let obs = sink.enabled().then_some(sink);
    closed_loop_inner(requests, concurrency, exec, policy, obs)
}

fn closed_loop_inner(
    requests: usize,
    concurrency: usize,
    exec: &[u64],
    policy: &BatchPolicy,
    obs: Option<&mut dyn se_obs::EventSink>,
) -> Result<ServeReport> {
    validate_exec(exec, policy)?;
    if concurrency == 0 {
        return Err(BoxError::from("closed-loop concurrency must be at least 1"));
    }
    // Closed loops are bounded by their concurrency, not the queue cap.
    let uncapped = BatchPolicy { queue_cap: usize::MAX, ..policy.clone() };
    let (service, spec) = single_instance(exec, uncapped);
    let services = [service];
    let mut core = ClusterCore::with_obs(&services, &spec, obs)?;
    let mut report = ServeReport::default();
    sched::drive_closed_loop(&mut core, requests, concurrency, &mut |event| {
        record_event(&event, &mut report);
        true
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Batch of k costs 10 + 2k cycles: sublinear per image.
    fn exec(max: usize) -> Vec<u64> {
        (1..=max).map(|k| 10 + 2 * k as u64).collect()
    }

    fn policy(max_batch: usize, max_wait: u64, cap: usize) -> BatchPolicy {
        BatchPolicy { max_batch, max_wait, queue_cap: cap }
    }

    #[test]
    fn immediate_singles_when_queue_is_drained() {
        // Arrivals far apart, no waiting: every request runs alone.
        let r = simulate_open_loop(&[0, 100, 200], &exec(4), &policy(4, 0, 8)).unwrap();
        assert_eq!(r.batch_sizes, vec![1, 1, 1]);
        assert_eq!(r.latencies, vec![12, 12, 12]);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.makespan, 212);
    }

    #[test]
    fn burst_fills_batches_up_to_max() {
        // Six requests at once, max batch 4: one full batch, one pair.
        let r = simulate_open_loop(&[0; 6], &exec(4), &policy(4, 0, 8)).unwrap();
        assert_eq!(r.batch_sizes, vec![4, 2]);
        // Full batch: 10+8 = 18 cycles; pair: 18 + (10+4) = 32.
        assert_eq!(r.latencies, vec![18, 18, 18, 18, 32, 32]);
        assert_eq!(r.mean_batch(), 3.0);
    }

    #[test]
    fn max_wait_holds_the_batch_open() {
        // Second request arrives within the wait window and shares the
        // batch; without waiting it would run alone.
        let eager = simulate_open_loop(&[0, 5], &exec(4), &policy(4, 0, 8)).unwrap();
        assert_eq!(eager.batch_sizes, vec![1, 1]);
        let patient = simulate_open_loop(&[0, 5], &exec(4), &policy(4, 6, 8)).unwrap();
        assert_eq!(patient.batch_sizes, vec![2]);
        // Launch at 0+6 (wait expiry), both done at 6 + 14 = 20.
        assert_eq!(patient.latencies, vec![20, 15]);
    }

    #[test]
    fn filling_the_batch_cuts_the_wait_short() {
        // Four arrivals inside a long wait window: the batch closes when
        // the fourth arrives (t = 3), not at the wait expiry (t = 50).
        let r = simulate_open_loop(&[0, 1, 2, 3], &exec(4), &policy(4, 50, 8)).unwrap();
        assert_eq!(r.batch_sizes, vec![4]);
        assert_eq!(r.makespan, 3 + 18);
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        // Ten simultaneous arrivals, capacity 3, batch 2: the first is
        // admitted to an empty queue, two more fill it to capacity, the
        // rest bounce while the server is still at cycle 0.
        let r = simulate_open_loop(&[0; 10], &exec(2), &policy(2, 0, 3)).unwrap();
        assert_eq!(r.rejected, 7);
        assert_eq!(r.completed(), 3);
        assert_eq!(r.batch_sizes, vec![2, 1]);
    }

    #[test]
    fn closed_loop_keeps_concurrency_in_flight() {
        // 3 clients, 9 requests, batch 4: every batch is exactly 3 wide —
        // the clients resubmit in lockstep at each completion.
        let r = simulate_closed_loop(9, 3, &exec(4), &policy(4, 0, 1)).unwrap();
        assert_eq!(r.batch_sizes, vec![3, 3, 3]);
        assert_eq!(r.completed(), 9);
        assert_eq!(r.rejected, 0);
        // Each round costs 10+6 = 16 cycles.
        assert_eq!(r.makespan, 48);
    }

    #[test]
    fn closed_loop_stops_at_the_request_budget() {
        let r = simulate_closed_loop(5, 4, &exec(4), &policy(4, 0, 1)).unwrap();
        assert_eq!(r.completed(), 5);
        assert_eq!(r.batch_sizes, vec![4, 1]);
    }

    #[test]
    fn report_statistics() {
        let r = ServeReport {
            latencies: vec![10, 30, 20, 40],
            batch_sizes: vec![2, 2],
            rejected: 1,
            makespan: 100,
        };
        assert_eq!(r.completed(), 4);
        assert_eq!(r.mean_latency(), 25.0);
        assert_eq!(r.latency_percentile(50.0), Some(20));
        assert_eq!(r.latency_percentile(100.0), Some(40));
        assert_eq!(r.latency_percentile(0.0), Some(10));
        assert_eq!(r.misses_over_budget(25), 2);
        assert_eq!(r.misses_over_budget(40), 0);
        assert_eq!(percentile(&[5, 1, 3], 99.0), Some(5));
        assert_eq!(r.throughput_per_s(1000.0), 40.0);
        assert_eq!(r.batch_histogram(4), vec![0, 2, 0, 0]);
        assert_eq!(ServeReport::default().throughput_per_s(1e9), 0.0);
        assert_eq!(ServeReport::default().mean_batch(), 0.0);
    }

    #[test]
    fn empty_samples_have_no_percentile() {
        // Regression: an all-rejected run used to report p50/p95/p99 = 0,
        // indistinguishable from a perfect zero-latency run.
        assert_eq!(percentile(&[], 99.0), None);
        assert_eq!(percentile(&[], 0.0), None);
        assert_eq!(ServeReport::default().latency_percentile(99.0), None);
        let all_rejected = ServeReport { rejected: 7, ..Default::default() };
        assert_eq!(all_rejected.latency_percentile(50.0), None);
        assert_eq!(percentile(&[0], 50.0), Some(0), "a real zero latency still reports 0");
    }

    #[test]
    fn degenerate_policies_are_rejected() {
        assert!(simulate_open_loop(&[0], &exec(4), &policy(0, 0, 8)).is_err());
        assert!(simulate_open_loop(&[0], &exec(4), &policy(4, 0, 0)).is_err());
        assert!(simulate_open_loop(&[0], &exec(2), &policy(4, 0, 8)).is_err(), "short table");
        assert!(simulate_closed_loop(4, 0, &exec(4), &policy(4, 0, 8)).is_err());
        assert!(simulate_open_loop(&[], &exec(4), &policy(4, 0, 8))
            .unwrap()
            .batch_sizes
            .is_empty());
        assert_eq!(simulate_closed_loop(0, 2, &exec(4), &policy(4, 0, 8)).unwrap().completed(), 0);
    }
}
