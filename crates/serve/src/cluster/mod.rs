//! Sharded multi-instance serving: N accelerator instances behind one
//! request stream, with SLO-aware routing and weight-residency-aware
//! mixed-model placement.
//!
//! This is the serving-scale view of the paper's trade: when several
//! models share a cluster, the scarce resource is **weight-buffer
//! residency** — a model switch re-fetches the whole weight footprint,
//! and a footprint that fits the buffer turns every subsequent batch into
//! a residency hit. SmartExchange's compressed footprint is a fraction of
//! the dense designs', so at equal buffer size the SE lane fits more
//! models resident, refetches less, and loses fewer deadlines — measured
//! head-to-head by `se cluster`.
//!
//! * [`router`] — where each arrival goes: round-robin, join-shortest-
//!   queue, or model-affinity (residency-aware) routing.
//! * [`sim`] — the deterministic discrete-event cluster: per-instance
//!   batch aggregation (EDF within a queue when deadlines are set),
//!   residency admission with LRU eviction, deadline-miss and goodput
//!   accounting.
//!
//! Everything is a serial event loop over pre-computed latency tables
//! (the parallel per-image simulation happens before the cluster runs),
//! so cluster output inherits the crate's worker-count determinism
//! contract; a 1-instance, round-robin, no-deadline, no-residency cluster
//! reproduces `se serve` bit-identically.

pub mod router;
pub mod sim;

pub use router::{InstanceView, RouterPolicy};
pub use se_hw::residency::{TierSpec, TierStats};
pub use sim::{
    simulate_cluster, simulate_cluster_run, simulate_cluster_run_obs, ClusterReport, ClusterRun,
    ClusterSpec, InstanceSummary, ModelService,
};
