//! Request routing across cluster instances.
//!
//! A router decides, at each request's arrival, which instance's queue it
//! joins. Decisions are pure functions of the request sequence number, the
//! target model, and a deterministic snapshot of per-instance state
//! ([`InstanceView`]) taken by the serial event loop — ties always break
//! toward the lowest instance index — so a routed trace is bit-identical
//! across runs and worker counts.

/// The router's snapshot of one instance at a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceView {
    /// Requests currently waiting in the instance's queue.
    pub queued: usize,
    /// Whether the request's model is currently resident in the instance's
    /// weight buffer (always `false` with residency modeling disabled).
    pub resident: bool,
    /// Whether the instance accepts new requests. Killed instances and
    /// draining autoscaled instances ([`crate::fault`]) are skipped by
    /// every policy; without failure injection this is always `true`.
    pub accepting: bool,
}

/// Sharding/routing policy of the cluster front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Request `i` goes to instance `i % n`: oblivious, perfectly fair in
    /// request count, and the policy under which a 1-instance cluster
    /// reproduces `se serve` decision-for-decision.
    RoundRobin,
    /// Join the instance with the fewest waiting requests (tie: lowest
    /// index) — the classical load-balancing heuristic.
    JoinShortestQueue,
    /// Weight-residency-aware placement: among instances holding the
    /// model's weights resident, join the shortest queue; with none (or
    /// residency modeling disabled), fall back to the model's home
    /// instance `model % n`. Keeps each model's requests — and therefore
    /// its weight-buffer residency — pinned to few instances, trading load
    /// balance for fewer model-switch refetches.
    ModelAffinity,
}

impl RouterPolicy {
    /// Parses a CLI name (`rr`/`round-robin`, `jsq`/`shortest`,
    /// `affinity`/`model-affinity`).
    pub fn parse(name: &str) -> Option<RouterPolicy> {
        match name {
            "rr" | "round-robin" | "roundrobin" => Some(RouterPolicy::RoundRobin),
            "jsq" | "shortest" | "join-shortest-queue" => Some(RouterPolicy::JoinShortestQueue),
            "affinity" | "model-affinity" => Some(RouterPolicy::ModelAffinity),
            _ => None,
        }
    }

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::JoinShortestQueue => "join-shortest-queue",
            RouterPolicy::ModelAffinity => "model-affinity",
        }
    }

    /// Routes the `seq`-th arrival (counting every arrival, including ones
    /// later rejected by a full queue) targeting `model` across the given
    /// instance views. Only accepting instances are candidates; ties break
    /// toward the lowest instance index, and round-robin / affinity homes
    /// count over the accepting subset in index order — so the decision
    /// stays a deterministic pure function of the snapshot under churn.
    /// Returns `None` when no instance accepts (the whole cluster is
    /// down), in which case the arrival is rejected.
    pub fn route(&self, seq: u64, model: usize, views: &[InstanceView]) -> Option<usize> {
        let accepting: Vec<usize> = (0..views.len()).filter(|&i| views[i].accepting).collect();
        if accepting.is_empty() {
            return None;
        }
        let shortest = |candidates: &mut dyn Iterator<Item = usize>| -> Option<usize> {
            candidates.min_by_key(|&i| (views[i].queued, i))
        };
        match self {
            RouterPolicy::RoundRobin => Some(accepting[(seq % accepting.len() as u64) as usize]),
            RouterPolicy::JoinShortestQueue => shortest(&mut accepting.iter().copied()),
            RouterPolicy::ModelAffinity => Some(
                shortest(&mut accepting.iter().copied().filter(|&i| views[i].resident))
                    .unwrap_or(accepting[model % accepting.len()]),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(queued: &[usize], resident: &[bool]) -> Vec<InstanceView> {
        queued
            .iter()
            .zip(resident)
            .map(|(&queued, &resident)| InstanceView { queued, resident, accepting: true })
            .collect()
    }

    #[test]
    fn round_robin_cycles_by_sequence() {
        let v = views(&[9, 0, 0], &[false; 3]);
        let rr = RouterPolicy::RoundRobin;
        assert_eq!(rr.route(0, 0, &v), Some(0));
        assert_eq!(rr.route(1, 0, &v), Some(1));
        assert_eq!(rr.route(5, 7, &v), Some(2), "model is irrelevant to round-robin");
    }

    #[test]
    fn jsq_picks_the_shortest_with_low_index_ties() {
        let jsq = RouterPolicy::JoinShortestQueue;
        assert_eq!(jsq.route(0, 0, &views(&[3, 1, 2], &[false; 3])), Some(1));
        assert_eq!(
            jsq.route(0, 0, &views(&[2, 1, 1], &[false; 3])),
            Some(1),
            "tie -> lowest index"
        );
    }

    #[test]
    fn affinity_prefers_resident_instances_then_home() {
        let aff = RouterPolicy::ModelAffinity;
        // Model resident on 1 and 2: shortest of those wins, even though
        // instance 0 is idle.
        assert_eq!(aff.route(0, 5, &views(&[0, 4, 2], &[false, true, true])), Some(2));
        // Nothing resident: home instance model % n.
        assert_eq!(aff.route(0, 5, &views(&[0, 4, 2], &[false; 3])), Some(2));
        assert_eq!(aff.route(0, 4, &views(&[9, 4, 2], &[false; 3])), Some(1));
    }

    #[test]
    fn dead_instances_are_skipped_with_deterministic_tie_breaks() {
        let mut v = views(&[0, 1, 2], &[false, true, true]);
        v[1].accepting = false;
        // Round-robin counts over the accepting subset {0, 2} in order.
        let rr = RouterPolicy::RoundRobin;
        assert_eq!(rr.route(0, 0, &v), Some(0));
        assert_eq!(rr.route(1, 0, &v), Some(2));
        assert_eq!(rr.route(2, 0, &v), Some(0));
        // JSQ never picks the dead shortest queue.
        let mut loaded = views(&[5, 0, 2], &[false; 3]);
        loaded[1].accepting = false;
        assert_eq!(RouterPolicy::JoinShortestQueue.route(0, 0, &loaded), Some(2));
        // Affinity ignores residency on a dead instance: of {1, 2} only 2
        // accepts, so the model lands there.
        assert_eq!(RouterPolicy::ModelAffinity.route(0, 1, &v), Some(2));
        // With no accepting resident instance, the home counts over the
        // accepting subset: model 1 of {0, 2} is instance 2.
        let mut none_resident = views(&[0, 1, 2], &[false; 3]);
        none_resident[1].accepting = false;
        assert_eq!(RouterPolicy::ModelAffinity.route(0, 1, &none_resident), Some(2));
        // A fully-down cluster routes nowhere.
        let mut down = views(&[0, 0], &[false; 2]);
        down[0].accepting = false;
        down[1].accepting = false;
        for policy in
            [RouterPolicy::RoundRobin, RouterPolicy::JoinShortestQueue, RouterPolicy::ModelAffinity]
        {
            assert_eq!(policy.route(3, 1, &down), None);
        }
    }

    #[test]
    fn tie_breaks_stay_lowest_index_with_dead_and_dynamic_instances_coexisting() {
        // The shape mid-churn: two static instances (0 dead, 1 alive),
        // two autoscaled ones appended at 2 and 3 (3 draining). The
        // router sees only views; a spawned instance is just a trailing
        // entry and a draining or dead one an `accepting = false` hole.
        let mut v = views(&[4, 2, 2, 0], &[false, false, true, true]);
        v[0].accepting = false; // killed static instance
        v[3].accepting = false; // draining autoscaled instance

        // JSQ: queues tie at 2 between static 1 and dynamic 2 — the
        // lowest accepting index wins, dead/draining holes never count.
        assert_eq!(RouterPolicy::JoinShortestQueue.route(0, 0, &v), Some(1));

        // Round-robin counts over the accepting subset {1, 2} in index
        // order, so dynamic instance 2 takes every odd arrival.
        let rr = RouterPolicy::RoundRobin;
        assert_eq!(rr.route(0, 0, &v), Some(1));
        assert_eq!(rr.route(1, 0, &v), Some(2));
        assert_eq!(rr.route(2, 0, &v), Some(1));

        // Affinity: residency on the draining instance 3 is invisible;
        // the dynamic instance 2 is the only accepting resident one.
        assert_eq!(RouterPolicy::ModelAffinity.route(0, 0, &v), Some(2));
        // With both resident instances accepting, the queue tie at 2
        // breaks toward the lower index even though it is dynamic.
        v[3].accepting = true;
        v[3].queued = 2;
        assert_eq!(RouterPolicy::ModelAffinity.route(0, 0, &v), Some(2));
        // And with no resident instance at all, the home slot counts
        // over the accepting subset {1, 2, 3}: model 4 % 3 -> slot 1,
        // which is dynamic instance 2.
        let mut none = v.clone();
        for view in &mut none {
            view.resident = false;
        }
        assert_eq!(RouterPolicy::ModelAffinity.route(0, 4, &none), Some(2));
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_unknowns() {
        assert_eq!(RouterPolicy::parse("rr"), Some(RouterPolicy::RoundRobin));
        assert_eq!(RouterPolicy::parse("round-robin"), Some(RouterPolicy::RoundRobin));
        assert_eq!(RouterPolicy::parse("jsq"), Some(RouterPolicy::JoinShortestQueue));
        assert_eq!(RouterPolicy::parse("model-affinity"), Some(RouterPolicy::ModelAffinity));
        assert_eq!(RouterPolicy::parse("nope"), None);
        assert_eq!(RouterPolicy::JoinShortestQueue.name(), "join-shortest-queue");
    }
}
