//! Request routing across cluster instances.
//!
//! A router decides, at each request's arrival, which instance's queue it
//! joins. Decisions are pure functions of the request sequence number, the
//! target model, and a deterministic snapshot of per-instance state
//! ([`InstanceView`]) taken by the serial event loop — ties always break
//! toward the lowest instance index — so a routed trace is bit-identical
//! across runs and worker counts.

/// The router's snapshot of one instance at a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceView {
    /// Requests currently waiting in the instance's queue.
    pub queued: usize,
    /// Whether the request's model is currently resident in the instance's
    /// weight buffer (always `false` with residency modeling disabled).
    pub resident: bool,
}

/// Sharding/routing policy of the cluster front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Request `i` goes to instance `i % n`: oblivious, perfectly fair in
    /// request count, and the policy under which a 1-instance cluster
    /// reproduces `se serve` decision-for-decision.
    RoundRobin,
    /// Join the instance with the fewest waiting requests (tie: lowest
    /// index) — the classical load-balancing heuristic.
    JoinShortestQueue,
    /// Weight-residency-aware placement: among instances holding the
    /// model's weights resident, join the shortest queue; with none (or
    /// residency modeling disabled), fall back to the model's home
    /// instance `model % n`. Keeps each model's requests — and therefore
    /// its weight-buffer residency — pinned to few instances, trading load
    /// balance for fewer model-switch refetches.
    ModelAffinity,
}

impl RouterPolicy {
    /// Parses a CLI name (`rr`/`round-robin`, `jsq`/`shortest`,
    /// `affinity`/`model-affinity`).
    pub fn parse(name: &str) -> Option<RouterPolicy> {
        match name {
            "rr" | "round-robin" | "roundrobin" => Some(RouterPolicy::RoundRobin),
            "jsq" | "shortest" | "join-shortest-queue" => Some(RouterPolicy::JoinShortestQueue),
            "affinity" | "model-affinity" => Some(RouterPolicy::ModelAffinity),
            _ => None,
        }
    }

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::JoinShortestQueue => "join-shortest-queue",
            RouterPolicy::ModelAffinity => "model-affinity",
        }
    }

    /// Routes the `seq`-th arrival (counting every arrival, including ones
    /// later rejected by a full queue) targeting `model` across the given
    /// instance views. Ties break toward the lowest instance index.
    ///
    /// # Panics
    ///
    /// Panics on an empty cluster (`views` must be non-empty).
    pub fn route(&self, seq: u64, model: usize, views: &[InstanceView]) -> usize {
        assert!(!views.is_empty(), "routing requires at least one instance");
        let shortest = |candidates: &mut dyn Iterator<Item = usize>| -> Option<usize> {
            candidates.min_by_key(|&i| (views[i].queued, i))
        };
        match self {
            RouterPolicy::RoundRobin => (seq % views.len() as u64) as usize,
            RouterPolicy::JoinShortestQueue => {
                shortest(&mut (0..views.len())).expect("non-empty cluster")
            }
            RouterPolicy::ModelAffinity => {
                shortest(&mut (0..views.len()).filter(|&i| views[i].resident))
                    .unwrap_or(model % views.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(queued: &[usize], resident: &[bool]) -> Vec<InstanceView> {
        queued
            .iter()
            .zip(resident)
            .map(|(&queued, &resident)| InstanceView { queued, resident })
            .collect()
    }

    #[test]
    fn round_robin_cycles_by_sequence() {
        let v = views(&[9, 0, 0], &[false; 3]);
        let rr = RouterPolicy::RoundRobin;
        assert_eq!(rr.route(0, 0, &v), 0);
        assert_eq!(rr.route(1, 0, &v), 1);
        assert_eq!(rr.route(5, 7, &v), 2, "model is irrelevant to round-robin");
    }

    #[test]
    fn jsq_picks_the_shortest_with_low_index_ties() {
        let jsq = RouterPolicy::JoinShortestQueue;
        assert_eq!(jsq.route(0, 0, &views(&[3, 1, 2], &[false; 3])), 1);
        assert_eq!(jsq.route(0, 0, &views(&[2, 1, 1], &[false; 3])), 1, "tie -> lowest index");
    }

    #[test]
    fn affinity_prefers_resident_instances_then_home() {
        let aff = RouterPolicy::ModelAffinity;
        // Model resident on 1 and 2: shortest of those wins, even though
        // instance 0 is idle.
        assert_eq!(aff.route(0, 5, &views(&[0, 4, 2], &[false, true, true])), 2);
        // Nothing resident: home instance model % n.
        assert_eq!(aff.route(0, 5, &views(&[0, 4, 2], &[false; 3])), 2);
        assert_eq!(aff.route(0, 4, &views(&[9, 4, 2], &[false; 3])), 1);
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_unknowns() {
        assert_eq!(RouterPolicy::parse("rr"), Some(RouterPolicy::RoundRobin));
        assert_eq!(RouterPolicy::parse("round-robin"), Some(RouterPolicy::RoundRobin));
        assert_eq!(RouterPolicy::parse("jsq"), Some(RouterPolicy::JoinShortestQueue));
        assert_eq!(RouterPolicy::parse("model-affinity"), Some(RouterPolicy::ModelAffinity));
        assert_eq!(RouterPolicy::parse("nope"), None);
        assert_eq!(RouterPolicy::JoinShortestQueue.name(), "join-shortest-queue");
    }
}
