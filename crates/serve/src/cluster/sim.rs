//! The sharded cluster front: a deterministic discrete-event simulation of
//! N accelerator instances behind one request stream.
//!
//! Each instance is the single-accelerator server of [`crate::queue`]
//! replicated: a bounded waiting queue with a batch aggregator
//! (max-batch / max-wait), executing batches back-to-back. On top of that
//! the cluster adds:
//!
//! * **routing** — every arrival joins one instance's queue, chosen by the
//!   [`RouterPolicy`] from a deterministic snapshot of queue depths and
//!   weight-buffer residency;
//! * **SLO-aware batch formation** — within a queue, requests are ordered
//!   earliest-deadline-first (ties by arrival, then issue order; plain
//!   FIFO when no deadlines are set), and a batch is formed from the
//!   head-of-line request's model only — batches share weights, so they
//!   are single-model by construction. A full batch of another model never
//!   jumps the EDF head;
//! * **weight-buffer residency** — with a finite per-instance buffer
//!   ([`ClusterSpec::buffer_bytes`]), each batch first *admits* its
//!   model's weight footprint ([`se_hw::residency::WeightBuffer`]): a hit
//!   runs at the resident batch latency, a miss serializes the switch
//!   fetch in front of it (evicting LRU models), and an oversized model
//!   streams at the per-batch-fetch latency. With `buffer_bytes: None`
//!   every batch streams — exactly the `se serve` execution model.
//!
//! The whole simulation is a serial event loop over pre-computed latency
//! tables, so its output is bit-identical for any worker count of the
//! surrounding harness; a 1-instance, round-robin, no-deadline,
//! no-residency cluster reproduces [`crate::queue::simulate_open_loop`]
//! decision-for-decision (enforced by property test).
//!
//! Every scheduling decision lives in the shared [`crate::sched`] core;
//! this module is the serial driver plus report assembly. The concurrent
//! staged runtime ([`crate::staged`]) drives the same core, which is why
//! [`simulate_cluster_run`] doubles as its correctness oracle.

use crate::cluster::router::RouterPolicy;
use crate::engine::BatchEngine;
use crate::fault::{ClusterEvent, FaultPlan};
use crate::queue::{percentile, BatchPolicy};
use crate::sched::{self, ClusterCore, CoreFinish, Disposition, RequestOutcome, SchedEvent};
use crate::workload::Request;
use crate::{BoxError, Result};
use se_hw::residency::{fetch_cycles, ResidencyStats, TierSpec, TierStats};
use se_hw::RunResult;

/// One model's execution profile on one accelerator lane — everything the
/// cluster needs to charge its batches, derived from a single per-image
/// simulation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelService {
    /// Model name (for reports).
    pub name: String,
    /// `streamed[k - 1]`: cycles of a batch of `k` with the weight fetch
    /// charged per batch (`BatchEngine::latency_table` — the `se serve`
    /// execution model, used when residency modeling is off or the model
    /// does not fit the buffer).
    pub streamed: Vec<u64>,
    /// `resident[k - 1]`: cycles of a batch of `k` with the weights
    /// already on chip (`BatchEngine::resident_latency_table`).
    pub resident: Vec<u64>,
    /// Whole-model weight footprint in bytes (what a switch re-fetches and
    /// the buffer must hold — `RunResult::weight_footprint_bytes`).
    pub footprint_bytes: u64,
    /// DRAM cycles a model switch serializes in front of its first batch
    /// (`se_hw::residency::fetch_cycles` of the footprint).
    pub switch_cycles: u64,
}

impl ModelService {
    /// Builds the service profile of `per_image` on `lane`, covering
    /// batches up to `max_batch`.
    pub fn from_engine(
        engine: &BatchEngine,
        lane: usize,
        name: &str,
        per_image: &RunResult,
        max_batch: usize,
    ) -> ModelService {
        let footprint_bytes = per_image.weight_footprint_bytes();
        ModelService {
            name: name.to_string(),
            streamed: engine.latency_table(lane, per_image, max_batch),
            resident: engine.resident_latency_table(lane, per_image, max_batch),
            footprint_bytes,
            switch_cycles: fetch_cycles(
                footprint_bytes,
                engine.accelerator(lane).dram_bytes_per_cycle(),
            ),
        }
    }
}

/// Cluster shape and policies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Accelerator instances behind the shared front.
    pub instances: usize,
    /// Routing policy.
    pub router: RouterPolicy,
    /// Per-instance batch-formation policy (`queue_cap` bounds each
    /// instance's waiting queue).
    pub policy: BatchPolicy,
    /// Per-instance weight-buffer capacity in bytes; `None` disables
    /// residency modeling (every batch streams its weights, the `se serve`
    /// execution model).
    pub buffer_bytes: Option<u64>,
    /// Per-instance tiered weight store (top tier first, bottom tier the
    /// durable origin — see [`se_hw::residency::TieredStore`]); `None`
    /// keeps the single-buffer model above. Mutually exclusive with
    /// `buffer_bytes`: a tier stack *replaces* the flat buffer, charging
    /// each admission its real tier-walk cost instead of the flat
    /// `switch_cycles`.
    pub tiers: Option<Vec<TierSpec>>,
    /// Deterministic failure injection and elasticity script (see
    /// [`crate::fault`]). The default empty plan reproduces a cluster
    /// without churn bit for bit.
    pub faults: FaultPlan,
}

impl ClusterSpec {
    /// Validates the spec against the served model set.
    ///
    /// # Errors
    ///
    /// Rejects an empty cluster, an invalid batch policy, an invalid
    /// fault plan, an empty model set, and service tables shorter than
    /// `max_batch`.
    pub fn validate(&self, services: &[ModelService]) -> Result<()> {
        if self.instances == 0 {
            return Err(BoxError::from("a cluster needs at least one instance"));
        }
        self.policy.validate()?;
        self.faults.validate(self.instances)?;
        if services.is_empty() {
            return Err(BoxError::from("a cluster needs at least one model service"));
        }
        for s in services {
            if s.streamed.len() < self.policy.max_batch || s.resident.len() < self.policy.max_batch
            {
                return Err(BoxError::from(format!(
                    "model {}: service tables cover batches up to {}, policy allows {}",
                    s.name,
                    s.streamed.len().min(s.resident.len()),
                    self.policy.max_batch
                )));
            }
        }
        if let Some(tiers) = &self.tiers {
            if self.buffer_bytes.is_some() {
                return Err(BoxError::from(
                    "tiers and buffer_bytes are mutually exclusive: a tier stack replaces \
                     the flat weight buffer",
                ));
            }
            if tiers.is_empty() {
                return Err(BoxError::from("a tier stack needs at least one tier"));
            }
            for t in tiers {
                if !(t.bytes_per_cycle > 0.0 && t.bytes_per_cycle.is_finite()) {
                    return Err(BoxError::from(format!(
                        "tier {}: bandwidth must be positive and finite",
                        t.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Per-instance outcome summary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstanceSummary {
    /// Batches executed.
    pub batches: u64,
    /// Requests completed.
    pub completed: u64,
    /// Residency counters of this instance's weight buffer (zeros with
    /// residency modeling off). With a tiered store this is the legacy
    /// summary view of the stack (top-tier hits / any-movement fetches).
    pub residency: ResidencyStats,
    /// Per-tier traffic of this instance's tiered store, top tier first
    /// (empty without `ClusterSpec::tiers`).
    pub tier_traffic: Vec<TierStats>,
}

/// Outcome of one cluster simulation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterReport {
    /// Per-request latency in cycles, in completion order.
    pub latencies: Vec<u64>,
    /// Executed batch sizes, in launch order across the cluster.
    pub batch_sizes: Vec<usize>,
    /// Arrivals rejected by a full instance queue.
    pub rejected: u64,
    /// Completed requests that finished after their deadline.
    pub misses: u64,
    /// Completion time of the last batch, in cycles.
    pub makespan: u64,
    /// Cluster-wide residency counters (sum over instances).
    pub residency: ResidencyStats,
    /// Cluster-wide per-tier traffic, top tier first (elementwise sum
    /// over instances; empty without `ClusterSpec::tiers`).
    pub tier_traffic: Vec<TierStats>,
    /// Per-instance summaries (spawned instances appended after the base
    /// cluster).
    pub per_instance: Vec<InstanceSummary>,
    /// Membership changes that fired (kills, restarts, spawns, drains),
    /// in the order they fired. Empty without failure injection.
    pub events: Vec<ClusterEvent>,
    /// In-flight batches failed by an instance kill (their members either
    /// re-routed or were lost; none completed in the failed batch).
    pub killed_batches: u64,
    /// Kill victims re-admitted through the router.
    pub rerouted: u64,
    /// Kill victims that could not be re-routed — terminal
    /// [`Disposition::Lost`] outcomes.
    pub lost: u64,
}

impl ClusterReport {
    /// Requests served to completion.
    pub fn completed(&self) -> usize {
        self.latencies.len()
    }

    /// Mean request latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
    }

    /// The `p`-th latency percentile in cycles (shared nearest-rank
    /// definition — [`crate::queue::percentile`]); `None` when nothing
    /// completed, so an all-rejected/all-lost run is distinguishable from
    /// a zero-latency one.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        percentile(&self.latencies, p)
    }

    /// The conservation law of the serving front: every submitted request
    /// ends in exactly one of completed (on time or late), rejected, or
    /// lost. `true` when the counters account for `submitted` exactly.
    pub fn conserves(&self, submitted: usize) -> bool {
        self.completed() as u64 + self.rejected + self.lost == submitted as u64
    }

    /// Deadline-miss rate over completed requests (0 when nothing
    /// completed).
    pub fn miss_rate(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.misses as f64 / self.latencies.len() as f64
    }

    /// Completed requests per second at `frequency_hz`.
    pub fn throughput_per_s(&self, frequency_hz: f64) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.completed() as f64 / (self.makespan as f64 / frequency_hz)
    }

    /// **Goodput**: requests completed *within their deadline* per second
    /// at `frequency_hz` (equals throughput when no deadlines are set).
    pub fn goodput_per_s(&self, frequency_hz: f64) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        (self.completed() as u64 - self.misses) as f64 / (self.makespan as f64 / frequency_hz)
    }
}

/// Full result of one cluster run: the aggregate report plus the
/// per-request outcome set — the unit the sim-vs-staged determinism
/// contract is stated (and property-tested) over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterRun {
    /// Aggregate report (latencies, batch sizes, residency, ...).
    pub report: ClusterReport,
    /// Per-request outcomes, sorted by request id.
    pub outcomes: Vec<RequestOutcome>,
}

/// Folds one scheduling event into the report and outcome set. Launched
/// batches must be fed in launch (`seq`) order — the order `latencies`
/// and `batch_sizes` are recorded in; the staged runtime's collector
/// re-sorts its stream by `seq` before calling this, which is what makes
/// its reports bit-identical to the sim's.
pub(crate) fn record_event(
    event: &SchedEvent,
    report: &mut ClusterReport,
    outcomes: &mut Vec<RequestOutcome>,
) {
    match event {
        SchedEvent::Rejected(id, req) => {
            report.rejected += 1;
            outcomes.push(RequestOutcome {
                id: *id,
                model: req.model,
                arrival: req.arrival,
                disposition: Disposition::Rejected,
            });
        }
        SchedEvent::Lost(id, req, at) => {
            report.lost += 1;
            outcomes.push(RequestOutcome {
                id: *id,
                model: req.model,
                arrival: req.arrival,
                disposition: Disposition::Lost { at: *at },
            });
        }
        // A batch overlapping its instance's kill completes nothing: its
        // members' fates are decided when the kill re-routes them.
        SchedEvent::Launched(batch) if batch.killed_at.is_some() => {
            report.killed_batches += 1;
        }
        SchedEvent::Launched(batch) => {
            for m in &batch.members {
                let missed = m.req.deadline.is_some_and(|d| batch.done > d);
                report.latencies.push(batch.done - m.req.arrival);
                if missed {
                    report.misses += 1;
                }
                outcomes.push(RequestOutcome {
                    id: m.id,
                    model: m.req.model,
                    arrival: m.req.arrival,
                    disposition: Disposition::Served {
                        batch: batch.seq,
                        instance: batch.instance,
                        done: batch.done,
                        missed,
                    },
                });
            }
            report.batch_sizes.push(batch.members.len());
            report.makespan = report.makespan.max(batch.done);
        }
    }
}

/// Folds the core's teardown — per-instance summaries and the membership
/// event log — into the report (shared by the sim and the staged
/// collector, so both report identical churn).
pub(crate) fn fold_finish(fin: CoreFinish, report: &mut ClusterReport) {
    for summary in fin.summaries {
        report.residency.accumulate(&summary.residency);
        if report.tier_traffic.len() < summary.tier_traffic.len() {
            report.tier_traffic.resize(summary.tier_traffic.len(), TierStats::default());
        }
        for (agg, tier) in report.tier_traffic.iter_mut().zip(&summary.tier_traffic) {
            agg.accumulate(tier);
        }
        report.per_instance.push(summary);
    }
    report.rerouted = fin.events.iter().map(|e| e.kind.rerouted()).sum();
    report.events = fin.events;
}

/// Checks every request's model index against the service set (shared by
/// both runtimes' entry points).
pub(crate) fn validate_models(requests: &[Request], services: &[ModelService]) -> Result<()> {
    if let Some(r) = requests.iter().find(|r| r.model >= services.len()) {
        return Err(BoxError::from(format!(
            "request targets model {} but only {} services are defined",
            r.model,
            services.len()
        )));
    }
    debug_assert!(
        requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "arrivals must be sorted"
    );
    Ok(())
}

/// Simulates the cluster over an open-loop request stream (arrivals
/// non-decreasing; `model` indexes into `services`), returning the full
/// per-request outcome set alongside the report.
///
/// # Errors
///
/// Rejects an invalid spec and out-of-range model indices.
pub fn simulate_cluster_run(
    requests: &[Request],
    services: &[ModelService],
    spec: &ClusterSpec,
) -> Result<ClusterRun> {
    simulate_inner(requests, services, spec, None)
}

/// [`simulate_cluster_run`] with observability: every scheduling decision
/// is additionally narrated into `sink` as virtual-time
/// [`se_obs::Event`]s. A disabled sink (e.g. [`se_obs::NullSink`]) skips
/// the observed path entirely; the run result is identical either way.
///
/// # Errors
///
/// Rejects an invalid spec and out-of-range model indices.
pub fn simulate_cluster_run_obs(
    requests: &[Request],
    services: &[ModelService],
    spec: &ClusterSpec,
    sink: &mut dyn se_obs::EventSink,
) -> Result<ClusterRun> {
    let obs = sink.enabled().then_some(sink);
    simulate_inner(requests, services, spec, obs)
}

fn simulate_inner(
    requests: &[Request],
    services: &[ModelService],
    spec: &ClusterSpec,
    obs: Option<&mut dyn se_obs::EventSink>,
) -> Result<ClusterRun> {
    validate_models(requests, services)?;
    let mut core = ClusterCore::with_obs(services, spec, obs)?;
    let mut report = ClusterReport::default();
    let mut outcomes = Vec::with_capacity(requests.len());
    sched::drive_open_loop(&mut core, requests.iter().copied().enumerate(), &mut |event| {
        record_event(&event, &mut report, &mut outcomes);
        true
    });
    fold_finish(core.finish(), &mut report);
    outcomes.sort_unstable_by_key(|o| o.id);
    Ok(ClusterRun { report, outcomes })
}

/// Simulates the cluster over an open-loop request stream, returning the
/// aggregate report (see [`simulate_cluster_run`] for the outcome set).
///
/// # Errors
///
/// Rejects an invalid spec and out-of-range model indices.
pub fn simulate_cluster(
    requests: &[Request],
    services: &[ModelService],
    spec: &ClusterSpec,
) -> Result<ClusterReport> {
    Ok(simulate_cluster_run(requests, services, spec)?.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(name: &str, base: u64, per: u64, footprint: u64, bw: u64) -> ModelService {
        // Streamed batch of k costs base + per*k; resident drops the
        // footprint's share of `base`.
        let fetch = footprint / bw;
        ModelService {
            name: name.into(),
            streamed: (1..=8).map(|k| base + per * k).collect(),
            resident: (1..=8).map(|k| base - fetch + per * k).collect(),
            footprint_bytes: footprint,
            switch_cycles: fetch,
        }
    }

    fn spec(instances: usize, router: RouterPolicy, buffer: Option<u64>) -> ClusterSpec {
        ClusterSpec {
            instances,
            router,
            policy: BatchPolicy { max_batch: 4, max_wait: 0, queue_cap: 64 },
            buffer_bytes: buffer,
            tiers: None,
            faults: FaultPlan::default(),
        }
    }

    fn reqs(arrivals: &[(u64, usize)]) -> Vec<Request> {
        arrivals
            .iter()
            .map(|&(arrival, model)| Request { model, arrival, deadline: None })
            .collect()
    }

    #[test]
    fn round_robin_spreads_a_burst_across_instances() {
        // Eight simultaneous single-model requests, two instances, batch
        // cap 4: each instance runs one full batch in parallel.
        let services = [svc("m", 40, 2, 0, 64)];
        let r = simulate_cluster(
            &reqs(&[(0, 0); 8]),
            &services,
            &spec(2, RouterPolicy::RoundRobin, None),
        )
        .unwrap();
        assert_eq!(r.batch_sizes, vec![4, 4]);
        assert_eq!(r.completed(), 8);
        assert_eq!(r.makespan, 48, "instances run concurrently");
        assert_eq!(r.per_instance[0].batches, 1);
        assert_eq!(r.per_instance[1].batches, 1);
    }

    #[test]
    fn jsq_avoids_the_loaded_instance() {
        // Two instances; a burst loads both, then a straggler arrives while
        // instance 0 still holds a longer queue.
        let services = [svc("m", 40, 2, 0, 64)];
        let mut rs = reqs(&[(0, 0), (0, 0), (0, 0)]);
        rs.push(Request { model: 0, arrival: 1, deadline: None });
        let r = simulate_cluster(&rs, &services, &spec(2, RouterPolicy::JoinShortestQueue, None))
            .unwrap();
        assert_eq!(r.completed(), 4);
        // JSQ: 0 -> inst0, 1 -> inst1 (tie by index after inst0 got one),
        // 2 -> inst1? No: queues (1,0) -> inst1; then (1,1) -> inst0.
        // The straggler joins whichever queue drained first; the exact
        // split is pinned by determinism, not asserted here.
        assert_eq!(r.batch_sizes.iter().sum::<usize>(), 4);
    }

    #[test]
    fn edf_orders_batches_by_deadline_not_arrival() {
        // Two models, one instance. Model 1's request arrives later but
        // with the earlier deadline: it must be served first.
        let services = [svc("a", 40, 2, 0, 64), svc("b", 40, 2, 0, 64)];
        let rs = vec![
            Request { model: 0, arrival: 0, deadline: Some(10_000) },
            Request { model: 1, arrival: 1, deadline: Some(100) },
        ];
        let mut sp = spec(1, RouterPolicy::RoundRobin, None);
        sp.policy.max_wait = 50;
        let r = simulate_cluster(&rs, &services, &sp).unwrap();
        assert_eq!(r.batch_sizes, vec![1, 1]);
        // First completion is model 1 (arrived at 1, launched at
        // 1 + max_wait = 51, done at 51 + 42 = 93): latency 92 and no miss.
        assert_eq!(r.latencies[0], 92);
        assert_eq!(r.misses, 0);
    }

    #[test]
    fn deadline_misses_are_counted_and_goodput_excludes_them() {
        let services = [svc("m", 1000, 2, 0, 64)];
        let rs = vec![
            Request { model: 0, arrival: 0, deadline: Some(500) },
            Request { model: 0, arrival: 0, deadline: Some(5000) },
        ];
        let r = simulate_cluster(&rs, &services, &spec(1, RouterPolicy::RoundRobin, None)).unwrap();
        assert_eq!(r.completed(), 2);
        assert_eq!(r.misses, 1, "the 500-cycle deadline cannot be met");
        assert!((r.miss_rate() - 0.5).abs() < 1e-12);
        assert!((r.goodput_per_s(1e9) - r.throughput_per_s(1e9) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn residency_turns_repeat_batches_into_hits() {
        // One model that fits the buffer: first batch fetches, the rest hit
        // and run at the (cheaper) resident latency.
        let services = [svc("m", 100, 2, 640, 64)];
        let r = simulate_cluster(
            &reqs(&[(0, 0), (10_000, 0), (20_000, 0)]),
            &services,
            &spec(1, RouterPolicy::RoundRobin, Some(1000)),
        )
        .unwrap();
        assert_eq!(r.residency.fetches, 1);
        assert_eq!(r.residency.hits, 2);
        assert_eq!(r.residency.evictions, 0);
        assert_eq!(r.residency.bytes_fetched, 640);
        // First batch: switch (10) + resident (90 + 2) = 102; later
        // batches: 92 cycles.
        assert_eq!(r.latencies, vec![102, 92, 92]);
    }

    #[test]
    fn too_small_buffer_evicts_on_every_alternation() {
        // Two models alternating on one instance; the buffer holds one.
        let services = [svc("a", 100, 2, 600, 64), svc("b", 100, 2, 600, 64)];
        let rs = reqs(&[(0, 0), (10_000, 1), (20_000, 0), (30_000, 1)]);
        let r = simulate_cluster(&rs, &services, &spec(1, RouterPolicy::RoundRobin, Some(700)))
            .unwrap();
        assert_eq!(r.residency.fetches, 4, "every batch switches");
        assert_eq!(r.residency.hits, 0);
        assert_eq!(r.residency.evictions, 3);
        // Affinity routing on two instances pins each model, eliminating
        // the thrash entirely after the two cold fetches.
        let r2 = simulate_cluster(&rs, &services, &spec(2, RouterPolicy::ModelAffinity, Some(700)))
            .unwrap();
        assert_eq!(r2.residency.fetches, 2);
        assert_eq!(r2.residency.hits, 2);
        assert_eq!(r2.residency.evictions, 0);
    }

    #[test]
    fn oversized_models_stream_at_the_per_batch_rate() {
        let services = [svc("big", 100, 2, 5000, 64)];
        let r = simulate_cluster(
            &reqs(&[(0, 0), (10_000, 0)]),
            &services,
            &spec(1, RouterPolicy::RoundRobin, Some(1000)),
        )
        .unwrap();
        assert_eq!(r.residency.fetches, 2, "streams every batch");
        assert_eq!(r.residency.hits, 0);
        assert_eq!(r.latencies, vec![102, 102], "streamed latency, no switch serialization");
    }

    #[test]
    fn full_instance_queues_reject() {
        let services = [svc("m", 1_000_000, 2, 0, 64)];
        let mut sp = spec(1, RouterPolicy::RoundRobin, None);
        sp.policy.queue_cap = 3;
        sp.policy.max_batch = 2;
        let r = simulate_cluster(&reqs(&[(0, 0); 10]), &services, &sp).unwrap();
        assert_eq!(r.completed() as u64 + r.rejected, 10);
        assert_eq!(r.rejected, 7, "matches the single-instance queue's admission rule");
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let services = [svc("m", 10, 1, 0, 64)];
        assert!(simulate_cluster(&[], &services, &spec(0, RouterPolicy::RoundRobin, None)).is_err());
        assert!(simulate_cluster(&[], &[], &spec(1, RouterPolicy::RoundRobin, None)).is_err());
        let mut short = spec(1, RouterPolicy::RoundRobin, None);
        short.policy.max_batch = 100;
        assert!(simulate_cluster(&[], &services, &short).is_err());
        let bad_model = [Request { model: 7, arrival: 0, deadline: None }];
        assert!(simulate_cluster(&bad_model, &services, &spec(1, RouterPolicy::RoundRobin, None))
            .is_err());
        let empty =
            simulate_cluster(&[], &services, &spec(2, RouterPolicy::RoundRobin, None)).unwrap();
        assert_eq!(empty.completed(), 0);
        assert_eq!(empty.per_instance.len(), 2);
    }

    #[test]
    fn report_statistics() {
        let r = ClusterReport {
            latencies: vec![10, 30, 20, 40],
            batch_sizes: vec![2, 2],
            rejected: 1,
            misses: 1,
            makespan: 100,
            ..Default::default()
        };
        assert_eq!(r.completed(), 4);
        assert_eq!(r.mean_latency(), 25.0);
        assert_eq!(r.latency_percentile(50.0), Some(20));
        assert_eq!(r.latency_percentile(99.0), Some(40));
        assert_eq!(r.throughput_per_s(1000.0), 40.0);
        assert_eq!(r.goodput_per_s(1000.0), 30.0);
        assert!(r.conserves(5), "4 completed + 1 rejected");
        assert!(!r.conserves(6));
        assert_eq!(ClusterReport::default().miss_rate(), 0.0);
        assert_eq!(ClusterReport::default().goodput_per_s(1e9), 0.0);
        assert_eq!(
            ClusterReport::default().latency_percentile(99.0),
            None,
            "an empty sample has no percentile, not a perfect one"
        );
    }

    #[test]
    fn a_kill_mid_run_conserves_requests_and_reports_the_event() {
        use crate::fault::{ClusterEventKind, FaultAction, FaultEvent};
        // Two instances; instance 0 dies while loaded and comes back
        // later. Nothing may vanish: completed + rejected + lost ==
        // submitted, and the report carries the event lines.
        let services = [svc("m", 100, 2, 640, 64)];
        let mut sp = spec(2, RouterPolicy::RoundRobin, Some(1000));
        sp.faults.events = vec![
            FaultEvent { at: 50, instance: 0, action: FaultAction::Kill },
            FaultEvent { at: 10_000, instance: 0, action: FaultAction::Restart },
        ];
        let rs = reqs(&[(0, 0), (0, 0), (0, 0), (0, 0), (20_000, 0), (20_000, 0)]);
        let r = simulate_cluster(&rs, &services, &sp).unwrap();
        assert!(
            r.conserves(rs.len()),
            "completed {} rejected {} lost {}",
            r.completed(),
            r.rejected,
            r.lost
        );
        assert_eq!(r.killed_batches, 1, "instance 0's in-flight batch failed");
        assert!(r.rerouted >= 2, "its members re-routed to instance 1");
        assert_eq!(r.lost, 0, "instance 1 had queue room for every victim");
        let tags: Vec<&str> = r.events.iter().map(|e| e.kind.tag()).collect();
        assert_eq!(tags, vec!["kill", "restart"]);
        assert!(matches!(r.events[0].kind, ClusterEventKind::Kill { in_flight: 2, .. }));
        // The restarted instance is cold: its post-restart batch at
        // 20_000 re-fetches the model even though it was resident before
        // the kill (fetch at first batch + fetch after restart on
        // instance 0, plus instance 1's own cold fetch).
        assert_eq!(r.residency.fetches, 3);
    }
}
