//! The shared scheduling core of the serving front.
//!
//! Both serving runtimes — the deterministic discrete-event simulation
//! ([`crate::queue`], [`crate::cluster::sim`]) and the concurrent staged
//! pipeline ([`crate::staged`]) — make their admission, routing, batch
//! formation, and residency decisions through the one state machine here,
//! `ClusterCore`. The sim drives it from a serial loop; the staged
//! runtime drives it from its scheduling stage. Because every decision is
//! a pure function of the arrival order and the service tables (never of
//! wall-clock time), the two runtimes produce **identical per-request
//! outcome sets** by construction — the determinism contract that lets
//! the sim act as the staged runtime's oracle (and that the property
//! tests in `tests/staged.rs` enforce end to end).
//!
//! The core advances a *virtual* clock: `ClusterCore::admit` routes one
//! arrival into an instance queue (or bounces it off the cap), and
//! `ClusterCore::launch_next` forms and launches the earliest pending
//! batch, returning a [`PlannedBatch`] whose completion time is already
//! known (execution latencies come from pre-computed batch tables). The
//! drivers `drive_open_loop` and `drive_closed_loop` encode the one
//! legal interleaving of those two operations: an arrival is admitted
//! before any batch that would launch at or after its arrival time.

use std::collections::VecDeque;

use crate::cluster::router::InstanceView;
use crate::cluster::sim::{ClusterSpec, InstanceSummary, ModelService};
use crate::workload::Request;
use crate::Result;
use se_hw::residency::{Admission, WeightBuffer};

/// A queued request plus its issue order (the final EDF tie-breaker and
/// the identity the determinism contract is stated over).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Queued {
    /// Arrival sequence number (stamped by the driver in arrival order,
    /// counting every arrival including later-rejected ones).
    pub id: usize,
    /// The request itself.
    pub req: Request,
}

impl Queued {
    /// EDF ordering key: earliest deadline first (`None` = best effort,
    /// after every deadline), then arrival, then issue order. With no
    /// deadlines anywhere this is exactly FIFO.
    fn key(&self) -> (u64, u64, usize) {
        (self.req.deadline.unwrap_or(u64::MAX), self.req.arrival, self.id)
    }
}

/// One formed-and-launched batch: everything downstream accounting (or a
/// real execution stage) needs, with the virtual completion time already
/// decided. Batches are emitted in launch order (`seq` ascending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedBatch {
    /// Launch sequence number across the cluster (0-based, ascending).
    pub seq: u64,
    /// The instance the batch runs on.
    pub instance: usize,
    /// The batch's (single) model.
    pub model: usize,
    /// Virtual launch cycle.
    pub start: u64,
    /// Virtual completion cycle (`start` + the charged execution time,
    /// including any serialized weight-switch fetch).
    pub done: u64,
    /// Batch members in EDF order — the order completions are recorded.
    pub members: Vec<Queued>,
}

/// What finally happened to one request — the unit of the determinism
/// contract between the sim and staged runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Bounced off a full instance queue at arrival.
    Rejected,
    /// Served to completion.
    Served {
        /// Launch sequence number of the batch that served it.
        batch: u64,
        /// Instance the batch ran on.
        instance: usize,
        /// Virtual completion cycle.
        done: u64,
        /// Whether completion overran the request's deadline.
        missed: bool,
    },
}

/// Per-request outcome record, ordered by request id in a
/// [`crate::cluster::sim::ClusterRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Arrival sequence number.
    pub id: usize,
    /// Model the request targeted.
    pub model: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// What happened.
    pub disposition: Disposition,
}

/// One scheduling decision surfaced to a driver's sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedEvent {
    /// An arrival bounced off a full instance queue.
    Rejected(usize, Request),
    /// A batch was formed and launched.
    Launched(PlannedBatch),
}

/// One instance's private state, including its memoized launch plan.
struct Instance {
    queue: Vec<Queued>,
    free: u64,
    buffer: Option<WeightBuffer>,
    summary: InstanceSummary,
    /// Memoized next-launch plan: `None` = stale (queue or `free`
    /// changed), `Some(None)` = empty queue, `Some(Some((members in EDF
    /// order as queue positions, start)))` otherwise.
    plan: Option<Option<(Vec<usize>, u64)>>,
}

impl Instance {
    /// The batch this instance would launch next: member positions (EDF
    /// order) and the earliest start time. Memoized until the queue or
    /// server availability changes.
    fn plan(&mut self, spec: &ClusterSpec) -> &Option<(Vec<usize>, u64)> {
        if self.plan.is_none() {
            self.plan = Some(self.compute_plan(spec));
        }
        self.plan.as_ref().expect("plan just computed")
    }

    fn compute_plan(&self, spec: &ClusterSpec) -> Option<(Vec<usize>, u64)> {
        if self.queue.is_empty() {
            return None;
        }
        let policy = &spec.policy;
        // Head = EDF-minimum over the whole queue (O(Q)); only the head
        // model's requests — the batch candidates — need sorting.
        let head_pos =
            (0..self.queue.len()).min_by_key(|&i| self.queue[i].key()).expect("non-empty queue");
        let head = &self.queue[head_pos];
        let mut members: Vec<usize> =
            (0..self.queue.len()).filter(|&i| self.queue[i].req.model == head.req.model).collect();
        members.sort_by_key(|&i| self.queue[i].key());
        members.truncate(policy.max_batch);
        let start = if members.len() >= policy.max_batch {
            // Full batch: ready as soon as its last member has arrived.
            let last_arrival =
                members.iter().map(|&i| self.queue[i].req.arrival).max().expect("non-empty batch");
            self.free.max(last_arrival)
        } else {
            // Short batch: wait out the head-of-line request's patience.
            self.free.max(head.req.arrival + policy.max_wait)
        };
        Some((members, start))
    }
}

/// The incremental cluster scheduler: instance queues, weight buffers,
/// and the batch-formation logic, advanced one admission or one launch at
/// a time. Decisions depend only on the admission order, so any driver
/// that preserves the canonical interleaving (see [`drive_open_loop`])
/// reproduces the discrete-event simulation exactly.
pub(crate) struct ClusterCore<'a> {
    services: &'a [ModelService],
    spec: &'a ClusterSpec,
    instances: Vec<Instance>,
    launched: u64,
}

impl<'a> ClusterCore<'a> {
    /// Builds a core over validated services and spec.
    ///
    /// # Errors
    ///
    /// Rejects an invalid spec (see [`ClusterSpec::validate`]).
    pub(crate) fn new(services: &'a [ModelService], spec: &'a ClusterSpec) -> Result<Self> {
        spec.validate(services)?;
        let instances = (0..spec.instances)
            .map(|_| Instance {
                queue: Vec::new(),
                free: 0,
                buffer: spec.buffer_bytes.map(WeightBuffer::new),
                summary: InstanceSummary::default(),
                plan: Some(None),
            })
            .collect();
        Ok(ClusterCore { services, spec, instances, launched: 0 })
    }

    /// The earliest pending launch across the cluster as `(start,
    /// instance)` — ties break toward the lowest instance index — or
    /// `None` when every queue is empty.
    pub(crate) fn next_launch(&mut self) -> Option<(u64, usize)> {
        let spec = self.spec;
        self.instances
            .iter_mut()
            .enumerate()
            .filter_map(|(i, inst)| inst.plan(spec).as_ref().map(|&(_, start)| (start, i)))
            .min()
    }

    /// Routes one arrival: snapshot the instances, ask the policy, join or
    /// bounce off the bounded queue. Returns `false` when rejected.
    pub(crate) fn admit(&mut self, id: usize, req: Request) -> bool {
        let views: Vec<InstanceView> = self
            .instances
            .iter()
            .map(|inst| InstanceView {
                queued: inst.queue.len(),
                resident: inst.buffer.as_ref().is_some_and(|b| b.is_resident(req.model)),
            })
            .collect();
        let target = self.spec.router.route(id as u64, req.model, &views);
        if self.instances[target].queue.len() >= self.spec.policy.queue_cap {
            return false;
        }
        self.instances[target].queue.push(Queued { id, req });
        self.instances[target].plan = None;
        true
    }

    /// Forms and launches the earliest pending batch: admits the model's
    /// weights, charges the batch (plus any switch fetch), removes the
    /// members from their queue, and returns the launched batch. `None`
    /// when every queue is empty.
    pub(crate) fn launch_next(&mut self) -> Option<PlannedBatch> {
        let (_, idx) = self.next_launch()?;
        let spec = self.spec;
        let (positions, start) =
            self.instances[idx].plan(spec).clone().expect("chosen instance has a plan");
        let inst = &mut self.instances[idx];
        let k = positions.len();
        debug_assert!(k >= 1, "launch requires a non-empty batch");
        let members: Vec<Queued> = positions.iter().map(|&i| inst.queue[i]).collect();
        let model = members[0].req.model;
        let svc = &self.services[model];
        let exec = match inst.buffer.as_mut() {
            None => svc.streamed[k - 1],
            Some(buffer) => match buffer.admit(model, svc.footprint_bytes) {
                Admission::Resident => svc.resident[k - 1],
                Admission::Fetched { .. } => svc.switch_cycles + svc.resident[k - 1],
                Admission::Streamed => svc.streamed[k - 1],
            },
        };
        let done = start + exec;
        // Compact the queue, preserving the keepers' relative order.
        let mut taken = vec![false; inst.queue.len()];
        for &i in &positions {
            taken[i] = true;
        }
        let mut keep = 0usize;
        for (i, &gone) in taken.iter().enumerate() {
            if !gone {
                inst.queue.swap(keep, i);
                keep += 1;
            }
        }
        inst.queue.truncate(keep);
        inst.free = done;
        inst.plan = None;
        inst.summary.batches += 1;
        inst.summary.completed += k as u64;
        if let Some(buffer) = inst.buffer.as_ref() {
            inst.summary.residency = *buffer.stats();
        }
        let seq = self.launched;
        self.launched += 1;
        Some(PlannedBatch { seq, instance: idx, model, start, done, members })
    }

    /// Tears the core down into its per-instance summaries (in instance
    /// order).
    pub(crate) fn finish(self) -> Vec<InstanceSummary> {
        self.instances.into_iter().map(|inst| inst.summary).collect()
    }
}

/// Drives `core` over an **open-loop** arrival stream (pre-stamped `(id,
/// request)` pairs in non-decreasing arrival order), surfacing every
/// decision to `sink` in the canonical order: an arrival is admitted
/// before any batch launching at or after its arrival time — exactly the
/// event interleaving of the discrete-event simulation. Returns `false`
/// if `sink` asked to stop early (its return value), `true` on a full
/// drain.
pub(crate) fn drive_open_loop<I>(
    core: &mut ClusterCore<'_>,
    arrivals: I,
    sink: &mut dyn FnMut(SchedEvent) -> bool,
) -> bool
where
    I: IntoIterator<Item = (usize, Request)>,
{
    let mut it = arrivals.into_iter();
    let mut pending = it.next();
    loop {
        let next_launch = core.next_launch();
        match (pending, next_launch) {
            (None, None) => return true,
            // Arrivals landing before (or exactly when) the next batch
            // closes are admitted first — they may fill a batch and pull
            // its start in.
            (Some((id, req)), nl) if nl.is_none_or(|(start, _)| req.arrival <= start) => {
                if !core.admit(id, req) && !sink(SchedEvent::Rejected(id, req)) {
                    return false;
                }
                pending = it.next();
            }
            (_, Some(_)) => {
                let batch = core.launch_next().expect("a launch is pending");
                if !sink(SchedEvent::Launched(batch)) {
                    return false;
                }
            }
            (Some(_), None) => unreachable!("the guard admits arrivals when no launch pends"),
        }
    }
}

/// Drives `core` over a **closed-loop** workload: `concurrency` clients
/// each keep exactly one request in flight (model 0, no deadlines),
/// submitting the next the moment the previous completes, until
/// `requests` total have been issued. The caller's spec must disable the
/// queue cap (closed loops are bounded by their concurrency, not the
/// queue). Returns as [`drive_open_loop`].
pub(crate) fn drive_closed_loop(
    core: &mut ClusterCore<'_>,
    requests: usize,
    concurrency: usize,
    sink: &mut dyn FnMut(SchedEvent) -> bool,
) -> bool {
    // All future arrivals, kept sorted: completions append arrivals with
    // time >= every queued entry, so a plain FIFO stays sorted.
    let mut issued = concurrency.min(requests);
    let mut pending: VecDeque<u64> = std::iter::repeat_n(0u64, issued).collect();
    let mut next_id = 0usize;
    loop {
        let next_launch = core.next_launch();
        match (pending.front().copied(), next_launch) {
            (None, None) => return true,
            (Some(arrival), nl) if nl.is_none_or(|(start, _)| arrival <= start) => {
                let admitted = core.admit(next_id, Request { model: 0, arrival, deadline: None });
                debug_assert!(admitted, "closed-loop queues are never capped");
                pending.pop_front();
                next_id += 1;
            }
            (_, Some(_)) => {
                let batch = core.launch_next().expect("a launch is pending");
                // Each completed request unblocks its client, which
                // immediately submits the next request.
                for _ in 0..batch.members.len() {
                    if issued < requests {
                        pending.push_back(batch.done);
                        issued += 1;
                    }
                }
                if !sink(SchedEvent::Launched(batch)) {
                    return false;
                }
            }
            (Some(_), None) => unreachable!("the guard admits arrivals when no launch pends"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::router::RouterPolicy;
    use crate::queue::BatchPolicy;

    fn svc(exec: &[u64]) -> ModelService {
        ModelService {
            name: "m".into(),
            streamed: exec.to_vec(),
            resident: exec.to_vec(),
            footprint_bytes: 0,
            switch_cycles: 0,
        }
    }

    fn spec(max_batch: usize, max_wait: u64, cap: usize) -> ClusterSpec {
        ClusterSpec {
            instances: 1,
            router: RouterPolicy::RoundRobin,
            policy: BatchPolicy { max_batch, max_wait, queue_cap: cap },
            buffer_bytes: None,
        }
    }

    #[test]
    fn open_loop_emits_batches_in_launch_order_with_seq() {
        let services = [svc(&[10, 12, 14, 16])];
        let sp = spec(4, 0, 8);
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        let arrivals = [0u64, 0, 0, 0, 0, 0];
        let mut batches = Vec::new();
        let done = drive_open_loop(
            &mut core,
            arrivals
                .iter()
                .enumerate()
                .map(|(i, &a)| (i, Request { model: 0, arrival: a, deadline: None })),
            &mut |e| {
                if let SchedEvent::Launched(b) = e {
                    batches.push(b);
                }
                true
            },
        );
        assert!(done);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].seq, 0);
        assert_eq!(batches[1].seq, 1);
        assert_eq!(batches[0].members.len(), 4);
        assert_eq!(batches[1].members.len(), 2);
        assert_eq!(batches[0].done, 16);
        assert_eq!(batches[1].done, 16 + 12);
        let summaries = core.finish();
        assert_eq!(summaries[0].batches, 2);
        assert_eq!(summaries[0].completed, 6);
    }

    #[test]
    fn sink_can_stop_the_drive_early() {
        let services = [svc(&[10])];
        let sp = spec(1, 0, 8);
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        let mut seen = 0;
        let done = drive_open_loop(
            &mut core,
            (0..5).map(|i| (i, Request { model: 0, arrival: 0, deadline: None })),
            &mut |_| {
                seen += 1;
                seen < 2
            },
        );
        assert!(!done, "drive reports the early stop");
        assert_eq!(seen, 2);
    }

    #[test]
    fn memoized_plans_match_recomputation_across_admissions() {
        // Interleave admissions and launches; the memoized plan must never
        // go stale (same trace as a burst through a small batch cap).
        let services = [svc(&[7, 9])];
        let sp = spec(2, 5, 16);
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        let mut events = Vec::new();
        drive_open_loop(
            &mut core,
            [0u64, 1, 2, 30, 31, 60]
                .iter()
                .enumerate()
                .map(|(i, &a)| (i, Request { model: 0, arrival: a, deadline: None })),
            &mut |e| {
                events.push(e);
                true
            },
        );
        let batches: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Launched(b) => Some(b.members.len()),
                SchedEvent::Rejected(..) => None,
            })
            .collect();
        assert_eq!(batches.iter().sum::<usize>(), 6, "every request served");
    }
}
