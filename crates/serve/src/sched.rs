//! The shared scheduling core of the serving front.
//!
//! Both serving runtimes — the deterministic discrete-event simulation
//! ([`crate::queue`], [`crate::cluster::sim`]) and the concurrent staged
//! pipeline ([`crate::staged`]) — make their admission, routing, batch
//! formation, residency, and failure-injection decisions through the one
//! state machine here, `ClusterCore`. The sim drives it from a serial
//! loop; the staged runtime drives it from its scheduling stage. Because
//! every decision is a pure function of the arrival order, the service
//! tables, and the scripted fault plan (never of wall-clock time), the
//! two runtimes produce **identical per-request outcome sets** by
//! construction — the determinism contract that lets the sim act as the
//! staged runtime's oracle (and that the property tests in
//! `tests/staged.rs` and `tests/fault.rs` enforce end to end).
//!
//! The core advances a *virtual* clock: `ClusterCore::admit` routes one
//! arrival into an instance queue (or bounces it off the cap),
//! `ClusterCore::launch_next` forms and launches the earliest pending
//! batch, returning a [`PlannedBatch`] whose completion time is already
//! known (execution latencies come from pre-computed batch tables), and
//! `ClusterCore::apply_next_fault` fires the next scripted membership
//! change ([`crate::fault::FaultPlan`]): a kill re-routes the dead
//! instance's in-flight and queued requests with their original arrival
//! and deadline intact, a restart brings the instance back empty with a
//! cold weight buffer. The drivers `drive_open_loop` and
//! `drive_closed_loop` encode the one legal interleaving of those
//! operations: a due fault fires before anything else at its cycle, and
//! an arrival is admitted before any batch that would launch at or after
//! its arrival time.

use std::collections::VecDeque;

use crate::cluster::router::InstanceView;
use crate::cluster::sim::{ClusterSpec, InstanceSummary, ModelService};
use crate::fault::{ClusterEvent, ClusterEventKind, FaultAction};
use crate::workload::Request;
use crate::Result;
use se_hw::residency::{Admission, TierAdmission, TieredStore, WeightBuffer};
use se_obs::{Event, EventKind, EventSink};

/// A queued request plus its issue order (the final EDF tie-breaker and
/// the identity the determinism contract is stated over).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Queued {
    /// Arrival sequence number (stamped by the driver in arrival order,
    /// counting every arrival including later-rejected ones).
    pub id: usize,
    /// The request itself.
    pub req: Request,
    /// The cycle the request joined its *current* queue: the arrival for
    /// a first admission, the kill cycle for a re-routed victim (whose
    /// original `req.arrival` — and so its latency and deadline clock —
    /// is untouched). Batch formation cannot start a batch before its
    /// members are physically enqueued.
    pub enqueued_at: u64,
}

impl Queued {
    /// EDF ordering key: earliest deadline first (`None` = best effort,
    /// after every deadline), then arrival, then issue order. With no
    /// deadlines anywhere this is exactly FIFO.
    fn key(&self) -> (u64, u64, usize) {
        (self.req.deadline.unwrap_or(u64::MAX), self.req.arrival, self.id)
    }
}

/// One formed-and-launched batch: everything downstream accounting (or a
/// real execution stage) needs, with the virtual completion time already
/// decided. Batches are emitted in launch order (`seq` ascending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedBatch {
    /// Launch sequence number across the cluster (0-based, ascending).
    pub seq: u64,
    /// The instance the batch runs on.
    pub instance: usize,
    /// The batch's (single) model.
    pub model: usize,
    /// Virtual launch cycle.
    pub start: u64,
    /// Virtual completion cycle (`start` + the charged execution time,
    /// including any serialized weight-switch fetch).
    pub done: u64,
    /// Batch members in EDF order — the order completions are recorded.
    pub members: Vec<Queued>,
    /// `Some(cycle)` when a scripted kill of the instance fires before
    /// `done`: the batch fails at that cycle, none of its members
    /// complete, and they re-enter the router when the kill is applied.
    /// Always `None` without failure injection.
    pub killed_at: Option<u64>,
}

/// What finally happened to one request — the unit of the determinism
/// contract between the sim and staged runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Bounced off a full instance queue at arrival (or arrived while no
    /// instance was accepting).
    Rejected,
    /// Served to completion.
    Served {
        /// Launch sequence number of the batch that served it.
        batch: u64,
        /// Instance the batch ran on.
        instance: usize,
        /// Virtual completion cycle.
        done: u64,
        /// Whether completion overran the request's deadline.
        missed: bool,
    },
    /// Admitted, then caught by an instance kill and not re-routable —
    /// every live queue was full, or nothing was accepting. A terminal
    /// outcome: the request is charged, never silently dropped.
    Lost {
        /// The kill cycle that orphaned it.
        at: u64,
    },
}

/// Per-request outcome record, ordered by request id in a
/// [`crate::cluster::sim::ClusterRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Arrival sequence number.
    pub id: usize,
    /// Model the request targeted.
    pub model: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// What happened.
    pub disposition: Disposition,
}

/// One scheduling decision surfaced to a driver's sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedEvent {
    /// An arrival bounced off a full instance queue.
    Rejected(usize, Request),
    /// A batch was formed and launched.
    Launched(PlannedBatch),
    /// A kill victim could not be re-routed (id, request, kill cycle) —
    /// the terminal [`Disposition::Lost`] outcome.
    Lost(usize, Request, u64),
}

/// One instance's weight-residency model: nothing (every batch streams),
/// the legacy flat buffer (misses charge the service's pre-computed
/// `switch_cycles`), or the tiered store (every admission charges its
/// real tier-walk cost).
enum Residency {
    None,
    Buffer(WeightBuffer),
    Tiered(TieredStore),
}

impl Residency {
    fn fresh(spec: &ClusterSpec) -> Residency {
        match (&spec.tiers, spec.buffer_bytes) {
            (Some(tiers), _) => Residency::Tiered(TieredStore::new(tiers.clone())),
            (None, Some(bytes)) => Residency::Buffer(WeightBuffer::new(bytes)),
            (None, None) => Residency::None,
        }
    }

    /// What routing sees as "resident": top-tier residency only — a model
    /// parked in a lower tier still pays a promotion walk.
    fn is_resident(&self, model: usize) -> bool {
        match self {
            Residency::None => false,
            Residency::Buffer(buffer) => buffer.is_resident(model),
            Residency::Tiered(store) => store.is_resident_top(model),
        }
    }

    fn cold_restart(&mut self) {
        match self {
            Residency::None => {}
            Residency::Buffer(buffer) => buffer.cold_restart(),
            Residency::Tiered(store) => store.cold_restart(),
        }
    }

    /// [`Residency::cold_restart`] narrating the purge: every entry the
    /// power cycle dropped comes back as a `dropped` tier-demotion event.
    fn cold_restart_observed(&mut self, instance: usize) -> Vec<EventKind> {
        match self {
            Residency::None => Vec::new(),
            Residency::Buffer(buffer) => buffer.cold_restart_observed(instance),
            Residency::Tiered(store) => store.cold_restart_observed(instance),
        }
    }
}

/// One instance's private state, including its memoized launch plan.
struct Instance {
    queue: Vec<Queued>,
    free: u64,
    residency: Residency,
    summary: InstanceSummary,
    /// `false` between a kill and the matching restart: the instance
    /// neither launches nor accepts.
    up: bool,
    /// `false` when killed *or* draining (an autoscaled instance told to
    /// stop accepting; it still launches until its queue empties).
    accepting: bool,
    /// Spawned by autoscale (drain only ever retires these).
    dynamic: bool,
    /// Members of an in-flight batch doomed by a pending kill, parked
    /// here between the launch and the kill event that re-routes them.
    doomed: Vec<Queued>,
    /// Memoized next-launch plan: `None` = stale (queue or `free`
    /// changed), `Some(None)` = empty queue, `Some(Some((members in EDF
    /// order as queue positions, start)))` otherwise.
    plan: Option<Option<(Vec<usize>, u64)>>,
}

impl Instance {
    /// A fresh (empty, cold) instance, free from `free`.
    fn fresh(spec: &ClusterSpec, free: u64, dynamic: bool) -> Instance {
        Instance {
            queue: Vec::new(),
            free,
            residency: Residency::fresh(spec),
            summary: InstanceSummary::default(),
            up: true,
            accepting: true,
            dynamic,
            doomed: Vec::new(),
            plan: Some(None),
        }
    }

    /// The batch this instance would launch next: member positions (EDF
    /// order) and the earliest start time. Memoized until the queue or
    /// server availability changes.
    fn plan(&mut self, spec: &ClusterSpec) -> Option<&(Vec<usize>, u64)> {
        if self.plan.is_none() {
            self.plan = Some(self.compute_plan(spec));
        }
        match &self.plan {
            Some(plan) => plan.as_ref(),
            None => None,
        }
    }

    fn compute_plan(&self, spec: &ClusterSpec) -> Option<(Vec<usize>, u64)> {
        if self.queue.is_empty() {
            return None;
        }
        let policy = &spec.policy;
        // Head = EDF-minimum over the whole queue (O(Q)); only the head
        // model's requests — the batch candidates — need sorting.
        let head_pos = (0..self.queue.len()).min_by_key(|&i| self.queue[i].key())?;
        let head = &self.queue[head_pos];
        let mut members: Vec<usize> =
            (0..self.queue.len()).filter(|&i| self.queue[i].req.model == head.req.model).collect();
        members.sort_by_key(|&i| self.queue[i].key());
        members.truncate(policy.max_batch);
        let start = if members.len() >= policy.max_batch {
            // Full batch: ready as soon as its last member is enqueued
            // (= its arrival, or the kill cycle for a re-routed victim).
            let last_enqueued =
                members.iter().map(|&i| self.queue[i].enqueued_at).max().unwrap_or(0);
            self.free.max(last_enqueued)
        } else {
            // Short batch: wait out the head-of-line request's patience.
            self.free.max(head.enqueued_at.saturating_add(policy.max_wait))
        };
        Some((members, start))
    }
}

/// What tearing a core down yields: the per-instance summaries (instance
/// order, spawned instances appended) plus the membership events that
/// fired — produced by the scheduler itself, never the event sink, so
/// both runtimes report identical churn by construction.
pub(crate) struct CoreFinish {
    /// Per-instance outcome summaries.
    pub(crate) summaries: Vec<InstanceSummary>,
    /// Membership changes (kills, restarts, spawns, drains) in the order
    /// they fired.
    pub(crate) events: Vec<ClusterEvent>,
}

/// The incremental cluster scheduler: instance queues, weight buffers,
/// batch formation, and scripted churn, advanced one admission, launch,
/// or fault at a time. Decisions depend only on the admission order and
/// the spec, so any driver that preserves the canonical interleaving
/// (see [`drive_open_loop`]) reproduces the discrete-event simulation
/// exactly.
pub(crate) struct ClusterCore<'a, 'o> {
    services: &'a [ModelService],
    spec: &'a ClusterSpec,
    instances: Vec<Instance>,
    launched: u64,
    /// Next unapplied event in `spec.faults.events`.
    fault_cursor: usize,
    events: Vec<ClusterEvent>,
    /// Observability sink (`None` = tracing off: the observed paths are
    /// skipped entirely). The core runs serially in both runtimes — the
    /// sim's driver loop and the staged runtime's scheduler thread — so
    /// the emitted event stream is byte-identical across runtimes and
    /// worker counts by construction. The sink borrow has its own
    /// lifetime: it outlives the core without pinning the services
    /// borrow (`&mut dyn` is invariant, so sharing `'a` would force the
    /// caller's locals and sink to live equally long).
    obs: Option<&'o mut dyn EventSink>,
}

impl<'a, 'o> ClusterCore<'a, 'o> {
    /// Builds a core over validated services and spec.
    ///
    /// # Errors
    ///
    /// Rejects an invalid spec (see [`ClusterSpec::validate`]).
    pub(crate) fn new(services: &'a [ModelService], spec: &'a ClusterSpec) -> Result<Self> {
        spec.validate(services)?;
        let instances = (0..spec.instances).map(|_| Instance::fresh(spec, 0, false)).collect();
        Ok(ClusterCore {
            services,
            spec,
            instances,
            launched: 0,
            fault_cursor: 0,
            events: Vec::new(),
            obs: None,
        })
    }

    /// Builds a core that narrates its decisions into `obs` (pass `None`
    /// — or a disabled sink upstream — for the zero-cost plain path).
    pub(crate) fn with_obs(
        services: &'a [ModelService],
        spec: &'a ClusterSpec,
        obs: Option<&'o mut dyn EventSink>,
    ) -> Result<Self> {
        let mut core = ClusterCore::new(services, spec)?;
        core.obs = obs;
        Ok(core)
    }

    /// Records one observability event (no-op when tracing is off).
    fn emit(&mut self, at: u64, kind: EventKind) {
        if let Some(sink) = self.obs.as_mut() {
            sink.record(Event { at, kind });
        }
    }

    /// The cycle of the next unapplied scripted fault, if any.
    pub(crate) fn next_fault_at(&self) -> Option<u64> {
        self.spec.faults.events.get(self.fault_cursor).map(|e| e.at)
    }

    /// The earliest pending launch across the cluster as `(start,
    /// instance)` — ties break toward the lowest instance index — or
    /// `None` when every live queue is empty. Killed instances never
    /// launch; draining ones still flush their queues.
    pub(crate) fn next_launch(&mut self) -> Option<(u64, usize)> {
        let spec = self.spec;
        self.instances
            .iter_mut()
            .enumerate()
            .filter(|(_, inst)| inst.up)
            .filter_map(|(i, inst)| inst.plan(spec).map(|&(_, start)| (start, i)))
            .min()
    }

    /// Routes one arrival: snapshot the instances, ask the policy, join or
    /// bounce off the bounded queue. Returns `false` when rejected (full
    /// target queue, or no accepting instance).
    pub(crate) fn admit(&mut self, id: usize, req: Request) -> bool {
        let admitted = self.enqueue(Queued { id, req, enqueued_at: req.arrival }, req.arrival);
        if !admitted {
            self.emit(req.arrival, EventKind::Rejected { id, model: req.model });
        }
        admitted
    }

    /// The shared admission path of first arrivals and kill re-routes:
    /// run the autoscale spawn check, route over the accepting
    /// instances, join or bounce. `now` is the cycle the request joins
    /// the queue at (arrival or kill cycle).
    fn enqueue(&mut self, mut item: Queued, now: u64) -> bool {
        self.autoscale_spawn(now);
        let views = self.views(item.req.model);
        let Some(target) = self.spec.router.route(item.id as u64, item.req.model, &views) else {
            return false;
        };
        if self.instances[target].queue.len() >= self.spec.policy.queue_cap {
            return false;
        }
        item.enqueued_at = now;
        self.instances[target].queue.push(item);
        self.instances[target].plan = None;
        if self.obs.is_some() {
            let depth = self.instances[target].queue.len();
            self.emit(
                now,
                EventKind::Admitted { id: item.id, model: item.req.model, instance: target },
            );
            self.emit(now, EventKind::QueueDepth { instance: target, depth });
        }
        true
    }

    fn views(&self, model: usize) -> Vec<InstanceView> {
        self.instances
            .iter()
            .map(|inst| InstanceView {
                queued: inst.queue.len(),
                resident: inst.residency.is_resident(model),
                accepting: inst.accepting,
            })
            .collect()
    }

    /// The first unapplied kill of `instance` strictly before `done`, if
    /// any — the scripted fate of a batch completing at `done`. (Only
    /// the instance's *next* event can be a kill while it is up, and
    /// every unapplied event fires after the batch's start, so a single
    /// lookup decides.)
    fn next_kill_before(&self, instance: usize, done: u64) -> Option<u64> {
        self.spec.faults.events[self.fault_cursor..]
            .iter()
            .find(|e| e.instance == instance)
            .filter(|e| e.action == FaultAction::Kill && e.at < done)
            .map(|e| e.at)
    }

    /// Fires the next scripted fault. A kill takes its instance down and
    /// re-routes the victims (doomed in-flight members first joined by
    /// the waiting queue, in ascending request id) through the router at
    /// the kill cycle; victims that cannot be placed come back as
    /// [`SchedEvent::Lost`] for the caller's sink. A restart brings the
    /// instance back empty, free from the restart cycle, with a cold
    /// weight buffer. No-op when no fault is pending.
    pub(crate) fn apply_next_fault(&mut self) -> Vec<SchedEvent> {
        let Some(&event) = self.spec.faults.events.get(self.fault_cursor) else {
            return Vec::new();
        };
        self.fault_cursor += 1;
        let mut out = Vec::new();
        match event.action {
            FaultAction::Kill => {
                let (mut victims, in_flight) = {
                    let inst = &mut self.instances[event.instance];
                    inst.up = false;
                    inst.accepting = false;
                    inst.plan = Some(None);
                    let mut victims = std::mem::take(&mut inst.doomed);
                    let in_flight = victims.len() as u64;
                    victims.append(&mut inst.queue);
                    (victims, in_flight)
                };
                victims.sort_unstable_by_key(|q| q.id);
                let mut rerouted = 0u64;
                let mut lost = 0u64;
                for victim in victims {
                    if self.enqueue(victim, event.at) {
                        rerouted += 1;
                    } else {
                        lost += 1;
                        out.push(SchedEvent::Lost(victim.id, victim.req, event.at));
                        self.emit(
                            event.at,
                            EventKind::Lost { id: victim.id, model: victim.req.model },
                        );
                    }
                }
                // The totals follow the per-victim re-route/loss records.
                self.emit(
                    event.at,
                    EventKind::InstanceKilled {
                        instance: event.instance,
                        in_flight,
                        rerouted,
                        lost,
                    },
                );
                self.events.push(ClusterEvent {
                    at: event.at,
                    instance: event.instance,
                    kind: ClusterEventKind::Kill { in_flight, rerouted, lost },
                });
            }
            FaultAction::Restart => {
                let obs_on = self.obs.is_some();
                let inst = &mut self.instances[event.instance];
                inst.up = true;
                inst.accepting = true;
                inst.free = event.at;
                inst.plan = Some(None);
                let purged = if obs_on {
                    inst.residency.cold_restart_observed(event.instance)
                } else {
                    inst.residency.cold_restart();
                    Vec::new()
                };
                self.emit(event.at, EventKind::InstanceRestarted { instance: event.instance });
                // The purge follows the restart it belongs to: the trace
                // reads "instance came back, and these weights were lost".
                for kind in purged {
                    self.emit(event.at, kind);
                }
                self.events.push(ClusterEvent {
                    at: event.at,
                    instance: event.instance,
                    kind: ClusterEventKind::Restart,
                });
            }
        }
        out
    }

    /// Spawns a fresh instance when the accepting queues exceed the
    /// autoscale high-water mark (checked at every admission), up to
    /// twice the base cluster size.
    fn autoscale_spawn(&mut self, now: u64) {
        let Some(auto) = self.spec.faults.autoscale else { return };
        if self.instances.len() >= 2 * self.spec.instances {
            return;
        }
        let accepting = self.instances.iter().filter(|i| i.accepting).count() as u64;
        let queued: u64 =
            self.instances.iter().filter(|i| i.accepting).map(|i| i.queue.len() as u64).sum();
        if queued > auto.spawn_above.saturating_mul(accepting) {
            let instance = self.instances.len();
            self.instances.push(Instance::fresh(self.spec, now, true));
            self.emit(now, EventKind::InstanceSpawned { instance });
            self.events.push(ClusterEvent { at: now, instance, kind: ClusterEventKind::Spawn });
        }
    }

    /// Retires the highest-indexed accepting autoscaled instance when the
    /// accepting queues fall under the low-water mark (checked at every
    /// launch). The drained instance flushes its queue and idles; base
    /// instances are never drained.
    fn autoscale_drain(&mut self, now: u64) {
        let Some(auto) = self.spec.faults.autoscale else { return };
        let accepting = self.instances.iter().filter(|i| i.accepting).count() as u64;
        let queued: u64 =
            self.instances.iter().filter(|i| i.accepting).map(|i| i.queue.len() as u64).sum();
        if queued < auto.drain_below.saturating_mul(accepting) {
            if let Some(instance) = self.instances.iter().rposition(|i| i.dynamic && i.accepting) {
                self.instances[instance].accepting = false;
                self.emit(now, EventKind::InstanceDraining { instance });
                self.events.push(ClusterEvent { at: now, instance, kind: ClusterEventKind::Drain });
            }
        }
    }

    /// Forms and launches the earliest pending batch: admits the model's
    /// weights, charges the batch (plus any switch fetch), removes the
    /// members from their queue, and returns the launched batch. A batch
    /// overlapping a scripted kill of its instance launches with
    /// `killed_at` set and its members parked for re-routing instead of
    /// completing. `None` when every live queue is empty.
    pub(crate) fn launch_next(&mut self) -> Option<PlannedBatch> {
        let (_, idx) = self.next_launch()?;
        let spec = self.spec;
        let services = self.services;
        let obs_on = self.obs.is_some();
        // Tier events generated inside the store's admission (demotions
        // are only visible there); replayed into the sink once the
        // instance borrow ends.
        let mut tier_notes: Vec<EventKind> = Vec::new();
        let (positions, start) = self.instances[idx].plan(spec)?.clone();
        let inst = &mut self.instances[idx];
        let k = positions.len();
        debug_assert!(k >= 1, "launch requires a non-empty batch");
        let members: Vec<Queued> = positions.iter().map(|&i| inst.queue[i]).collect();
        let model = members.first()?.req.model;
        let svc = services.get(model)?;
        let exec = match &mut inst.residency {
            Residency::None => svc.streamed[k - 1],
            Residency::Buffer(buffer) => {
                let admission = if obs_on {
                    let (admission, notes) = buffer.admit_observed(model, svc.footprint_bytes, idx);
                    tier_notes = notes;
                    admission
                } else {
                    buffer.admit(model, svc.footprint_bytes)
                };
                match admission {
                    Admission::Resident => svc.resident[k - 1],
                    Admission::Fetched { .. } => svc.switch_cycles + svc.resident[k - 1],
                    Admission::Streamed => svc.streamed[k - 1],
                }
            }
            // The tiered store charges the real serialized walk through
            // every crossed tier instead of the flat `switch_cycles`; a
            // stream pays its deep haul on top of the per-batch-fetch
            // table (whose fetch models the final staging-tier crossing).
            Residency::Tiered(store) => {
                let admission = if obs_on {
                    let (admission, notes) = store.admit_observed(model, svc.footprint_bytes, idx);
                    tier_notes = notes;
                    admission
                } else {
                    store.admit(model, svc.footprint_bytes)
                };
                match admission {
                    TierAdmission::Hit => svc.resident[k - 1],
                    walk @ (TierAdmission::Promoted { .. } | TierAdmission::Cold { .. }) => {
                        walk.cycles() + svc.resident[k - 1]
                    }
                    walk @ TierAdmission::Streamed { .. } => walk.cycles() + svc.streamed[k - 1],
                }
            }
        };
        let done = start.saturating_add(exec);
        // Compact the queue, preserving the keepers' relative order.
        let mut taken = vec![false; inst.queue.len()];
        for &i in &positions {
            taken[i] = true;
        }
        let mut keep = 0usize;
        for (i, &gone) in taken.iter().enumerate() {
            if !gone {
                inst.queue.swap(keep, i);
                keep += 1;
            }
        }
        inst.queue.truncate(keep);
        inst.free = done;
        inst.plan = None;
        inst.summary.batches += 1;
        match &inst.residency {
            Residency::None => {}
            Residency::Buffer(buffer) => inst.summary.residency = *buffer.stats(),
            Residency::Tiered(store) => {
                inst.summary.residency = *store.summary();
                inst.summary.tier_traffic = store.tier_stats().to_vec();
            }
        }
        let killed_at = self.next_kill_before(idx, done);
        let inst = &mut self.instances[idx];
        if killed_at.is_some() {
            // The kill fires before this batch completes: its members
            // never finish here. Park them for the kill to re-route.
            debug_assert!(inst.doomed.is_empty(), "one in-flight batch per kill");
            inst.doomed.extend(members.iter().copied());
        } else {
            inst.summary.completed += k as u64;
        }
        let seq = self.launched;
        self.launched += 1;
        if obs_on {
            for kind in std::mem::take(&mut tier_notes) {
                self.emit(start, kind);
            }
            self.emit(start, EventKind::BatchFormed { seq, instance: idx, model, size: k });
            self.emit(start, EventKind::BatchLaunched { seq, instance: idx, model, size: k, done });
            if let Some(at) = killed_at {
                self.emit(at, EventKind::BatchKilled { seq, instance: idx });
            } else {
                for m in &members {
                    self.emit(
                        done,
                        EventKind::Served {
                            id: m.id,
                            model,
                            instance: idx,
                            batch: seq,
                            enqueued: m.enqueued_at,
                            latency: done.saturating_sub(m.req.arrival),
                            missed: m.req.deadline.is_some_and(|d| done > d),
                        },
                    );
                }
                self.emit(done, EventKind::BatchCompleted { seq, instance: idx, size: k });
            }
        }
        self.autoscale_drain(start);
        Some(PlannedBatch { seq, instance: idx, model, start, done, members, killed_at })
    }

    /// Tears the core down into its per-instance summaries and the
    /// membership event log.
    pub(crate) fn finish(self) -> CoreFinish {
        CoreFinish {
            summaries: self.instances.into_iter().map(|inst| inst.summary).collect(),
            events: self.events,
        }
    }
}

/// Drives `core` over an **open-loop** arrival stream (pre-stamped `(id,
/// request)` pairs in non-decreasing arrival order), surfacing every
/// decision to `sink` in the canonical order: a scripted fault due at or
/// before the next arrival and the next launch fires first (so a kill
/// pre-empts a batch launching at the kill cycle, and a restart is
/// visible to a same-cycle arrival); otherwise an arrival is admitted
/// before any batch launching at or after its arrival time — exactly the
/// event interleaving of the discrete-event simulation. Returns `false`
/// if `sink` asked to stop early (its return value), `true` on a full
/// drain (which includes firing any faults scripted after the last
/// launch).
pub(crate) fn drive_open_loop<I>(
    core: &mut ClusterCore<'_, '_>,
    arrivals: I,
    sink: &mut dyn FnMut(SchedEvent) -> bool,
) -> bool
where
    I: IntoIterator<Item = (usize, Request)>,
{
    let mut it = arrivals.into_iter();
    let mut pending = it.next();
    loop {
        let next_launch = core.next_launch();
        if let Some(fault_at) = core.next_fault_at() {
            let beats_arrival = pending.is_none_or(|(_, req)| fault_at <= req.arrival);
            let beats_launch = next_launch.is_none_or(|(start, _)| fault_at <= start);
            if beats_arrival && beats_launch {
                for event in core.apply_next_fault() {
                    if !sink(event) {
                        return false;
                    }
                }
                continue;
            }
        }
        match (pending, next_launch) {
            (None, None) => return true,
            // Arrivals landing before (or exactly when) the next batch
            // closes are admitted first — they may fill a batch and pull
            // its start in.
            (Some((id, req)), nl) if nl.is_none_or(|(start, _)| req.arrival <= start) => {
                if !core.admit(id, req) && !sink(SchedEvent::Rejected(id, req)) {
                    return false;
                }
                pending = it.next();
            }
            (_, Some(_)) => {
                if let Some(batch) = core.launch_next() {
                    if !sink(SchedEvent::Launched(batch)) {
                        return false;
                    }
                }
            }
            (Some(_), None) => unreachable!("the guard admits arrivals when no launch pends"),
        }
    }
}

/// Drives `core` over a **closed-loop** workload: `concurrency` clients
/// each keep exactly one request in flight (model 0, no deadlines),
/// submitting the next the moment the previous completes, until
/// `requests` total have been issued. The caller's spec must disable the
/// queue cap (closed loops are bounded by their concurrency, not the
/// queue) and must not script faults — closed-loop arrivals are derived
/// from completions, which failure injection would sever. Returns as
/// [`drive_open_loop`].
pub(crate) fn drive_closed_loop(
    core: &mut ClusterCore<'_, '_>,
    requests: usize,
    concurrency: usize,
    sink: &mut dyn FnMut(SchedEvent) -> bool,
) -> bool {
    debug_assert!(core.spec.faults.is_empty(), "closed-loop workloads do not support fault plans");
    // All future arrivals, kept sorted: completions append arrivals with
    // time >= every queued entry, so a plain FIFO stays sorted.
    let mut issued = concurrency.min(requests);
    let mut pending: VecDeque<u64> = std::iter::repeat_n(0u64, issued).collect();
    let mut next_id = 0usize;
    loop {
        let next_launch = core.next_launch();
        match (pending.front().copied(), next_launch) {
            (None, None) => return true,
            (Some(arrival), nl) if nl.is_none_or(|(start, _)| arrival <= start) => {
                let admitted = core.admit(next_id, Request { model: 0, arrival, deadline: None });
                debug_assert!(admitted, "closed-loop queues are never capped");
                pending.pop_front();
                next_id += 1;
            }
            (_, Some(_)) => {
                let Some(batch) = core.launch_next() else {
                    continue;
                };
                // Each completed request unblocks its client, which
                // immediately submits the next request.
                for _ in 0..batch.members.len() {
                    if issued < requests {
                        pending.push_back(batch.done);
                        issued += 1;
                    }
                }
                if !sink(SchedEvent::Launched(batch)) {
                    return false;
                }
            }
            (Some(_), None) => unreachable!("the guard admits arrivals when no launch pends"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::router::RouterPolicy;
    use crate::fault::{AutoscalePolicy, FaultEvent, FaultPlan};
    use crate::queue::BatchPolicy;

    fn svc(exec: &[u64]) -> ModelService {
        ModelService {
            name: "m".into(),
            streamed: exec.to_vec(),
            resident: exec.to_vec(),
            footprint_bytes: 0,
            switch_cycles: 0,
        }
    }

    fn spec(max_batch: usize, max_wait: u64, cap: usize) -> ClusterSpec {
        ClusterSpec {
            instances: 1,
            router: RouterPolicy::RoundRobin,
            policy: BatchPolicy { max_batch, max_wait, queue_cap: cap },
            buffer_bytes: None,
            tiers: None,
            faults: FaultPlan::default(),
        }
    }

    fn drive(core: &mut ClusterCore<'_, '_>, arrivals: &[u64]) -> Vec<SchedEvent> {
        let mut events = Vec::new();
        let done = drive_open_loop(
            core,
            arrivals
                .iter()
                .enumerate()
                .map(|(i, &a)| (i, Request { model: 0, arrival: a, deadline: None })),
            &mut |e| {
                events.push(e);
                true
            },
        );
        assert!(done);
        events
    }

    #[test]
    fn open_loop_emits_batches_in_launch_order_with_seq() {
        let services = [svc(&[10, 12, 14, 16])];
        let sp = spec(4, 0, 8);
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        let events = drive(&mut core, &[0, 0, 0, 0, 0, 0]);
        let batches: Vec<_> = events
            .into_iter()
            .filter_map(|e| if let SchedEvent::Launched(b) = e { Some(b) } else { None })
            .collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].seq, 0);
        assert_eq!(batches[1].seq, 1);
        assert_eq!(batches[0].members.len(), 4);
        assert_eq!(batches[1].members.len(), 2);
        assert_eq!(batches[0].done, 16);
        assert_eq!(batches[1].done, 16 + 12);
        assert_eq!(batches[0].killed_at, None);
        let fin = core.finish();
        assert_eq!(fin.summaries[0].batches, 2);
        assert_eq!(fin.summaries[0].completed, 6);
        assert!(fin.events.is_empty());
    }

    #[test]
    fn sink_can_stop_the_drive_early() {
        let services = [svc(&[10])];
        let sp = spec(1, 0, 8);
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        let mut seen = 0;
        let done = drive_open_loop(
            &mut core,
            (0..5).map(|i| (i, Request { model: 0, arrival: 0, deadline: None })),
            &mut |_| {
                seen += 1;
                seen < 2
            },
        );
        assert!(!done, "drive reports the early stop");
        assert_eq!(seen, 2);
    }

    #[test]
    fn memoized_plans_match_recomputation_across_admissions() {
        // Interleave admissions and launches; the memoized plan must never
        // go stale (same trace as a burst through a small batch cap).
        let services = [svc(&[7, 9])];
        let sp = spec(2, 5, 16);
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        let events = drive(&mut core, &[0, 1, 2, 30, 31, 60]);
        let served: usize = events
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Launched(b) => Some(b.members.len()),
                _ => None,
            })
            .sum();
        assert_eq!(served, 6, "every request served");
    }

    #[test]
    fn kill_fails_the_in_flight_batch_and_reroutes_with_original_arrival() {
        // Two instances, round-robin. A burst at 0 launches a batch on
        // each; instance 0 dies at cycle 5, mid-flight. Its members (and
        // nothing of instance 1's) must re-route to instance 1 with their
        // original arrival intact.
        let services = [svc(&[10, 12])];
        let mut sp = spec(2, 0, 8);
        sp.instances = 2;
        sp.faults.events = vec![FaultEvent { at: 5, instance: 0, action: FaultAction::Kill }];
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        let events = drive(&mut core, &[0, 0, 0, 0]);
        let batches: Vec<_> = events
            .iter()
            .filter_map(|e| if let SchedEvent::Launched(b) = e { Some(b) } else { None })
            .collect();
        // Batch on instance 0 (ids 0, 2) is killed at 5; instance 1's
        // batch (ids 1, 3) completes; the victims re-run on instance 1.
        let killed: Vec<_> = batches.iter().filter(|b| b.killed_at.is_some()).collect();
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].instance, 0);
        assert_eq!(killed[0].killed_at, Some(5));
        let completed: Vec<usize> = batches
            .iter()
            .filter(|b| b.killed_at.is_none())
            .flat_map(|b| b.members.iter().map(|m| m.id))
            .collect();
        let mut all = completed.clone();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "every request completes somewhere");
        // Re-routed members keep their original arrival (latency clock)
        // but re-enqueue at the kill cycle.
        let rerouted: Vec<&Queued> = batches
            .iter()
            .filter(|b| b.killed_at.is_none() && b.instance == 1)
            .flat_map(|b| b.members.iter())
            .filter(|m| m.enqueued_at == 5)
            .collect();
        assert_eq!(rerouted.len(), 2);
        assert!(rerouted.iter().all(|m| m.req.arrival == 0));
        let fin = core.finish();
        assert_eq!(fin.events.len(), 1);
        assert_eq!(
            fin.events[0].kind,
            ClusterEventKind::Kill { in_flight: 2, rerouted: 2, lost: 0 }
        );
        assert_eq!(fin.summaries[0].completed, 0, "killed batch completes nothing");
        assert_eq!(fin.summaries[0].batches, 1);
    }

    #[test]
    fn victims_with_nowhere_to_go_are_lost_not_dropped() {
        // One instance, killed while requests wait: no accepting instance
        // remains, so every victim surfaces as Lost.
        let services = [svc(&[100])];
        let mut sp = spec(1, 0, 8);
        sp.faults.events = vec![FaultEvent { at: 50, instance: 0, action: FaultAction::Kill }];
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        let events = drive(&mut core, &[0, 0, 0]);
        let lost: Vec<_> = events
            .iter()
            .filter_map(
                |e| if let SchedEvent::Lost(id, _, at) = e { Some((*id, *at)) } else { None },
            )
            .collect();
        assert_eq!(lost, vec![(0, 50), (1, 50), (2, 50)], "in-flight + queued, by id");
        let fin = core.finish();
        assert_eq!(
            fin.events[0].kind,
            ClusterEventKind::Kill { in_flight: 1, rerouted: 0, lost: 3 }
        );
    }

    #[test]
    fn restart_rejoins_empty_and_serves_again() {
        // Kill at 5, restart at 40: the late arrival at 60 must be served
        // by the restarted instance.
        let services = [svc(&[10])];
        let mut sp = spec(1, 0, 8);
        sp.faults.events = vec![
            FaultEvent { at: 5, instance: 0, action: FaultAction::Kill },
            FaultEvent { at: 40, instance: 0, action: FaultAction::Restart },
        ];
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        let events = drive(&mut core, &[0, 60]);
        let lost = events.iter().filter(|e| matches!(e, SchedEvent::Lost(..))).count();
        assert_eq!(lost, 1, "the request in flight at the kill is lost");
        let served: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Launched(b) if b.killed_at.is_none() => Some((b.start, b.done)),
                _ => None,
            })
            .collect();
        assert_eq!(served, vec![(60, 70)], "the restarted instance serves the late arrival");
        // An arrival during the outage is rejected (nothing accepting).
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        let events = drive(&mut core, &[0, 20]);
        assert!(events.iter().any(|e| matches!(e, SchedEvent::Rejected(1, _))));
    }

    #[test]
    fn autoscale_spawns_under_pressure_and_drains_when_idle() {
        let services = [svc(&[10, 12, 14, 16])];
        let mut sp = spec(4, 0, 64);
        sp.faults.autoscale = Some(AutoscalePolicy { spawn_above: 2, drain_below: 1 });
        let mut core = ClusterCore::new(&services, &sp).unwrap();
        // A burst of 8 at cycle 0: more than 2 queued per accepting
        // instance triggers a spawn (capped at 2x base = 2 instances).
        let arrivals = [0u64, 0, 0, 0, 0, 0, 0, 0, 500, 501];
        let events = drive(&mut core, &arrivals);
        let served: usize = events
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Launched(b) => Some(b.members.len()),
                _ => None,
            })
            .sum();
        assert_eq!(served, 10, "nothing is lost to elasticity");
        let fin = core.finish();
        let tags: Vec<&str> = fin.events.iter().map(|e| e.kind.tag()).collect();
        assert!(tags.contains(&"spawn"), "burst spawned an instance: {tags:?}");
        assert!(tags.contains(&"drain"), "idle period drained it again: {tags:?}");
        assert_eq!(fin.summaries.len(), 2, "spawned instance reports a summary");
    }
}
