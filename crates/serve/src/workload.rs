//! Deterministic synthetic arrival workloads for the serving front.
//!
//! All timestamps are simulated accelerator cycles; patterns are pure
//! functions of their parameters (no random state), so a workload replays
//! identically across runs and worker counts.

use crate::{BoxError, Result};

/// Shape of the open-loop arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// One request every `1/rate` seconds.
    Uniform,
    /// Groups of `size` requests arriving together, with the gaps widened
    /// so the long-run request rate matches the uniform pattern.
    Burst {
        /// Requests per burst (≥ 1).
        size: usize,
    },
}

/// The arrival timestamps (in cycles at `frequency_hz`) of `requests`
/// open-loop requests at a long-run rate of `rate_hz` requests per second,
/// shaped by `pattern`. Timestamps are non-decreasing.
///
/// # Errors
///
/// Rejects non-positive rates/frequencies and empty bursts.
pub fn open_loop_arrivals(
    requests: usize,
    rate_hz: f64,
    frequency_hz: f64,
    pattern: ArrivalPattern,
) -> Result<Vec<u64>> {
    if rate_hz <= 0.0 || frequency_hz <= 0.0 || !rate_hz.is_finite() || !frequency_hz.is_finite() {
        return Err(BoxError::from("arrival rate and clock frequency must be positive"));
    }
    let cycles_per_request = frequency_hz / rate_hz;
    let group = match pattern {
        ArrivalPattern::Uniform => 1,
        ArrivalPattern::Burst { size } => {
            if size == 0 {
                return Err(BoxError::from("burst size must be at least 1"));
            }
            size
        }
    };
    Ok((0..requests)
        .map(|i| ((i / group) as f64 * group as f64 * cycles_per_request).round() as u64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spaces_requests_evenly() {
        // 1 kHz arrivals on a 1 MHz clock: 1000 cycles apart.
        let a = open_loop_arrivals(4, 1e3, 1e6, ArrivalPattern::Uniform).unwrap();
        assert_eq!(a, vec![0, 1000, 2000, 3000]);
    }

    #[test]
    fn bursts_group_requests_and_preserve_the_rate() {
        let a = open_loop_arrivals(7, 1e3, 1e6, ArrivalPattern::Burst { size: 3 }).unwrap();
        assert_eq!(a, vec![0, 0, 0, 3000, 3000, 3000, 6000]);
        // Long-run rate preserved: request 6 arrives when the uniform
        // pattern would emit request 6.
        let u = open_loop_arrivals(7, 1e3, 1e6, ArrivalPattern::Uniform).unwrap();
        assert_eq!(a[6], u[6]);
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        assert!(open_loop_arrivals(1, 0.0, 1e9, ArrivalPattern::Uniform).is_err());
        assert!(open_loop_arrivals(1, 1.0, -1.0, ArrivalPattern::Uniform).is_err());
        assert!(open_loop_arrivals(1, 1.0, 1e9, ArrivalPattern::Burst { size: 0 }).is_err());
        assert!(open_loop_arrivals(0, 1.0, 1e9, ArrivalPattern::Uniform).unwrap().is_empty());
    }
}
