//! Deterministic synthetic arrival workloads for the serving front.
//!
//! All timestamps are simulated accelerator cycles; patterns are pure
//! functions of their parameters (no random state), so a workload replays
//! identically across runs and worker counts.

use crate::{BoxError, Result};

/// Shape of the open-loop arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// One request every `1/rate` seconds.
    Uniform,
    /// Groups of `size` requests arriving together, with the gaps widened
    /// so the long-run request rate matches the uniform pattern.
    Burst {
        /// Requests per burst (≥ 1).
        size: usize,
    },
}

/// The arrival timestamps (in cycles at `frequency_hz`) of `requests`
/// open-loop requests at a long-run rate of `rate_hz` requests per second,
/// shaped by `pattern`. Timestamps are non-decreasing.
///
/// # Errors
///
/// Rejects non-positive rates/frequencies and empty bursts.
pub fn open_loop_arrivals(
    requests: usize,
    rate_hz: f64,
    frequency_hz: f64,
    pattern: ArrivalPattern,
) -> Result<Vec<u64>> {
    if rate_hz <= 0.0 || frequency_hz <= 0.0 || !rate_hz.is_finite() || !frequency_hz.is_finite() {
        return Err(BoxError::from("arrival rate and clock frequency must be positive"));
    }
    let cycles_per_request = frequency_hz / rate_hz;
    let group = match pattern {
        ArrivalPattern::Uniform => 1,
        ArrivalPattern::Burst { size } => {
            if size == 0 {
                return Err(BoxError::from("burst size must be at least 1"));
            }
            size
        }
    };
    Ok((0..requests)
        .map(|i| ((i / group) as f64 * group as f64 * cycles_per_request).round() as u64)
        .collect())
}

/// One serving request of a (possibly mixed-model) workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Index into the served model set.
    pub model: usize,
    /// Arrival time in cycles.
    pub arrival: u64,
    /// Absolute completion deadline in cycles (`None` = best effort). A
    /// request completing after its deadline is still served but counts as
    /// a deadline miss.
    pub deadline: Option<u64>,
}

/// The open-loop request stream of a mixed-model SLO workload: arrivals
/// from [`open_loop_arrivals`], request `i` targeting model `i % models`
/// (a deterministic interleave, so bursts mix models and exercise
/// switches), and — when `deadline` is given — an absolute deadline of
/// `arrival + deadline` cycles per request.
///
/// # Errors
///
/// As [`open_loop_arrivals`], plus a zero model count, plus an
/// `arrival + deadline` sum that overflows `u64` (a late arrival combined
/// with a huge SLO budget must fail loudly, not wrap into the past and
/// charge a spurious miss).
pub fn request_stream(
    requests: usize,
    rate_hz: f64,
    frequency_hz: f64,
    pattern: ArrivalPattern,
    models: usize,
    deadline: Option<u64>,
) -> Result<Vec<Request>> {
    if models == 0 {
        return Err(BoxError::from("a request stream needs at least one model"));
    }
    let mut stream = Vec::with_capacity(requests);
    for (i, arrival) in
        open_loop_arrivals(requests, rate_hz, frequency_hz, pattern)?.into_iter().enumerate()
    {
        let deadline = match deadline {
            None => None,
            Some(d) => Some(arrival.checked_add(d).ok_or_else(|| {
                BoxError::from(format!(
                    "deadline overflows the cycle clock: request {i} arrives at \
                     cycle {arrival} with SLO budget {d}"
                ))
            })?),
        };
        stream.push(Request { model: i % models, arrival, deadline });
    }
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spaces_requests_evenly() {
        // 1 kHz arrivals on a 1 MHz clock: 1000 cycles apart.
        let a = open_loop_arrivals(4, 1e3, 1e6, ArrivalPattern::Uniform).unwrap();
        assert_eq!(a, vec![0, 1000, 2000, 3000]);
    }

    #[test]
    fn bursts_group_requests_and_preserve_the_rate() {
        let a = open_loop_arrivals(7, 1e3, 1e6, ArrivalPattern::Burst { size: 3 }).unwrap();
        assert_eq!(a, vec![0, 0, 0, 3000, 3000, 3000, 6000]);
        // Long-run rate preserved: request 6 arrives when the uniform
        // pattern would emit request 6.
        let u = open_loop_arrivals(7, 1e3, 1e6, ArrivalPattern::Uniform).unwrap();
        assert_eq!(a[6], u[6]);
    }

    #[test]
    fn request_stream_interleaves_models_and_stamps_deadlines() {
        let rs = request_stream(5, 1e3, 1e6, ArrivalPattern::Uniform, 2, Some(400)).unwrap();
        let models: Vec<usize> = rs.iter().map(|r| r.model).collect();
        assert_eq!(models, vec![0, 1, 0, 1, 0]);
        assert_eq!(rs[3].arrival, 3000);
        assert_eq!(rs[3].deadline, Some(3400));
        let best_effort = request_stream(3, 1e3, 1e6, ArrivalPattern::Uniform, 1, None).unwrap();
        assert!(best_effort.iter().all(|r| r.deadline.is_none() && r.model == 0));
        assert!(request_stream(3, 1e3, 1e6, ArrivalPattern::Uniform, 0, None).is_err());
    }

    #[test]
    fn overflowing_deadlines_error_instead_of_wrapping() {
        // The second arrival is at cycle 1000; adding u64::MAX would wrap
        // to the distant past and count as an instant deadline miss.
        let err = request_stream(2, 1e3, 1e6, ArrivalPattern::Uniform, 1, Some(u64::MAX))
            .expect_err("wrapping deadline must be rejected");
        let msg = err.to_string();
        assert!(msg.contains("overflows"), "unexpected error: {msg}");
        assert!(msg.contains("request 1"), "should name the offending request: {msg}");
        // A budget that fits is unaffected.
        assert!(request_stream(2, 1e3, 1e6, ArrivalPattern::Uniform, 1, Some(1)).is_ok());
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        assert!(open_loop_arrivals(1, 0.0, 1e9, ArrivalPattern::Uniform).is_err());
        assert!(open_loop_arrivals(1, 1.0, -1.0, ArrivalPattern::Uniform).is_err());
        assert!(open_loop_arrivals(1, 1.0, 1e9, ArrivalPattern::Burst { size: 0 }).is_err());
        assert!(open_loop_arrivals(0, 1.0, 1e9, ArrivalPattern::Uniform).unwrap().is_empty());
    }
}
