//! Stage assembly: threads, channels, and the entry points of the staged
//! runtime (see the module docs of [`crate::staged`] for the diagram and
//! the determinism contract).

use std::collections::BTreeMap;

use se_core::pipeline::bounded;

use crate::cluster::sim::{self, ClusterReport, ClusterRun, ClusterSpec, ModelService};
use crate::queue::{self, BatchPolicy, ServeReport};
use crate::sched::{self, ClusterCore, CoreFinish, RequestOutcome, SchedEvent};
use crate::workload::Request;
use crate::{BoxError, Result};

use super::{ExecWork, StagedConfig};

/// Wires up and runs the pipeline back end shared by every entry point:
///
/// * an optional **source** thread (the open-loop admission stage;
///   closed-loop workloads generate arrivals inside the scheduler, which
///   owns virtual time, so they have no source);
/// * the **scheduler** thread: `scheduler` receives the event sink, drives
///   the [`ClusterCore`] to completion, and returns the per-instance
///   summaries and churn event log ([`CoreFinish`]). The sink returns
///   `false` if downstream is gone (stop early rather than deadlock);
/// * `exec_workers` **execution** threads competing for launched batches
///   (cloned channel halves), running [`ExecWork`] per batch;
/// * the **collector**, on the calling thread: re-orders executed batches
///   by launch sequence number and folds them into the report — the step
///   that makes the report bit-identical to the sim's regardless of how
///   the pool interleaved.
///
/// Shutdown is purely drop-driven: each stage returns when its receiver
/// yields `None`, closing its own sender, and the scope joins everything.
///
/// # Errors
///
/// Surfaces a panicked scheduler stage as an error instead of poisoning
/// the collector mid-drain.
fn run_stages<S, D>(
    cfg: &StagedConfig,
    work: &dyn ExecWork,
    source: Option<S>,
    scheduler: D,
) -> Result<(ClusterReport, Vec<RequestOutcome>, CoreFinish)>
where
    S: FnOnce() + Send,
    D: FnOnce(&mut dyn FnMut(SchedEvent) -> bool) -> CoreFinish + Send,
{
    let (ev_tx, ev_rx) = bounded::<SchedEvent>(cfg.channel_cap);
    let (out_tx, out_rx) = bounded::<SchedEvent>(cfg.channel_cap);
    std::thread::scope(|scope| {
        let sched_handle = scope.spawn(move || {
            let ev_tx = ev_tx;
            let mut sink = |event: SchedEvent| ev_tx.send(event).is_ok();
            scheduler(&mut sink)
        });
        for _ in 0..cfg.exec_workers {
            let rx = ev_rx.clone();
            let tx = out_tx.clone();
            scope.spawn(move || {
                while let Some(event) = rx.recv() {
                    if let SchedEvent::Launched(batch) = &event {
                        work.execute(batch);
                    }
                    if tx.send(event).is_err() {
                        return;
                    }
                }
            });
        }
        drop(ev_rx);
        drop(out_tx);
        if let Some(source) = source {
            scope.spawn(source);
        }

        let mut report = ClusterReport::default();
        let mut outcomes = Vec::new();
        let mut next_seq = 0u64;
        let mut stash = BTreeMap::new();
        while let Some(event) = out_rx.recv() {
            match event {
                // Rejections and losses are per-request counters, so the
                // collector may fold them the moment they arrive; only
                // launched batches need seq-order replay.
                terminal @ (SchedEvent::Rejected(..) | SchedEvent::Lost(..)) => {
                    sim::record_event(&terminal, &mut report, &mut outcomes);
                }
                SchedEvent::Launched(batch) => {
                    stash.insert(batch.seq, batch);
                    while let Some(batch) = stash.remove(&next_seq) {
                        sim::record_event(&SchedEvent::Launched(batch), &mut report, &mut outcomes);
                        next_seq += 1;
                    }
                }
            }
        }
        debug_assert!(stash.is_empty(), "every launched batch was replayed in seq order");
        let fin = sched_handle
            .join()
            .map_err(|_| BoxError::from("scheduler stage panicked; staged run aborted"))?;
        Ok((report, outcomes, fin))
    })
}

/// Runs the cluster workload through the staged pipeline. Same inputs and
/// same result as [`crate::cluster::simulate_cluster_run`] — that
/// equality is the runtime's correctness contract (property-tested) —
/// but admission, scheduling, and execution run concurrently, with
/// [`ExecWork`] fanned out across `cfg.exec_workers` real threads.
///
/// # Errors
///
/// Rejects an invalid staged config, an invalid spec, and out-of-range
/// model indices — the same validation as the sim.
pub fn run_cluster_staged(
    requests: &[Request],
    services: &[ModelService],
    spec: &ClusterSpec,
    cfg: &StagedConfig,
    work: &dyn ExecWork,
) -> Result<ClusterRun> {
    cluster_staged_inner(requests, services, spec, cfg, work, None)
}

/// [`run_cluster_staged`] with observability: the scheduler stage narrates
/// its decisions into `sink` as virtual-time [`se_obs::Event`]s. The core
/// runs serially inside the scheduler thread in both runtimes, so the
/// event stream is byte-identical to the sim's for any worker count. When
/// `SE_TRACE_WALL=1`, one wall-clock [`se_obs::EventKind::StageWall`]
/// annotation is appended after the run (excluded from determinism diffs
/// by keeping it opt-in).
///
/// # Errors
///
/// Same conditions as [`run_cluster_staged`].
pub fn run_cluster_staged_obs<S: se_obs::EventSink>(
    requests: &[Request],
    services: &[ModelService],
    spec: &ClusterSpec,
    cfg: &StagedConfig,
    work: &dyn ExecWork,
    sink: &mut S,
) -> Result<ClusterRun> {
    let wall_start = std::time::Instant::now();
    let obs = sink.enabled().then_some(&mut *sink as &mut dyn se_obs::EventSink);
    let run = cluster_staged_inner(requests, services, spec, cfg, work, obs)?;
    annotate_wall(sink, run.report.makespan, wall_start);
    Ok(run)
}

/// Appends the opt-in wall-clock stage annotation (`SE_TRACE_WALL=1`):
/// virtual-time streams stay byte-identical across runtimes by
/// construction because this is the only wall-clock-dependent event and
/// it is off by default.
fn annotate_wall(sink: &mut dyn se_obs::EventSink, at: u64, wall_start: std::time::Instant) {
    if sink.enabled() && se_obs::wall_annotations_enabled() {
        let wall_ns = wall_start.elapsed().as_nanos() as u64;
        sink.record(se_obs::Event {
            at,
            kind: se_obs::EventKind::StageWall { stage: "staged-pipeline", wall_ns },
        });
    }
}

fn cluster_staged_inner(
    requests: &[Request],
    services: &[ModelService],
    spec: &ClusterSpec,
    cfg: &StagedConfig,
    work: &dyn ExecWork,
    obs: Option<&mut dyn se_obs::EventSink>,
) -> Result<ClusterRun> {
    cfg.validate()?;
    sim::validate_models(requests, services)?;
    let core = ClusterCore::with_obs(services, spec, obs)?;
    let (in_tx, in_rx) = bounded::<Vec<(usize, Request)>>(cfg.channel_cap);
    let chunk_size = cfg.chunk;
    let source = move || {
        let mut chunk = Vec::with_capacity(chunk_size);
        for item in requests.iter().copied().enumerate() {
            chunk.push(item);
            if chunk.len() == chunk_size {
                let full = std::mem::replace(&mut chunk, Vec::with_capacity(chunk_size));
                if in_tx.send(full).is_err() {
                    return;
                }
            }
        }
        if !chunk.is_empty() {
            let _ = in_tx.send(chunk);
        }
    };
    let scheduler = move |sink: &mut dyn FnMut(SchedEvent) -> bool| {
        let mut core = core;
        let mut current = Vec::new().into_iter();
        let arrivals = std::iter::from_fn(|| loop {
            if let Some(item) = current.next() {
                return Some(item);
            }
            match in_rx.recv() {
                Some(chunk) => current = chunk.into_iter(),
                None => return None,
            }
        });
        sched::drive_open_loop(&mut core, arrivals, sink);
        core.finish()
    };
    let (mut report, mut outcomes, fin) = run_stages(cfg, work, Some(source), scheduler)?;
    sim::fold_finish(fin, &mut report);
    outcomes.sort_unstable_by_key(|o| o.id);
    Ok(ClusterRun { report, outcomes })
}

/// Narrows a 1-instance cluster report to the serving-queue report shape.
fn serve_report_of(report: ClusterReport) -> ServeReport {
    ServeReport {
        latencies: report.latencies,
        batch_sizes: report.batch_sizes,
        rejected: report.rejected,
        makespan: report.makespan,
    }
}

/// The staged counterpart of [`crate::queue::simulate_open_loop`]: same
/// report, bit for bit, with the pipeline doing the work.
///
/// # Errors
///
/// Rejects an invalid policy, a short execution table, or an invalid
/// staged config.
pub fn run_queue_staged_open(
    arrivals: &[u64],
    exec: &[u64],
    policy: &BatchPolicy,
    cfg: &StagedConfig,
    work: &dyn ExecWork,
) -> Result<ServeReport> {
    queue::validate_exec(exec, policy)?;
    let requests: Vec<Request> =
        arrivals.iter().map(|&arrival| Request { model: 0, arrival, deadline: None }).collect();
    let (service, spec) = queue::single_instance(exec, policy.clone());
    let services = [service];
    let run = run_cluster_staged(&requests, &services, &spec, cfg, work)?;
    Ok(serve_report_of(run.report))
}

/// [`run_queue_staged_open`] with observability (see
/// [`run_cluster_staged_obs`] for the event-stream contract).
///
/// # Errors
///
/// Same conditions as [`run_queue_staged_open`].
pub fn run_queue_staged_open_obs<S: se_obs::EventSink>(
    arrivals: &[u64],
    exec: &[u64],
    policy: &BatchPolicy,
    cfg: &StagedConfig,
    work: &dyn ExecWork,
    sink: &mut S,
) -> Result<ServeReport> {
    queue::validate_exec(exec, policy)?;
    let requests: Vec<Request> =
        arrivals.iter().map(|&arrival| Request { model: 0, arrival, deadline: None }).collect();
    let (service, spec) = queue::single_instance(exec, policy.clone());
    let services = [service];
    let run = run_cluster_staged_obs(&requests, &services, &spec, cfg, work, sink)?;
    Ok(serve_report_of(run.report))
}

/// The staged counterpart of [`crate::queue::simulate_closed_loop`]: same
/// report, bit for bit. The closed loop's arrivals are a function of
/// completions, so they are generated inside the scheduler stage (which
/// owns virtual time) — the admission stage collapses away.
///
/// # Errors
///
/// Rejects an invalid policy, a zero concurrency, a short execution
/// table, or an invalid staged config.
pub fn run_queue_staged_closed(
    requests: usize,
    concurrency: usize,
    exec: &[u64],
    policy: &BatchPolicy,
    cfg: &StagedConfig,
    work: &dyn ExecWork,
) -> Result<ServeReport> {
    closed_staged_inner(requests, concurrency, exec, policy, cfg, work, None)
}

/// [`run_queue_staged_closed`] with observability (see
/// [`run_cluster_staged_obs`] for the event-stream contract).
///
/// # Errors
///
/// Same conditions as [`run_queue_staged_closed`].
pub fn run_queue_staged_closed_obs<S: se_obs::EventSink>(
    requests: usize,
    concurrency: usize,
    exec: &[u64],
    policy: &BatchPolicy,
    cfg: &StagedConfig,
    work: &dyn ExecWork,
    sink: &mut S,
) -> Result<ServeReport> {
    let wall_start = std::time::Instant::now();
    let obs = sink.enabled().then_some(&mut *sink as &mut dyn se_obs::EventSink);
    let report = closed_staged_inner(requests, concurrency, exec, policy, cfg, work, obs)?;
    annotate_wall(sink, report.makespan, wall_start);
    Ok(report)
}

fn closed_staged_inner(
    requests: usize,
    concurrency: usize,
    exec: &[u64],
    policy: &BatchPolicy,
    cfg: &StagedConfig,
    work: &dyn ExecWork,
    obs: Option<&mut dyn se_obs::EventSink>,
) -> Result<ServeReport> {
    queue::validate_exec(exec, policy)?;
    if concurrency == 0 {
        return Err(BoxError::from("closed-loop concurrency must be at least 1"));
    }
    cfg.validate()?;
    // Closed loops are bounded by their concurrency, not the queue cap —
    // mirror `simulate_closed_loop` exactly.
    let uncapped = BatchPolicy { queue_cap: usize::MAX, ..policy.clone() };
    let (service, spec) = queue::single_instance(exec, uncapped);
    let services = [service];
    let core = ClusterCore::with_obs(&services, &spec, obs)?;
    let scheduler = move |sink: &mut dyn FnMut(SchedEvent) -> bool| {
        let mut core = core;
        sched::drive_closed_loop(&mut core, requests, concurrency, sink);
        core.finish()
    };
    let (report, _, _) = run_stages(cfg, work, None::<fn()>, scheduler)?;
    Ok(serve_report_of(report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::RouterPolicy;
    use crate::staged::NoWork;

    fn exec(max: usize) -> Vec<u64> {
        (1..=max).map(|k| 10 + 2 * k as u64).collect()
    }

    #[test]
    fn staged_open_loop_matches_sim_on_a_smoke_trace() {
        let policy = BatchPolicy { max_batch: 4, max_wait: 6, queue_cap: 3 };
        let arrivals: Vec<u64> = (0..100).map(|i| i * 3).collect();
        let sim = queue::simulate_open_loop(&arrivals, &exec(4), &policy).unwrap();
        for cfg in
            [StagedConfig::default(), StagedConfig { exec_workers: 4, channel_cap: 1, chunk: 7 }]
        {
            let staged =
                run_queue_staged_open(&arrivals, &exec(4), &policy, &cfg, &NoWork).unwrap();
            assert_eq!(staged, sim, "cfg {cfg:?}");
        }
    }

    #[test]
    fn staged_closed_loop_matches_sim_on_a_smoke_trace() {
        let policy = BatchPolicy { max_batch: 4, max_wait: 0, queue_cap: 1 };
        let sim = queue::simulate_closed_loop(9, 3, &exec(4), &policy).unwrap();
        let staged = run_queue_staged_closed(
            9,
            3,
            &exec(4),
            &policy,
            &StagedConfig { exec_workers: 3, channel_cap: 2, chunk: 1 },
            &NoWork,
        )
        .unwrap();
        assert_eq!(staged, sim);
    }

    #[test]
    fn staged_cluster_matches_sim_run_including_outcomes() {
        let services = [
            ModelService {
                name: "a".into(),
                streamed: vec![100, 120, 140, 160],
                resident: vec![80, 100, 120, 140],
                footprint_bytes: 600,
                switch_cycles: 10,
            },
            ModelService {
                name: "b".into(),
                streamed: vec![90, 110, 130, 150],
                resident: vec![70, 90, 110, 130],
                footprint_bytes: 500,
                switch_cycles: 8,
            },
        ];
        let spec = ClusterSpec {
            instances: 2,
            router: RouterPolicy::ModelAffinity,
            policy: BatchPolicy { max_batch: 4, max_wait: 50, queue_cap: 8 },
            buffer_bytes: Some(700),
            tiers: None,
            faults: crate::fault::FaultPlan::default(),
        };
        let requests: Vec<Request> = (0..200)
            .map(|i| Request {
                model: (i % 2) as usize,
                arrival: i * 40,
                deadline: Some(i * 40 + 400),
            })
            .collect();
        let oracle = sim::simulate_cluster_run(&requests, &services, &spec).unwrap();
        let staged = run_cluster_staged(
            &requests,
            &services,
            &spec,
            &StagedConfig { exec_workers: 4, channel_cap: 8, chunk: 16 },
            &NoWork,
        )
        .unwrap();
        assert_eq!(staged, oracle);
    }

    #[test]
    fn invalid_configs_error_loudly() {
        let policy = BatchPolicy::default();
        let bad = StagedConfig { exec_workers: 0, ..Default::default() };
        assert!(run_queue_staged_open(&[0], &exec(8), &policy, &bad, &NoWork).is_err());
        let bad = StagedConfig { channel_cap: 0, ..Default::default() };
        assert!(run_queue_staged_closed(1, 1, &exec(8), &policy, &bad, &NoWork).is_err());
        let bad = StagedConfig { chunk: 0, ..Default::default() };
        assert!(run_queue_staged_open(&[0], &exec(8), &policy, &bad, &NoWork).is_err());
        assert!(run_queue_staged_closed(
            1,
            0,
            &exec(8),
            &policy,
            &StagedConfig::default(),
            &NoWork
        )
        .is_err());
    }
}
