//! The **staged serving runtime**: the serving front as a concurrent
//! pipeline of stages connected by bounded channels, producing per-request
//! outcomes **bit-identical** to the discrete-event simulation.
//!
//! ```text
//!   admission ──chunks──▶ scheduler ──events──▶ exec pool ──events──▶ collector
//!   (chunk +              (routing +            (W workers,           (reorder by
//!    backpressure)         batch formation +     real batch            batch seq,
//!                          residency, owns       compute via           assemble
//!                          virtual time)         ExecWork)             report)
//! ```
//!
//! Every arrow is a [`se_core::pipeline::bounded`] channel: a stage that
//! outruns its consumer blocks on `send` (backpressure), and dropping a
//! stage's sender closes the stream — the receiving stage drains what is
//! buffered and returns, so shutdown loses no request (the graceful-drain
//! property tested in `tests/staged.rs`).
//!
//! # Why routing and batch formation share one stage
//!
//! In the discrete-event model, a routing decision reads the exact queue
//! depths and residency state that batch formation mutates, and a launch
//! is legal only when no earlier arrival is still unrouted — the two are
//! one virtual-time state machine (`crate::sched::ClusterCore`), and
//! splitting it across threads would serialize them anyway (lock-step
//! ping-pong with zero overlap). Execution, by contrast, feeds *nothing*
//! back into scheduling — a batch's completion time is decided from the
//! latency tables at launch — so the scheduler can run arbitrarily far
//! ahead of the execution pool, which is where the pipeline's real
//! concurrency lives.
//!
//! # Determinism contract
//!
//! **Outcome equality, not timing equality.** The staged runtime promises
//! the same per-request outcome set ([`crate::sched::RequestOutcome`]:
//! admission/rejection, batch membership, residency admissions,
//! miss/goodput accounting) as [`crate::cluster::simulate_cluster_run`]
//! on the same trace — for any worker count, chunk size, or channel
//! capacity. Wall-clock interleaving differs run to run; the collector
//! re-sorts executed batches by launch sequence number before recording,
//! which is the last piece that makes the *reports* bit-identical too.
//! The sim stays the oracle: the property tests replay random traces
//! through both paths and require equality.

mod pipeline;

pub use pipeline::{
    run_cluster_staged, run_cluster_staged_obs, run_queue_staged_closed,
    run_queue_staged_closed_obs, run_queue_staged_open, run_queue_staged_open_obs,
};

use crate::engine::BatchEngine;
use crate::sched::PlannedBatch;
use crate::{BoxError, Result};
use se_hw::RunResult;

/// Tuning knobs of the staged runtime. None of them affect outcomes —
/// only wall-clock throughput (enforced by property test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagedConfig {
    /// Worker threads in the execution pool.
    pub exec_workers: usize,
    /// Capacity of each inter-stage channel (the backpressure window).
    pub channel_cap: usize,
    /// Requests per admission chunk (amortizes channel handoff).
    pub chunk: usize,
}

impl Default for StagedConfig {
    fn default() -> Self {
        StagedConfig { exec_workers: 1, channel_cap: 64, chunk: 64 }
    }
}

impl StagedConfig {
    /// A config sized for the host: one execution worker per available
    /// core (honouring `SE_PARALLELISM` via
    /// [`se_core::SeConfig::parallelism`]).
    pub fn host_sized() -> Self {
        StagedConfig {
            exec_workers: se_core::SeConfig::default().parallelism(),
            ..Default::default()
        }
    }

    /// Validates the config.
    ///
    /// # Errors
    ///
    /// Rejects zero workers, zero channel capacity, or a zero chunk size.
    pub fn validate(&self) -> Result<()> {
        if self.exec_workers == 0 {
            return Err(BoxError::from("staged runtime needs at least one exec worker"));
        }
        if self.channel_cap == 0 {
            return Err(BoxError::from("stage channel capacity must be at least 1"));
        }
        if self.chunk == 0 {
            return Err(BoxError::from("admission chunk size must be at least 1"));
        }
        Ok(())
    }
}

/// What the execution pool actually runs per launched batch. The virtual
/// completion time is already decided at launch (from the latency
/// tables), so this hook only burns real CPU — it is what `se bench
/// serve` measures scaling over.
pub trait ExecWork: Sync {
    /// Executes one launched batch (on an execution-pool worker thread).
    fn execute(&self, batch: &PlannedBatch);
}

/// No per-batch work: the pipeline overhead floor, and the right choice
/// when only outcomes matter (CLI `--runtime staged`, property tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoWork;

impl ExecWork for NoWork {
    fn execute(&self, _batch: &PlannedBatch) {}
}

/// Real batch computation through the [`BatchEngine`]: re-derives the
/// batch's amortized result from the per-image simulation, touching the
/// same schedule-cache path a real executor would.
#[derive(Debug)]
pub struct EngineWork<'a> {
    /// The engine whose accelerator lane executes batches.
    pub engine: &'a BatchEngine,
    /// Accelerator lane index.
    pub lane: usize,
    /// Per-image simulation result per model (indexed by
    /// [`crate::workload::Request::model`]).
    pub per_image: &'a [RunResult],
}

impl ExecWork for EngineWork<'_> {
    fn execute(&self, batch: &PlannedBatch) {
        let result =
            self.engine.batched(self.lane, &self.per_image[batch.model], batch.members.len());
        // Keep the computation observable so the optimizer cannot drop it.
        std::hint::black_box(result);
    }
}
