//! Deterministic failure injection and elastic membership for the
//! cluster front.
//!
//! A [`FaultPlan`] scripts instance churn in *virtual* time: kill
//! instance `i` at cycle `t`, restart it later, and (optionally) let the
//! cluster spawn or drain instances on queue-depth thresholds
//! ([`AutoscalePolicy`]). The plan is part of the
//! [`crate::cluster::ClusterSpec`], so both serving runtimes — the serial
//! discrete-event simulation and the concurrent staged pipeline — consume
//! it through the one shared scheduling core and replay the same churn
//! bit-identically (the property tested in `tests/fault.rs`).
//!
//! # Event semantics
//!
//! * **Kill at `t`** — the instance goes down instantly. A batch in
//!   flight (launched at `s < t`, completing at `d > t`) fails: none of
//!   its members complete. Its members and everything still waiting in
//!   the queue re-enter the router *at* `t` (ascending request id), each
//!   keeping its original arrival and deadline — latency keeps accruing
//!   from the original arrival, so deadline misses caused by the failure
//!   are charged honestly. A victim that finds no accepting instance, or
//!   bounces off a full queue, is **lost**: a terminal outcome
//!   ([`crate::sched::Disposition::Lost`]), never a silent drop.
//! * **Restart at `t`** — the instance rejoins with an empty queue, is
//!   free from `t`, and its weight buffer is **cold**
//!   ([`se_hw::residency::WeightBuffer::cold_restart`]): every model
//!   fetches again, which is exactly where a small resident footprint
//!   (SmartExchange) recovers faster than a large one (dense).
//! * **Spawn / Drain** — with an [`AutoscalePolicy`], an arrival that
//!   finds the accepting queues holding more than `spawn_above × live`
//!   requests spawns a fresh (cold, empty) instance, up to twice the base
//!   cluster size; a launch that leaves them under `drain_below × live`
//!   stops the highest-indexed spawned instance from accepting (it
//!   finishes its queue and idles). Base instances are never drained.
//!
//! Routing only ever sees accepting instances; every policy's tie-breaks
//! stay deterministic under churn (lowest index, with round-robin
//! counting over the accepting subset in index order).

use crate::{BoxError, Result};

/// What a scripted fault event does to its instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The instance dies: in-flight work fails and is re-routed.
    Kill,
    /// The instance rejoins empty and cold.
    Restart,
}

/// One scripted membership change at a virtual cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual cycle the event fires at.
    pub at: u64,
    /// Target instance (an index into the base cluster).
    pub instance: usize,
    /// Kill or restart.
    pub action: FaultAction,
}

/// Queue-depth-driven elasticity thresholds (in requests per accepting
/// instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalePolicy {
    /// Spawn a fresh instance when the accepting queues hold more than
    /// this many requests per accepting instance.
    pub spawn_above: u64,
    /// Drain the highest-indexed spawned instance when the accepting
    /// queues hold fewer than this many requests per accepting instance
    /// (0 = never drain).
    pub drain_below: u64,
}

/// A deterministic churn script: scripted kill/restart events plus an
/// optional autoscale policy. The default plan is empty — no churn, and
/// behavior bit-identical to a cluster without failure injection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Scripted events, sorted by `(at, instance)`.
    pub events: Vec<FaultEvent>,
    /// Optional queue-depth elasticity.
    pub autoscale: Option<AutoscalePolicy>,
}

impl FaultPlan {
    /// `true` when the plan injects nothing (no events, no autoscale).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.autoscale.is_none()
    }

    /// Validates the plan against the base cluster size.
    ///
    /// # Errors
    ///
    /// Rejects events out of `(at, instance)` order, events targeting an
    /// instance outside the base cluster, a per-instance history that is
    /// not an alternation kill → restart → kill → … at strictly
    /// increasing times, and autoscale thresholds with `spawn_above`
    /// zero or not above `drain_below`.
    pub fn validate(&self, instances: usize) -> Result<()> {
        for pair in self.events.windows(2) {
            if (pair[1].at, pair[1].instance) <= (pair[0].at, pair[0].instance) {
                return Err(BoxError::from(format!(
                    "fault events must be sorted by (time, instance): {:?} then {:?}",
                    pair[0], pair[1]
                )));
            }
        }
        for instance in 0..instances {
            let mut expected = FaultAction::Kill;
            for ev in self.events.iter().filter(|e| e.instance == instance) {
                if ev.action != expected {
                    return Err(BoxError::from(format!(
                        "instance {instance}: fault history must alternate kill/restart \
                         starting with a kill (unexpected {:?} at cycle {})",
                        ev.action, ev.at
                    )));
                }
                expected = match expected {
                    FaultAction::Kill => FaultAction::Restart,
                    FaultAction::Restart => FaultAction::Kill,
                };
            }
        }
        if let Some(ev) = self.events.iter().find(|e| e.instance >= instances) {
            return Err(BoxError::from(format!(
                "fault event targets instance {} but the base cluster has {instances}",
                ev.instance
            )));
        }
        if let Some(auto) = &self.autoscale {
            if auto.spawn_above == 0 || auto.spawn_above <= auto.drain_below {
                return Err(BoxError::from(format!(
                    "autoscale thresholds need spawn_above > drain_below and spawn_above >= 1 \
                     (got {}:{})",
                    auto.spawn_above, auto.drain_below
                )));
            }
        }
        Ok(())
    }
}

/// One membership change that actually happened during a run, with its
/// accounting — the per-event lines of a
/// [`crate::cluster::ClusterReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterEvent {
    /// Virtual cycle the event fired at.
    pub at: u64,
    /// The instance it changed.
    pub instance: usize,
    /// What happened, with the kill's victim accounting.
    pub kind: ClusterEventKind,
}

/// The kind of a [`ClusterEvent`], carrying per-event accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEventKind {
    /// A scripted kill: how many victims were in the failed in-flight
    /// batch, how many victims (in-flight + queued) re-routed to live
    /// instances, and how many were lost.
    Kill {
        /// Members of the in-flight batch that failed (0 if the instance
        /// was idle).
        in_flight: u64,
        /// Victims re-admitted through the router.
        rerouted: u64,
        /// Victims with no accepting instance or only full queues.
        lost: u64,
    },
    /// A scripted restart: the instance rejoined empty and cold.
    Restart,
    /// Autoscale spawned a fresh instance.
    Spawn,
    /// Autoscale stopped a spawned instance from accepting.
    Drain,
}

impl ClusterEventKind {
    /// Victims this event re-routed (0 for non-kill events).
    pub fn rerouted(&self) -> u64 {
        match self {
            ClusterEventKind::Kill { rerouted, .. } => *rerouted,
            _ => 0,
        }
    }

    /// Short display tag (`kill`/`restart`/`spawn`/`drain`).
    pub fn tag(&self) -> &'static str {
        match self {
            ClusterEventKind::Kill { .. } => "kill",
            ClusterEventKind::Restart => "restart",
            ClusterEventKind::Spawn => "spawn",
            ClusterEventKind::Drain => "drain",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, instance: usize, action: FaultAction) -> FaultEvent {
        FaultEvent { at, instance, action }
    }

    #[test]
    fn empty_plan_is_valid_and_empty() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn kill_restart_alternation_validates() {
        let plan = FaultPlan {
            events: vec![
                ev(10, 1, FaultAction::Kill),
                ev(50, 1, FaultAction::Restart),
                ev(80, 1, FaultAction::Kill),
            ],
            autoscale: None,
        };
        assert!(!plan.is_empty());
        assert!(plan.validate(2).is_ok());
    }

    #[test]
    fn out_of_order_or_misaligned_histories_are_rejected() {
        let restart_first =
            FaultPlan { events: vec![ev(10, 0, FaultAction::Restart)], autoscale: None };
        assert!(restart_first.validate(1).is_err());
        let double_kill = FaultPlan {
            events: vec![ev(10, 0, FaultAction::Kill), ev(20, 0, FaultAction::Kill)],
            autoscale: None,
        };
        assert!(double_kill.validate(1).is_err());
        let unsorted = FaultPlan {
            events: vec![ev(20, 0, FaultAction::Kill), ev(10, 1, FaultAction::Kill)],
            autoscale: None,
        };
        assert!(unsorted.validate(2).is_err());
        let same_cycle = FaultPlan {
            events: vec![ev(10, 0, FaultAction::Kill), ev(10, 0, FaultAction::Restart)],
            autoscale: None,
        };
        assert!(same_cycle.validate(1).is_err());
    }

    #[test]
    fn events_must_target_base_instances() {
        let plan = FaultPlan { events: vec![ev(10, 3, FaultAction::Kill)], autoscale: None };
        assert!(plan.validate(3).is_err());
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn autoscale_thresholds_must_be_ordered() {
        let bad = |spawn_above, drain_below| FaultPlan {
            events: Vec::new(),
            autoscale: Some(AutoscalePolicy { spawn_above, drain_below }),
        };
        assert!(bad(0, 0).validate(1).is_err());
        assert!(bad(2, 2).validate(1).is_err());
        assert!(bad(2, 3).validate(1).is_err());
        assert!(bad(4, 1).validate(1).is_ok());
        assert!(!bad(4, 1).is_empty());
    }

    #[test]
    fn event_kind_accessors() {
        let kill = ClusterEventKind::Kill { in_flight: 2, rerouted: 3, lost: 1 };
        assert_eq!(kill.rerouted(), 3);
        assert_eq!(kill.tag(), "kill");
        assert_eq!(ClusterEventKind::Restart.rerouted(), 0);
        assert_eq!(ClusterEventKind::Spawn.tag(), "spawn");
        assert_eq!(ClusterEventKind::Drain.tag(), "drain");
    }
}
