use crate::{IrError, LayerDesc, QuantTensor, Result, SeLayer};

/// A layer's weights as consumed by an accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightData {
    /// Dense 8-bit weights (what the baseline accelerators process; zero
    /// codes are what the sparsity-exploiting baselines skip).
    Dense(QuantTensor),
    /// SmartExchange-compressed weights. A plain CONV/FC layer has one
    /// [`SeLayer`]; a squeeze-and-excite block has two (its two FC
    /// matrices).
    Se(Vec<SeLayer>),
}

impl WeightData {
    /// Whether the weights are in SmartExchange form.
    pub fn is_se(&self) -> bool {
        matches!(self, WeightData::Se(_))
    }
}

/// One layer's complete simulation record: geometry, weights, and the input
/// activation map observed during inference.
///
/// Traces are produced by the model zoo (`se-models`) one layer at a time
/// (activation tensors for ImageNet-scale layers are large) and consumed by
/// both the SmartExchange accelerator simulator (`se-hw`) and the baseline
/// simulators (`se-baselines`), guaranteeing every accelerator sees the
/// *same* data — the paper's equal-footing methodology.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTrace {
    desc: LayerDesc,
    weights: WeightData,
    input: QuantTensor,
}

impl LayerTrace {
    /// Creates a trace, validating that the input tensor volume matches the
    /// layer geometry.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::LayoutMismatch`] if the input element count does
    /// not equal the descriptor's expected input volume.
    pub fn new(desc: LayerDesc, weights: WeightData, input: QuantTensor) -> Result<Self> {
        let expect = desc.input_elems();
        if input.len() as u64 != expect {
            return Err(IrError::LayoutMismatch {
                reason: format!(
                    "layer {}: input has {} elements, geometry expects {expect}",
                    desc.name(),
                    input.len()
                ),
            });
        }
        Ok(LayerTrace { desc, weights, input })
    }

    /// The layer descriptor.
    pub fn desc(&self) -> &LayerDesc {
        &self.desc
    }

    /// The weights.
    pub fn weights(&self) -> &WeightData {
        &self.weights
    }

    /// The 8-bit input activation map, shaped `(C, H, W)` (or `(C,)` for
    /// FC layers).
    pub fn input(&self) -> &QuantTensor {
        &self.input
    }

    /// Element-wise input sparsity (fraction of zero activation codes).
    pub fn input_sparsity(&self) -> f32 {
        self.input.sparsity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerKind, Po2Set, SeLayout, SeSlice};
    use se_tensor::{Mat, Tensor};

    fn desc() -> LayerDesc {
        LayerDesc::new(
            "c",
            LayerKind::Conv2d { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 },
            (4, 4),
        )
    }

    fn quant(n: usize) -> QuantTensor {
        QuantTensor::quantize(&Tensor::full(&[n], 1.0), 8).unwrap()
    }

    #[test]
    fn trace_validates_input_volume() {
        let w = WeightData::Dense(quant(9));
        assert!(LayerTrace::new(desc(), w.clone(), quant(16)).is_ok());
        assert!(matches!(
            LayerTrace::new(desc(), w, quant(15)),
            Err(IrError::LayoutMismatch { .. })
        ));
    }

    #[test]
    fn weight_data_kind_queries() {
        let po2 = Po2Set::default();
        let slice = SeSlice::new(Mat::zeros(3, 3), Mat::identity(3), &po2).unwrap();
        let layer = SeLayer::new(
            SeLayout::ConvPerFilter {
                out_channels: 1,
                in_channels: 1,
                kernel: 3,
                slices_per_filter: 1,
            },
            po2,
            vec![slice],
        )
        .unwrap();
        assert!(WeightData::Se(vec![layer]).is_se());
        assert!(!WeightData::Dense(quant(4)).is_se());
    }

    #[test]
    fn input_sparsity_passthrough() {
        let input = QuantTensor::quantize(
            &Tensor::from_vec(vec![0.0; 8].into_iter().chain(vec![1.0; 8]).collect(), &[16])
                .unwrap(),
            8,
        )
        .unwrap();
        let d =
            LayerDesc::new("fc", LayerKind::Linear { in_features: 16, out_features: 2 }, (1, 1));
        let t = LayerTrace::new(d, WeightData::Dense(quant(32)), input).unwrap();
        assert_eq!(t.input_sparsity(), 0.5);
    }
}
