use std::fmt;

/// Errors produced by interchange-format operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IrError {
    /// A layer or network descriptor was internally inconsistent.
    InvalidDescriptor {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A power-of-2 set or code was invalid (empty set, exponent out of the
    /// representable code range, value not in the set).
    InvalidPo2 {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// Compressed weights did not match the layer geometry they claim to
    /// represent.
    LayoutMismatch {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// An underlying tensor operation failed.
    Tensor(se_tensor::TensorError),
    /// Serialized bytes were malformed (bad magic, unsupported version,
    /// truncation, unknown tag, or trailing garbage).
    Serialize {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::InvalidDescriptor { reason } => write!(f, "invalid descriptor: {reason}"),
            IrError::InvalidPo2 { reason } => write!(f, "invalid power-of-2 data: {reason}"),
            IrError::LayoutMismatch { reason } => write!(f, "layout mismatch: {reason}"),
            IrError::Tensor(e) => write!(f, "tensor error: {e}"),
            IrError::Serialize { reason } => write!(f, "serialization error: {reason}"),
        }
    }
}

impl std::error::Error for IrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IrError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<se_tensor::TensorError> for IrError {
    fn from(e: se_tensor::TensorError) -> Self {
        IrError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = IrError::Tensor(se_tensor::TensorError::Singular);
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        let d = IrError::InvalidPo2 { reason: "empty".into() };
        assert!(d.source().is_none());
    }
}
