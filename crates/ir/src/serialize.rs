//! Versioned on-disk serialization of the interchange formats.
//!
//! The experiment harness replays expensive SmartExchange decompositions
//! from disk instead of regenerating them (see `docs/TRACE_FORMAT.md` for
//! the byte-level layout and the compatibility policy). This module is the
//! byte-level codec: a small, self-describing binary format with **no
//! external serde dependency** (the build environment is offline — see
//! `vendor/README.md`), designed for bit-identical round trips:
//!
//! * every `f32` is stored as its exact little-endian bit pattern;
//! * `Ce` coefficient matrices are stored as compact [`Po2Set`] codes
//!   (exact by construction — every entry is validated against the
//!   alphabet when an [`SeSlice`] is built), not as floats;
//! * every container is re-validated through its normal constructor on
//!   read, so a decoded value upholds the same invariants as a freshly
//!   built one.
//!
//! Files start with the [`MAGIC`] bytes, a [`FORMAT_VERSION`], and a
//! [`PayloadKind`] tag; readers reject unknown magic, newer versions, and
//! mismatched payload kinds. All multi-byte integers are little-endian.
//!
//! Higher layers compose these primitives: `se_models::traces` persists
//! whole trace-pair sets (`*.setrace` files) and `se_core`'s
//! `CompressedNetwork` persists compressed networks, both through the
//! [`ByteWriter`] / [`ByteReader`] pair defined here.
//!
//! # Examples
//!
//! ```
//! use se_ir::serialize::{ByteReader, ByteWriter};
//! use se_ir::{LayerDesc, LayerKind, LayerTrace, QuantTensor, WeightData};
//! use se_tensor::Tensor;
//!
//! # fn main() -> Result<(), se_ir::IrError> {
//! let desc = LayerDesc::new(
//!     "fc",
//!     LayerKind::Linear { in_features: 4, out_features: 2 },
//!     (1, 1),
//! );
//! let w = QuantTensor::quantize(&Tensor::full(&[8], 0.5), 8)?;
//! let x = QuantTensor::quantize(&Tensor::full(&[4], -1.0), 8)?;
//! let trace = LayerTrace::new(desc, WeightData::Dense(w), x)?;
//!
//! let mut out = ByteWriter::new();
//! se_ir::serialize::write_layer_trace(&mut out, &trace)?;
//! let bytes = out.into_bytes();
//!
//! let mut rd = ByteReader::new(&bytes);
//! let back = se_ir::serialize::read_layer_trace(&mut rd)?;
//! assert_eq!(trace, back); // bit-identical, including every f32
//! # Ok(())
//! # }
//! ```

use crate::{
    IrError, LayerDesc, LayerKind, LayerTrace, Po2Set, QuantTensor, Result, SeLayer, SeLayout,
    SeSlice, WeightData,
};
use se_tensor::Mat;

/// The four magic bytes opening every SmartExchange artifact file.
pub const MAGIC: [u8; 4] = *b"SETR";

/// Current format version. Readers accept exactly this version; the
/// compatibility policy (bump on any layout change, no silent migration)
/// is documented in `docs/TRACE_FORMAT.md`.
pub const FORMAT_VERSION: u16 = 1;

/// What a serialized file contains, tagged in the header so a trace file
/// can never be mistaken for a compressed-network file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PayloadKind {
    /// A set of per-layer simulation trace pairs (`se_models::traces`).
    TraceSet,
    /// A compressed network with its reports (`se_core`'s
    /// `CompressedNetwork`).
    CompressedNetwork,
}

impl PayloadKind {
    fn tag(self) -> u8 {
        match self {
            PayloadKind::TraceSet => 1,
            PayloadKind::CompressedNetwork => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            1 => Ok(PayloadKind::TraceSet),
            2 => Ok(PayloadKind::CompressedNetwork),
            other => Err(err(format!("unknown payload kind tag {other}"))),
        }
    }
}

fn err(reason: impl Into<String>) -> IrError {
    IrError::Serialize { reason: reason.into() }
}

/// Checked `usize → u32` for dimension fields (layer dimensions are far
/// below `u32::MAX`; the check guards against corrupted inputs).
fn dim_u32(v: usize, what: &str) -> Result<u32> {
    u32::try_from(v).map_err(|_| err(format!("{what} = {v} does not fit the u32 layout field")))
}

/// An append-only little-endian byte sink.
///
/// All `put_*` methods write the exact layouts documented in
/// `docs/TRACE_FORMAT.md`; writing is infallible (memory-backed).
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian two's-complement `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its exact little-endian bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte (`0` or `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string: `u32` byte length, then the bytes.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] for strings longer than `u32::MAX`
    /// bytes.
    pub fn put_str(&mut self, v: &str) -> Result<()> {
        let len = dim_u32(v.len(), "string length")?;
        self.put_u32(len);
        self.buf.extend_from_slice(v.as_bytes());
        Ok(())
    }

    /// Appends an `f32` slice as consecutive bit patterns (no length
    /// prefix; the element count comes from the surrounding layout).
    pub fn put_f32_slice(&mut self, v: &[f32]) {
        self.buf.reserve(v.len() * 4);
        for &x in v {
            self.put_f32(x);
        }
    }

    /// Appends an `i8` slice as consecutive two's-complement bytes (no
    /// length prefix).
    pub fn put_i8_slice(&mut self, v: &[i8]) {
        self.buf.reserve(v.len());
        for &x in v {
            self.buf.push(x as u8);
        }
    }
}

/// A bounds-checked little-endian byte source over a borrowed buffer.
///
/// Every `get_*` method fails with [`IrError::Serialize`] instead of
/// panicking when the buffer is truncated.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Absolute byte offset of the next read — the cursor into the
    /// borrowed buffer. Lets a caller record where a record started and
    /// ended to build an offset index over the underlying bytes.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Fails unless the buffer was consumed exactly to its end — trailing
    /// garbage is as much a corruption signal as truncation.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] if bytes remain.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(err(format!("{} trailing bytes after payload", self.remaining())));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(err(format!(
                "truncated input: wanted {n} bytes at offset {}, {} available",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] on truncation.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] on truncation.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("length checked")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] on truncation.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] on truncation.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    /// Reads a little-endian two's-complement `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] on truncation.
    pub fn get_i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    /// Reads an `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] on truncation.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    /// Reads a `bool` byte, rejecting anything but `0` and `1`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] on truncation or a non-boolean byte.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(err(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| err(format!("invalid UTF-8 string: {e}")))
    }

    /// Reads `n` consecutive `f32` bit patterns.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] on truncation.
    pub fn get_f32_vec(&mut self, n: usize) -> Result<Vec<f32>> {
        let bytes = self.take(n.checked_mul(4).ok_or_else(|| err("f32 count overflow"))?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunk")))
            .collect())
    }

    /// Reads `n` consecutive `i8` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Serialize`] on truncation.
    pub fn get_i8_vec(&mut self, n: usize) -> Result<Vec<i8>> {
        Ok(self.take(n)?.iter().map(|&b| b as i8).collect())
    }
}

/// Writes the file header: [`MAGIC`], [`FORMAT_VERSION`], payload kind.
pub fn write_header(w: &mut ByteWriter, kind: PayloadKind) {
    w.put_bytes(&MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_u8(kind.tag());
}

/// Reads and validates the file header, returning the payload kind.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on wrong magic, an unsupported format
/// version, or an unknown payload tag.
pub fn read_header(r: &mut ByteReader<'_>) -> Result<PayloadKind> {
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(err(format!("bad magic {magic:02x?}, expected {MAGIC:02x?} (\"SETR\")")));
    }
    let version = r.get_u16()?;
    if version != FORMAT_VERSION {
        return Err(err(format!(
            "unsupported format version {version} (this build reads version {FORMAT_VERSION})"
        )));
    }
    PayloadKind::from_tag(r.get_u8()?)
}

/// Reads and validates the header, additionally requiring `expected`.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on header problems or a payload-kind
/// mismatch (e.g. opening a compressed-network file as a trace set).
pub fn expect_header(r: &mut ByteReader<'_>, expected: PayloadKind) -> Result<()> {
    let kind = read_header(r)?;
    if kind != expected {
        return Err(err(format!("payload is {kind:?}, expected {expected:?}")));
    }
    Ok(())
}

const KIND_CONV: u8 = 0;
const KIND_DEPTHWISE: u8 = 1;
const KIND_LINEAR: u8 = 2;
const KIND_SQUEEZE_EXCITE: u8 = 3;

/// Writes a [`LayerKind`]: a one-byte tag plus its `u32` dimensions.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] if a dimension exceeds `u32::MAX`.
pub fn write_layer_kind(w: &mut ByteWriter, kind: &LayerKind) -> Result<()> {
    match *kind {
        LayerKind::Conv2d { in_channels, out_channels, kernel, stride, padding } => {
            w.put_u8(KIND_CONV);
            w.put_u32(dim_u32(in_channels, "in_channels")?);
            w.put_u32(dim_u32(out_channels, "out_channels")?);
            w.put_u32(dim_u32(kernel, "kernel")?);
            w.put_u32(dim_u32(stride, "stride")?);
            w.put_u32(dim_u32(padding, "padding")?);
        }
        LayerKind::DepthwiseConv2d { channels, kernel, stride, padding } => {
            w.put_u8(KIND_DEPTHWISE);
            w.put_u32(dim_u32(channels, "channels")?);
            w.put_u32(dim_u32(kernel, "kernel")?);
            w.put_u32(dim_u32(stride, "stride")?);
            w.put_u32(dim_u32(padding, "padding")?);
        }
        LayerKind::Linear { in_features, out_features } => {
            w.put_u8(KIND_LINEAR);
            w.put_u32(dim_u32(in_features, "in_features")?);
            w.put_u32(dim_u32(out_features, "out_features")?);
        }
        LayerKind::SqueezeExcite { channels, reduced } => {
            w.put_u8(KIND_SQUEEZE_EXCITE);
            w.put_u32(dim_u32(channels, "channels")?);
            w.put_u32(dim_u32(reduced, "reduced")?);
        }
    }
    Ok(())
}

/// Reads a [`LayerKind`] written by [`write_layer_kind`].
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on truncation or an unknown tag.
pub fn read_layer_kind(r: &mut ByteReader<'_>) -> Result<LayerKind> {
    match r.get_u8()? {
        KIND_CONV => Ok(LayerKind::Conv2d {
            in_channels: r.get_u32()? as usize,
            out_channels: r.get_u32()? as usize,
            kernel: r.get_u32()? as usize,
            stride: r.get_u32()? as usize,
            padding: r.get_u32()? as usize,
        }),
        KIND_DEPTHWISE => Ok(LayerKind::DepthwiseConv2d {
            channels: r.get_u32()? as usize,
            kernel: r.get_u32()? as usize,
            stride: r.get_u32()? as usize,
            padding: r.get_u32()? as usize,
        }),
        KIND_LINEAR => Ok(LayerKind::Linear {
            in_features: r.get_u32()? as usize,
            out_features: r.get_u32()? as usize,
        }),
        KIND_SQUEEZE_EXCITE => Ok(LayerKind::SqueezeExcite {
            channels: r.get_u32()? as usize,
            reduced: r.get_u32()? as usize,
        }),
        other => Err(err(format!("unknown layer-kind tag {other}"))),
    }
}

/// Writes a [`LayerDesc`]: name, kind, input `(H, W)`.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] if a field exceeds its layout width.
pub fn write_layer_desc(w: &mut ByteWriter, desc: &LayerDesc) -> Result<()> {
    w.put_str(desc.name())?;
    write_layer_kind(w, desc.kind())?;
    let (h, wd) = desc.input_hw();
    w.put_u32(dim_u32(h, "input height")?);
    w.put_u32(dim_u32(wd, "input width")?);
    Ok(())
}

/// Reads a [`LayerDesc`] written by [`write_layer_desc`].
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on malformed input.
pub fn read_layer_desc(r: &mut ByteReader<'_>) -> Result<LayerDesc> {
    let name = r.get_str()?;
    let kind = read_layer_kind(r)?;
    let h = r.get_u32()? as usize;
    let wd = r.get_u32()? as usize;
    Ok(LayerDesc::new(name, kind, (h, wd)))
}

/// Writes a [`Po2Set`]: `max_exp` as `i32`, `count` as `u32`.
pub fn write_po2(w: &mut ByteWriter, po2: &Po2Set) {
    w.put_i32(po2.max_exp());
    w.put_u32(po2.count());
}

/// Reads a [`Po2Set`] written by [`write_po2`], re-validating the range.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on truncation, or the underlying
/// [`IrError::InvalidPo2`] if the stored range is invalid.
pub fn read_po2(r: &mut ByteReader<'_>) -> Result<Po2Set> {
    let max_exp = r.get_i32()?;
    let count = r.get_u32()?;
    Po2Set::new(max_exp, count)
}

/// Writes a [`QuantTensor`]: rank, `u32` dims, code width, scale, codes.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] for ranks above 255 or oversized dims.
pub fn write_quant_tensor(w: &mut ByteWriter, q: &QuantTensor) -> Result<()> {
    let rank = u8::try_from(q.shape().len())
        .map_err(|_| err("tensor rank does not fit u8".to_string()))?;
    w.put_u8(rank);
    for &d in q.shape() {
        w.put_u32(dim_u32(d, "tensor dim")?);
    }
    let bits = u8::try_from(q.bits()).expect("bits validated to 2..=8");
    w.put_u8(bits);
    w.put_f32(q.scale());
    w.put_i8_slice(q.data());
    Ok(())
}

/// Reads a [`QuantTensor`] written by [`write_quant_tensor`].
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on malformed input, or the underlying
/// validation error from [`QuantTensor::from_parts`].
pub fn read_quant_tensor(r: &mut ByteReader<'_>) -> Result<QuantTensor> {
    let rank = r.get_u8()? as usize;
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.get_u32()? as usize);
    }
    let bits = u32::from(r.get_u8()?);
    let scale = r.get_f32()?;
    let len = shape.iter().try_fold(1usize, |acc, &d| {
        acc.checked_mul(d).ok_or_else(|| err("tensor volume overflow"))
    })?;
    let data = r.get_i8_vec(len)?;
    QuantTensor::from_parts(shape, data, scale, bits)
}

/// Writes a [`Mat`] as `u32` rows/cols plus its row-major `f32` blob.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] for dimensions above `u32::MAX`.
pub fn write_mat(w: &mut ByteWriter, m: &Mat) -> Result<()> {
    w.put_u32(dim_u32(m.rows(), "mat rows")?);
    w.put_u32(dim_u32(m.cols(), "mat cols")?);
    w.put_f32_slice(m.data());
    Ok(())
}

/// Reads a [`Mat`] written by [`write_mat`].
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on truncation or dimension overflow.
pub fn read_mat(r: &mut ByteReader<'_>) -> Result<Mat> {
    let rows = r.get_u32()? as usize;
    let cols = r.get_u32()? as usize;
    let len = rows.checked_mul(cols).ok_or_else(|| err("mat volume overflow"))?;
    let data = r.get_f32_vec(len)?;
    Mat::from_vec(data, rows, cols).map_err(IrError::from)
}

/// Whether a `Ce` code for this alphabet fits one byte (it does for every
/// alphabet up to 8-bit codes, including the paper's 4-bit default).
fn narrow_codes(po2: &Po2Set) -> bool {
    po2.code_bits() <= 8
}

/// Writes one [`SeSlice`] against its owning layer's alphabet: `Ce`
/// dimensions, the `Ce` entries as [`Po2Set::encode`] codes (one byte per
/// code for alphabets of at most 8 code bits, two otherwise), then the
/// basis as an `f32` [`Mat`].
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on oversized dimensions, or
/// [`IrError::InvalidPo2`] if a `Ce` entry is not in the alphabet (cannot
/// happen for slices built through [`SeSlice::new`]).
pub fn write_se_slice(w: &mut ByteWriter, slice: &SeSlice, po2: &Po2Set) -> Result<()> {
    let ce = slice.ce();
    w.put_u32(dim_u32(ce.rows(), "Ce rows")?);
    w.put_u32(dim_u32(ce.cols(), "Ce cols")?);
    let narrow = narrow_codes(po2);
    for &v in ce.data() {
        let code = po2.encode(v)?;
        if narrow {
            w.put_u8(u8::try_from(code).expect("code fits 8 bits by alphabet width"));
        } else {
            w.put_u16(code);
        }
    }
    write_mat(w, slice.basis())
}

/// Reads an [`SeSlice`] written by [`write_se_slice`], decoding the `Ce`
/// codes against the given alphabet and re-validating the slice.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on malformed input, or the underlying
/// decode/validation error.
pub fn read_se_slice(r: &mut ByteReader<'_>, po2: &Po2Set) -> Result<SeSlice> {
    let rows = r.get_u32()? as usize;
    let cols = r.get_u32()? as usize;
    let len = rows.checked_mul(cols).ok_or_else(|| err("Ce volume overflow"))?;
    let narrow = narrow_codes(po2);
    // Capacity is capped by the bytes actually present so a corrupted count
    // cannot trigger a giant allocation; truncation errors out on read.
    let mut data = Vec::with_capacity(len.min(r.remaining()));
    for _ in 0..len {
        let code = if narrow { u16::from(r.get_u8()?) } else { r.get_u16()? };
        data.push(po2.decode(code)?);
    }
    let ce = Mat::from_vec(data, rows, cols).map_err(IrError::from)?;
    let basis = read_mat(r)?;
    SeSlice::new(ce, basis, po2)
}

const LAYOUT_CONV_PER_FILTER: u8 = 0;
const LAYOUT_FC_PER_ROW: u8 = 1;

/// Writes an [`SeLayout`]: a one-byte tag plus its `u32` fields.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] for fields above `u32::MAX`.
pub fn write_se_layout(w: &mut ByteWriter, layout: &SeLayout) -> Result<()> {
    match *layout {
        SeLayout::ConvPerFilter { out_channels, in_channels, kernel, slices_per_filter } => {
            w.put_u8(LAYOUT_CONV_PER_FILTER);
            w.put_u32(dim_u32(out_channels, "out_channels")?);
            w.put_u32(dim_u32(in_channels, "in_channels")?);
            w.put_u32(dim_u32(kernel, "kernel")?);
            w.put_u32(dim_u32(slices_per_filter, "slices_per_filter")?);
        }
        SeLayout::FcPerRow { out_features, in_features, width, slices_per_row } => {
            w.put_u8(LAYOUT_FC_PER_ROW);
            w.put_u32(dim_u32(out_features, "out_features")?);
            w.put_u32(dim_u32(in_features, "in_features")?);
            w.put_u32(dim_u32(width, "width")?);
            w.put_u32(dim_u32(slices_per_row, "slices_per_row")?);
        }
    }
    Ok(())
}

/// Reads an [`SeLayout`] written by [`write_se_layout`].
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on truncation or an unknown tag.
pub fn read_se_layout(r: &mut ByteReader<'_>) -> Result<SeLayout> {
    match r.get_u8()? {
        LAYOUT_CONV_PER_FILTER => Ok(SeLayout::ConvPerFilter {
            out_channels: r.get_u32()? as usize,
            in_channels: r.get_u32()? as usize,
            kernel: r.get_u32()? as usize,
            slices_per_filter: r.get_u32()? as usize,
        }),
        LAYOUT_FC_PER_ROW => Ok(SeLayout::FcPerRow {
            out_features: r.get_u32()? as usize,
            in_features: r.get_u32()? as usize,
            width: r.get_u32()? as usize,
            slices_per_row: r.get_u32()? as usize,
        }),
        other => Err(err(format!("unknown SE layout tag {other}"))),
    }
}

/// Writes an [`SeLayer`]: alphabet, layout, slice count, slices.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] for oversized fields.
pub fn write_se_layer(w: &mut ByteWriter, layer: &SeLayer) -> Result<()> {
    write_po2(w, layer.po2());
    write_se_layout(w, layer.layout())?;
    w.put_u32(dim_u32(layer.slices().len(), "slice count")?);
    for slice in layer.slices() {
        write_se_slice(w, slice, layer.po2())?;
    }
    Ok(())
}

/// Reads an [`SeLayer`] written by [`write_se_layer`], re-validating the
/// slice inventory against the layout.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on malformed input, or the underlying
/// validation error from [`SeLayer::new`].
pub fn read_se_layer(r: &mut ByteReader<'_>) -> Result<SeLayer> {
    let po2 = read_po2(r)?;
    let layout = read_se_layout(r)?;
    let n = r.get_u32()? as usize;
    let mut slices = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        slices.push(read_se_slice(r, &po2)?);
    }
    SeLayer::new(layout, po2, slices)
}

const WEIGHTS_DENSE: u8 = 0;
const WEIGHTS_SE: u8 = 1;

/// Writes a [`WeightData`]: a one-byte tag, then the dense tensor or the
/// SE layer list.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] for oversized fields.
pub fn write_weight_data(w: &mut ByteWriter, weights: &WeightData) -> Result<()> {
    match weights {
        WeightData::Dense(q) => {
            w.put_u8(WEIGHTS_DENSE);
            write_quant_tensor(w, q)
        }
        WeightData::Se(layers) => {
            w.put_u8(WEIGHTS_SE);
            w.put_u32(dim_u32(layers.len(), "SE layer count")?);
            for l in layers {
                write_se_layer(w, l)?;
            }
            Ok(())
        }
    }
}

/// Reads a [`WeightData`] written by [`write_weight_data`].
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on malformed input.
pub fn read_weight_data(r: &mut ByteReader<'_>) -> Result<WeightData> {
    match r.get_u8()? {
        WEIGHTS_DENSE => Ok(WeightData::Dense(read_quant_tensor(r)?)),
        WEIGHTS_SE => {
            let n = r.get_u32()? as usize;
            let mut layers = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                layers.push(read_se_layer(r)?);
            }
            Ok(WeightData::Se(layers))
        }
        other => Err(err(format!("unknown weight-data tag {other}"))),
    }
}

/// Writes a [`LayerTrace`]: descriptor, weights, input activations.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] for oversized fields.
pub fn write_layer_trace(w: &mut ByteWriter, trace: &LayerTrace) -> Result<()> {
    write_layer_desc(w, trace.desc())?;
    write_weight_data(w, trace.weights())?;
    write_quant_tensor(w, trace.input())
}

/// Reads a [`LayerTrace`] written by [`write_layer_trace`], re-validating
/// the input volume against the descriptor.
///
/// # Errors
///
/// Returns [`IrError::Serialize`] on malformed input, or the underlying
/// validation error from [`LayerTrace::new`].
pub fn read_layer_trace(r: &mut ByteReader<'_>) -> Result<LayerTrace> {
    let desc = read_layer_desc(r)?;
    let weights = read_weight_data(r)?;
    let input = read_quant_tensor(r)?;
    LayerTrace::new(desc, weights, input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use se_tensor::Tensor;

    fn sample_dense_trace() -> LayerTrace {
        let desc = LayerDesc::new(
            "c1",
            LayerKind::Conv2d { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 },
            (4, 4),
        );
        let w = QuantTensor::quantize(
            &Tensor::from_vec((0..9).map(|i| i as f32 / 7.0 - 0.5).collect(), &[1, 1, 3, 3])
                .unwrap(),
            8,
        )
        .unwrap();
        let x = QuantTensor::quantize(
            &Tensor::from_vec((0..16).map(|i| (i % 5) as f32 / 4.0).collect(), &[1, 4, 4]).unwrap(),
            8,
        )
        .unwrap();
        LayerTrace::new(desc, WeightData::Dense(w), x).unwrap()
    }

    fn sample_se_trace() -> LayerTrace {
        let po2 = Po2Set::default();
        let ce = Mat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 0.0], &[-0.25, 0.5, 0.015_625]])
            .unwrap();
        let basis = Mat::from_fn(3, 3, |i, j| (i as f32 - j as f32) / 3.0);
        let slice = SeSlice::new(ce, basis, &po2).unwrap();
        let layer = SeLayer::new(
            SeLayout::ConvPerFilter {
                out_channels: 1,
                in_channels: 1,
                kernel: 3,
                slices_per_filter: 1,
            },
            po2,
            vec![slice],
        )
        .unwrap();
        let desc = LayerDesc::new(
            "c1",
            LayerKind::Conv2d { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 },
            (4, 4),
        );
        let x = QuantTensor::quantize(&Tensor::full(&[1, 4, 4], 0.25), 8).unwrap();
        LayerTrace::new(desc, WeightData::Se(vec![layer]), x).unwrap()
    }

    #[test]
    fn primitive_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_i32(-9);
        w.put_f32(0.1);
        w.put_bool(true);
        w.put_str("héllo").unwrap();
        w.put_f32_slice(&[1.5, -2.25]);
        w.put_i8_slice(&[-128, 0, 127]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 513);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_i32().unwrap(), -9);
        assert_eq!(r.get_f32().unwrap().to_bits(), 0.1f32.to_bits());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_f32_vec(2).unwrap(), vec![1.5, -2.25]);
        assert_eq!(r.get_i8_vec(3).unwrap(), vec![-128, 0, 127]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u32(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..2]);
        assert!(matches!(r.get_u32(), Err(IrError::Serialize { .. })));
        let mut r = ByteReader::new(&bytes);
        r.get_u32().unwrap();
        assert!(matches!(r.get_u8(), Err(IrError::Serialize { .. })));
    }

    #[test]
    fn header_rejects_bad_magic_version_and_kind() {
        let mut w = ByteWriter::new();
        write_header(&mut w, PayloadKind::TraceSet);
        let good = w.into_bytes();
        assert_eq!(read_header(&mut ByteReader::new(&good)).unwrap(), PayloadKind::TraceSet);
        assert!(expect_header(&mut ByteReader::new(&good), PayloadKind::TraceSet).is_ok());
        assert!(expect_header(&mut ByteReader::new(&good), PayloadKind::CompressedNetwork).is_err());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(read_header(&mut ByteReader::new(&bad_magic)).is_err());

        let mut bad_version = good.clone();
        bad_version[4] = FORMAT_VERSION as u8 + 1;
        assert!(read_header(&mut ByteReader::new(&bad_version)).is_err());

        let mut bad_kind = good;
        bad_kind[6] = 0xee;
        assert!(read_header(&mut ByteReader::new(&bad_kind)).is_err());
    }

    #[test]
    fn layer_kind_roundtrip_all_variants() {
        let kinds = [
            LayerKind::Conv2d {
                in_channels: 3,
                out_channels: 64,
                kernel: 3,
                stride: 2,
                padding: 1,
            },
            LayerKind::DepthwiseConv2d { channels: 32, kernel: 3, stride: 1, padding: 1 },
            LayerKind::Linear { in_features: 4096, out_features: 1000 },
            LayerKind::SqueezeExcite { channels: 96, reduced: 4 },
        ];
        for kind in kinds {
            let mut w = ByteWriter::new();
            write_layer_kind(&mut w, &kind).unwrap();
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(read_layer_kind(&mut r).unwrap(), kind);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn quant_tensor_roundtrip_is_bit_exact() {
        let q = QuantTensor::quantize(
            &Tensor::from_vec(vec![0.9, -0.3, 0.02, 0.55, -1.0, 0.0], &[2, 3]).unwrap(),
            5,
        )
        .unwrap();
        let mut w = ByteWriter::new();
        write_quant_tensor(&mut w, &q).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = read_quant_tensor(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(q, back);
        assert_eq!(q.scale().to_bits(), back.scale().to_bits());
    }

    #[test]
    fn dense_trace_roundtrip() {
        let trace = sample_dense_trace();
        let mut w = ByteWriter::new();
        write_layer_trace(&mut w, &trace).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_layer_trace(&mut r).unwrap(), trace);
        r.expect_end().unwrap();
    }

    #[test]
    fn se_trace_roundtrip() {
        let trace = sample_se_trace();
        let mut w = ByteWriter::new();
        write_layer_trace(&mut w, &trace).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_layer_trace(&mut r).unwrap(), trace);
        r.expect_end().unwrap();
    }

    #[test]
    fn wide_alphabet_uses_u16_codes() {
        // count = 180 > 127 exponents: codes exceed one byte.
        let po2 = Po2Set::new(60, 180).unwrap();
        assert!(po2.code_bits() > 8);
        let ce = Mat::from_rows(&[&[2.0f32.powi(-100), 0.0, 2.0f32.powi(60)]]).unwrap();
        let slice = SeSlice::new(ce, Mat::from_fn(3, 2, |i, j| (i + j) as f32), &po2).unwrap();
        let mut w = ByteWriter::new();
        write_se_slice(&mut w, &slice, &po2).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_se_slice(&mut r, &po2).unwrap(), slice);
        r.expect_end().unwrap();
    }

    #[test]
    fn corrupted_payload_fails_validation_not_panics() {
        let trace = sample_se_trace();
        let mut w = ByteWriter::new();
        write_layer_trace(&mut w, &trace).unwrap();
        let bytes = w.into_bytes();
        // Flip every byte position one at a time; reading must never panic
        // (it may succeed when the flip lands in a don't-care float bit).
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xff;
            let mut r = ByteReader::new(&corrupted);
            let _ = read_layer_trace(&mut r);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let trace = sample_dense_trace();
        let mut w = ByteWriter::new();
        write_layer_trace(&mut w, &trace).unwrap();
        let mut bytes = w.into_bytes();
        bytes.push(0);
        let mut r = ByteReader::new(&bytes);
        read_layer_trace(&mut r).unwrap();
        assert!(r.expect_end().is_err());
    }
}
