use crate::{IrError, Result};
use se_tensor::Tensor;

/// A symmetric fixed-point quantized tensor (at most 8-bit codes).
///
/// The paper runs the accelerator comparison with 8-bit activations and
/// 8-bit baseline weights; `QuantTensor` is the representation the
/// simulators consume. Codes are stored as `i8`; the real value of a code
/// `q` is `q · scale`.
///
/// # Examples
///
/// ```
/// use se_ir::QuantTensor;
/// use se_tensor::Tensor;
///
/// # fn main() -> Result<(), se_ir::IrError> {
/// let t = Tensor::from_vec(vec![0.0, 0.5, -1.0, 0.25], &[4])?;
/// let q = QuantTensor::quantize(&t, 8)?;
/// assert_eq!(q.data()[0], 0);
/// assert_eq!(q.data()[2], -127);       // max magnitude pins the scale
/// assert_eq!(q.zero_count(), 1);
/// let back = q.dequantize();
/// assert!((back.data()[1] - 0.5).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    shape: Vec<usize>,
    data: Vec<i8>,
    scale: f32,
    bits: u32,
}

impl QuantTensor {
    /// Quantizes a tensor symmetrically to `bits`-bit signed codes
    /// (`2 <= bits <= 8`). The scale is chosen so the largest magnitude maps
    /// to the largest code.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidDescriptor`] if `bits` is outside `2..=8`.
    pub fn quantize(t: &Tensor, bits: u32) -> Result<Self> {
        if !(2..=8).contains(&bits) {
            return Err(IrError::InvalidDescriptor {
                reason: format!("quantization bits must be in 2..=8, got {bits}"),
            });
        }
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        let max_abs = t.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max_abs > 0.0 { max_abs / qmax } else { 1.0 };
        let data = t
            .data()
            .iter()
            .map(|&x| {
                let q = (x / scale).round().clamp(-qmax, qmax);
                q as i8
            })
            .collect();
        Ok(QuantTensor { shape: t.shape().to_vec(), data, scale, bits })
    }

    /// Reassembles a tensor from its raw parts — the exact inverse of
    /// reading back [`QuantTensor::shape`], [`QuantTensor::data`],
    /// [`QuantTensor::scale`], and [`QuantTensor::bits`] — used by the
    /// on-disk codec (`se_ir::serialize`) for bit-identical round trips.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidDescriptor`] if `bits` is outside `2..=8`,
    /// the data length does not match the shape volume, a code exceeds the
    /// `bits`-bit signed range, or the scale is not finite and positive.
    pub fn from_parts(shape: Vec<usize>, data: Vec<i8>, scale: f32, bits: u32) -> Result<Self> {
        if !(2..=8).contains(&bits) {
            return Err(IrError::InvalidDescriptor {
                reason: format!("quantization bits must be in 2..=8, got {bits}"),
            });
        }
        let volume: usize = shape.iter().product();
        if data.len() != volume {
            return Err(IrError::InvalidDescriptor {
                reason: format!(
                    "{} codes cannot form a tensor of shape {shape:?} ({volume} elements)",
                    data.len()
                ),
            });
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(IrError::InvalidDescriptor {
                reason: format!("scale {scale} must be finite and positive"),
            });
        }
        let qmax = ((1i32 << (bits - 1)) - 1) as i8;
        if let Some(&q) = data.iter().find(|&&q| q > qmax || q < -qmax) {
            return Err(IrError::InvalidDescriptor {
                reason: format!("code {q} exceeds the {bits}-bit signed range ±{qmax}"),
            });
        }
        Ok(QuantTensor { shape, data, scale, bits })
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The quantized codes, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The scale factor (`value = code · scale`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of codes equal to zero.
    pub fn zero_count(&self) -> usize {
        self.data.iter().filter(|&&q| q == 0).count()
    }

    /// Fraction of zero codes in `[0, 1]` (the paper's element-wise
    /// activation sparsity).
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.zero_count() as f32 / self.data.len() as f32
    }

    /// Reconstructs an approximate `f32` tensor.
    pub fn dequantize(&self) -> Tensor {
        let data = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(data, &self.shape).expect("shape preserved from construction")
    }

    /// Total storage in bits (codes only, no scale/metadata).
    pub fn storage_bits(&self) -> u64 {
        self.data.len() as u64 * u64::from(self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n]).unwrap()
    }

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let orig = t(vec![0.9, -0.3, 0.02, 0.55, -1.0, 0.0]);
        let q = QuantTensor::quantize(&orig, 8).unwrap();
        let back = q.dequantize();
        for (a, b) in orig.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= q.scale() / 2.0 + 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn max_magnitude_maps_to_max_code() {
        let q = QuantTensor::quantize(&t(vec![2.0, -4.0, 1.0]), 8).unwrap();
        assert_eq!(q.data()[1], -127);
        assert_eq!(q.data()[0], 64); // 2.0 / (4.0/127) = 63.5 -> 64
    }

    #[test]
    fn lower_bit_widths() {
        let q = QuantTensor::quantize(&t(vec![1.0, 0.5, -1.0]), 4).unwrap();
        assert_eq!(q.bits(), 4);
        assert_eq!(q.data()[0], 7);
        assert_eq!(q.data()[2], -7);
        assert_eq!(q.storage_bits(), 12);
    }

    #[test]
    fn all_zero_tensor() {
        let q = QuantTensor::quantize(&t(vec![0.0; 5]), 8).unwrap();
        assert_eq!(q.sparsity(), 1.0);
        assert_eq!(q.dequantize().data(), &[0.0; 5]);
    }

    #[test]
    fn invalid_bits_rejected() {
        assert!(QuantTensor::quantize(&t(vec![1.0]), 1).is_err());
        assert!(QuantTensor::quantize(&t(vec![1.0]), 9).is_err());
    }

    #[test]
    fn sparsity_counts_exact_zero_codes() {
        // 0.001 with scale 1/127 quantizes to code 0.
        let q = QuantTensor::quantize(&t(vec![1.0, 0.001, 0.5]), 8).unwrap();
        assert_eq!(q.zero_count(), 1);
        assert!((q.sparsity() - 1.0 / 3.0).abs() < 1e-6);
    }
}
