use crate::{IrError, Po2Set, Result};
use se_tensor::{Mat, Tensor};

/// One decomposed unit: a sparse power-of-2 coefficient matrix `Ce`
/// (`rows × r`) and its small basis matrix `B` (`r × n`), with
/// `W_slice ≈ Ce · B` (Eq. 1 of the paper).
///
/// Invariant: every entry of `ce` is exactly representable in the owning
/// layer's [`Po2Set`] — enforced at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct SeSlice {
    ce: Mat,
    basis: Mat,
}

impl SeSlice {
    /// Creates a slice, validating shapes and the power-of-2 invariant.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::LayoutMismatch`] if `ce.cols() != basis.rows()`,
    /// or [`IrError::InvalidPo2`] if any `ce` entry is not in `po2`.
    pub fn new(ce: Mat, basis: Mat, po2: &Po2Set) -> Result<Self> {
        if ce.cols() != basis.rows() {
            return Err(IrError::LayoutMismatch {
                reason: format!(
                    "Ce is {}x{} but basis is {}x{}",
                    ce.rows(),
                    ce.cols(),
                    basis.rows(),
                    basis.cols()
                ),
            });
        }
        for (i, &v) in ce.data().iter().enumerate() {
            if !po2.contains(v) {
                return Err(IrError::InvalidPo2 {
                    reason: format!("Ce element {i} = {v} is not in Ω_P"),
                });
            }
        }
        Ok(SeSlice { ce, basis })
    }

    /// The coefficient matrix `Ce`.
    pub fn ce(&self) -> &Mat {
        &self.ce
    }

    /// The basis matrix `B`.
    pub fn basis(&self) -> &Mat {
        &self.basis
    }

    /// Rebuilds the dense slice `Ce · B`.
    pub fn reconstruct(&self) -> Mat {
        self.ce.matmul(&self.basis).expect("shapes validated at construction")
    }

    /// Per-row mask: `true` where the `Ce` row has at least one non-zero.
    ///
    /// This is exactly the 1-bit direct index the accelerator stores to skip
    /// zero weight vectors (Section IV-B, "Coefficient matrix indexing").
    pub fn row_nonzero_mask(&self) -> Vec<bool> {
        (0..self.ce.rows()).map(|i| self.ce.row(i).iter().any(|&x| x != 0.0)).collect()
    }

    /// Number of rows with at least one non-zero coefficient.
    pub fn nonzero_rows(&self) -> usize {
        self.row_nonzero_mask().iter().filter(|&&b| b).count()
    }

    /// Total non-zero coefficients.
    pub fn nnz(&self) -> usize {
        self.ce.data().iter().filter(|&&x| x != 0.0).count()
    }

    /// Total number of shift-and-add operations needed to rebuild this
    /// slice's weights (one per non-zero coefficient per basis column).
    pub fn rebuild_ops(&self) -> u64 {
        self.nnz() as u64 * self.basis.cols() as u64
    }
}

/// How a sequence of [`SeSlice`]s maps back onto a layer's weight tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeLayout {
    /// CONV with `R = S = kernel > 1` (Section III-C, Case 1): each of the
    /// `out_channels` filters is reshaped to a `(in_channels·kernel) × kernel`
    /// matrix and decomposed independently, possibly split into
    /// `slices_per_filter` consecutive row chunks.
    ConvPerFilter {
        /// Output channels (`M`).
        out_channels: usize,
        /// Input channels (`C`); `1` for depth-wise CONV.
        in_channels: usize,
        /// Kernel side (`R = S`).
        kernel: usize,
        /// Row chunks per filter.
        slices_per_filter: usize,
    },
    /// FC layers and 1×1 CONV (Section III-C, Case 2): each of the
    /// `out_features` weight rows (length `in_features`, zero-padded to a
    /// multiple of `width`) is reshaped to `(padded/width) × width` and
    /// decomposed, possibly split into `slices_per_row` row chunks.
    FcPerRow {
        /// Output features / output channels (`M`).
        out_features: usize,
        /// Input features / input channels (`C`).
        in_features: usize,
        /// Reshape width (`S`).
        width: usize,
        /// Row chunks per reshaped row-matrix.
        slices_per_row: usize,
    },
}

impl SeLayout {
    /// Number of slices the layout expects.
    pub fn expected_slices(&self) -> usize {
        match *self {
            SeLayout::ConvPerFilter { out_channels, slices_per_filter, .. } => {
                out_channels * slices_per_filter
            }
            SeLayout::FcPerRow { out_features, slices_per_row, .. } => {
                out_features * slices_per_row
            }
        }
    }

    /// Rows of the full reshaped matrix per decomposition unit
    /// (filter or FC row).
    pub fn rows_per_unit(&self) -> usize {
        match *self {
            SeLayout::ConvPerFilter { in_channels, kernel, .. } => in_channels * kernel,
            SeLayout::FcPerRow { in_features, width, .. } => in_features.div_ceil(width),
        }
    }
}

/// A layer's weights in SmartExchange form: an ordered list of slices plus
/// the layout that maps them back to the dense weight tensor.
///
/// # Examples
///
/// Rebuilding a 1-filter 3×3 CONV layer from its SE form:
///
/// ```
/// use se_ir::{Po2Set, SeLayer, SeLayout, SeSlice};
/// use se_tensor::Mat;
///
/// # fn main() -> Result<(), se_ir::IrError> {
/// let po2 = Po2Set::default();
/// let ce = Mat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.5, 0.0], &[0.0, 0.0, 0.25]])?;
/// let basis = Mat::identity(3);
/// let slice = SeSlice::new(ce, basis, &po2)?;
/// let layer = SeLayer::new(
///     SeLayout::ConvPerFilter { out_channels: 1, in_channels: 1, kernel: 3, slices_per_filter: 1 },
///     po2,
///     vec![slice],
/// )?;
/// let w = layer.reconstruct_weights()?;
/// assert_eq!(w.shape(), &[1, 1, 3, 3]);
/// assert_eq!(w.at(&[0, 0, 1, 1]), 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SeLayer {
    layout: SeLayout,
    po2: Po2Set,
    slices: Vec<SeSlice>,
}

impl SeLayer {
    /// Creates a compressed layer, validating the slice inventory against
    /// the layout.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::LayoutMismatch`] if the slice count differs from
    /// the layout's expectation or the per-unit row counts do not add up.
    pub fn new(layout: SeLayout, po2: Po2Set, slices: Vec<SeSlice>) -> Result<Self> {
        if slices.len() != layout.expected_slices() {
            return Err(IrError::LayoutMismatch {
                reason: format!(
                    "layout expects {} slices, found {}",
                    layout.expected_slices(),
                    slices.len()
                ),
            });
        }
        let per_unit = match layout {
            SeLayout::ConvPerFilter { slices_per_filter, .. } => slices_per_filter,
            SeLayout::FcPerRow { slices_per_row, .. } => slices_per_row,
        };
        let rows_per_unit = layout.rows_per_unit();
        for unit in slices.chunks(per_unit) {
            let rows: usize = unit.iter().map(|s| s.ce().rows()).sum();
            if rows != rows_per_unit {
                return Err(IrError::LayoutMismatch {
                    reason: format!("unit rows {rows} do not match layout's {rows_per_unit}"),
                });
            }
        }
        Ok(SeLayer { layout, po2, slices })
    }

    /// The layout mapping slices to the weight tensor.
    pub fn layout(&self) -> &SeLayout {
        &self.layout
    }

    /// The power-of-2 alphabet the coefficients use.
    pub fn po2(&self) -> &Po2Set {
        &self.po2
    }

    /// The decomposed slices in layout order.
    pub fn slices(&self) -> &[SeSlice] {
        &self.slices
    }

    /// Rebuilds the dense weight tensor (`(M, C, R, S)` for CONV layouts,
    /// `(M, C)` for FC layouts).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Tensor`] if an internal reshape fails (cannot
    /// happen for layouts validated at construction).
    pub fn reconstruct_weights(&self) -> Result<Tensor> {
        match self.layout {
            SeLayout::ConvPerFilter { out_channels, in_channels, kernel, slices_per_filter } => {
                let mut data = Vec::with_capacity(out_channels * in_channels * kernel * kernel);
                for unit in self.slices.chunks(slices_per_filter) {
                    for slice in unit {
                        data.extend_from_slice(slice.reconstruct().data());
                    }
                }
                Ok(Tensor::from_vec(data, &[out_channels, in_channels, kernel, kernel])?)
            }
            SeLayout::FcPerRow { out_features, in_features, width, slices_per_row } => {
                let padded = in_features.div_ceil(width) * width;
                let mut data = Vec::with_capacity(out_features * in_features);
                for unit in self.slices.chunks(slices_per_row) {
                    let mut row = Vec::with_capacity(padded);
                    for slice in unit {
                        row.extend_from_slice(slice.reconstruct().data());
                    }
                    row.truncate(in_features);
                    data.extend_from_slice(&row);
                }
                Ok(Tensor::from_vec(data, &[out_features, in_features])?)
            }
        }
    }

    /// Total non-zero coefficients across slices.
    pub fn nnz(&self) -> usize {
        self.slices.iter().map(SeSlice::nnz).sum()
    }

    /// Total `Ce` rows across slices.
    pub fn total_rows(&self) -> usize {
        self.slices.iter().map(|s| s.ce().rows()).sum()
    }

    /// Total rows with at least one non-zero (the rows the accelerator
    /// actually fetches and computes on).
    pub fn total_nonzero_rows(&self) -> usize {
        self.slices.iter().map(SeSlice::nonzero_rows).sum()
    }

    /// Vector-wise sparsity: fraction of all-zero `Ce` rows, in `[0, 1]`.
    pub fn vector_sparsity(&self) -> f32 {
        let total = self.total_rows();
        if total == 0 {
            return 0.0;
        }
        (total - self.total_nonzero_rows()) as f32 / total as f32
    }

    /// Total shift-and-add operations to rebuild all weights once.
    pub fn rebuild_ops(&self) -> u64 {
        self.slices.iter().map(SeSlice::rebuild_ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn po2() -> Po2Set {
        Po2Set::default()
    }

    fn slice(rows: usize, diag: f32) -> SeSlice {
        let mut ce = Mat::zeros(rows, 3);
        for i in 0..rows.min(3) {
            ce.set(i, i, diag);
        }
        SeSlice::new(ce, Mat::identity(3), &po2()).unwrap()
    }

    #[test]
    fn slice_rejects_non_po2() {
        let ce = Mat::from_rows(&[&[0.3, 0.0, 0.0]]).unwrap();
        assert!(matches!(
            SeSlice::new(ce, Mat::identity(3), &po2()),
            Err(IrError::InvalidPo2 { .. })
        ));
    }

    #[test]
    fn slice_rejects_shape_mismatch() {
        let ce = Mat::zeros(4, 2);
        assert!(matches!(
            SeSlice::new(ce, Mat::identity(3), &po2()),
            Err(IrError::LayoutMismatch { .. })
        ));
    }

    #[test]
    fn slice_row_stats() {
        let ce = Mat::from_rows(&[&[0.5, 0.0, 0.0], &[0.0, 0.0, 0.0], &[0.25, -0.5, 0.0]]).unwrap();
        let s = SeSlice::new(ce, Mat::identity(3), &po2()).unwrap();
        assert_eq!(s.row_nonzero_mask(), vec![true, false, true]);
        assert_eq!(s.nonzero_rows(), 2);
        assert_eq!(s.nnz(), 3);
        assert_eq!(s.rebuild_ops(), 9);
    }

    #[test]
    fn conv_layer_reconstruction() {
        // 2 filters, C=1, 3x3 kernel; each filter one slice of 3 rows.
        let layer = SeLayer::new(
            SeLayout::ConvPerFilter {
                out_channels: 2,
                in_channels: 1,
                kernel: 3,
                slices_per_filter: 1,
            },
            po2(),
            vec![slice(3, 1.0), slice(3, 0.5)],
        )
        .unwrap();
        let w = layer.reconstruct_weights().unwrap();
        assert_eq!(w.shape(), &[2, 1, 3, 3]);
        assert_eq!(w.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(w.at(&[1, 0, 1, 1]), 0.5);
        assert_eq!(w.at(&[1, 0, 0, 1]), 0.0);
    }

    #[test]
    fn fc_layer_reconstruction_with_padding() {
        // 1 output row, 7 inputs, width 3 -> padded to 9, 3x3 reshaped.
        let ce = Mat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        let basis = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as f32 / 8.0);
        let s = SeSlice::new(ce, basis.clone(), &po2()).unwrap();
        let layer = SeLayer::new(
            SeLayout::FcPerRow { out_features: 1, in_features: 7, width: 3, slices_per_row: 1 },
            po2(),
            vec![s],
        )
        .unwrap();
        let w = layer.reconstruct_weights().unwrap();
        assert_eq!(w.shape(), &[1, 7]);
        // Identity Ce means the row is just the basis flattened, truncated to 7.
        assert_eq!(w.at(&[0, 4]), basis.get(1, 1));
    }

    #[test]
    fn layer_validates_slice_count() {
        let r = SeLayer::new(
            SeLayout::ConvPerFilter {
                out_channels: 2,
                in_channels: 1,
                kernel: 3,
                slices_per_filter: 1,
            },
            po2(),
            vec![slice(3, 1.0)],
        );
        assert!(matches!(r, Err(IrError::LayoutMismatch { .. })));
    }

    #[test]
    fn layer_validates_row_totals() {
        let r = SeLayer::new(
            SeLayout::ConvPerFilter {
                out_channels: 1,
                in_channels: 2,
                kernel: 3,
                slices_per_filter: 1,
            },
            po2(),
            vec![slice(3, 1.0)], // needs 6 rows
        );
        assert!(matches!(r, Err(IrError::LayoutMismatch { .. })));
    }

    #[test]
    fn vector_sparsity_aggregation() {
        let ce = Mat::from_rows(&[&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 0.0]]).unwrap();
        let s = SeSlice::new(ce, Mat::identity(3), &po2()).unwrap();
        let layer = SeLayer::new(
            SeLayout::ConvPerFilter {
                out_channels: 1,
                in_channels: 1,
                kernel: 3,
                slices_per_filter: 1,
            },
            po2(),
            vec![s],
        )
        .unwrap();
        assert!((layer.vector_sparsity() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(layer.total_nonzero_rows(), 1);
    }

    #[test]
    fn multi_slice_filters() {
        // One filter with C=2, kernel=3 (6 rows) split into two 3-row slices.
        let layer = SeLayer::new(
            SeLayout::ConvPerFilter {
                out_channels: 1,
                in_channels: 2,
                kernel: 3,
                slices_per_filter: 2,
            },
            po2(),
            vec![slice(3, 1.0), slice(3, 0.25)],
        )
        .unwrap();
        let w = layer.reconstruct_weights().unwrap();
        assert_eq!(w.shape(), &[1, 2, 3, 3]);
        assert_eq!(w.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(w.at(&[0, 1, 0, 0]), 0.25);
    }
}
