//! Bit-level and Booth-digit sparsity of 8-bit values.
//!
//! The SmartExchange accelerator's bit-serial multipliers process only the
//! *essential* bits of each activation; with a 4-bit (radix-4) Booth
//! encoder in front (Section IV-B, after Bit-pragmatic \[1\] and
//! Bit-Tactical \[10\]), the work per multiplication is the number of
//! non-zero Booth digits. Fig. 4 reports both flavours of sparsity for six
//! networks; this module provides the exact counting.

/// Number of set bits in the two's-complement representation of an 8-bit
/// code (the "essential bits" Bit-pragmatic-style accelerators process).
///
/// # Examples
///
/// ```
/// use se_ir::booth;
///
/// assert_eq!(booth::nonzero_bits(0), 0);
/// assert_eq!(booth::nonzero_bits(5), 2);    // 0b0000_0101
/// assert_eq!(booth::nonzero_bits(-1), 8);   // 0b1111_1111
/// ```
pub fn nonzero_bits(code: i8) -> u32 {
    (code as u8).count_ones()
}

/// Radix-4 Booth digits of an 8-bit two's-complement value, least
/// significant first. Each digit is in `{-2, -1, 0, 1, 2}` and
/// `value = Σ digit[i] · 4^i`.
pub fn booth_digits(code: i8) -> [i8; 4] {
    let bits = code as u8;
    let bit = |i: i32| -> i8 {
        if i < 0 {
            0
        } else if i >= 7 {
            // Sign extension: bit 7 repeats for two's complement.
            ((bits >> 7) & 1) as i8
        } else {
            ((bits >> i) & 1) as i8
        }
    };
    let mut digits = [0i8; 4];
    for (i, d) in digits.iter_mut().enumerate() {
        let p = 2 * i as i32;
        *d = bit(p - 1) + bit(p) - 2 * bit(p + 1);
    }
    digits
}

/// Number of non-zero radix-4 Booth digits of an 8-bit value — the cycle
/// count of one bit-serial multiplication by this activation.
///
/// # Examples
///
/// ```
/// use se_ir::booth;
///
/// assert_eq!(booth::booth_nonzero_digits(0), 0);
/// assert_eq!(booth::booth_nonzero_digits(64), 1);  // a single power of 4
/// assert!(booth::booth_nonzero_digits(85) >= 3);   // 0b0101_0101 is dense
/// ```
pub fn booth_nonzero_digits(code: i8) -> u32 {
    booth_digits(code).iter().filter(|&&d| d != 0).count() as u32
}

/// Aggregate bit/digit sparsity of a slice of 8-bit codes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BitSparsity {
    /// Fraction of zero bits (out of 8 per code), without Booth encoding.
    pub plain: f32,
    /// Fraction of zero Booth digits (out of 4 per code).
    pub booth: f32,
    /// Fraction of codes equal to zero.
    pub element: f32,
}

/// Computes the aggregate sparsity statistics over `codes`
/// (the per-model bars of Fig. 4).
pub fn bit_sparsity(codes: &[i8]) -> BitSparsity {
    if codes.is_empty() {
        return BitSparsity::default();
    }
    let mut set_bits = 0u64;
    let mut set_digits = 0u64;
    let mut zero_codes = 0u64;
    for &c in codes {
        set_bits += u64::from(nonzero_bits(c));
        set_digits += u64::from(booth_nonzero_digits(c));
        if c == 0 {
            zero_codes += 1;
        }
    }
    let n = codes.len() as f32;
    BitSparsity {
        plain: 1.0 - set_bits as f32 / (8.0 * n),
        booth: 1.0 - set_digits as f32 / (4.0 * n),
        element: zero_codes as f32 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn booth_digits_reconstruct_every_value() {
        for v in i8::MIN..=i8::MAX {
            let d = booth_digits(v);
            let recon: i32 =
                d.iter().enumerate().map(|(i, &dv)| i32::from(dv) * 4i32.pow(i as u32)).sum();
            assert_eq!(recon, i32::from(v), "value {v} digits {d:?}");
        }
    }

    #[test]
    fn booth_digits_are_radix4_range() {
        for v in i8::MIN..=i8::MAX {
            for d in booth_digits(v) {
                assert!((-2..=2).contains(&d));
            }
        }
    }

    #[test]
    fn booth_digit_count_is_bounded() {
        for v in i8::MIN..=i8::MAX {
            assert!(booth_nonzero_digits(v) <= 4);
            if v != 0 {
                assert!(booth_nonzero_digits(v) >= 1, "non-zero {v} needs a digit");
            }
        }
    }

    #[test]
    fn powers_of_four_take_one_digit() {
        for &v in &[1i8, 4, 16, 64, -4, -16] {
            assert_eq!(booth_nonzero_digits(v), 1, "value {v}");
        }
    }

    #[test]
    fn runs_of_ones_are_cheap_with_booth() {
        // 0b0011_1111 = 63 = 64 - 1: two Booth digits, six set bits.
        assert_eq!(nonzero_bits(63), 6);
        assert_eq!(booth_nonzero_digits(63), 2);
    }

    #[test]
    fn aggregate_stats() {
        let s = bit_sparsity(&[0, 0, 64, -1]);
        assert_eq!(s.element, 0.5);
        // Set bits: 0 + 0 + 1 + 8 = 9 of 32.
        assert!((s.plain - (1.0 - 9.0 / 32.0)).abs() < 1e-6);
        assert_eq!(bit_sparsity(&[]), BitSparsity::default());
    }
}
