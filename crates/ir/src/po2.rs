use crate::{IrError, Result};

/// The power-of-2 quantization alphabet `Ω_P = {0} ∪ {±2^p | p ∈ P}` of
/// Eq. (2) in the paper, with `P` a contiguous integer range
/// `{max_exp - count + 1, …, max_exp}`.
///
/// A contiguous range is the hardware-natural choice: the exponent maps
/// directly to a shift amount in the rebuild engine's shift-and-add unit.
/// `|P| = count ≤ Np` controls the bit width of a non-zero code:
/// `code_bits = ceil(log2(2·count + 1))` (sign × count magnitudes + zero).
///
/// The paper's default configuration stores coefficients in 4 bits, which
/// accommodates `count = 7` exponents (e.g. `2^0 … 2^-6`) — exactly the
/// values visible in Fig. 1.
///
/// # Examples
///
/// ```
/// use se_ir::Po2Set;
///
/// let set = Po2Set::default(); // 4-bit: {0, ±2^0, ±2^-1, …, ±2^-6}
/// assert_eq!(set.code_bits(), 4);
/// assert_eq!(set.quantize(0.3), 0.25);     // nearest power of two
/// assert_eq!(set.quantize(-0.3), -0.25);
/// assert_eq!(set.quantize(0.0001), 0.0);   // underflows to zero
/// assert_eq!(set.quantize(7.0), 1.0);      // clamps to the largest value
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Po2Set {
    max_exp: i32,
    count: u32,
}

impl Po2Set {
    /// Creates a set with exponents `{max_exp - count + 1, …, max_exp}`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidPo2`] if `count == 0` or the exponent range
    /// leaves `f32` range.
    pub fn new(max_exp: i32, count: u32) -> Result<Self> {
        if count == 0 {
            return Err(IrError::InvalidPo2 { reason: "exponent set must be non-empty".into() });
        }
        let min_exp = max_exp - count as i32 + 1;
        if !(-120..=120).contains(&max_exp) || !(-120..=120).contains(&min_exp) {
            return Err(IrError::InvalidPo2 {
                reason: format!("exponent range [{min_exp}, {max_exp}] outside f32 range"),
            });
        }
        Ok(Po2Set { max_exp, count })
    }

    /// Creates the largest set representable in `bits` bits with the given
    /// maximum exponent: `count = 2^(bits-1) - 1` exponents.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidPo2`] for `bits < 2` or an out-of-range
    /// exponent span.
    pub fn with_bits(max_exp: i32, bits: u32) -> Result<Self> {
        if bits < 2 {
            return Err(IrError::InvalidPo2 {
                reason: format!("{bits}-bit codes cannot hold sign + exponent"),
            });
        }
        Po2Set::new(max_exp, (1u32 << (bits - 1)) - 1)
    }

    /// Largest exponent in `P`.
    pub fn max_exp(&self) -> i32 {
        self.max_exp
    }

    /// Smallest exponent in `P`.
    pub fn min_exp(&self) -> i32 {
        self.max_exp - self.count as i32 + 1
    }

    /// Number of exponents `|P|`.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Bits needed for one coefficient code (zero + sign × magnitudes).
    pub fn code_bits(&self) -> u32 {
        let codes = 2 * self.count + 1;
        u32::BITS - (codes - 1).leading_zeros()
    }

    /// Rounds `x` to the nearest element of `Ω_P`.
    ///
    /// Rounding happens in the log domain (nearest exponent), the standard
    /// choice for power-of-2 quantizers: magnitudes below the halfway point
    /// under `2^min_exp` become zero, magnitudes above `2^max_exp` clamp.
    pub fn quantize(&self, x: f32) -> f32 {
        if x == 0.0 || !x.is_finite() {
            return 0.0;
        }
        let sign = x.signum();
        let mag = x.abs();
        let p = mag.log2().round() as i32;
        if p > self.max_exp {
            return sign * (self.max_exp as f32).exp2();
        }
        if p < self.min_exp() {
            // Below the smallest representable exponent: check whether the
            // value still rounds up to 2^min_exp in the log domain.
            let min_val = (self.min_exp() as f32).exp2();
            // log-domain midpoint between 0 (−∞) and min_exp is −∞, so any
            // value whose nearest exponent is below min_exp becomes zero
            // unless it is within half an octave of min_exp.
            if mag >= min_val / std::f32::consts::SQRT_2 {
                return sign * min_val;
            }
            return 0.0;
        }
        sign * (p as f32).exp2()
    }

    /// Whether `x` is exactly representable in this set.
    pub fn contains(&self, x: f32) -> bool {
        if x == 0.0 {
            return true;
        }
        let mag = x.abs();
        let p = mag.log2();
        if p.fract() != 0.0 {
            return false;
        }
        let p = p as i32;
        p >= self.min_exp() && p <= self.max_exp
    }

    /// Encodes a representable value as a compact code
    /// (`0` = zero; otherwise `1 + 2·exp_index + sign_bit`).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidPo2`] if `x` is not in the set.
    pub fn encode(&self, x: f32) -> Result<u16> {
        if x == 0.0 {
            return Ok(0);
        }
        if !self.contains(x) {
            return Err(IrError::InvalidPo2 { reason: format!("{x} is not in Ω_P") });
        }
        let p = x.abs().log2() as i32;
        let idx = (self.max_exp - p) as u16;
        let sign_bit = u16::from(x < 0.0);
        Ok(1 + 2 * idx + sign_bit)
    }

    /// Decodes a code produced by [`Po2Set::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidPo2`] for out-of-range codes.
    pub fn decode(&self, code: u16) -> Result<f32> {
        if code == 0 {
            return Ok(0.0);
        }
        let idx = (code - 1) / 2;
        let sign = if (code - 1) % 2 == 1 { -1.0 } else { 1.0 };
        if u32::from(idx) >= self.count {
            return Err(IrError::InvalidPo2 { reason: format!("code {code} out of range") });
        }
        let p = self.max_exp - i32::from(idx);
        Ok(sign * (p as f32).exp2())
    }

    /// The exponents of `P` in decreasing order.
    pub fn exponents(&self) -> impl Iterator<Item = i32> + '_ {
        (0..self.count as i32).map(move |i| self.max_exp - i)
    }
}

impl Default for Po2Set {
    /// The paper's 4-bit coefficient configuration:
    /// exponents `{0, −1, …, −6}` (unit-normalised columns keep magnitudes
    /// at or below 1).
    fn default() -> Self {
        Po2Set::with_bits(0, 4).expect("static configuration is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_4bit_seven_exponents() {
        let s = Po2Set::default();
        assert_eq!(s.count(), 7);
        assert_eq!(s.code_bits(), 4);
        assert_eq!(s.max_exp(), 0);
        assert_eq!(s.min_exp(), -6);
        assert_eq!(s.exponents().collect::<Vec<_>>(), vec![0, -1, -2, -3, -4, -5, -6]);
    }

    #[test]
    fn quantize_rounds_in_log_domain() {
        let s = Po2Set::default();
        assert_eq!(s.quantize(1.0), 1.0);
        assert_eq!(s.quantize(0.5), 0.5);
        // 0.7: log2 = -0.51 -> rounds to -1 -> 0.5
        assert_eq!(s.quantize(0.7), 0.5);
        // 0.72: log2 = -0.47 -> rounds to 0 -> 1.0
        assert_eq!(s.quantize(0.72), 1.0);
        assert_eq!(s.quantize(-0.26), -0.25);
    }

    #[test]
    fn quantize_clamps_and_underflows() {
        let s = Po2Set::default();
        assert_eq!(s.quantize(100.0), 1.0);
        assert_eq!(s.quantize(-100.0), -1.0);
        assert_eq!(s.quantize(1e-6), 0.0);
        // Just above the min representable / sqrt(2) threshold survives.
        let min_val = 2.0f32.powi(-6);
        assert_eq!(s.quantize(min_val * 0.9), min_val);
        assert_eq!(s.quantize(f32::NAN), 0.0);
        assert_eq!(s.quantize(f32::INFINITY), 0.0);
    }

    #[test]
    fn contains_exact_membership() {
        let s = Po2Set::default();
        assert!(s.contains(0.0));
        assert!(s.contains(0.25));
        assert!(s.contains(-1.0));
        assert!(!s.contains(0.3));
        assert!(!s.contains(2.0)); // above max_exp
        assert!(!s.contains(2.0f32.powi(-7))); // below min_exp
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = Po2Set::default();
        for p in s.min_exp()..=s.max_exp() {
            for sign in [1.0f32, -1.0] {
                let v = sign * (p as f32).exp2();
                let code = s.encode(v).unwrap();
                assert!(u32::from(code) < (1 << s.code_bits()));
                assert_eq!(s.decode(code).unwrap(), v);
            }
        }
        assert_eq!(s.encode(0.0).unwrap(), 0);
        assert_eq!(s.decode(0).unwrap(), 0.0);
    }

    #[test]
    fn encode_rejects_unrepresentable() {
        let s = Po2Set::default();
        assert!(s.encode(0.3).is_err());
        assert!(s.decode(14).is_ok()); // 1 + 2*6 + 1 = 14 is the largest valid code
        assert!(s.decode(15).is_err()); // 15 would be exponent index 7 -> invalid
    }

    #[test]
    fn decode_rejects_out_of_range() {
        let s = Po2Set::new(0, 3).unwrap(); // codes 0..=6 valid
        assert!(s.decode(7).is_err());
    }

    #[test]
    fn code_bits_formula() {
        assert_eq!(Po2Set::new(0, 1).unwrap().code_bits(), 2); // 3 codes
        assert_eq!(Po2Set::new(0, 3).unwrap().code_bits(), 3); // 7 codes
        assert_eq!(Po2Set::new(0, 7).unwrap().code_bits(), 4); // 15 codes
        assert_eq!(Po2Set::new(0, 8).unwrap().code_bits(), 5); // 17 codes
    }

    #[test]
    fn with_bits_inverse_of_code_bits() {
        for bits in 2..8 {
            let s = Po2Set::with_bits(0, bits).unwrap();
            assert_eq!(s.code_bits(), bits);
        }
        assert!(Po2Set::with_bits(0, 1).is_err());
    }

    #[test]
    fn invalid_construction() {
        assert!(Po2Set::new(0, 0).is_err());
        assert!(Po2Set::new(-100, 60).is_err());
    }
}
