//! Interchange formats shared across the SmartExchange workspace.
//!
//! This crate defines the *data contracts* between the algorithm side
//! (`se-core`), the model zoo (`se-models`), and the hardware side
//! (`se-hw`, `se-baselines`):
//!
//! * [`LayerDesc`] / [`NetworkDesc`] — geometry of DNN layers and networks
//!   (the paper's `C, M, E, F, R, S, U` notation, Section II-A);
//! * [`Po2Set`] — the quantization alphabet `Ω_P = {0, ±2^p | p ∈ P}`
//!   (Section III-A, Eq. 2);
//! * [`QuantTensor`] — 8-bit fixed-point activation/weight tensors;
//! * [`SeLayer`] / [`SeSlice`] — the SmartExchange compressed weight format
//!   (basis matrix `B` + sparse power-of-2 coefficient matrix `Ce`);
//! * [`storage`] — bit-exact storage/compression-rate accounting
//!   (the CR definition of Section III-C);
//! * [`LayerTrace`] — the per-layer record (geometry + weights +
//!   activations) that the cycle-accurate simulators consume;
//! * [`serialize`] — the versioned binary codec behind the persisted
//!   trace artifacts (`docs/TRACE_FORMAT.md`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod layer;
mod network;
mod po2;
mod quant;
mod se_format;
mod trace;

pub mod booth;
pub mod serialize;
pub mod storage;

pub use error::IrError;
pub use layer::{LayerDesc, LayerKind};
pub use network::{Dataset, NetworkDesc};
pub use po2::Po2Set;
pub use quant::QuantTensor;
pub use se_format::{SeLayer, SeLayout, SeSlice};
pub use trace::{LayerTrace, WeightData};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, IrError>;
