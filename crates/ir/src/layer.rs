use crate::{IrError, Result};

/// The kind and intrinsic geometry of a compute layer.
///
/// Only layers that carry weights (and therefore matter to compression and
/// to the accelerators) are represented. Activation functions, batch-norm
/// folding, and pooling are handled by the NN stack; their effect on the
/// traces is reflected in the recorded activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Standard 2-D convolution with `M` output channels, `C` input
    /// channels, an `R × S` kernel (we use square kernels, `R = S = kernel`),
    /// stride `U` and symmetric zero padding.
    Conv2d {
        /// Input channels (`C`).
        in_channels: usize,
        /// Output channels (`M`).
        out_channels: usize,
        /// Kernel side (`R = S`).
        kernel: usize,
        /// Stride (`U`).
        stride: usize,
        /// Zero padding on each side.
        padding: usize,
    },
    /// Depth-wise 2-D convolution: one `kernel × kernel` filter per channel.
    DepthwiseConv2d {
        /// Channels (`C = M`).
        channels: usize,
        /// Kernel side.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        padding: usize,
    },
    /// Fully-connected layer (`C` inputs, `M` outputs).
    Linear {
        /// Input features (`C`).
        in_features: usize,
        /// Output features (`M`).
        out_features: usize,
    },
    /// Squeeze-and-excite block: global average pool, `channels → reduced`
    /// FC, ReLU, `reduced → channels` FC, sigmoid, channel-wise rescale.
    SqueezeExcite {
        /// Channels of the feature map being recalibrated.
        channels: usize,
        /// Bottleneck width of the two FC layers.
        reduced: usize,
    },
}

impl LayerKind {
    /// Number of weight parameters in the layer (biases excluded, as in the
    /// paper's storage accounting).
    pub fn params(&self) -> u64 {
        match *self {
            LayerKind::Conv2d { in_channels, out_channels, kernel, .. } => {
                (in_channels * out_channels * kernel * kernel) as u64
            }
            LayerKind::DepthwiseConv2d { channels, kernel, .. } => {
                (channels * kernel * kernel) as u64
            }
            LayerKind::Linear { in_features, out_features } => (in_features * out_features) as u64,
            LayerKind::SqueezeExcite { channels, reduced } => 2 * (channels * reduced) as u64,
        }
    }

    /// Whether the layer is processed by the CONV-style datapath
    /// (CONV, depth-wise CONV, squeeze-excite); FC layers are excluded from
    /// the accelerator-vs-baseline comparisons of Figs. 10–12 as in the
    /// paper.
    pub fn is_conv_like(&self) -> bool {
        !matches!(self, LayerKind::Linear { .. })
    }
}

/// A layer descriptor: kind plus the spatial size of its input feature map.
///
/// Together these determine parameter count, MAC count, and activation
/// volumes — everything the storage accounting and the simulators need.
///
/// # Examples
///
/// ```
/// use se_ir::{LayerDesc, LayerKind};
///
/// let l = LayerDesc::new(
///     "conv1",
///     LayerKind::Conv2d { in_channels: 3, out_channels: 64, kernel: 3, stride: 1, padding: 1 },
///     (32, 32),
/// );
/// assert_eq!(l.params(), 3 * 64 * 9);
/// assert_eq!(l.output_hw().unwrap(), (32, 32));
/// assert_eq!(l.macs().unwrap(), 64 * 32 * 32 * 3 * 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerDesc {
    name: String,
    kind: LayerKind,
    input_hw: (usize, usize),
}

impl LayerDesc {
    /// Creates a layer descriptor.
    pub fn new(name: impl Into<String>, kind: LayerKind, input_hw: (usize, usize)) -> Self {
        LayerDesc { name: name.into(), kind, input_hw }
    }

    /// The layer's name (unique within a network by convention).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer kind and intrinsic geometry.
    pub fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// Spatial size `(H, W)` of the input feature map (`(1, 1)` for FC).
    pub fn input_hw(&self) -> (usize, usize) {
        self.input_hw
    }

    /// Number of weight parameters.
    pub fn params(&self) -> u64 {
        self.kind.params()
    }

    /// Input channels (`C`), or input features for FC.
    pub fn in_channels(&self) -> usize {
        match self.kind {
            LayerKind::Conv2d { in_channels, .. } => in_channels,
            LayerKind::DepthwiseConv2d { channels, .. } => channels,
            LayerKind::Linear { in_features, .. } => in_features,
            LayerKind::SqueezeExcite { channels, .. } => channels,
        }
    }

    /// Output channels (`M`), or output features for FC.
    pub fn out_channels(&self) -> usize {
        match self.kind {
            LayerKind::Conv2d { out_channels, .. } => out_channels,
            LayerKind::DepthwiseConv2d { channels, .. } => channels,
            LayerKind::Linear { out_features, .. } => out_features,
            LayerKind::SqueezeExcite { channels, .. } => channels,
        }
    }

    /// Output spatial size `(E, F)`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidDescriptor`] if the kernel does not fit the
    /// padded input.
    pub fn output_hw(&self) -> Result<(usize, usize)> {
        let (h, w) = self.input_hw;
        let (kernel, stride, padding) = match self.kind {
            LayerKind::Conv2d { kernel, stride, padding, .. } => (kernel, stride, padding),
            LayerKind::DepthwiseConv2d { kernel, stride, padding, .. } => (kernel, stride, padding),
            LayerKind::Linear { .. } => return Ok((1, 1)),
            // Squeeze-excite rescales the map it was given.
            LayerKind::SqueezeExcite { .. } => return Ok((h, w)),
        };
        if stride == 0 {
            return Err(IrError::InvalidDescriptor {
                reason: format!("layer {}: stride must be positive", self.name),
            });
        }
        let eh = h + 2 * padding;
        let ew = w + 2 * padding;
        if eh < kernel || ew < kernel {
            return Err(IrError::InvalidDescriptor {
                reason: format!(
                    "layer {}: kernel {kernel} larger than padded input {eh}x{ew}",
                    self.name
                ),
            });
        }
        Ok(((eh - kernel) / stride + 1, (ew - kernel) / stride + 1))
    }

    /// Multiply-accumulate operations for one inference (batch 1).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidDescriptor`] if the geometry is invalid.
    pub fn macs(&self) -> Result<u64> {
        let (e, f) = self.output_hw()?;
        Ok(match self.kind {
            LayerKind::Conv2d { in_channels, out_channels, kernel, .. } => {
                (out_channels * e * f * in_channels * kernel * kernel) as u64
            }
            LayerKind::DepthwiseConv2d { channels, kernel, .. } => {
                (channels * e * f * kernel * kernel) as u64
            }
            LayerKind::Linear { in_features, out_features } => (in_features * out_features) as u64,
            LayerKind::SqueezeExcite { channels, reduced } => {
                // Two FCs plus the channel-wise rescale of the map.
                (2 * channels * reduced + channels * e * f) as u64
            }
        })
    }

    /// Number of input activation elements.
    pub fn input_elems(&self) -> u64 {
        let (h, w) = self.input_hw;
        (self.in_channels() * h * w) as u64
    }

    /// Number of output activation elements.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidDescriptor`] if the geometry is invalid.
    pub fn output_elems(&self) -> Result<u64> {
        let (e, f) = self.output_hw()?;
        Ok((self.out_channels() * e * f) as u64)
    }

    /// The shape of the weight tensor:
    /// `(M, C, R, S)` for CONV, `(C, R, S)` for depth-wise,
    /// `(M, C)` for FC, and `(2, channels, reduced)`-equivalent flattened
    /// pair for squeeze-excite.
    pub fn weight_shape(&self) -> Vec<usize> {
        match self.kind {
            LayerKind::Conv2d { in_channels, out_channels, kernel, .. } => {
                vec![out_channels, in_channels, kernel, kernel]
            }
            LayerKind::DepthwiseConv2d { channels, kernel, .. } => {
                vec![channels, kernel, kernel]
            }
            LayerKind::Linear { in_features, out_features } => vec![out_features, in_features],
            LayerKind::SqueezeExcite { channels, reduced } => vec![2, channels, reduced],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(c: usize, m: usize, k: usize, s: usize, p: usize, hw: usize) -> LayerDesc {
        LayerDesc::new(
            "t",
            LayerKind::Conv2d { in_channels: c, out_channels: m, kernel: k, stride: s, padding: p },
            (hw, hw),
        )
    }

    #[test]
    fn conv_params_and_macs() {
        let l = conv(64, 128, 3, 1, 1, 56);
        assert_eq!(l.params(), 64 * 128 * 9);
        assert_eq!(l.output_hw().unwrap(), (56, 56));
        assert_eq!(l.macs().unwrap(), (128 * 56 * 56 * 64 * 9) as u64);
    }

    #[test]
    fn strided_conv_halves_map() {
        let l = conv(64, 128, 3, 2, 1, 56);
        assert_eq!(l.output_hw().unwrap(), (28, 28));
    }

    #[test]
    fn depthwise_params_are_per_channel() {
        let l = LayerDesc::new(
            "dw",
            LayerKind::DepthwiseConv2d { channels: 32, kernel: 3, stride: 1, padding: 1 },
            (112, 112),
        );
        assert_eq!(l.params(), 32 * 9);
        assert_eq!(l.macs().unwrap(), (32 * 112 * 112 * 9) as u64);
        assert!(l.kind().is_conv_like());
    }

    #[test]
    fn linear_geometry() {
        let l = LayerDesc::new(
            "fc",
            LayerKind::Linear { in_features: 4096, out_features: 1000 },
            (1, 1),
        );
        assert_eq!(l.params(), 4096 * 1000);
        assert_eq!(l.output_hw().unwrap(), (1, 1));
        assert_eq!(l.macs().unwrap(), 4096 * 1000);
        assert!(!l.kind().is_conv_like());
    }

    #[test]
    fn squeeze_excite_geometry() {
        let l =
            LayerDesc::new("se", LayerKind::SqueezeExcite { channels: 96, reduced: 4 }, (56, 56));
        assert_eq!(l.params(), 2 * 96 * 4);
        assert_eq!(l.output_hw().unwrap(), (56, 56));
        assert!(l.kind().is_conv_like());
    }

    #[test]
    fn invalid_geometry_rejected() {
        let l = conv(3, 8, 7, 1, 0, 5);
        assert!(l.output_hw().is_err());
        assert!(l.macs().is_err());
    }

    #[test]
    fn activation_volumes() {
        let l = conv(3, 64, 3, 1, 1, 224);
        assert_eq!(l.input_elems(), 3 * 224 * 224);
        assert_eq!(l.output_elems().unwrap(), 64 * 224 * 224);
    }

    #[test]
    fn weight_shapes() {
        assert_eq!(conv(3, 64, 3, 1, 1, 32).weight_shape(), vec![64, 3, 3, 3]);
        let fc =
            LayerDesc::new("fc", LayerKind::Linear { in_features: 10, out_features: 4 }, (1, 1));
        assert_eq!(fc.weight_shape(), vec![4, 10]);
    }
}
