use crate::{IrError, LayerDesc, Result};

/// The dataset a benchmark network targets; fixes the nominal input size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Dataset {
    /// ImageNet classification (224 × 224 × 3 inputs).
    ImageNet,
    /// CIFAR-10 classification (32 × 32 × 3 inputs).
    Cifar10,
    /// CamVid segmentation (evaluated at 360 × 480 × 3; see DESIGN.md for
    /// the downscaling note).
    CamVid,
    /// MNIST classification (28 × 28 × 1 inputs).
    Mnist,
}

impl Dataset {
    /// Nominal input shape `(C, H, W)`.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        match self {
            Dataset::ImageNet => (3, 224, 224),
            Dataset::Cifar10 => (3, 32, 32),
            Dataset::CamVid => (3, 360, 480),
            Dataset::Mnist => (1, 28, 28),
        }
    }

    /// Number of target classes.
    pub fn classes(&self) -> usize {
        match self {
            Dataset::ImageNet => 1000,
            Dataset::Cifar10 => 10,
            Dataset::CamVid => 11,
            Dataset::Mnist => 10,
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dataset::ImageNet => "ImageNet",
            Dataset::Cifar10 => "CIFAR-10",
            Dataset::CamVid => "CamVid",
            Dataset::Mnist => "MNIST",
        };
        f.write_str(s)
    }
}

/// A network descriptor: an ordered list of weight-bearing layers plus the
/// dataset it targets.
///
/// # Examples
///
/// ```
/// use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};
///
/// # fn main() -> Result<(), se_ir::IrError> {
/// let net = NetworkDesc::new(
///     "tiny",
///     Dataset::Cifar10,
///     vec![
///         LayerDesc::new(
///             "conv1",
///             LayerKind::Conv2d { in_channels: 3, out_channels: 8, kernel: 3, stride: 1, padding: 1 },
///             (32, 32),
///         ),
///         LayerDesc::new(
///             "fc",
///             LayerKind::Linear { in_features: 8, out_features: 10 },
///             (1, 1),
///         ),
///     ],
/// )?;
/// assert_eq!(net.total_params(), 3 * 8 * 9 + 80);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkDesc {
    name: String,
    dataset: Dataset,
    layers: Vec<LayerDesc>,
}

impl NetworkDesc {
    /// Creates a network descriptor, validating every layer's geometry and
    /// name uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidDescriptor`] if a layer's geometry is
    /// invalid or two layers share a name.
    pub fn new(name: impl Into<String>, dataset: Dataset, layers: Vec<LayerDesc>) -> Result<Self> {
        let name = name.into();
        let mut seen = std::collections::HashSet::new();
        for l in &layers {
            l.output_hw()?; // validates geometry
            if !seen.insert(l.name().to_string()) {
                return Err(IrError::InvalidDescriptor {
                    reason: format!("network {name}: duplicate layer name {}", l.name()),
                });
            }
        }
        Ok(NetworkDesc { name, dataset, layers })
    }

    /// Network name (e.g. `"ResNet50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Target dataset.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// The ordered layers.
    pub fn layers(&self) -> &[LayerDesc] {
        &self.layers
    }

    /// Total weight parameters across all layers.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params()).sum()
    }

    /// Total MACs for one inference (batch 1). Layer geometries were
    /// validated at construction, so this cannot fail.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs().expect("validated at construction")).sum()
    }

    /// Model size in megabytes at FP32 (the paper's `Param.` column unit).
    pub fn fp32_megabytes(&self) -> f64 {
        self.total_params() as f64 * 4.0 / (1024.0 * 1024.0)
    }

    /// Layers that the CONV-style datapath processes (everything except FC);
    /// the subset used in the Figs. 10–12 comparisons.
    pub fn conv_like_layers(&self) -> impl Iterator<Item = &LayerDesc> {
        self.layers.iter().filter(|l| l.kind().is_conv_like())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    fn tiny() -> NetworkDesc {
        NetworkDesc::new(
            "tiny",
            Dataset::Cifar10,
            vec![
                LayerDesc::new(
                    "c1",
                    LayerKind::Conv2d {
                        in_channels: 3,
                        out_channels: 16,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                    (32, 32),
                ),
                LayerDesc::new(
                    "fc",
                    LayerKind::Linear { in_features: 16, out_features: 10 },
                    (1, 1),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn totals() {
        let n = tiny();
        assert_eq!(n.total_params(), (3 * 16 * 9 + 160) as u64);
        assert_eq!(n.total_macs(), (16 * 32 * 32 * 27 + 160) as u64);
        assert!(n.fp32_megabytes() > 0.0);
    }

    #[test]
    fn duplicate_names_rejected() {
        let l =
            LayerDesc::new("dup", LayerKind::Linear { in_features: 4, out_features: 4 }, (1, 1));
        assert!(NetworkDesc::new("n", Dataset::Mnist, vec![l.clone(), l]).is_err());
    }

    #[test]
    fn invalid_layer_rejected() {
        let l = LayerDesc::new(
            "bad",
            LayerKind::Conv2d { in_channels: 1, out_channels: 1, kernel: 9, stride: 1, padding: 0 },
            (4, 4),
        );
        assert!(NetworkDesc::new("n", Dataset::Mnist, vec![l]).is_err());
    }

    #[test]
    fn conv_like_filter_excludes_fc() {
        let n = tiny();
        let names: Vec<_> = n.conv_like_layers().map(|l| l.name().to_string()).collect();
        assert_eq!(names, vec!["c1"]);
    }

    #[test]
    fn dataset_properties() {
        assert_eq!(Dataset::ImageNet.input_shape(), (3, 224, 224));
        assert_eq!(Dataset::Cifar10.classes(), 10);
        assert_eq!(Dataset::Mnist.input_shape().0, 1);
        assert_eq!(Dataset::CamVid.to_string(), "CamVid");
    }
}
