//! Bit-exact storage accounting and compression-rate math.
//!
//! The paper defines the overall compression rate of a network as the ratio
//! between the bits needed to store the original FP32 weights and the bits
//! needed for the SmartExchange form — *including* the coefficient matrices
//! `Ce`, the basis matrices `B`, and the sparsity-encoding overhead
//! (Section III-C). This module implements that accounting:
//!
//! * `Ce`: only rows with at least one non-zero are stored, at
//!   [`Po2Set::code_bits`](crate::Po2Set::code_bits) bits per element
//!   (4 bits in the default configuration);
//! * index: 1-bit direct indexing with *clustered zeros removed*
//!   (Section IV-B): for CONV layouts, one bit per input channel (the
//!   channel bitmap) plus one bit per row only inside live channels; FC
//!   layouts use a flat bit per row;
//! * `B`: 8 bits per element.

use crate::{SeLayer, SeLayout};

/// Bits per basis-matrix element in the paper's configuration.
pub const BASIS_BITS: u32 = 8;

/// Bits per FP32 weight in the uncompressed baseline.
pub const FP32_BITS: u32 = 32;

/// Storage breakdown of one or more compressed layers, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeStorage {
    /// Bits for the non-zero rows of coefficient matrices.
    pub ce_bits: u64,
    /// Bits for the basis matrices.
    pub basis_bits: u64,
    /// Bits for the vector-sparsity index (1 bit per `Ce` row).
    pub index_bits: u64,
}

impl SeStorage {
    /// Total bits across all components.
    pub fn total_bits(&self) -> u64 {
        self.ce_bits + self.basis_bits + self.index_bits
    }

    /// Accumulates another storage record into this one.
    pub fn accumulate(&mut self, other: &SeStorage) {
        self.ce_bits += other.ce_bits;
        self.basis_bits += other.basis_bits;
        self.index_bits += other.index_bits;
    }

    /// Megabytes of the `Ce` component including the index overhead
    /// (the paper's "Ce (MB)" column groups encoding overhead with `Ce`).
    pub fn ce_megabytes(&self) -> f64 {
        (self.ce_bits + self.index_bits) as f64 / 8.0 / (1024.0 * 1024.0)
    }

    /// Megabytes of the basis component (the paper's "B (MB)" column).
    pub fn basis_megabytes(&self) -> f64 {
        self.basis_bits as f64 / 8.0 / (1024.0 * 1024.0)
    }

    /// Total megabytes (the paper's compressed "Param. (MB)" column).
    pub fn total_megabytes(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / (1024.0 * 1024.0)
    }
}

/// Bits to store `params` dense weights at `bits_per_weight` bits each.
pub fn dense_bits(params: u64, bits_per_weight: u32) -> u64 {
    params * u64::from(bits_per_weight)
}

/// Computes the storage breakdown for one compressed layer.
///
/// # Examples
///
/// ```
/// use se_ir::{storage, Po2Set, SeLayer, SeLayout, SeSlice};
/// use se_tensor::Mat;
///
/// # fn main() -> Result<(), se_ir::IrError> {
/// let po2 = Po2Set::default();
/// // 3-row Ce with 1 zero row; 3x3 basis.
/// let ce = Mat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 0.0], &[0.0, 0.5, 0.0]])?;
/// let layer = SeLayer::new(
///     SeLayout::ConvPerFilter { out_channels: 1, in_channels: 1, kernel: 3, slices_per_filter: 1 },
///     po2,
///     vec![SeSlice::new(ce, Mat::identity(3), &po2)?],
/// )?;
/// let s = storage::se_layer_storage(&layer);
/// assert_eq!(s.ce_bits, 2 * 3 * 4);   // 2 non-zero rows x 3 coeffs x 4 bits
/// assert_eq!(s.index_bits, 1 + 3);    // channel bitmap + per-row bits
/// assert_eq!(s.basis_bits, 9 * 8);    // 3x3 basis at 8 bits
/// # Ok(())
/// # }
/// ```
pub fn se_layer_storage(layer: &SeLayer) -> SeStorage {
    let code_bits = u64::from(layer.po2().code_bits());
    let mut s = SeStorage::default();
    for slice in layer.slices() {
        let r = slice.ce().cols() as u64;
        s.ce_bits += slice.nonzero_rows() as u64 * r * code_bits;
        s.basis_bits +=
            slice.basis().rows() as u64 * slice.basis().cols() as u64 * u64::from(BASIS_BITS);
    }
    s.index_bits = index_bits(layer);
    s
}

/// 1-bit direct index size with clustered zeros removed (Section IV-B).
///
/// CONV layouts: per decomposition unit, one bit per input channel (groups
/// of `kernel` rows) plus `kernel` row bits for every channel that still
/// holds a non-zero row — pruned channels cost only their bitmap bit.
/// FC layouts: a flat bit per row.
fn index_bits(layer: &SeLayer) -> u64 {
    match *layer.layout() {
        SeLayout::FcPerRow { .. } => layer.slices().iter().map(|s| s.ce().rows() as u64).sum(),
        SeLayout::ConvPerFilter { kernel, slices_per_filter, .. } => {
            let mut bits = 0u64;
            for unit in layer.slices().chunks(slices_per_filter) {
                // Concatenate the unit's row mask across its slices.
                let mask: Vec<bool> = unit.iter().flat_map(|s| s.row_nonzero_mask()).collect();
                for channel in mask.chunks(kernel.max(1)) {
                    bits += 1; // channel bitmap bit
                    if channel.iter().any(|&live| live) {
                        bits += channel.len() as u64; // per-row bits
                    }
                }
            }
            bits
        }
    }
}

/// Compression rate: original FP32 bits over compressed bits.
///
/// Returns `f64::INFINITY` when the compressed size is zero (degenerate
/// empty layer).
pub fn compression_rate(original_params: u64, compressed: &SeStorage) -> f64 {
    let orig = dense_bits(original_params, FP32_BITS) as f64;
    let comp = compressed.total_bits() as f64;
    if comp == 0.0 {
        f64::INFINITY
    } else {
        orig / comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Po2Set, SeLayout, SeSlice};
    use se_tensor::Mat;

    fn layer_with_rows(rows: &[&[f32]]) -> SeLayer {
        let po2 = Po2Set::default();
        let ce = Mat::from_rows(rows).unwrap();
        let n = ce.rows();
        SeLayer::new(
            SeLayout::ConvPerFilter {
                out_channels: 1,
                in_channels: n / 3,
                kernel: 3,
                slices_per_filter: 1,
            },
            po2,
            vec![SeSlice::new(ce, Mat::identity(3), &po2).unwrap()],
        )
        .unwrap()
    }

    #[test]
    fn fully_dense_ce_storage() {
        let l = layer_with_rows(&[&[1.0, 0.5, 0.25], &[0.5, 0.5, 0.5], &[1.0, 1.0, 1.0]]);
        let s = se_layer_storage(&l);
        assert_eq!(s.ce_bits, 3 * 3 * 4);
        assert_eq!(s.index_bits, 4); // 1 channel bit + 3 row bits
        assert_eq!(s.basis_bits, 72);
        assert_eq!(s.total_bits(), 36 + 4 + 72);
    }

    #[test]
    fn zero_rows_are_free_except_index() {
        let l = layer_with_rows(&[&[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0]]);
        let s = se_layer_storage(&l);
        assert_eq!(s.ce_bits, 3 * 4);
        assert_eq!(s.index_bits, 4); // the single channel is still live
    }

    #[test]
    fn pruned_channels_cost_only_bitmap_bits() {
        // Two channels (6 rows): channel 0 fully zero, channel 1 live.
        let l = layer_with_rows(&[
            &[0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[0.0, 0.5, 0.0],
        ]);
        let s = se_layer_storage(&l);
        // bitmap: 2 bits; live channel rows: 3 bits.
        assert_eq!(s.index_bits, 2 + 3);
        assert_eq!(s.ce_bits, 2 * 3 * 4);
    }

    #[test]
    fn compression_rate_math() {
        // 9 original FP32 weights = 288 bits.
        let l = layer_with_rows(&[&[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0], &[0.0, 0.0, 0.0]]);
        let s = se_layer_storage(&l);
        // 0 ce bits + 1 bitmap bit (dead channel) + 72 basis = 73 bits.
        assert!((compression_rate(9, &s) - 288.0 / 73.0).abs() < 1e-9);
    }

    #[test]
    fn accumulate_sums_components() {
        let a = SeStorage { ce_bits: 10, basis_bits: 20, index_bits: 5 };
        let mut b = SeStorage { ce_bits: 1, basis_bits: 2, index_bits: 3 };
        b.accumulate(&a);
        assert_eq!(b, SeStorage { ce_bits: 11, basis_bits: 22, index_bits: 8 });
    }

    #[test]
    fn megabyte_conversions() {
        let s = SeStorage { ce_bits: 8 * 1024 * 1024, basis_bits: 8 * 1024 * 1024, index_bits: 0 };
        assert!((s.ce_megabytes() - 1.0).abs() < 1e-12);
        assert!((s.basis_megabytes() - 1.0).abs() < 1e-12);
        assert!((s.total_megabytes() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_cr_for_empty() {
        assert!(compression_rate(100, &SeStorage::default()).is_infinite());
    }
}
