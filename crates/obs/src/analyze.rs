//! The trace analytics engine: windowed timeseries, SLO-miss
//! attribution, and cross-run diffing over a deterministic event stream.
//!
//! Everything here is a pure function of the stream: the input is the
//! exact sequence of [`Event`]s the scheduler core emitted (in memory
//! from a `Recorder`, or re-parsed from a `--trace-out` Perfetto file),
//! so every analysis inherits the determinism contract — byte-identical
//! across `--sim-parallelism`, `--exec-workers`, and
//! `--runtime sim|staged` — by construction.
//!
//! **Windows** are fixed, half-open virtual-time intervals
//! `[k·W, (k+1)·W)`; an event belongs to the window containing its `at`
//! cycle (a served request counts in the window it *completes* in, an
//! admission in the window it arrives in). Folding the windows back
//! together reproduces the stream totals exactly — the conservation
//! property `tests/obs_analyze.rs` checks against `ClusterReport`.
//!
//! **Attribution** decomposes each served request's lifetime
//! (arrival → completion) into disjoint segments that sum to its
//! latency:
//!
//! * `reroute` — arrival → final enqueue (custody lost to a kill;
//!   nonzero only for re-routed victims);
//! * `queue` — enqueue → the serving instance's prior batch completing
//!   (head-of-line blocking while the server is busy);
//! * `formation` — server free → batch launch (the batching policy
//!   waiting to fill or time out);
//! * `cold` — the batch's serialized tier-walk charge (cold fetches,
//!   promotions, streams), charged to every member it delayed;
//! * `exec` — the remaining execution time.
//!
//! A missed request's **cause** is its dominant segment; a cold-dominant
//! miss whose batch paid a cold fetch after the instance's most recent
//! restart is classed `cold-restart`, separating post-restart
//! cold-buffer misses from steady-state ones. Lost requests (kill
//! victims with nowhere to go) are attributed whole to `lost`.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// Aggregates of one fixed virtual-time window `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Window index (`start / window`).
    pub index: u64,
    /// First cycle covered (inclusive).
    pub start: u64,
    /// First cycle not covered (exclusive).
    pub end: u64,
    /// Queue admissions (first arrivals and kill re-routes).
    pub admitted: u64,
    /// Arrivals bounced off full queues.
    pub rejected: u64,
    /// Requests terminally lost to kills.
    pub lost: u64,
    /// Requests completing in the window.
    pub served: u64,
    /// Completions that overran their deadline.
    pub missed: u64,
    /// Batches launched.
    pub batches_launched: u64,
    /// Batches completing in the window.
    pub batches_completed: u64,
    /// Batches caught in flight by a kill.
    pub batches_killed: u64,
    /// Deepest queue-depth sample (0 when none).
    pub queue_depth_max: u64,
    /// Sum of queue-depth samples (for the mean).
    pub queue_depth_sum: u64,
    /// Number of queue-depth samples.
    pub queue_depth_samples: u64,
    /// Top-tier weight hits.
    pub tier_hits: u64,
    /// Lower-tier promotions.
    pub tier_promotions: u64,
    /// Cold fetches from the bottom of the stack.
    pub tier_cold_fetches: u64,
    /// Streams past the top tier.
    pub tier_streams: u64,
    /// Tier-to-tier demotions (write-back traffic).
    pub tier_demotions: u64,
    /// Bytes dropped off the bottom (capacity drops + restart purges).
    pub tier_drops: u64,
    /// Serialized tier-walk cycles charged in front of batches.
    pub tier_walk_cycles: u64,
    /// Latencies of the requests completing in the window, in completion
    /// order (the percentile source).
    latencies: Vec<u64>,
}

impl WindowStats {
    /// Served requests that made their deadline — the goodput numerator.
    pub fn served_ok(&self) -> u64 {
        self.served - self.missed
    }

    /// Mean queue depth over the window's samples (0 when unsampled).
    pub fn queue_depth_mean(&self) -> f64 {
        if self.queue_depth_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_depth_samples as f64
        }
    }

    /// Nearest-rank `p`-th percentile of the window's completion
    /// latencies (`None` when nothing completed).
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }
}

/// Whole-stream totals, tallied independently of the windows (the
/// conservation cross-check) plus per-id terminal accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamTotals {
    /// Queue admissions, counting each kill re-route again.
    pub admitted: u64,
    /// Terminal outcomes.
    pub served: u64,
    /// Completions that overran their deadline.
    pub missed: u64,
    /// Arrivals bounced off full queues.
    pub rejected: u64,
    /// Requests terminally lost to kills.
    pub lost: u64,
    /// Distinct request ids with a terminal event (served, rejected, or
    /// lost) — the submitted count when conservation holds.
    pub submitted: u64,
    /// Batch lifecycle counts.
    pub batches_launched: u64,
    /// Batches that ran to completion.
    pub batches_completed: u64,
    /// Batches caught in flight by a kill.
    pub batches_killed: u64,
    /// Membership churn.
    pub kills: u64,
    /// Instance restarts.
    pub restarts: u64,
    /// Tier traffic.
    pub tier_hits: u64,
    /// Lower-tier promotions.
    pub tier_promotions: u64,
    /// Cold fetches from the bottom of the stack.
    pub tier_cold_fetches: u64,
    /// Streams past the top tier.
    pub tier_streams: u64,
    /// Tier-to-tier demotions.
    pub tier_demotions: u64,
    /// Bytes dropped off the bottom.
    pub tier_drops: u64,
    /// Serialized tier-walk cycles.
    pub tier_walk_cycles: u64,
    /// Highest `at` on the stream (the analysis horizon).
    pub makespan: u64,
    /// Ids that hit more than one terminal event (0 when the stream is
    /// well-formed).
    pub duplicate_terminals: u64,
}

impl StreamTotals {
    /// Whether every id reached exactly one terminal event and the
    /// terminal counts account for every submitted request.
    pub fn conserves(&self) -> bool {
        self.duplicate_terminals == 0 && self.served + self.rejected + self.lost == self.submitted
    }
}

/// The lifetime decomposition of one request (served or lost). All
/// segment fields are cycles; for a served request they sum to its
/// latency.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Arrival sequence number.
    pub id: usize,
    /// Model the request targeted.
    pub model: usize,
    /// Instance that served it (the kill's instance owner is unknown for
    /// lost requests — 0 there; check `lost`).
    pub instance: usize,
    /// Launch sequence of the carrying batch (0 for lost requests).
    pub batch: u64,
    /// Arrival cycle.
    pub arrival: u64,
    /// Completion cycle (served) or the kill cycle (lost).
    pub done: u64,
    /// Arrival → final enqueue: custody lost to kill re-routing.
    pub reroute: u64,
    /// Enqueue → prior batch completion: waiting for a busy server.
    pub queue: u64,
    /// Server free → launch: the batching policy filling or timing out.
    pub formation: u64,
    /// The batch's serialized tier-walk charge.
    pub cold: u64,
    /// Remaining execution cycles.
    pub exec: u64,
    /// Whether the deadline was overrun.
    pub missed: bool,
    /// Whether the request was terminally lost (whole lifetime charged
    /// to `lost`; no other segment is meaningful).
    pub lost: bool,
    /// Whether the batch's walk included a cold fetch after the serving
    /// instance's most recent restart.
    pub post_restart_cold: bool,
}

impl Attribution {
    /// The dominant lifetime segment — the miss cause this request is
    /// ranked under. Ties break toward the earlier pipeline stage
    /// (reroute, then queue, formation, cold, exec): the earlier segment
    /// had the first claim on the deadline budget.
    pub fn cause(&self) -> &'static str {
        if self.lost {
            return "lost";
        }
        let segments = [
            ("reroute", self.reroute),
            ("queue", self.queue),
            ("formation", self.formation),
            (if self.post_restart_cold { "cold-restart" } else { "cold" }, self.cold),
            ("exec", self.exec),
        ];
        // max_by_key returns the *last* maximum; reversing makes that the
        // earliest pipeline stage.
        segments.iter().rev().max_by_key(|&&(_, cycles)| cycles).map_or("exec", |&(name, _)| name)
    }
}

/// One row of the ranked miss-cause table: misses grouped by
/// `(cause, model, instance)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CauseGroup {
    /// Dominant-segment name (`queue`, `formation`, `cold`,
    /// `cold-restart`, `exec`, `reroute`, or `lost`).
    pub cause: &'static str,
    /// Model of the grouped requests.
    pub model: usize,
    /// Serving instance (meaningless for `lost`).
    pub instance: usize,
    /// Missed/lost requests in the group.
    pub requests: u64,
    /// Total cycles in the group's dominant segments.
    pub cycles: u64,
}

/// The full analysis of one event stream at one window size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Analysis {
    /// Window width in cycles.
    pub window: u64,
    /// Per-window aggregates, dense from cycle 0 through the makespan.
    pub windows: Vec<WindowStats>,
    /// Whole-stream totals (window-independent).
    pub totals: StreamTotals,
    /// Per-request lifetime decompositions, in terminal-event order.
    pub attributions: Vec<Attribution>,
}

impl Analysis {
    /// Re-sums the windows into a [`StreamTotals`] — equal to
    /// [`Analysis::totals`] on every well-formed stream (the fold
    /// property the tests pin). Per-id fields (`submitted`,
    /// `duplicate_terminals`) and churn/makespan carry over unchanged:
    /// they are not window aggregates.
    pub fn fold_windows(&self) -> StreamTotals {
        let mut folded = StreamTotals {
            submitted: self.totals.submitted,
            duplicate_terminals: self.totals.duplicate_terminals,
            kills: self.totals.kills,
            restarts: self.totals.restarts,
            makespan: self.totals.makespan,
            ..StreamTotals::default()
        };
        for w in &self.windows {
            folded.admitted += w.admitted;
            folded.served += w.served;
            folded.missed += w.missed;
            folded.rejected += w.rejected;
            folded.lost += w.lost;
            folded.batches_launched += w.batches_launched;
            folded.batches_completed += w.batches_completed;
            folded.batches_killed += w.batches_killed;
            folded.tier_hits += w.tier_hits;
            folded.tier_promotions += w.tier_promotions;
            folded.tier_cold_fetches += w.tier_cold_fetches;
            folded.tier_streams += w.tier_streams;
            folded.tier_demotions += w.tier_demotions;
            folded.tier_drops += w.tier_drops;
            folded.tier_walk_cycles += w.tier_walk_cycles;
        }
        folded
    }

    /// Misses and losses grouped by `(cause, model, instance)`, ranked
    /// by request count (then cycles), descending; deterministic
    /// tie-break on the group key.
    pub fn ranked_miss_causes(&self) -> Vec<CauseGroup> {
        let mut groups: BTreeMap<(&'static str, usize, usize), (u64, u64)> = BTreeMap::new();
        for a in &self.attributions {
            if !(a.missed || a.lost) {
                continue;
            }
            let cause = a.cause();
            let over = if a.lost {
                a.done.saturating_sub(a.arrival)
            } else {
                match cause {
                    "reroute" => a.reroute,
                    "queue" => a.queue,
                    "formation" => a.formation,
                    "cold" | "cold-restart" => a.cold,
                    _ => a.exec,
                }
            };
            let entry = groups.entry((cause, a.model, a.instance)).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += over;
        }
        let mut ranked: Vec<CauseGroup> = groups
            .into_iter()
            .map(|((cause, model, instance), (requests, cycles))| CauseGroup {
                cause,
                model,
                instance,
                requests,
                cycles,
            })
            .collect();
        ranked.sort_by(|a, b| {
            (b.requests, b.cycles)
                .cmp(&(a.requests, a.cycles))
                .then_with(|| (a.cause, a.model, a.instance).cmp(&(b.cause, b.model, b.instance)))
        });
        ranked
    }

    /// Total cycles per lifetime segment summed over **missed and lost**
    /// requests, keyed by segment name — the attribution buckets the
    /// diff compares. Lost lifetimes land whole in `lost`.
    pub fn miss_cycles_by_segment(&self) -> BTreeMap<&'static str, u64> {
        let mut buckets: BTreeMap<&'static str, u64> = BTreeMap::new();
        for name in ["reroute", "queue", "formation", "cold", "cold-restart", "exec", "lost"] {
            buckets.insert(name, 0);
        }
        for a in &self.attributions {
            if a.lost {
                *buckets.get_mut("lost").expect("seeded") += a.done.saturating_sub(a.arrival);
                continue;
            }
            if !a.missed {
                continue;
            }
            *buckets.get_mut("reroute").expect("seeded") += a.reroute;
            *buckets.get_mut("queue").expect("seeded") += a.queue;
            *buckets.get_mut("formation").expect("seeded") += a.formation;
            let cold_key = if a.post_restart_cold { "cold-restart" } else { "cold" };
            *buckets.get_mut(cold_key).expect("seeded") += a.cold;
            *buckets.get_mut("exec").expect("seeded") += a.exec;
        }
        buckets
    }
}

/// Per-batch context harvested at launch time, consumed by the batch's
/// `Served` events.
#[derive(Debug, Clone, Copy, Default)]
struct BatchInfo {
    start: u64,
    /// The serving instance's prior busy-until cycle (its previous
    /// batch's completion, or its restart cycle) — the queue/formation
    /// split point.
    prior_free: u64,
    walk_cycles: u64,
    cold_fetch: bool,
    post_restart: bool,
}

/// Analyzes one event stream at the given window width (cycles; clamped
/// to at least 1). See the module docs for window semantics and the
/// attribution model.
pub fn analyze(events: &[Event], window: u64) -> Analysis {
    let window = window.max(1);
    let makespan = events.iter().map(|e| e.at).max().unwrap_or(0);
    let mut windows: Vec<WindowStats> = (0..=makespan / window)
        .map(|index| WindowStats {
            index,
            start: index * window,
            end: (index + 1) * window,
            ..WindowStats::default()
        })
        .collect();
    let mut totals = StreamTotals { makespan, ..StreamTotals::default() };
    let mut attributions = Vec::new();

    // Per-id bookkeeping: first admission (= arrival custody start) and
    // terminal-event count for conservation.
    let mut first_admitted: BTreeMap<usize, u64> = BTreeMap::new();
    let mut terminals: BTreeMap<usize, u64> = BTreeMap::new();
    // Per-instance running state.
    let mut pending_walk: BTreeMap<usize, (u64, bool)> = BTreeMap::new();
    let mut busy_until: BTreeMap<usize, u64> = BTreeMap::new();
    let mut last_restart: BTreeMap<usize, u64> = BTreeMap::new();
    // Per-batch context for the Served events that reference it.
    let mut batches: BTreeMap<u64, BatchInfo> = BTreeMap::new();

    for event in events {
        let w = &mut windows[(event.at / window) as usize];
        match &event.kind {
            EventKind::Admitted { id, .. } => {
                w.admitted += 1;
                totals.admitted += 1;
                first_admitted.entry(*id).or_insert(event.at);
            }
            EventKind::Rejected { id, .. } => {
                w.rejected += 1;
                totals.rejected += 1;
                *terminals.entry(*id).or_insert(0) += 1;
            }
            EventKind::Lost { id, model } => {
                w.lost += 1;
                totals.lost += 1;
                *terminals.entry(*id).or_insert(0) += 1;
                let arrival = first_admitted.get(id).copied().unwrap_or(event.at);
                attributions.push(Attribution {
                    id: *id,
                    model: *model,
                    arrival,
                    done: event.at,
                    lost: true,
                    ..Attribution::default()
                });
            }
            EventKind::QueueDepth { depth, .. } => {
                let depth = *depth as u64;
                w.queue_depth_max = w.queue_depth_max.max(depth);
                w.queue_depth_sum += depth;
                w.queue_depth_samples += 1;
            }
            EventKind::BatchFormed { seq, instance, .. } => {
                let (walk_cycles, cold_fetch) = pending_walk.remove(instance).unwrap_or((0, false));
                batches.insert(
                    *seq,
                    BatchInfo {
                        start: event.at,
                        prior_free: busy_until.get(instance).copied().unwrap_or(0),
                        walk_cycles,
                        cold_fetch,
                        post_restart: last_restart.get(instance).is_some_and(|&r| r <= event.at),
                    },
                );
            }
            EventKind::BatchLaunched { instance, done, .. } => {
                w.batches_launched += 1;
                totals.batches_launched += 1;
                busy_until.insert(*instance, *done);
            }
            EventKind::BatchCompleted { .. } => {
                w.batches_completed += 1;
                totals.batches_completed += 1;
            }
            EventKind::BatchKilled { .. } => {
                w.batches_killed += 1;
                totals.batches_killed += 1;
            }
            EventKind::Served { id, model, instance, batch, enqueued, latency, missed } => {
                w.served += 1;
                totals.served += 1;
                if *missed {
                    w.missed += 1;
                    totals.missed += 1;
                }
                w.latencies.push(*latency);
                *terminals.entry(*id).or_insert(0) += 1;
                let info = batches.get(batch).copied().unwrap_or_default();
                let arrival = event.at.saturating_sub(*latency);
                let wait = info.start.saturating_sub(*enqueued);
                let queue = wait.min(info.prior_free.saturating_sub(*enqueued));
                let run = event.at.saturating_sub(info.start);
                let cold = info.walk_cycles.min(run);
                attributions.push(Attribution {
                    id: *id,
                    model: *model,
                    instance: *instance,
                    batch: *batch,
                    arrival,
                    done: event.at,
                    reroute: enqueued.saturating_sub(arrival),
                    queue,
                    formation: wait - queue,
                    cold,
                    exec: run - cold,
                    missed: *missed,
                    lost: false,
                    post_restart_cold: info.cold_fetch && info.post_restart,
                });
            }
            EventKind::InstanceKilled { .. } => {
                totals.kills += 1;
            }
            EventKind::InstanceRestarted { instance } => {
                totals.restarts += 1;
                last_restart.insert(*instance, event.at);
                let busy = busy_until.entry(*instance).or_insert(0);
                *busy = (*busy).max(event.at);
            }
            EventKind::InstanceSpawned { .. } | EventKind::InstanceDraining { .. } => {}
            EventKind::TierHit { .. } => {
                w.tier_hits += 1;
                totals.tier_hits += 1;
            }
            EventKind::TierPromoted { instance, cycles, .. } => {
                w.tier_promotions += 1;
                totals.tier_promotions += 1;
                w.tier_walk_cycles += cycles;
                totals.tier_walk_cycles += cycles;
                pending_walk.entry(*instance).or_insert((0, false)).0 += cycles;
            }
            EventKind::TierDemoted { dropped, .. } => {
                if *dropped {
                    w.tier_drops += 1;
                    totals.tier_drops += 1;
                } else {
                    w.tier_demotions += 1;
                    totals.tier_demotions += 1;
                }
            }
            EventKind::TierColdFetch { instance, cycles, .. } => {
                w.tier_cold_fetches += 1;
                totals.tier_cold_fetches += 1;
                w.tier_walk_cycles += cycles;
                totals.tier_walk_cycles += cycles;
                let entry = pending_walk.entry(*instance).or_insert((0, false));
                entry.0 += cycles;
                entry.1 = true;
            }
            EventKind::TierStreamed { instance, cycles, .. } => {
                w.tier_streams += 1;
                totals.tier_streams += 1;
                w.tier_walk_cycles += cycles;
                totals.tier_walk_cycles += cycles;
                pending_walk.entry(*instance).or_insert((0, false)).0 += cycles;
            }
            EventKind::StageWall { .. } => {}
        }
    }
    totals.submitted = terminals.len() as u64;
    totals.duplicate_terminals = terminals.values().filter(|&&n| n > 1).count() as u64;
    Analysis { window, windows, totals, attributions }
}

/// Signed per-window deltas (candidate − baseline) of the headline
/// window aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowDelta {
    /// Window index (shared; absent windows on either side read as 0).
    pub index: u64,
    /// Δ requests served.
    pub served: i64,
    /// Δ requests served within deadline.
    pub served_ok: i64,
    /// Δ deadline misses.
    pub missed: i64,
    /// Δ rejections.
    pub rejected: i64,
    /// Δ losses.
    pub lost: i64,
    /// Δ deepest queue-depth sample.
    pub queue_depth_max: i64,
    /// Δ tier-walk cycles.
    pub tier_walk_cycles: i64,
}

impl WindowDelta {
    /// Whether every tracked aggregate is unchanged.
    pub fn is_zero(&self) -> bool {
        self == &WindowDelta { index: self.index, ..WindowDelta::default() }
    }
}

/// The comparison of two analyses (same window width): per-window
/// deltas, per-attribution-bucket miss-cycle deltas, and the named
/// dominant regressor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisDiff {
    /// Candidate − baseline per window, dense over the longer run.
    pub windows: Vec<WindowDelta>,
    /// Candidate − baseline miss-cycles per attribution bucket, in
    /// fixed bucket order.
    pub buckets: Vec<(&'static str, i64)>,
    /// The bucket with the largest miss-cycle increase, when any
    /// increased.
    pub dominant_regressor: Option<(&'static str, i64)>,
    /// The window with the largest goodput (served-within-deadline)
    /// drop, when any dropped: `(index, drop)`.
    pub worst_window: Option<(u64, i64)>,
}

/// Diffs `candidate` against `baseline` (positive = more in the
/// candidate). Both analyses must use the same window width — the
/// caller aligns that before calling.
pub fn diff(baseline: &Analysis, candidate: &Analysis) -> AnalysisDiff {
    let d = |b: u64, c: u64| c as i64 - b as i64;
    let empty = WindowStats::default();
    let len = baseline.windows.len().max(candidate.windows.len());
    let mut windows = Vec::with_capacity(len);
    let mut worst_window: Option<(u64, i64)> = None;
    for i in 0..len {
        let b = baseline.windows.get(i).unwrap_or(&empty);
        let c = candidate.windows.get(i).unwrap_or(&empty);
        let delta = WindowDelta {
            index: i as u64,
            served: d(b.served, c.served),
            served_ok: d(b.served_ok(), c.served_ok()),
            missed: d(b.missed, c.missed),
            rejected: d(b.rejected, c.rejected),
            lost: d(b.lost, c.lost),
            queue_depth_max: d(b.queue_depth_max, c.queue_depth_max),
            tier_walk_cycles: d(b.tier_walk_cycles, c.tier_walk_cycles),
        };
        if delta.served_ok < 0 && worst_window.is_none_or(|(_, drop)| delta.served_ok < drop) {
            worst_window = Some((i as u64, delta.served_ok));
        }
        windows.push(delta);
    }
    let base_buckets = baseline.miss_cycles_by_segment();
    let cand_buckets = candidate.miss_cycles_by_segment();
    let buckets: Vec<(&'static str, i64)> =
        ["reroute", "queue", "formation", "cold", "cold-restart", "exec", "lost"]
            .into_iter()
            .map(|name| {
                (
                    name,
                    d(
                        base_buckets.get(name).copied().unwrap_or(0),
                        cand_buckets.get(name).copied().unwrap_or(0),
                    ),
                )
            })
            .collect();
    let dominant_regressor =
        buckets.iter().filter(|&&(_, delta)| delta > 0).max_by_key(|&&(_, delta)| delta).copied();
    AnalysisDiff { windows, buckets, dominant_regressor, worst_window }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn served(at: u64, id: usize, batch: u64, enqueued: u64, latency: u64, missed: bool) -> Event {
        Event {
            at,
            kind: EventKind::Served { id, model: 0, instance: 0, batch, enqueued, latency, missed },
        }
    }

    fn batch(seq: u64, at: u64, done: u64) -> [Event; 2] {
        [
            Event { at, kind: EventKind::BatchFormed { seq, instance: 0, model: 0, size: 1 } },
            Event {
                at,
                kind: EventKind::BatchLaunched { seq, instance: 0, model: 0, size: 1, done },
            },
        ]
    }

    fn admitted(at: u64, id: usize) -> Event {
        Event { at, kind: EventKind::Admitted { id, model: 0, instance: 0 } }
    }

    #[test]
    fn windows_partition_the_stream_and_fold_to_totals() {
        let mut events = vec![admitted(0, 0), admitted(90, 1)];
        events.extend(batch(0, 10, 50));
        events.push(served(50, 0, 0, 0, 50, false));
        events.push(Event {
            at: 50,
            kind: EventKind::BatchCompleted { seq: 0, instance: 0, size: 1 },
        });
        events.extend(batch(1, 150, 260));
        events.push(served(260, 1, 1, 90, 170, true));
        events.push(Event {
            at: 260,
            kind: EventKind::BatchCompleted { seq: 1, instance: 0, size: 1 },
        });
        events.push(Event { at: 205, kind: EventKind::Rejected { id: 2, model: 0 } });
        let a = analyze(&events, 100);
        assert_eq!(a.windows.len(), 3);
        assert_eq!((a.windows[0].start, a.windows[0].end), (0, 100));
        assert_eq!(a.windows[0].admitted, 2);
        assert_eq!(a.windows[0].served, 1);
        assert_eq!(a.windows[1].batches_launched, 1);
        assert_eq!(a.windows[2].served, 1);
        assert_eq!(a.windows[2].missed, 1);
        assert_eq!(a.windows[2].rejected, 1);
        assert_eq!(a.windows[2].served_ok(), 0);
        assert_eq!(a.windows[0].latency_percentile(50.0), Some(50));
        assert_eq!(a.windows[1].latency_percentile(50.0), None);
        assert_eq!(a.totals.served, 2);
        assert_eq!(a.totals.submitted, 3);
        assert!(a.totals.conserves());
        assert_eq!(a.fold_windows(), a.totals);
    }

    #[test]
    fn attribution_segments_sum_to_latency_and_split_queue_from_formation() {
        // Batch 0 occupies the instance until cycle 100; request 1
        // enqueues at 20, its batch forms at 130 (30 cycles of
        // policy wait after the server freed), runs 70 cycles.
        let mut events = vec![admitted(0, 0), admitted(20, 1)];
        events.extend(batch(0, 0, 100));
        events.push(served(100, 0, 0, 0, 100, false));
        events.extend(batch(1, 130, 200));
        events.push(served(200, 1, 1, 20, 180, true));
        let a = analyze(&events, 1000);
        let r1 = &a.attributions[1];
        assert_eq!(r1.reroute, 0);
        assert_eq!(r1.queue, 80, "blocked while batch 0 held the server");
        assert_eq!(r1.formation, 30, "then the policy waited to fill");
        assert_eq!(r1.cold, 0);
        assert_eq!(r1.exec, 70);
        assert_eq!(r1.reroute + r1.queue + r1.formation + r1.cold + r1.exec, 180);
        assert_eq!(r1.cause(), "queue");
    }

    #[test]
    fn cold_walks_charge_their_batch_and_restarts_reclass_the_cause() {
        // A cold fetch (60 cycles) in front of batch 0; instance 0
        // restarted at cycle 5, so the miss is post-restart cold.
        let mut events = vec![
            admitted(0, 0),
            Event { at: 5, kind: EventKind::InstanceRestarted { instance: 0 } },
            Event {
                at: 10,
                kind: EventKind::TierColdFetch { instance: 0, model: 0, cycles: 60, bytes: 700 },
            },
        ];
        events.extend(batch(0, 10, 100));
        events.push(served(100, 0, 0, 0, 100, true));
        let a = analyze(&events, 1000);
        let r = &a.attributions[0];
        assert_eq!(r.cold, 60);
        assert_eq!(r.exec, 30);
        assert!(r.post_restart_cold);
        assert_eq!(r.cause(), "cold-restart");
        assert_eq!(a.ranked_miss_causes()[0].cause, "cold-restart");
        assert_eq!(a.miss_cycles_by_segment()["cold-restart"], 60);
        assert_eq!(a.miss_cycles_by_segment()["cold"], 0);

        // The same walk with no prior restart stays steady-state cold.
        let mut steady = vec![
            admitted(0, 0),
            Event {
                at: 10,
                kind: EventKind::TierColdFetch { instance: 0, model: 0, cycles: 60, bytes: 700 },
            },
        ];
        steady.extend(batch(0, 10, 100));
        steady.push(served(100, 0, 0, 0, 100, true));
        let b = analyze(&steady, 1000);
        assert_eq!(b.attributions[0].cause(), "cold");
    }

    #[test]
    fn lost_requests_charge_their_whole_lifetime_to_lost() {
        let events = vec![
            admitted(40, 7),
            Event { at: 500, kind: EventKind::Lost { id: 7, model: 1 } },
            Event {
                at: 500,
                kind: EventKind::InstanceKilled { instance: 0, in_flight: 0, rerouted: 0, lost: 1 },
            },
        ];
        let a = analyze(&events, 250);
        assert_eq!(a.totals.lost, 1);
        assert_eq!(a.totals.kills, 1);
        let r = &a.attributions[0];
        assert!(r.lost);
        assert_eq!((r.arrival, r.done), (40, 500));
        assert_eq!(r.cause(), "lost");
        assert_eq!(a.miss_cycles_by_segment()["lost"], 460);
        assert!(a.totals.conserves());
    }

    #[test]
    fn diff_names_the_dominant_regressor_and_worst_window() {
        let mut healthy = vec![admitted(0, 0), admitted(10, 1)];
        healthy.extend(batch(0, 10, 60));
        healthy.push(served(60, 0, 0, 0, 60, false));
        healthy.push(served(60, 1, 0, 10, 50, false));
        let mut churned = vec![admitted(0, 0), admitted(10, 1)];
        churned.extend(batch(0, 110, 260));
        churned.push(served(260, 0, 0, 0, 260, true));
        churned.push(served(260, 1, 0, 10, 250, true));
        let base = analyze(&healthy, 100);
        let cand = analyze(&churned, 100);
        let d = diff(&base, &cand);
        assert_eq!(d.windows[0].served_ok, -2, "window 0 lost its on-time completions");
        assert_eq!(d.worst_window, Some((0, -2)));
        let (regressor, delta) = d.dominant_regressor.expect("misses regressed");
        assert_eq!(regressor, "exec", "the longer span dominates the new miss cycles");
        assert!(delta > 0);
        // A run diffed against itself is all zeros.
        let same = diff(&base, &base);
        assert!(same.windows.iter().all(WindowDelta::is_zero));
        assert_eq!(same.dominant_regressor, None);
        assert_eq!(same.worst_window, None);
    }
}
