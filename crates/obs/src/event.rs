//! The event model: virtual-time-stamped scheduling decisions
//! ([`Event`]/[`EventKind`]) and the sink abstraction the scheduler core
//! emits into ([`EventSink`], [`NullSink`], [`Recorder`]).

/// One observed scheduling decision, stamped with the virtual cycle it
/// happened at. Stream order is emission order (deterministic); `at` is
/// the virtual time the event describes, which may run behind the stream
/// position (a batch's completion is known — and emitted — at launch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual cycle the event describes.
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy of the serving stack: request admission, batch
/// lifecycle, instance membership churn, tiered-weight-store traffic, and
/// queue-depth samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A request joined an instance queue (first admission or kill
    /// re-route — a re-routed victim is re-admitted at the kill cycle).
    Admitted {
        /// Arrival sequence number.
        id: usize,
        /// Model the request targets.
        model: usize,
        /// Instance whose queue it joined.
        instance: usize,
    },
    /// An arrival bounced off a full queue (or nothing was accepting).
    Rejected {
        /// Arrival sequence number.
        id: usize,
        /// Model the request targeted.
        model: usize,
    },
    /// A kill victim could not be re-routed — terminally lost.
    Lost {
        /// Arrival sequence number.
        id: usize,
        /// Model the request targeted.
        model: usize,
    },
    /// Queue depth of an instance right after an admission — the
    /// taxonomy's queue-depth sample.
    QueueDepth {
        /// Sampled instance.
        instance: usize,
        /// Requests waiting (including the one just admitted).
        depth: usize,
    },
    /// A batch was formed (members chosen, start decided).
    BatchFormed {
        /// Cluster-wide launch sequence number.
        seq: u64,
        /// Instance the batch runs on.
        instance: usize,
        /// The batch's (single) model.
        model: usize,
        /// Members in the batch.
        size: usize,
    },
    /// A formed batch was launched; its completion cycle is already
    /// decided (virtual execution is table-driven).
    BatchLaunched {
        /// Cluster-wide launch sequence number.
        seq: u64,
        /// Instance the batch runs on.
        instance: usize,
        /// The batch's (single) model.
        model: usize,
        /// Members in the batch.
        size: usize,
        /// Virtual completion cycle.
        done: u64,
    },
    /// A launched batch ran to completion (`at` = completion cycle).
    BatchCompleted {
        /// Cluster-wide launch sequence number.
        seq: u64,
        /// Instance the batch ran on.
        instance: usize,
        /// Members served.
        size: usize,
    },
    /// A scripted kill caught the batch in flight (`at` = kill cycle);
    /// none of its members complete here.
    BatchKilled {
        /// Cluster-wide launch sequence number.
        seq: u64,
        /// Instance the batch was running on.
        instance: usize,
    },
    /// One request served to completion (`at` = completion cycle).
    Served {
        /// Arrival sequence number.
        id: usize,
        /// Model served.
        model: usize,
        /// Instance that served it.
        instance: usize,
        /// Launch sequence number of the batch that carried it — the
        /// analyzer's link from a request to its batch span.
        batch: u64,
        /// Cycle the request joined its final queue (arrival, or the
        /// kill cycle for a re-routed victim) — with `latency` it bounds
        /// every lifetime segment the analyzer attributes.
        enqueued: u64,
        /// Completion − arrival, in cycles.
        latency: u64,
        /// Whether completion overran the request's deadline.
        missed: bool,
    },
    /// A scripted kill took an instance down.
    InstanceKilled {
        /// The killed instance.
        instance: usize,
        /// Members of the in-flight batch the kill caught.
        in_flight: u64,
        /// Victims re-routed to surviving instances.
        rerouted: u64,
        /// Victims with nowhere to go.
        lost: u64,
    },
    /// A scripted restart brought an instance back (empty, cold).
    InstanceRestarted {
        /// The restarted instance.
        instance: usize,
    },
    /// Autoscaling spawned a fresh instance under queue pressure.
    InstanceSpawned {
        /// The new instance's index.
        instance: usize,
    },
    /// Autoscaling told an instance to drain (stop accepting).
    InstanceDraining {
        /// The draining instance.
        instance: usize,
    },
    /// A weight admission hit the top (serving) tier.
    TierHit {
        /// Instance whose store was asked.
        instance: usize,
        /// Model admitted.
        model: usize,
    },
    /// A weight admission promoted the model from a lower tier.
    TierPromoted {
        /// Instance whose store was asked.
        instance: usize,
        /// Model admitted.
        model: usize,
        /// Tier the model was parked in (0 = top).
        from: usize,
        /// Serialized promotion-walk cost in cycles.
        cycles: u64,
        /// Model footprint moved, in bytes (the occupancy delta).
        bytes: u64,
    },
    /// An eviction pushed a model down one tier (or off the bottom —
    /// then `dropped` is set, `to` is the tier count, and the bytes are
    /// simply dropped).
    TierDemoted {
        /// Instance whose store demoted.
        instance: usize,
        /// Model demoted.
        model: usize,
        /// Destination tier index (the tier count when `dropped`).
        to: usize,
        /// Model footprint moved (or dropped), in bytes.
        bytes: u64,
        /// Whether the bytes fell off the bottom of the stack (capacity
        /// drop or restart purge) instead of landing in a tier.
        dropped: bool,
    },
    /// A weight admission found the model in no tier and hauled it up
    /// from the bottom.
    TierColdFetch {
        /// Instance whose store was asked.
        instance: usize,
        /// Model admitted.
        model: usize,
        /// Serialized haul cost in cycles.
        cycles: u64,
        /// Model footprint installed, in bytes (the occupancy delta).
        bytes: u64,
    },
    /// A model too large for the top tier streamed past it.
    TierStreamed {
        /// Instance whose store was asked.
        instance: usize,
        /// Model streamed.
        model: usize,
        /// Serialized haul cost in cycles.
        cycles: u64,
    },
    /// Wall-clock stage timing — an **opt-in** annotation the staged
    /// runtime appends only under `SE_TRACE_WALL=1`, excluded from
    /// determinism diffs by construction. `at` is always 0.
    StageWall {
        /// Stage label.
        stage: &'static str,
        /// Measured wall time in nanoseconds.
        wall_ns: u64,
    },
}

impl EventKind {
    /// Stable snake_case name of the event kind (exporters key on it).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Admitted { .. } => "admitted",
            EventKind::Rejected { .. } => "rejected",
            EventKind::Lost { .. } => "lost",
            EventKind::QueueDepth { .. } => "queue_depth",
            EventKind::BatchFormed { .. } => "batch_formed",
            EventKind::BatchLaunched { .. } => "batch_launched",
            EventKind::BatchCompleted { .. } => "batch_completed",
            EventKind::BatchKilled { .. } => "batch_killed",
            EventKind::Served { .. } => "served",
            EventKind::InstanceKilled { .. } => "instance_killed",
            EventKind::InstanceRestarted { .. } => "instance_restarted",
            EventKind::InstanceSpawned { .. } => "instance_spawned",
            EventKind::InstanceDraining { .. } => "instance_draining",
            EventKind::TierHit { .. } => "tier_hit",
            EventKind::TierPromoted { .. } => "tier_promoted",
            EventKind::TierDemoted { .. } => "tier_demoted",
            EventKind::TierColdFetch { .. } => "tier_cold_fetch",
            EventKind::TierStreamed { .. } => "tier_streamed",
            EventKind::StageWall { .. } => "stage_wall",
        }
    }

    /// The instance the event concerns, when it concerns one.
    pub fn instance(&self) -> Option<usize> {
        match *self {
            EventKind::Admitted { instance, .. }
            | EventKind::QueueDepth { instance, .. }
            | EventKind::BatchFormed { instance, .. }
            | EventKind::BatchLaunched { instance, .. }
            | EventKind::BatchCompleted { instance, .. }
            | EventKind::BatchKilled { instance, .. }
            | EventKind::Served { instance, .. }
            | EventKind::InstanceKilled { instance, .. }
            | EventKind::InstanceRestarted { instance }
            | EventKind::InstanceSpawned { instance }
            | EventKind::InstanceDraining { instance }
            | EventKind::TierHit { instance, .. }
            | EventKind::TierPromoted { instance, .. }
            | EventKind::TierDemoted { instance, .. }
            | EventKind::TierColdFetch { instance, .. }
            | EventKind::TierStreamed { instance, .. } => Some(instance),
            EventKind::Rejected { .. } | EventKind::Lost { .. } | EventKind::StageWall { .. } => {
                None
            }
        }
    }
}

/// Where the scheduler core sends its events. `Send` so a sink can ride
/// into the staged runtime's scheduler thread (which is the only thread
/// that ever touches it — emission stays serial).
pub trait EventSink: Send {
    /// Whether the sink wants events at all. The serving entry points
    /// check this once up front and skip the entire observed path when
    /// `false`, keeping the hot path zero-cost with the default sink.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, event: Event);
}

/// The default sink: tracing off, zero cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: Event) {}
}

/// A sink that keeps every event in order — the exporter's input and the
/// subject of the byte-identical determinism property tests.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    events: Vec<Event>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the recorder into its event stream.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Recorded event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl EventSink for Recorder {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// Whether wall-clock stage annotations were opted into via
/// `SE_TRACE_WALL=1` (see [`EventKind::StageWall`]).
pub fn wall_annotations_enabled() -> bool {
    std::env::var("SE_TRACE_WALL").is_ok_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_recorder_keeps_order() {
        assert!(!NullSink.enabled());
        let mut rec = Recorder::new();
        assert!(rec.enabled());
        assert!(rec.is_empty());
        rec.record(Event { at: 5, kind: EventKind::Rejected { id: 0, model: 1 } });
        rec.record(Event { at: 9, kind: EventKind::InstanceRestarted { instance: 2 } });
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.events()[0].at, 5);
        assert_eq!(rec.events()[1].kind.name(), "instance_restarted");
        let events = rec.into_events();
        assert_eq!(events[1].kind.instance(), Some(2));
        assert_eq!(events[0].kind.instance(), None);
    }
}
