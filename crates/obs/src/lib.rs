//! `se_obs` — deterministic tracing, metrics, and trace analytics for
//! the serving stack.
//!
//! The serving runtimes (`se_serve`'s discrete-event sim and staged
//! pipeline) advance a *virtual* clock; every scheduling decision happens
//! at a deterministic virtual cycle. This crate gives those decisions a
//! structured, virtual-time-stamped event model ([`Event`]) and a sink
//! abstraction ([`EventSink`]) the scheduler core emits into, plus a
//! metrics registry ([`MetricsRegistry`]) that folds an event stream into
//! counters, gauges, and log-bucketed histograms with a Prometheus-style
//! text exposition, and an analytics engine ([`analyze`]) that turns a
//! stream into windowed timeseries, SLO-miss attributions, and
//! cross-run diffs.
//!
//! **Determinism contract.** Events are emitted from the serial scheduler
//! core only (never from concurrent pipeline stages), so the event stream
//! is byte-identical across `--sim-parallelism` values and across
//! `--runtime sim|staged`. The one exception is [`EventKind::StageWall`]:
//! a wall-clock annotation the staged runtime appends *only* when
//! `SE_TRACE_WALL=1` is set, excluded from determinism diffs by
//! construction (it is never emitted unless opted in). Everything in
//! [`analyze`] is a pure function of the stream and inherits the
//! contract.
//!
//! The crate is dependency-free so the hardware model (`se_hw`) can
//! construct events without pulling the serving stack in. Exporters that
//! need a JSON renderer (Chrome-trace/Perfetto) live in `se_bench`, as
//! does the `se obs` CLI fronting the analyzer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod event;
pub mod metrics;

pub use event::{wall_annotations_enabled, Event, EventKind, EventSink, NullSink, Recorder};
pub use metrics::{Histogram, MetricsRegistry};
