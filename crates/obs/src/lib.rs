//! `se_obs` — deterministic tracing + metrics for the serving stack.
//!
//! The serving runtimes (`se_serve`'s discrete-event sim and staged
//! pipeline) advance a *virtual* clock; every scheduling decision happens
//! at a deterministic virtual cycle. This crate gives those decisions a
//! structured, virtual-time-stamped event model ([`Event`]) and a sink
//! abstraction ([`EventSink`]) the scheduler core emits into, plus a
//! metrics registry ([`MetricsRegistry`]) that folds an event stream into
//! counters, gauges, and log-bucketed histograms with a Prometheus-style
//! text exposition.
//!
//! **Determinism contract.** Events are emitted from the serial scheduler
//! core only (never from concurrent pipeline stages), so the event stream
//! is byte-identical across `--sim-parallelism` values and across
//! `--runtime sim|staged`. The one exception is [`EventKind::StageWall`]:
//! a wall-clock annotation the staged runtime appends *only* when
//! `SE_TRACE_WALL=1` is set, excluded from determinism diffs by
//! construction (it is never emitted unless opted in).
//!
//! The crate is dependency-free so the hardware model (`se_hw`) can
//! construct events without pulling the serving stack in. Exporters that
//! need a JSON renderer (Chrome-trace/Perfetto) live in `se_bench`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// One observed scheduling decision, stamped with the virtual cycle it
/// happened at. Stream order is emission order (deterministic); `at` is
/// the virtual time the event describes, which may run behind the stream
/// position (a batch's completion is known — and emitted — at launch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual cycle the event describes.
    pub at: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy of the serving stack: request admission, batch
/// lifecycle, instance membership churn, tiered-weight-store traffic, and
/// queue-depth samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A request joined an instance queue (first admission or kill
    /// re-route — a re-routed victim is re-admitted at the kill cycle).
    Admitted {
        /// Arrival sequence number.
        id: usize,
        /// Model the request targets.
        model: usize,
        /// Instance whose queue it joined.
        instance: usize,
    },
    /// An arrival bounced off a full queue (or nothing was accepting).
    Rejected {
        /// Arrival sequence number.
        id: usize,
        /// Model the request targeted.
        model: usize,
    },
    /// A kill victim could not be re-routed — terminally lost.
    Lost {
        /// Arrival sequence number.
        id: usize,
        /// Model the request targeted.
        model: usize,
    },
    /// Queue depth of an instance right after an admission — the
    /// taxonomy's queue-depth sample.
    QueueDepth {
        /// Sampled instance.
        instance: usize,
        /// Requests waiting (including the one just admitted).
        depth: usize,
    },
    /// A batch was formed (members chosen, start decided).
    BatchFormed {
        /// Cluster-wide launch sequence number.
        seq: u64,
        /// Instance the batch runs on.
        instance: usize,
        /// The batch's (single) model.
        model: usize,
        /// Members in the batch.
        size: usize,
    },
    /// A formed batch was launched; its completion cycle is already
    /// decided (virtual execution is table-driven).
    BatchLaunched {
        /// Cluster-wide launch sequence number.
        seq: u64,
        /// Instance the batch runs on.
        instance: usize,
        /// The batch's (single) model.
        model: usize,
        /// Members in the batch.
        size: usize,
        /// Virtual completion cycle.
        done: u64,
    },
    /// A launched batch ran to completion (`at` = completion cycle).
    BatchCompleted {
        /// Cluster-wide launch sequence number.
        seq: u64,
        /// Instance the batch ran on.
        instance: usize,
        /// Members served.
        size: usize,
    },
    /// A scripted kill caught the batch in flight (`at` = kill cycle);
    /// none of its members complete here.
    BatchKilled {
        /// Cluster-wide launch sequence number.
        seq: u64,
        /// Instance the batch was running on.
        instance: usize,
    },
    /// One request served to completion (`at` = completion cycle).
    Served {
        /// Arrival sequence number.
        id: usize,
        /// Model served.
        model: usize,
        /// Instance that served it.
        instance: usize,
        /// Completion − arrival, in cycles.
        latency: u64,
        /// Whether completion overran the request's deadline.
        missed: bool,
    },
    /// A scripted kill took an instance down.
    InstanceKilled {
        /// The killed instance.
        instance: usize,
        /// Members of the in-flight batch the kill caught.
        in_flight: u64,
        /// Victims re-routed to surviving instances.
        rerouted: u64,
        /// Victims with nowhere to go.
        lost: u64,
    },
    /// A scripted restart brought an instance back (empty, cold).
    InstanceRestarted {
        /// The restarted instance.
        instance: usize,
    },
    /// Autoscaling spawned a fresh instance under queue pressure.
    InstanceSpawned {
        /// The new instance's index.
        instance: usize,
    },
    /// Autoscaling told an instance to drain (stop accepting).
    InstanceDraining {
        /// The draining instance.
        instance: usize,
    },
    /// A weight admission hit the top (serving) tier.
    TierHit {
        /// Instance whose store was asked.
        instance: usize,
        /// Model admitted.
        model: usize,
    },
    /// A weight admission promoted the model from a lower tier.
    TierPromoted {
        /// Instance whose store was asked.
        instance: usize,
        /// Model admitted.
        model: usize,
        /// Tier the model was parked in (0 = top).
        from: usize,
        /// Serialized promotion-walk cost in cycles.
        cycles: u64,
    },
    /// An eviction pushed a model down one tier (or off the bottom —
    /// then `to` is the tier count and the bytes are simply dropped).
    TierDemoted {
        /// Instance whose store demoted.
        instance: usize,
        /// Model demoted.
        model: usize,
        /// Destination tier index.
        to: usize,
        /// Model footprint moved (or dropped), in bytes.
        bytes: u64,
    },
    /// A weight admission found the model in no tier and hauled it up
    /// from the bottom.
    TierColdFetch {
        /// Instance whose store was asked.
        instance: usize,
        /// Model admitted.
        model: usize,
        /// Serialized haul cost in cycles.
        cycles: u64,
    },
    /// A model too large for the top tier streamed past it.
    TierStreamed {
        /// Instance whose store was asked.
        instance: usize,
        /// Model streamed.
        model: usize,
        /// Serialized haul cost in cycles.
        cycles: u64,
    },
    /// Wall-clock stage timing — an **opt-in** annotation the staged
    /// runtime appends only under `SE_TRACE_WALL=1`, excluded from
    /// determinism diffs by construction. `at` is always 0.
    StageWall {
        /// Stage label.
        stage: &'static str,
        /// Measured wall time in nanoseconds.
        wall_ns: u64,
    },
}

impl EventKind {
    /// Stable snake_case name of the event kind (exporters key on it).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Admitted { .. } => "admitted",
            EventKind::Rejected { .. } => "rejected",
            EventKind::Lost { .. } => "lost",
            EventKind::QueueDepth { .. } => "queue_depth",
            EventKind::BatchFormed { .. } => "batch_formed",
            EventKind::BatchLaunched { .. } => "batch_launched",
            EventKind::BatchCompleted { .. } => "batch_completed",
            EventKind::BatchKilled { .. } => "batch_killed",
            EventKind::Served { .. } => "served",
            EventKind::InstanceKilled { .. } => "instance_killed",
            EventKind::InstanceRestarted { .. } => "instance_restarted",
            EventKind::InstanceSpawned { .. } => "instance_spawned",
            EventKind::InstanceDraining { .. } => "instance_draining",
            EventKind::TierHit { .. } => "tier_hit",
            EventKind::TierPromoted { .. } => "tier_promoted",
            EventKind::TierDemoted { .. } => "tier_demoted",
            EventKind::TierColdFetch { .. } => "tier_cold_fetch",
            EventKind::TierStreamed { .. } => "tier_streamed",
            EventKind::StageWall { .. } => "stage_wall",
        }
    }

    /// The instance the event concerns, when it concerns one.
    pub fn instance(&self) -> Option<usize> {
        match *self {
            EventKind::Admitted { instance, .. }
            | EventKind::QueueDepth { instance, .. }
            | EventKind::BatchFormed { instance, .. }
            | EventKind::BatchLaunched { instance, .. }
            | EventKind::BatchCompleted { instance, .. }
            | EventKind::BatchKilled { instance, .. }
            | EventKind::Served { instance, .. }
            | EventKind::InstanceKilled { instance, .. }
            | EventKind::InstanceRestarted { instance }
            | EventKind::InstanceSpawned { instance }
            | EventKind::InstanceDraining { instance }
            | EventKind::TierHit { instance, .. }
            | EventKind::TierPromoted { instance, .. }
            | EventKind::TierDemoted { instance, .. }
            | EventKind::TierColdFetch { instance, .. }
            | EventKind::TierStreamed { instance, .. } => Some(instance),
            EventKind::Rejected { .. } | EventKind::Lost { .. } | EventKind::StageWall { .. } => {
                None
            }
        }
    }
}

/// Where the scheduler core sends its events. `Send` so a sink can ride
/// into the staged runtime's scheduler thread (which is the only thread
/// that ever touches it — emission stays serial).
pub trait EventSink: Send {
    /// Whether the sink wants events at all. The serving entry points
    /// check this once up front and skip the entire observed path when
    /// `false`, keeping the hot path zero-cost with the default sink.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&mut self, event: Event);
}

/// The default sink: tracing off, zero cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: Event) {}
}

/// A sink that keeps every event in order — the exporter's input and the
/// subject of the byte-identical determinism property tests.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    events: Vec<Event>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the recorder into its event stream.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Recorded event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl EventSink for Recorder {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// A log₂-bucketed histogram: bucket `i` counts observed values of bit
/// length `i` (so bucket 0 holds zeros, bucket `i` holds values in
/// `[2^(i-1), 2^i - 1]`). Exact sum and count ride along, so means are
/// exact even though the distribution is bucketed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    sum: u128,
    count: u64,
}

impl Histogram {
    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.sum += u128::from(value);
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of every observed value.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Per-bucket counts up to the highest non-empty bucket; bucket `i`'s
    /// inclusive upper bound is `2^i - 1`.
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Inclusive upper bound of bucket `idx`.
    pub fn bucket_bound(idx: usize) -> u64 {
        if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }
}

/// A deterministic metrics registry: counters, gauges, and log-bucketed
/// histograms keyed by Prometheus-style metric names (labels inline in
/// the key, e.g. `se_queue_depth{lane="se"}`). Iteration order is sorted
/// by key, so renders are byte-stable.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Joins a metric family name with label pairs into a registry key.
fn keyed(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", body.join(","))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to a counter (created at zero).
    pub fn inc(&mut self, key: &str, by: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += by;
    }

    /// Sets a gauge (last write wins).
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// Records one observation into a histogram (created empty).
    pub fn observe(&mut self, key: &str, value: u64) {
        self.histograms.entry(key.to_string()).or_default().observe(value);
    }

    /// A counter's current value (`None` if never incremented).
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// A gauge's current value.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// A histogram, if anything was observed under `key`.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Folds an event stream into the registry. `labels` is appended to
    /// every metric key (e.g. `[("lane", "se")]` when aggregating several
    /// accelerator lanes into one registry).
    pub fn ingest(&mut self, events: &[Event], labels: &[(&str, &str)]) {
        for event in events {
            match &event.kind {
                EventKind::Admitted { .. } => {
                    self.inc(&keyed("se_requests_admitted_total", labels), 1);
                }
                EventKind::Rejected { .. } => {
                    self.inc(&keyed("se_requests_rejected_total", labels), 1);
                }
                EventKind::Lost { .. } => {
                    self.inc(&keyed("se_requests_lost_total", labels), 1);
                }
                EventKind::QueueDepth { depth, .. } => {
                    self.set_gauge(&keyed("se_queue_depth", labels), *depth as f64);
                    self.observe(&keyed("se_queue_depth_samples", labels), *depth as u64);
                }
                EventKind::BatchFormed { size, .. } => {
                    self.inc(&keyed("se_batches_formed_total", labels), 1);
                    self.observe(&keyed("se_batch_size", labels), *size as u64);
                }
                EventKind::BatchLaunched { done, .. } => {
                    self.inc(&keyed("se_batches_launched_total", labels), 1);
                    self.observe(&keyed("se_batch_cycles", labels), done.saturating_sub(event.at));
                }
                EventKind::BatchCompleted { .. } => {
                    self.inc(&keyed("se_batches_completed_total", labels), 1);
                }
                EventKind::BatchKilled { .. } => {
                    self.inc(&keyed("se_batches_killed_total", labels), 1);
                }
                EventKind::Served { latency, missed, .. } => {
                    self.inc(&keyed("se_requests_served_total", labels), 1);
                    self.observe(&keyed("se_request_latency_cycles", labels), *latency);
                    if *missed {
                        self.inc(&keyed("se_deadline_misses_total", labels), 1);
                    }
                }
                EventKind::InstanceKilled { .. } => {
                    self.inc(&keyed("se_instance_kills_total", labels), 1);
                }
                EventKind::InstanceRestarted { .. } => {
                    self.inc(&keyed("se_instance_restarts_total", labels), 1);
                }
                EventKind::InstanceSpawned { .. } => {
                    self.inc(&keyed("se_instance_spawns_total", labels), 1);
                }
                EventKind::InstanceDraining { .. } => {
                    self.inc(&keyed("se_instance_drains_total", labels), 1);
                }
                EventKind::TierHit { .. } => {
                    self.inc(&keyed("se_tier_hits_total", labels), 1);
                }
                EventKind::TierPromoted { cycles, .. } => {
                    self.inc(&keyed("se_tier_promotions_total", labels), 1);
                    self.observe(&keyed("se_tier_walk_cycles", labels), *cycles);
                }
                EventKind::TierDemoted { .. } => {
                    self.inc(&keyed("se_tier_demotions_total", labels), 1);
                }
                EventKind::TierColdFetch { cycles, .. } => {
                    self.inc(&keyed("se_tier_cold_fetches_total", labels), 1);
                    self.observe(&keyed("se_tier_walk_cycles", labels), *cycles);
                }
                EventKind::TierStreamed { cycles, .. } => {
                    self.inc(&keyed("se_tier_streams_total", labels), 1);
                    self.observe(&keyed("se_tier_walk_cycles", labels), *cycles);
                }
                EventKind::StageWall { stage, wall_ns } => {
                    let mut with_stage: Vec<(&str, &str)> = labels.to_vec();
                    with_stage.push(("stage", stage));
                    self.set_gauge(&keyed("se_stage_wall_ns", &with_stage), *wall_ns as f64);
                }
            }
        }
    }

    /// Renders the registry as Prometheus-style text exposition:
    /// `# TYPE` headers (once per family), counters, then gauges, then
    /// histograms with cumulative `_bucket{le=...}` lines, `_sum`, and
    /// `_count`. Byte-stable for a given registry state.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, value) in &self.counters {
            type_header(&mut out, key, "counter", &mut last_family);
            out.push_str(&format!("{key} {value}\n"));
        }
        last_family.clear();
        for (key, value) in &self.gauges {
            type_header(&mut out, key, "gauge", &mut last_family);
            out.push_str(&format!("{key} {value}\n"));
        }
        last_family.clear();
        for (key, hist) in &self.histograms {
            type_header(&mut out, key, "histogram", &mut last_family);
            let (family, labels) = split_key(key);
            let mut cumulative = 0u64;
            for (idx, &count) in hist.buckets().iter().enumerate() {
                cumulative += count;
                if count > 0 || idx + 1 == hist.buckets().len() {
                    let bound = Histogram::bucket_bound(idx);
                    out.push_str(&format!(
                        "{family}_bucket{{{}le=\"{bound}\"}} {cumulative}\n",
                        labels_prefix(labels)
                    ));
                }
            }
            out.push_str(&format!(
                "{family}_bucket{{{}le=\"+Inf\"}} {}\n",
                labels_prefix(labels),
                hist.count()
            ));
            out.push_str(&format!("{family}_sum{} {}\n", brace(labels), hist.sum()));
            out.push_str(&format!("{family}_count{} {}\n", brace(labels), hist.count()));
        }
        out
    }
}

/// Splits a registry key into `(family, label body)` — the label body is
/// the text between the braces, empty when unlabeled.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(pos) => (&key[..pos], key[pos + 1..].trim_end_matches('}')),
        None => (key, ""),
    }
}

/// Label body followed by a comma, ready to precede an `le` label.
fn labels_prefix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    }
}

/// Label body wrapped back in braces, empty when unlabeled.
fn brace(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

/// Emits a `# TYPE` header when the metric family changes.
fn type_header(out: &mut String, key: &str, kind: &str, last_family: &mut String) {
    let (family, _) = split_key(key);
    if family != last_family {
        out.push_str(&format!("# TYPE {family} {kind}\n"));
        *last_family = family.to_string();
    }
}

/// Whether wall-clock stage annotations were opted into via
/// `SE_TRACE_WALL=1` (see [`EventKind::StageWall`]).
pub fn wall_annotations_enabled() -> bool {
    std::env::var("SE_TRACE_WALL").is_ok_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_recorder_keeps_order() {
        assert!(!NullSink.enabled());
        let mut rec = Recorder::new();
        assert!(rec.enabled());
        assert!(rec.is_empty());
        rec.record(Event { at: 5, kind: EventKind::Rejected { id: 0, model: 1 } });
        rec.record(Event { at: 9, kind: EventKind::InstanceRestarted { instance: 2 } });
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.events()[0].at, 5);
        assert_eq!(rec.events()[1].kind.name(), "instance_restarted");
        let events = rec.into_events();
        assert_eq!(events[1].kind.instance(), Some(2));
        assert_eq!(events[0].kind.instance(), None);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 7, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1022);
        // 0 → bucket 0; 1,1 → bucket 1; 2,3 → bucket 2; 7 → bucket 3;
        // 8 → bucket 4; 1000 → bucket 10.
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[4], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(3), 7);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn ingest_folds_the_taxonomy_into_counters_and_histograms() {
        let events = vec![
            Event { at: 0, kind: EventKind::Admitted { id: 0, model: 0, instance: 0 } },
            Event { at: 0, kind: EventKind::QueueDepth { instance: 0, depth: 1 } },
            Event { at: 1, kind: EventKind::Rejected { id: 1, model: 0 } },
            Event {
                at: 2,
                kind: EventKind::BatchLaunched { seq: 0, instance: 0, model: 0, size: 1, done: 12 },
            },
            Event {
                at: 12,
                kind: EventKind::Served { id: 0, model: 0, instance: 0, latency: 12, missed: true },
            },
            Event { at: 12, kind: EventKind::BatchCompleted { seq: 0, instance: 0, size: 1 } },
            Event {
                at: 3,
                kind: EventKind::TierPromoted { instance: 0, model: 0, from: 1, cycles: 40 },
            },
        ];
        let mut reg = MetricsRegistry::new();
        reg.ingest(&events, &[]);
        assert_eq!(reg.counter("se_requests_admitted_total"), Some(1));
        assert_eq!(reg.counter("se_requests_rejected_total"), Some(1));
        assert_eq!(reg.counter("se_batches_completed_total"), Some(1));
        assert_eq!(reg.counter("se_deadline_misses_total"), Some(1));
        assert_eq!(reg.counter("se_tier_promotions_total"), Some(1));
        assert_eq!(reg.gauge("se_queue_depth"), Some(1.0));
        assert_eq!(reg.histogram("se_request_latency_cycles").unwrap().count(), 1);
        assert_eq!(reg.histogram("se_batch_cycles").unwrap().sum(), 10);
        assert_eq!(reg.histogram("se_tier_walk_cycles").unwrap().count(), 1);
    }

    #[test]
    fn labeled_ingest_keys_and_render_are_byte_stable() {
        let events =
            vec![Event { at: 0, kind: EventKind::Admitted { id: 0, model: 0, instance: 0 } }];
        let mut reg = MetricsRegistry::new();
        reg.ingest(&events, &[("lane", "se")]);
        reg.ingest(&events, &[("lane", "dense")]);
        reg.observe("se_batch_size{lane=\"se\"}", 3);
        assert_eq!(reg.counter("se_requests_admitted_total{lane=\"se\"}"), Some(1));
        let text = reg.render();
        assert_eq!(
            text,
            "# TYPE se_requests_admitted_total counter\n\
             se_requests_admitted_total{lane=\"dense\"} 1\n\
             se_requests_admitted_total{lane=\"se\"} 1\n\
             # TYPE se_batch_size histogram\n\
             se_batch_size_bucket{lane=\"se\",le=\"3\"} 1\n\
             se_batch_size_bucket{lane=\"se\",le=\"+Inf\"} 1\n\
             se_batch_size_sum{lane=\"se\"} 3\n\
             se_batch_size_count{lane=\"se\"} 1\n"
        );
        // Rendering twice is byte-identical.
        assert_eq!(text, reg.render());
    }

    #[test]
    fn stage_wall_annotations_become_labeled_gauges() {
        let events = vec![Event {
            at: 0,
            kind: EventKind::StageWall { stage: "staged-pipeline", wall_ns: 123 },
        }];
        let mut reg = MetricsRegistry::new();
        reg.ingest(&events, &[]);
        assert_eq!(reg.gauge("se_stage_wall_ns{stage=\"staged-pipeline\"}"), Some(123.0));
    }
}
