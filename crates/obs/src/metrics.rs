//! The metrics layer: log₂-bucketed histograms with a quantile
//! estimator ([`Histogram`]) and a deterministic registry that folds an
//! event stream into counters/gauges/histograms and renders them as a
//! Prometheus-style text exposition ([`MetricsRegistry`]).

use std::collections::{BTreeMap, BTreeSet};

use crate::event::{Event, EventKind};

/// A log₂-bucketed histogram: bucket `i` counts observed values of bit
/// length `i` (so bucket 0 holds zeros, bucket `i` holds values in
/// `[2^(i-1), 2^i - 1]`). Exact sum and count ride along, so means are
/// exact even though the distribution is bucketed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    sum: u128,
    count: u64,
}

impl Histogram {
    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()) as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.sum += u128::from(value);
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of every observed value.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Per-bucket counts up to the highest non-empty bucket; bucket `i`'s
    /// inclusive upper bound is `2^i - 1`.
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Inclusive upper bound of bucket `idx`.
    pub fn bucket_bound(idx: usize) -> u64 {
        if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Inclusive lower bound of bucket `idx` (0 for the zero bucket).
    fn bucket_floor(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else {
            1u64 << (idx - 1)
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) from the
    /// log₂ buckets: the quantile rank's bucket is found by cumulative
    /// count, then the value is interpolated linearly toward the
    /// bucket's **upper** bound (so the estimate never under-reports a
    /// bucket a rank lands at the end of). `None` when nothing was
    /// observed. Exact whenever the bucket holding the rank is a
    /// single-value bucket (0 or 1).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, &bucket) in self.counts.iter().enumerate() {
            if bucket == 0 {
                continue;
            }
            if cumulative + bucket >= rank {
                let lower = Self::bucket_floor(idx) as f64;
                let upper = Self::bucket_bound(idx) as f64;
                let position = (rank - cumulative) as f64 / bucket as f64;
                return Some(lower + (upper - lower) * position);
            }
            cumulative += bucket;
        }
        // Unreachable while count == Σ buckets, but stay total.
        Some(Self::bucket_bound(self.counts.len().saturating_sub(1)) as f64)
    }
}

/// A deterministic metrics registry: counters, gauges, and log-bucketed
/// histograms keyed by Prometheus-style metric names (labels inline in
/// the key, e.g. `se_queue_depth{lane="se"}`). Iteration order is sorted
/// by key, so renders are byte-stable.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Joins a metric family name with label pairs into a registry key.
fn keyed(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", body.join(","))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to a counter (created at zero).
    pub fn inc(&mut self, key: &str, by: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += by;
    }

    /// Sets a gauge (last write wins).
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        self.gauges.insert(key.to_string(), value);
    }

    /// Raises a gauge to `value` if it is below (created at `value`) —
    /// the high-watermark update.
    pub fn raise_gauge(&mut self, key: &str, value: f64) {
        let entry = self.gauges.entry(key.to_string()).or_insert(value);
        if *entry < value {
            *entry = value;
        }
    }

    /// Records one observation into a histogram (created empty).
    pub fn observe(&mut self, key: &str, value: u64) {
        self.histograms.entry(key.to_string()).or_default().observe(value);
    }

    /// A counter's current value (`None` if never incremented).
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// A gauge's current value.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// A histogram, if anything was observed under `key`.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Folds an event stream into the registry. `labels` is appended to
    /// every metric key (e.g. `[("lane", "se")]` when aggregating several
    /// accelerator lanes into one registry).
    ///
    /// Besides per-kind counters and latency/size histograms, the fold
    /// derives two stateful families from the stream:
    /// `se_queue_depth_high_watermark` (the deepest queue-depth sample,
    /// merged across repeated ingests under the same labels) and
    /// `se_tier_occupancy_bytes{tier="k"}` (end-of-stream resident bytes
    /// per tier, summed over instances, tracked through installs,
    /// demotions, drops, and restart purges).
    pub fn ingest(&mut self, events: &[Event], labels: &[(&str, &str)]) {
        // Weight-residency ledger: (instance, model) → (tier, bytes),
        // maintained from the tier events alone. `dropped` demotions
        // (capacity drops and restart purges) remove the entry.
        let mut holdings: BTreeMap<(usize, usize), (usize, u64)> = BTreeMap::new();
        let mut tiers_seen: BTreeSet<usize> = BTreeSet::new();
        for event in events {
            match &event.kind {
                EventKind::Admitted { .. } => {
                    self.inc(&keyed("se_requests_admitted_total", labels), 1);
                }
                EventKind::Rejected { .. } => {
                    self.inc(&keyed("se_requests_rejected_total", labels), 1);
                }
                EventKind::Lost { .. } => {
                    self.inc(&keyed("se_requests_lost_total", labels), 1);
                }
                EventKind::QueueDepth { depth, .. } => {
                    self.set_gauge(&keyed("se_queue_depth", labels), *depth as f64);
                    self.raise_gauge(
                        &keyed("se_queue_depth_high_watermark", labels),
                        *depth as f64,
                    );
                    self.observe(&keyed("se_queue_depth_samples", labels), *depth as u64);
                }
                EventKind::BatchFormed { size, .. } => {
                    self.inc(&keyed("se_batches_formed_total", labels), 1);
                    self.observe(&keyed("se_batch_size", labels), *size as u64);
                }
                EventKind::BatchLaunched { done, .. } => {
                    self.inc(&keyed("se_batches_launched_total", labels), 1);
                    self.observe(&keyed("se_batch_cycles", labels), done.saturating_sub(event.at));
                }
                EventKind::BatchCompleted { .. } => {
                    self.inc(&keyed("se_batches_completed_total", labels), 1);
                }
                EventKind::BatchKilled { .. } => {
                    self.inc(&keyed("se_batches_killed_total", labels), 1);
                }
                EventKind::Served { latency, missed, .. } => {
                    self.inc(&keyed("se_requests_served_total", labels), 1);
                    self.observe(&keyed("se_request_latency_cycles", labels), *latency);
                    if *missed {
                        self.inc(&keyed("se_deadline_misses_total", labels), 1);
                    }
                }
                EventKind::InstanceKilled { .. } => {
                    self.inc(&keyed("se_instance_kills_total", labels), 1);
                }
                EventKind::InstanceRestarted { .. } => {
                    self.inc(&keyed("se_instance_restarts_total", labels), 1);
                }
                EventKind::InstanceSpawned { .. } => {
                    self.inc(&keyed("se_instance_spawns_total", labels), 1);
                }
                EventKind::InstanceDraining { .. } => {
                    self.inc(&keyed("se_instance_drains_total", labels), 1);
                }
                EventKind::TierHit { .. } => {
                    self.inc(&keyed("se_tier_hits_total", labels), 1);
                }
                EventKind::TierPromoted { instance, model, cycles, bytes, .. } => {
                    self.inc(&keyed("se_tier_promotions_total", labels), 1);
                    self.observe(&keyed("se_tier_walk_cycles", labels), *cycles);
                    tiers_seen.insert(0);
                    holdings.insert((*instance, *model), (0, *bytes));
                }
                EventKind::TierDemoted { instance, model, to, bytes, dropped } => {
                    if *dropped {
                        self.inc(&keyed("se_tier_drops_total", labels), 1);
                        holdings.remove(&(*instance, *model));
                    } else {
                        self.inc(&keyed("se_tier_demotions_total", labels), 1);
                        tiers_seen.insert(*to);
                        holdings.insert((*instance, *model), (*to, *bytes));
                    }
                }
                EventKind::TierColdFetch { instance, model, cycles, bytes } => {
                    self.inc(&keyed("se_tier_cold_fetches_total", labels), 1);
                    self.observe(&keyed("se_tier_walk_cycles", labels), *cycles);
                    tiers_seen.insert(0);
                    holdings.insert((*instance, *model), (0, *bytes));
                }
                EventKind::TierStreamed { cycles, .. } => {
                    self.inc(&keyed("se_tier_streams_total", labels), 1);
                    self.observe(&keyed("se_tier_walk_cycles", labels), *cycles);
                }
                EventKind::StageWall { stage, wall_ns } => {
                    let mut with_stage: Vec<(&str, &str)> = labels.to_vec();
                    with_stage.push(("stage", stage));
                    self.set_gauge(&keyed("se_stage_wall_ns", &with_stage), *wall_ns as f64);
                }
            }
        }
        for &tier in &tiers_seen {
            let occupied: u64 =
                holdings.values().filter(|&&(t, _)| t == tier).map(|&(_, b)| b).sum();
            let tier_label = tier.to_string();
            let mut with_tier: Vec<(&str, &str)> = labels.to_vec();
            with_tier.push(("tier", &tier_label));
            self.set_gauge(&keyed("se_tier_occupancy_bytes", &with_tier), occupied as f64);
        }
    }

    /// Renders the registry as Prometheus-style text exposition:
    /// `# TYPE` headers (once per family), counters, then gauges, then
    /// histograms with cumulative `_bucket{le=...}` lines, summary-style
    /// `quantile="0.5|0.95|0.99"` estimate lines, `_sum`, and `_count`.
    /// Byte-stable for a given registry state.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, value) in &self.counters {
            type_header(&mut out, key, "counter", &mut last_family);
            out.push_str(&format!("{key} {value}\n"));
        }
        last_family.clear();
        for (key, value) in &self.gauges {
            type_header(&mut out, key, "gauge", &mut last_family);
            out.push_str(&format!("{key} {value}\n"));
        }
        last_family.clear();
        for (key, hist) in &self.histograms {
            type_header(&mut out, key, "histogram", &mut last_family);
            let (family, labels) = split_key(key);
            let mut cumulative = 0u64;
            for (idx, &count) in hist.buckets().iter().enumerate() {
                cumulative += count;
                if count > 0 || idx + 1 == hist.buckets().len() {
                    let bound = Histogram::bucket_bound(idx);
                    out.push_str(&format!(
                        "{family}_bucket{{{}le=\"{bound}\"}} {cumulative}\n",
                        labels_prefix(labels)
                    ));
                }
            }
            out.push_str(&format!(
                "{family}_bucket{{{}le=\"+Inf\"}} {}\n",
                labels_prefix(labels),
                hist.count()
            ));
            for (q, q_label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                if let Some(estimate) = hist.quantile(q) {
                    out.push_str(&format!(
                        "{family}{{{}quantile=\"{q_label}\"}} {estimate}\n",
                        labels_prefix(labels)
                    ));
                }
            }
            out.push_str(&format!("{family}_sum{} {}\n", brace(labels), hist.sum()));
            out.push_str(&format!("{family}_count{} {}\n", brace(labels), hist.count()));
        }
        out
    }
}

/// Splits a registry key into `(family, label body)` — the label body is
/// the text between the braces, empty when unlabeled.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(pos) => (&key[..pos], key[pos + 1..].trim_end_matches('}')),
        None => (key, ""),
    }
}

/// Label body followed by a comma, ready to precede an `le` label.
fn labels_prefix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    }
}

/// Label body wrapped back in braces, empty when unlabeled.
fn brace(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

/// Emits a `# TYPE` header when the metric family changes.
fn type_header(out: &mut String, key: &str, kind: &str, last_family: &mut String) {
    let (family, _) = split_key(key);
    if family != last_family {
        out.push_str(&format!("# TYPE {family} {kind}\n"));
        *last_family = family.to_string();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 7, 8, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1022);
        // 0 → bucket 0; 1,1 → bucket 1; 2,3 → bucket 2; 7 → bucket 3;
        // 8 → bucket 4; 1000 → bucket 10.
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[4], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(3), 7);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_interpolate_toward_the_bucket_upper_bound() {
        assert_eq!(Histogram::default().quantile(0.5), None);
        let mut h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 7, 8, 1000] {
            h.observe(v);
        }
        // rank 4 of 8 lands midway through bucket 2 ([2, 3]) → 2.5.
        assert_eq!(h.quantile(0.5), Some(2.5));
        // rank 8 is the last rank of bucket 10 ([512, 1023]) → its upper
        // bound (the estimator never under-reports the tail).
        assert_eq!(h.quantile(0.99), Some(1023.0));
        assert_eq!(h.quantile(1.0), Some(1023.0));
        // q clamps; rank clamps to at least 1 (bucket 0 is exact).
        assert_eq!(h.quantile(-1.0), Some(0.0));
        // Single-value buckets are exact.
        let mut ones = Histogram::default();
        for _ in 0..10 {
            ones.observe(1);
        }
        assert_eq!(ones.quantile(0.5), Some(1.0));
        assert_eq!(ones.quantile(0.99), Some(1.0));
    }

    #[test]
    fn ingest_folds_the_taxonomy_into_counters_and_histograms() {
        let events = vec![
            Event { at: 0, kind: EventKind::Admitted { id: 0, model: 0, instance: 0 } },
            Event { at: 0, kind: EventKind::QueueDepth { instance: 0, depth: 1 } },
            Event { at: 1, kind: EventKind::Rejected { id: 1, model: 0 } },
            Event {
                at: 2,
                kind: EventKind::BatchLaunched { seq: 0, instance: 0, model: 0, size: 1, done: 12 },
            },
            Event {
                at: 12,
                kind: EventKind::Served {
                    id: 0,
                    model: 0,
                    instance: 0,
                    batch: 0,
                    enqueued: 0,
                    latency: 12,
                    missed: true,
                },
            },
            Event { at: 12, kind: EventKind::BatchCompleted { seq: 0, instance: 0, size: 1 } },
            Event {
                at: 3,
                kind: EventKind::TierPromoted {
                    instance: 0,
                    model: 0,
                    from: 1,
                    cycles: 40,
                    bytes: 700,
                },
            },
        ];
        let mut reg = MetricsRegistry::new();
        reg.ingest(&events, &[]);
        assert_eq!(reg.counter("se_requests_admitted_total"), Some(1));
        assert_eq!(reg.counter("se_requests_rejected_total"), Some(1));
        assert_eq!(reg.counter("se_batches_completed_total"), Some(1));
        assert_eq!(reg.counter("se_deadline_misses_total"), Some(1));
        assert_eq!(reg.counter("se_tier_promotions_total"), Some(1));
        assert_eq!(reg.gauge("se_queue_depth"), Some(1.0));
        assert_eq!(reg.histogram("se_request_latency_cycles").unwrap().count(), 1);
        assert_eq!(reg.histogram("se_batch_cycles").unwrap().sum(), 10);
        assert_eq!(reg.histogram("se_tier_walk_cycles").unwrap().count(), 1);
    }

    #[test]
    fn ingest_derives_high_watermark_and_tier_occupancy_gauges() {
        let events = vec![
            Event { at: 0, kind: EventKind::QueueDepth { instance: 0, depth: 3 } },
            Event { at: 1, kind: EventKind::QueueDepth { instance: 0, depth: 7 } },
            Event { at: 2, kind: EventKind::QueueDepth { instance: 1, depth: 2 } },
            // Model 0 hauled cold into tier 0 of instance 0 …
            Event {
                at: 3,
                kind: EventKind::TierColdFetch { instance: 0, model: 0, cycles: 10, bytes: 700 },
            },
            // … then displaced to tier 1 by model 1's promotion.
            Event {
                at: 4,
                kind: EventKind::TierPromoted {
                    instance: 0,
                    model: 1,
                    from: 2,
                    cycles: 25,
                    bytes: 500,
                },
            },
            Event {
                at: 4,
                kind: EventKind::TierDemoted {
                    instance: 0,
                    model: 0,
                    to: 1,
                    bytes: 700,
                    dropped: false,
                },
            },
            // A second instance holds model 2 in its top tier …
            Event {
                at: 5,
                kind: EventKind::TierColdFetch { instance: 1, model: 2, cycles: 12, bytes: 900 },
            },
            // … until a drop (restart purge / off-the-bottom) removes it.
            Event {
                at: 6,
                kind: EventKind::TierDemoted {
                    instance: 1,
                    model: 2,
                    to: 3,
                    bytes: 900,
                    dropped: true,
                },
            },
        ];
        let mut reg = MetricsRegistry::new();
        reg.ingest(&events, &[]);
        assert_eq!(reg.gauge("se_queue_depth_high_watermark"), Some(7.0));
        // Current value is the last sample, watermark the deepest.
        assert_eq!(reg.gauge("se_queue_depth"), Some(2.0));
        assert_eq!(reg.gauge("se_tier_occupancy_bytes{tier=\"0\"}"), Some(500.0));
        assert_eq!(reg.gauge("se_tier_occupancy_bytes{tier=\"1\"}"), Some(700.0));
        // The drop tier is not occupancy; drops count separately.
        assert_eq!(reg.gauge("se_tier_occupancy_bytes{tier=\"3\"}"), None);
        assert_eq!(reg.counter("se_tier_drops_total"), Some(1));
        assert_eq!(reg.counter("se_tier_demotions_total"), Some(1));
        // Re-ingesting under the same labels keeps the deepest watermark.
        reg.ingest(&[Event { at: 0, kind: EventKind::QueueDepth { instance: 0, depth: 4 } }], &[]);
        assert_eq!(reg.gauge("se_queue_depth_high_watermark"), Some(7.0));
    }

    #[test]
    fn labeled_ingest_keys_and_render_are_byte_stable() {
        let events =
            vec![Event { at: 0, kind: EventKind::Admitted { id: 0, model: 0, instance: 0 } }];
        let mut reg = MetricsRegistry::new();
        reg.ingest(&events, &[("lane", "se")]);
        reg.ingest(&events, &[("lane", "dense")]);
        reg.observe("se_batch_size{lane=\"se\"}", 3);
        assert_eq!(reg.counter("se_requests_admitted_total{lane=\"se\"}"), Some(1));
        let text = reg.render();
        assert_eq!(
            text,
            "# TYPE se_requests_admitted_total counter\n\
             se_requests_admitted_total{lane=\"dense\"} 1\n\
             se_requests_admitted_total{lane=\"se\"} 1\n\
             # TYPE se_batch_size histogram\n\
             se_batch_size_bucket{lane=\"se\",le=\"3\"} 1\n\
             se_batch_size_bucket{lane=\"se\",le=\"+Inf\"} 1\n\
             se_batch_size{lane=\"se\",quantile=\"0.5\"} 3\n\
             se_batch_size{lane=\"se\",quantile=\"0.95\"} 3\n\
             se_batch_size{lane=\"se\",quantile=\"0.99\"} 3\n\
             se_batch_size_sum{lane=\"se\"} 3\n\
             se_batch_size_count{lane=\"se\"} 1\n"
        );
        // Rendering twice is byte-identical.
        assert_eq!(text, reg.render());
    }

    #[test]
    fn stage_wall_annotations_become_labeled_gauges() {
        let events = vec![Event {
            at: 0,
            kind: EventKind::StageWall { stage: "staged-pipeline", wall_ns: 123 },
        }];
        let mut reg = MetricsRegistry::new();
        reg.ingest(&events, &[]);
        assert_eq!(reg.gauge("se_stage_wall_ns{stage=\"staged-pipeline\"}"), Some(123.0));
    }
}
