//! Criterion benches for the accelerator simulators: per-layer simulation
//! throughput for the SmartExchange engine and the four baselines, plus
//! the serial-vs-parallel five-accelerator comparison grid on a
//! repeated-geometry (ResNet164-profile) network.

use criterion::{criterion_group, criterion_main, Criterion};
use se_baselines::{BaselineConfig, BitPragmatic, CambriconX, DianNao, Scnn};
use se_bench::runner::{compare_pairs, RunnerOptions};
use se_hw::sim::SeAccelerator;
use se_hw::{Accelerator, SeAcceleratorConfig};
use se_ir::{Dataset, LayerDesc, LayerKind, NetworkDesc};
use se_models::traces::{self, TraceOptions};
use se_models::zoo;
use std::hint::black_box;

fn test_net() -> NetworkDesc {
    NetworkDesc::new(
        "bench",
        Dataset::Cifar10,
        vec![LayerDesc::new(
            "c1",
            LayerKind::Conv2d {
                in_channels: 64,
                out_channels: 64,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            (16, 16),
        )],
    )
    .unwrap()
}

fn bench_simulators(c: &mut Criterion) {
    let net = test_net();
    let opts = TraceOptions::fast();
    let dense = traces::dense_trace(&net, 0, 0).unwrap();
    let se = traces::se_trace(&net, 0, 0, &opts.se_config).unwrap();

    let mut group = c.benchmark_group("simulate_conv_64x64x3x3_16x16");
    group.sample_size(20);

    let accel = SeAccelerator::new(SeAcceleratorConfig::default()).unwrap();
    group.bench_function("smartexchange", |b| {
        b.iter(|| black_box(accel.process_layer(black_box(&se)).unwrap()))
    });

    let sampled_cfg = SeAcceleratorConfig { row_sample: 4, ..Default::default() };
    let sampled = SeAccelerator::new(sampled_cfg).unwrap();
    group.bench_function("smartexchange_row_sample_4", |b| {
        b.iter(|| black_box(sampled.process_layer(black_box(&se)).unwrap()))
    });

    let diannao = DianNao::new(BaselineConfig::default()).unwrap();
    group.bench_function("diannao", |b| {
        b.iter(|| black_box(diannao.process_layer(black_box(&dense)).unwrap()))
    });

    let scnn = Scnn::new(BaselineConfig::default()).unwrap();
    group.bench_function("scnn", |b| {
        b.iter(|| black_box(scnn.process_layer(black_box(&dense)).unwrap()))
    });

    let cx = CambriconX::new(BaselineConfig::default()).unwrap();
    group.bench_function("cambricon_x", |b| {
        b.iter(|| black_box(cx.process_layer(black_box(&dense)).unwrap()))
    });

    let prag = BitPragmatic::default();
    group.bench_function("bit_pragmatic", |b| {
        b.iter(|| black_box(prag.process_layer(black_box(&dense)).unwrap()))
    });

    group.finish();
}

/// Serial vs parallel five-accelerator simulation on a repeated-geometry
/// network: the first stage of ResNet164 (conv1 + 12 bottlenecks — the
/// same three layer shapes repeated 12×, exercising the schedule caches).
/// Traces are generated once outside the measurement, so this isolates the
/// `(layer, accelerator)` simulation grid of `se_bench::runner`. Outputs
/// are bit-identical across worker counts; on an N-core machine the
/// parallel run should show a clear wall-clock win over the serial one.
fn bench_simulation_grid_parallel(c: &mut Criterion) {
    let full = zoo::resnet164();
    let profile: Vec<LayerDesc> = full.layers()[..37].to_vec();
    let net = NetworkDesc::new("ResNet164-stage1", Dataset::Cifar10, profile).unwrap();
    let opts = RunnerOptions::fast();
    let pairs = traces::trace_pairs(&net, &opts.traces).unwrap();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut group = c.benchmark_group("simulation_grid_resnet164_stage1");
    group.sample_size(10);
    for (label, workers) in
        [("serial_1_worker".to_string(), 1), (format!("parallel_{cores}_workers"), cores)]
    {
        let opts = opts.clone().with_sim_parallelism(workers).unwrap();
        group.bench_function(&label, |b| {
            b.iter(|| black_box(compare_pairs(net.name(), black_box(&pairs), &opts).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulators, bench_simulation_grid_parallel);
criterion_main!(benches);
