//! Criterion benches for the numeric kernels the pipeline leans on:
//! power-of-2 quantization, Booth digit counting, window max/sum, matmul,
//! and im2col.

use criterion::{criterion_group, criterion_main, Criterion};
use se_hw::window::{self, SerialMode};
use se_ir::{booth, Po2Set, QuantTensor};
use se_tensor::conv::{im2col, Conv2dGeom};
use se_tensor::{rng, Mat};
use std::hint::black_box;

fn bench_po2_quantize(c: &mut Criterion) {
    let po2 = Po2Set::default();
    let mut r = rng::seeded(1);
    let xs = rng::normal_vec(&mut r, 4096, 0.0, 0.3);
    c.bench_function("po2_quantize_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &x in &xs {
                acc += po2.quantize(black_box(x));
            }
            black_box(acc)
        })
    });
}

fn bench_booth(c: &mut Criterion) {
    let codes: Vec<i8> = (0..4096).map(|i| (i % 256) as u8 as i8).collect();
    c.bench_function("booth_digits_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &codes {
                acc += booth::booth_nonzero_digits(black_box(x));
            }
            black_box(acc)
        })
    });
}

fn bench_window(c: &mut Criterion) {
    let mut r = rng::seeded(2);
    let t = rng::normal_tensor(&mut r, &[64, 32, 32], 1.0).map(f32::abs);
    let q = QuantTensor::quantize(&t, 8).unwrap();
    let counts = window::serial_counts(&q, SerialMode::Booth);
    c.bench_function("window_max_sweep_32row", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for row in counts.chunks(32) {
                for start in 0..24 {
                    acc += u64::from(window::window_max(black_box(row), start, 1, 8));
                }
            }
            black_box(acc)
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut r = rng::seeded(3);
    let a = rng::normal_mat(&mut r, 128, 128, 1.0);
    let b_m = rng::normal_mat(&mut r, 128, 128, 1.0);
    c.bench_function("matmul_128", |b| b.iter(|| black_box(a.matmul(black_box(&b_m)).unwrap())));
    // The sparse-row fast path the SE coefficient matrices exercise.
    let mut sparse = Mat::zeros(128, 128);
    for i in (0..128).step_by(4) {
        sparse.set(i, i, 0.5);
    }
    c.bench_function("matmul_128_sparse_rows", |b| {
        b.iter(|| black_box(sparse.matmul(black_box(&b_m)).unwrap()))
    });
}

fn bench_im2col(c: &mut Criterion) {
    let mut r = rng::seeded(4);
    let x = rng::normal_tensor(&mut r, &[16, 32, 32], 1.0);
    let geom = Conv2dGeom {
        in_channels: 16,
        out_channels: 16,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
    };
    c.bench_function("im2col_16x32x32_k3", |b| {
        b.iter(|| black_box(im2col(black_box(&x), &geom).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_po2_quantize,
    bench_booth,
    bench_window,
    bench_matmul,
    bench_im2col
);
criterion_main!(benches);
