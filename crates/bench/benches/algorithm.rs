//! Criterion benches for the SmartExchange decomposition itself: matrix-
//! level Algorithm 1 and full layer compression at CONV-layer sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use se_core::{algorithm, layer, network, SeConfig, VectorSparsity};
use se_ir::{LayerDesc, LayerKind};
use se_models::{weights, zoo};
use se_tensor::rng;
use std::hint::black_box;

fn bench_decompose_matrix(c: &mut Criterion) {
    let cfg = SeConfig::default().with_max_iterations(8).unwrap();
    for rows in [48usize, 192, 768] {
        let mut r = rng::seeded(rows as u64);
        let w = rng::normal_mat(&mut r, rows, 3, 0.08);
        c.bench_function(&format!("decompose_{rows}x3"), |b| {
            b.iter(|| black_box(algorithm::decompose(black_box(&w), &cfg).unwrap()))
        });
    }
}

fn bench_compress_conv_layer(c: &mut Criterion) {
    let cfg = SeConfig::default()
        .with_max_iterations(6)
        .unwrap()
        .with_vector_sparsity(VectorSparsity::RelativeThreshold(0.4))
        .unwrap();
    let desc = LayerDesc::new(
        "bench",
        LayerKind::Conv2d { in_channels: 64, out_channels: 64, kernel: 3, stride: 1, padding: 1 },
        (14, 14),
    );
    let mut r = rng::seeded(9);
    let w = rng::kaiming_tensor(&mut r, &[64, 64, 3, 3], 576);
    let mut group = c.benchmark_group("compress_layer");
    group.sample_size(10);
    group.bench_function("conv_64x64x3x3", |b| {
        b.iter(|| black_box(layer::compress_layer(&desc, black_box(&w), &cfg).unwrap()))
    });
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let cfg = SeConfig::default().with_max_iterations(6).unwrap();
    let desc = LayerDesc::new(
        "bench",
        LayerKind::Conv2d { in_channels: 32, out_channels: 32, kernel: 3, stride: 1, padding: 1 },
        (14, 14),
    );
    let mut r = rng::seeded(10);
    let w = rng::kaiming_tensor(&mut r, &[32, 32, 3, 3], 288);
    let parts = layer::compress_layer(&desc, &w, &cfg).unwrap();
    c.bench_function("reconstruct_conv_32x32x3x3", |b| {
        b.iter(|| black_box(layer::reconstruct_layer(&desc, black_box(&parts)).unwrap()))
    });
}

/// Serial vs parallel whole-network compression on a ResNet-scale zoo
/// network (ResNet164: 167 layers, ~1.7 M params). The pipeline's outputs
/// are bit-identical across worker counts, so this measures pure speedup;
/// on an N-core machine the parallel run should approach N× (and must be
/// ≥2× on ≥4 cores — layers are fully independent jobs).
fn bench_compress_network_parallel(c: &mut Criterion) {
    let net = zoo::resnet164();
    let descs: Vec<_> = net.layers().to_vec();
    let base = SeConfig::default().with_max_iterations(4).unwrap();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut group = c.benchmark_group("compress_network_resnet164");
    group.sample_size(10);
    for (label, workers) in
        [("serial_1_worker".to_string(), 1), (format!("parallel_{cores}_workers"), cores)]
    {
        let cfg = base.clone().with_parallelism(workers).unwrap();
        group.bench_function(&label, |b| {
            b.iter(|| {
                black_box(
                    network::compress_network_reports(&descs, &cfg, |d| {
                        Ok(weights::synthetic_weights(net.name(), d, 0)
                            .expect("synthetic weights are infallible"))
                    })
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decompose_matrix,
    bench_compress_conv_layer,
    bench_reconstruct,
    bench_compress_network_parallel
);
criterion_main!(benches);
