//! Experiment harness behind the unified `se` CLI.
//!
//! The `se` binary regenerates the paper's tables and figures as
//! subcommands (`se fig10`, `se table2`, …; reference in `docs/CLI.md`);
//! each experiment lives in [`figures`], dispatched by [`cli`]. The old
//! per-figure binaries under `src/bin/` remain as deprecated shims that
//! forward here. The library also holds the shared pieces: the
//! five-accelerator comparison runner (with `--traces-dir` replay of
//! persisted trace artifacts), text-table formatting, and the CLI-flag
//! reader.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod cli;
pub mod figures;
pub mod runner;
pub mod table;

/// Convenience alias for harness errors (boxed: binaries only print them).
pub type BoxError = Box<dyn std::error::Error>;

/// Harness result alias.
pub type Result<T> = std::result::Result<T, BoxError>;
