//! Experiment harness shared by the per-table / per-figure binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index); this library holds the pieces
//! they share: the five-accelerator comparison runner, text-table
//! formatting, and a tiny CLI-flag reader.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod runner;
pub mod table;

/// Convenience alias for harness errors (boxed: binaries only print them).
pub type BoxError = Box<dyn std::error::Error>;

/// Harness result alias.
pub type Result<T> = std::result::Result<T, BoxError>;
