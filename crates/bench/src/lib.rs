//! Experiment harness behind the unified `se` CLI.
//!
//! The `se` binary regenerates the paper's tables and figures as
//! subcommands (`se fig10`, `se table2`, …; reference in `docs/CLI.md`)
//! and fronts the serving subsystem (`se batch`, `se serve` — see
//! `se_serve` and `docs/SERVING.md`); each experiment lives in
//! [`figures`], dispatched by [`cli`]. The old standalone per-figure
//! binaries finished their deprecation window and were removed. The
//! library also holds the shared pieces: the five-accelerator comparison
//! runner (with `--traces-dir` replay of persisted trace artifacts),
//! text-table formatting, and the CLI-flag reader.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod cli;
pub mod figures;
pub mod json;
pub mod obs_export;
pub mod runner;
pub mod table;

/// Convenience alias for harness errors (boxed: binaries only print them;
/// `Send + Sync` so they can cross the parallel work queue and interoperate
/// with `se_serve`).
pub type BoxError = Box<dyn std::error::Error + Send + Sync>;

/// Harness result alias.
pub type Result<T> = std::result::Result<T, BoxError>;
