//! `se bench serve` — wall-clock benchmarks of the serving runtimes.
//!
//! Sweeps a grid of cluster configurations (instances × router × batch
//! policy) over a synthetic request stream, running each configuration
//! through the serial discrete-event sim and through the staged runtime
//! at every `--workers` count — with **real per-batch work** (the batch
//! engine's amortization math via `se_serve::EngineWork`) fanned across
//! the execution pool. Every staged run is checked for per-request
//! outcome equality against the sim on the same stream; a mismatch fails
//! the command (the determinism contract of `docs/SERVING.md`).
//!
//! Results go to `--bench-out` (default `BENCH_serve.json`) as a
//! machine-readable report (`se_bench::json`); the file is parsed back
//! and schema-checked after writing, so a green exit implies a valid
//! snapshot. Wall-clock numbers vary run to run — the JSON is a perf
//! snapshot, not a determinism surface; only the outcome sets are.

use crate::args::Flags;
use crate::figures::batch::pairs_for;
use crate::figures::latency;
use crate::json::Json;
use crate::{cli, table, Result};
use se_hw::{RunResult, SeAcceleratorConfig};
use se_ir::NetworkDesc;
use se_serve::cluster::{simulate_cluster_run, ClusterRun, ClusterSpec, ModelService};
use se_serve::queue::BatchPolicy;
use se_serve::workload::{self, ArrivalPattern};
use se_serve::{
    BatchEngine, EngineWork, FaultAction, FaultEvent, FaultPlan, Request, RouterPolicy,
    StagedConfig, TierSpec, SE_LANE,
};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Dispatches the `bench` subcommand's action: `serve` runs the sweep,
/// `diff <baseline.json> <candidate.json>` compares two snapshots.
///
/// # Errors
///
/// Fails without a valid action and propagates driver failures.
pub fn run(rest: &[String], flags: &Flags, out: &mut dyn Write) -> Result<()> {
    // Positional scan, same as `se trace`: flag values (inventory
    // `args::VALUE_FLAGS`) are not positionals.
    let mut positionals: Vec<&str> = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        if crate::args::VALUE_FLAGS.contains(&arg.as_str()) {
            iter.next();
        } else if !arg.starts_with("--") {
            positionals.push(arg.as_str());
        }
    }
    match positionals.split_first() {
        Some((&"serve", _)) => run_with_models(flags, &cli::selected_models(flags), out),
        Some((&"diff", [baseline, candidate])) => {
            run_diff(Path::new(baseline), Path::new(candidate), out)
        }
        Some((&"diff", _)) => Err("usage: se bench diff <baseline.json> <candidate.json>".into()),
        other => Err(format!(
            "usage: se bench <serve|diff> [flags] (got {:?}); see docs/CLI.md",
            other.map_or("no action", |(first, _)| first)
        )
        .into()),
    }
}

/// One benchmarked run of one configuration.
struct Measured {
    runtime: &'static str,
    exec_workers: Option<usize>,
    wall_ms: f64,
    run: ClusterRun,
}

/// The `se bench serve` driver on an explicit model set (the testable
/// core: the dry-run test sweeps small models and schema-checks the
/// emitted JSON).
///
/// # Errors
///
/// Fails on conflicting flags, on any staged/sim outcome divergence, and
/// propagates trace, simulation, and I/O failures.
pub fn run_with_models(flags: &Flags, models: &[NetworkDesc], out: &mut dyn Write) -> Result<()> {
    if flags.runtime.is_some() {
        return Err("se bench serve benchmarks both runtimes itself; \
                    --runtime does not apply (use it on se serve / se cluster)"
            .into());
    }
    if flags.exec_workers.is_some() {
        return Err("se bench serve sweeps --workers 1,4,...; \
                    --exec-workers only applies to se serve / se cluster"
            .into());
    }
    if flags.has_fault_flags() {
        return Err("se bench serve scripts its own churn axis (none / kill-restart); \
                    --kill/--restart/--autoscale only apply to se cluster"
            .into());
    }
    if models.is_empty() {
        return Err("se bench serve needs at least one model (check --models)".into());
    }
    let opts = flags.runner_options()?;
    let engine = BatchEngine::new(opts.se_cfg.clone(), opts.baseline_cfg.clone())?;
    let freq = SeAcceleratorConfig::default().frequency_hz;

    // One per-image pass per model; every batch size derives from it.
    let mut per_image: Vec<RunResult> = Vec::with_capacity(models.len());
    for net in models {
        se_core::se_info!("  profiling {}...", net.name());
        let pairs = pairs_for(net, flags, &opts)?;
        per_image.push(engine.per_image_se(&pairs, opts.sim_parallelism)?);
    }
    let mean_exec1: f64 =
        per_image.iter().map(|r| r.total_cycles() as f64).sum::<f64>() / models.len() as f64;

    // The sweep grid: a flag narrows its axis to the given value.
    let instance_counts = flags.instances.map_or_else(|| vec![1, 4], |n| vec![n]);
    let routers: Vec<RouterPolicy> = match flags.router.as_deref() {
        None => vec![RouterPolicy::RoundRobin, RouterPolicy::JoinShortestQueue],
        Some(name) => vec![RouterPolicy::parse(name)
            .ok_or_else(|| format!("unknown router `{name}` (expected rr|jsq|affinity)"))?],
    };
    let max_batches = flags.max_batch.map_or_else(|| vec![1, 8], |n| vec![n]);
    let host = StagedConfig::host_sized().exec_workers;
    let mut workers = flags.workers.clone().unwrap_or_else(|| vec![1, host.min(4), host]);
    workers.sort_unstable();
    workers.dedup();
    let requests = flags.requests.unwrap_or(100_000);
    // Deadlines default on so goodput is a real column (override with
    // --deadline-us; there is no "off" here — best-effort goodput equals
    // throughput and says nothing).
    let deadline = latency::deadline_cycles(flags.deadline_us.or(Some(2000.0)), freq);
    let buffer_bytes = flags.buffer_kb.map(|kb| (kb * 1024.0).round() as u64);
    // The memory axis: every config runs "flat" (the --buffer-kb buffer,
    // possibly unmodeled) and "tiered" (--tiers if given, else a stack
    // derived from the model footprints: a top buffer that fits exactly
    // the largest model, a DRAM tier that fits them all, and a deep SSD
    // origin — the shape where demotions and promotions actually occur).
    let tier_stack: Vec<TierSpec> = match flags.tier_specs()? {
        Some(stack) => stack,
        None => {
            let footprints: Vec<u64> = models
                .iter()
                .zip(&per_image)
                .map(|(net, r)| {
                    ModelService::from_engine(&engine, SE_LANE, net.name(), r, 1).footprint_bytes
                })
                .collect();
            let max_fp = footprints.iter().copied().max().unwrap_or(1);
            let sum_fp: u64 = footprints.iter().sum();
            vec![
                TierSpec::new("buf", max_fp + 1, 16.0),
                TierSpec::new("dram", sum_fp.max(max_fp + 1), 4.0),
                TierSpec::new("ssd", 1 << 40, 1.0),
            ]
        }
    };

    writeln!(
        out,
        "se bench serve: wall-clock runtime benchmark, {} requests/config, workers {:?}\n",
        requests, workers
    )?;

    // With `--trace-out` / `--metrics-out`, each config's sim-oracle run
    // narrates its scheduling decisions into a recorder (one trace pid
    // per config; the staged repeats would duplicate the same stream by
    // the determinism contract, so only the oracle is recorded).
    let observing = flags.trace_out.is_some() || flags.metrics_out.is_some();
    let mut obs_streams: Vec<(String, Vec<se_obs::Event>)> = Vec::new();
    let mut configs = Vec::new();
    let mut rows = Vec::new();
    for &instances in &instance_counts {
        // Arrival pressure scales with capacity so every instance count
        // sees the same per-instance load.
        let rate = flags.rate.unwrap_or_else(|| 1.5 * instances as f64 * freq / mean_exec1);
        let stream = workload::request_stream(
            requests,
            rate,
            freq,
            ArrivalPattern::Uniform,
            models.len(),
            deadline,
        )?;
        // The churn axis: every multi-instance config is measured healthy
        // ("none") and with one instance killed mid-run and restarted
        // later ("kill-restart") — the wall-clock cost of re-routing and
        // cold-restart re-fetches. Single instances skip churn: killing
        // the only instance measures an outage, not elasticity.
        let last_arrival = stream.last().map_or(0, |r| r.arrival);
        let churns: &[&str] =
            if instances > 1 && last_arrival > 0 { &["none", "kill-restart"] } else { &["none"] };
        for router in &routers {
            for &max_batch in &max_batches {
                for &churn in churns {
                    for memory in ["flat", "tiered"] {
                        let policy = BatchPolicy {
                            max_batch,
                            max_wait: (flags.max_wait_us.unwrap_or(50.0) * 1e-6 * freq).round()
                                as u64,
                            queue_cap: flags.queue_cap.unwrap_or(256),
                        };
                        let faults = match churn {
                            "none" => FaultPlan::default(),
                            _ => FaultPlan {
                                events: vec![
                                    FaultEvent {
                                        at: (last_arrival / 3).max(1),
                                        instance: 0,
                                        action: FaultAction::Kill,
                                    },
                                    FaultEvent {
                                        at: (2 * last_arrival / 3)
                                            .max((last_arrival / 3).max(1) + 1),
                                        instance: 0,
                                        action: FaultAction::Restart,
                                    },
                                ],
                                autoscale: None,
                            },
                        };
                        let spec = ClusterSpec {
                            instances,
                            router: *router,
                            policy,
                            buffer_bytes: if memory == "flat" { buffer_bytes } else { None },
                            tiers: (memory == "tiered").then(|| tier_stack.clone()),
                            faults,
                        };
                        let services: Vec<ModelService> = models
                            .iter()
                            .zip(&per_image)
                            .map(|(net, r)| {
                                ModelService::from_engine(
                                    &engine,
                                    SE_LANE,
                                    net.name(),
                                    r,
                                    max_batch,
                                )
                            })
                            .collect();
                        se_core::se_info!(
                            "  bench: {} instance(s), router {}, max batch {}, churn {}, \
                             memory {}...",
                            instances,
                            router.name(),
                            max_batch,
                            churn,
                            memory
                        );
                        let mut recorder = observing.then(se_obs::Recorder::new);
                        let measured = measure_config(
                            &stream,
                            &services,
                            &spec,
                            &engine,
                            &per_image,
                            &workers,
                            recorder.as_mut(),
                        )?;
                        if let Some(rec) = recorder {
                            obs_streams.push((
                                format!(
                                    "inst{} {} b{} {} {}",
                                    instances,
                                    router.name(),
                                    max_batch,
                                    churn,
                                    memory
                                ),
                                rec.into_events(),
                            ));
                        }
                        let oracle = &measured[0].run;
                        if !oracle.report.conserves(stream.len()) {
                            return Err(format!(
                                "request conservation violated at {} instance(s), router {}, \
                                 max batch {}, churn {}, memory {}: {} completed + {} rejected \
                                 + {} lost != {} submitted",
                                instances,
                                router.name(),
                                max_batch,
                                churn,
                                memory,
                                oracle.report.completed(),
                                oracle.report.rejected,
                                oracle.report.lost,
                                stream.len()
                            )
                            .into());
                        }
                        for m in &measured[1..] {
                            if m.run != *oracle {
                                return Err(format!(
                                    "staged outcomes diverge from the sim at {} instance(s), \
                                     router {}, max batch {}, churn {}, memory {}, {} \
                                     worker(s) — determinism bug",
                                    instances,
                                    router.name(),
                                    max_batch,
                                    churn,
                                    memory,
                                    m.exec_workers.unwrap_or(0)
                                )
                                .into());
                            }
                        }
                        for m in &measured {
                            rows.push(summary_row(
                                instances, router, max_batch, churn, memory, m, freq,
                            ));
                            configs.push(config_json(
                                instances, router, max_batch, churn, memory, &spec, m, freq,
                            ));
                        }
                    }
                }
            }
        }
    }

    writeln!(
        out,
        "{}",
        table::render(
            &[
                "inst",
                "router",
                "batch",
                "churn",
                "memory",
                "runtime",
                "workers",
                "wall ms",
                "req/s",
                "p99 ms",
                "goodput/s",
                "fetch MB",
            ],
            &rows,
        )
    )?;

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("serve".into())),
        // v2: churn axis (churn/lost/rerouted/killed_batches per config)
        // and null percentiles for empty latency samples.
        // v3: memory axis ("flat" | "tiered") with per-tier traffic
        // (`tiers`: null for flat, else one entry per tier with spec and
        // hit/promotion/demotion/eviction counters and bytes moved).
        ("schema_version".into(), Json::Num(3.0)),
        (
            "models".into(),
            Json::Arr(models.iter().map(|m| Json::Str(m.name().to_string())).collect()),
        ),
        ("lane".into(), Json::Str("SmartExchange".into())),
        ("profile".into(), Json::Str(if flags.fast { "fast" } else { "full" }.into())),
        ("frequency_hz".into(), Json::Num(freq)),
        ("requests_per_config".into(), Json::Num(requests as f64)),
        ("host_parallelism".into(), Json::Num(host as f64)),
        ("configs".into(), Json::Arr(configs)),
    ]);
    let path = flags.bench_out.clone().unwrap_or_else(|| "BENCH_serve.json".into());
    let text = doc.render();
    // Self-validate before writing: the committed snapshot must always
    // satisfy the schema the CI dry-run checks.
    validate_report(&Json::parse(&text)?)?;
    std::fs::write(&path, &text)?;
    writeln!(out, "wrote {} ({} configs)", path.display(), doc_configs(&doc))?;
    crate::obs_export::write_observability(
        flags.trace_out.as_deref(),
        flags.metrics_out.as_deref(),
        &obs_streams,
    )?;
    Ok(())
}

fn doc_configs(doc: &Json) -> usize {
    doc.get("configs").and_then(Json::as_array).map_or(0, <[Json]>::len)
}

/// Runs one configuration through the sim and through the staged runtime
/// at each worker count. The sim is always `measured[0]`; when a recorder
/// is given, the sim-oracle run narrates into it.
fn measure_config(
    stream: &[Request],
    services: &[ModelService],
    spec: &ClusterSpec,
    engine: &BatchEngine,
    per_image: &[RunResult],
    workers: &[usize],
    recorder: Option<&mut se_obs::Recorder>,
) -> Result<Vec<Measured>> {
    let mut measured = Vec::with_capacity(1 + workers.len());
    let start = Instant::now();
    let run = match recorder {
        Some(rec) => se_serve::cluster::simulate_cluster_run_obs(stream, services, spec, rec)?,
        None => simulate_cluster_run(stream, services, spec)?,
    };
    measured.push(Measured {
        runtime: "sim",
        exec_workers: None,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        run,
    });
    for &w in workers {
        let cfg = StagedConfig { exec_workers: w, ..StagedConfig::default() };
        let work = EngineWork { engine, lane: SE_LANE, per_image };
        let start = Instant::now();
        let run = se_serve::run_cluster_staged(stream, services, spec, &cfg, &work)?;
        measured.push(Measured {
            runtime: "staged",
            exec_workers: Some(w),
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            run,
        });
    }
    Ok(measured)
}

fn summary_row(
    instances: usize,
    router: &RouterPolicy,
    max_batch: usize,
    churn: &str,
    memory: &str,
    m: &Measured,
    freq: f64,
) -> Vec<String> {
    let report = &m.run.report;
    vec![
        instances.to_string(),
        router.name().to_string(),
        max_batch.to_string(),
        churn.to_string(),
        memory.to_string(),
        m.runtime.to_string(),
        m.exec_workers.map_or_else(|| "-".into(), |w| w.to_string()),
        format!("{:.1}", m.wall_ms),
        format!("{:.0}", report.completed() as f64 / (m.wall_ms / 1e3)),
        match report.latency_percentile(99.0) {
            Some(p) => format!("{:.4}", latency::ms(freq, p as f64)),
            None => "-".to_string(),
        },
        format!("{:.1}", report.goodput_per_s(freq)),
        format!("{:.2}", report.residency.bytes_fetched as f64 / (1024.0 * 1024.0)),
    ]
}

#[allow(clippy::too_many_arguments)]
fn config_json(
    instances: usize,
    router: &RouterPolicy,
    max_batch: usize,
    churn: &str,
    memory: &str,
    spec: &ClusterSpec,
    m: &Measured,
    freq: f64,
) -> Json {
    let report = &m.run.report;
    let wall_s = m.wall_ms / 1e3;
    // An all-rejected/all-lost run has no latency sample: percentiles are
    // null, not a fake 0.
    let pct = |p: f64| {
        report.latency_percentile(p).map_or(Json::Null, |c| Json::Num(latency::ms(freq, c as f64)))
    };
    // Per-tier traffic: the spec's tier stack zipped with the report's
    // accumulated counters (flat configs carry null, not an empty array,
    // so the two memory shapes are unmistakable in the JSON).
    let tiers = match &spec.tiers {
        None => Json::Null,
        Some(stack) => Json::Arr(
            stack
                .iter()
                .zip(&report.tier_traffic)
                .map(|(t, s)| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(t.name.clone())),
                        ("capacity_bytes".into(), Json::Num(t.capacity_bytes as f64)),
                        ("bytes_per_cycle".into(), Json::Num(t.bytes_per_cycle)),
                        ("hits".into(), Json::Num(s.hits as f64)),
                        ("promotions".into(), Json::Num(s.promotions as f64)),
                        ("demotions".into(), Json::Num(s.demotions as f64)),
                        ("evictions".into(), Json::Num(s.evictions as f64)),
                        ("up_mb".into(), Json::Num(s.bytes_up as f64 / (1024.0 * 1024.0))),
                        ("down_mb".into(), Json::Num(s.bytes_down as f64 / (1024.0 * 1024.0))),
                    ])
                })
                .collect(),
        ),
    };
    Json::Obj(vec![
        ("runtime".into(), Json::Str(m.runtime.into())),
        ("instances".into(), Json::Num(instances as f64)),
        ("router".into(), Json::Str(router.name().into())),
        ("max_batch".into(), Json::Num(max_batch as f64)),
        ("churn".into(), Json::Str(churn.into())),
        ("memory".into(), Json::Str(memory.into())),
        ("tiers".into(), tiers),
        ("exec_workers".into(), m.exec_workers.map_or(Json::Null, |w| Json::Num(w as f64))),
        ("wall_ms".into(), Json::Num(m.wall_ms)),
        ("throughput_rps".into(), Json::Num(report.completed() as f64 / wall_s)),
        ("completed".into(), Json::Num(report.completed() as f64)),
        ("rejected".into(), Json::Num(report.rejected as f64)),
        ("misses".into(), Json::Num(report.misses as f64)),
        ("lost".into(), Json::Num(report.lost as f64)),
        ("rerouted".into(), Json::Num(report.rerouted as f64)),
        ("killed_batches".into(), Json::Num(report.killed_batches as f64)),
        ("goodput_per_s".into(), Json::Num(report.goodput_per_s(freq))),
        ("p50_ms".into(), pct(50.0)),
        ("p95_ms".into(), pct(95.0)),
        ("p99_ms".into(), pct(99.0)),
        ("weight_fetches".into(), Json::Num(report.residency.fetches as f64)),
        ("fetch_mb".into(), Json::Num(report.residency.bytes_fetched as f64 / (1024.0 * 1024.0))),
        ("outcomes_match_sim".into(), Json::Bool(true)),
    ])
}

/// Schema check for a `BENCH_serve.json` document — shared by the driver
/// (self-validation after writing) and the CI dry-run test.
///
/// # Errors
///
/// Describes the first missing or mistyped field.
pub fn validate_report(doc: &Json) -> Result<()> {
    let field = |key: &str| doc.get(key).ok_or_else(|| format!("missing top-level `{key}`"));
    if field("bench")?.as_str() != Some("serve") {
        return Err("`bench` must be \"serve\"".into());
    }
    if field("schema_version")?.as_f64() != Some(3.0) {
        return Err("`schema_version` must be 3".into());
    }
    for key in ["frequency_hz", "requests_per_config", "host_parallelism"] {
        if field(key)?.as_f64().is_none() {
            return Err(format!("`{key}` must be a number").into());
        }
    }
    for key in ["lane", "profile"] {
        if field(key)?.as_str().is_none() {
            return Err(format!("`{key}` must be a string").into());
        }
    }
    let models = field("models")?.as_array().ok_or("`models` must be an array")?;
    if models.is_empty() || models.iter().any(|m| m.as_str().is_none()) {
        return Err("`models` must be a non-empty array of strings".into());
    }
    let configs = field("configs")?.as_array().ok_or("`configs` must be an array")?;
    if configs.is_empty() {
        return Err("`configs` must be non-empty".into());
    }
    for (i, cfg) in configs.iter().enumerate() {
        let field = |key: &str| cfg.get(key).ok_or_else(|| format!("config {i}: missing `{key}`"));
        let runtime = field("runtime")?.as_str().ok_or("`runtime` must be a string")?;
        match runtime {
            "sim" if *field("exec_workers")? == Json::Null => {}
            "staged" if field("exec_workers")?.as_f64().is_some() => {}
            other => {
                return Err(
                    format!("config {i}: runtime `{other}` inconsistent with exec_workers").into()
                )
            }
        }
        if field("router")?.as_str().is_none() {
            return Err(format!("config {i}: `router` must be a string").into());
        }
        match field("churn")?.as_str() {
            Some("none" | "kill-restart") => {}
            _ => {
                return Err(
                    format!("config {i}: `churn` must be \"none\" or \"kill-restart\"").into()
                )
            }
        }
        // v3 memory axis: flat configs carry `tiers: null`, tiered ones a
        // non-empty per-tier traffic array.
        let memory = match field("memory")?.as_str() {
            Some(m @ ("flat" | "tiered")) => m,
            _ => return Err(format!("config {i}: `memory` must be \"flat\" or \"tiered\"").into()),
        };
        let tiers = field("tiers")?;
        match (memory, tiers) {
            ("flat", Json::Null) => {}
            ("tiered", Json::Arr(entries)) if !entries.is_empty() => {
                for (k, entry) in entries.iter().enumerate() {
                    let tf = |key: &str| {
                        entry
                            .get(key)
                            .ok_or_else(|| format!("config {i} tier {k}: missing `{key}`"))
                    };
                    if tf("name")?.as_str().is_none() {
                        return Err(format!("config {i} tier {k}: `name` must be a string").into());
                    }
                    for key in [
                        "capacity_bytes",
                        "bytes_per_cycle",
                        "hits",
                        "promotions",
                        "demotions",
                        "evictions",
                        "up_mb",
                        "down_mb",
                    ] {
                        if tf(key)?.as_f64().is_none() {
                            return Err(
                                format!("config {i} tier {k}: `{key}` must be a number").into()
                            );
                        }
                    }
                }
            }
            _ => {
                return Err(format!(
                    "config {i}: `tiers` must be null for flat memory and a non-empty \
                     array for tiered memory"
                )
                .into())
            }
        }
        for key in [
            "instances",
            "max_batch",
            "wall_ms",
            "throughput_rps",
            "completed",
            "rejected",
            "misses",
            "lost",
            "rerouted",
            "killed_batches",
            "goodput_per_s",
            "weight_fetches",
            "fetch_mb",
        ] {
            if field(key)?.as_f64().is_none() {
                return Err(format!("config {i}: `{key}` must be a number").into());
            }
        }
        for key in ["p50_ms", "p95_ms", "p99_ms"] {
            let v = field(key)?;
            if v.as_f64().is_none() && *v != Json::Null {
                return Err(format!("config {i}: `{key}` must be a number or null").into());
            }
        }
        if field("outcomes_match_sim")?.as_bool() != Some(true) {
            return Err(format!("config {i}: `outcomes_match_sim` must be true").into());
        }
    }
    Ok(())
}

/// The identity of one config within a snapshot: every sweep axis plus
/// the runtime/worker split — the join key of `se bench diff`.
fn config_key(cfg: &Json) -> String {
    let s = |key: &str| cfg.get(key).and_then(Json::as_str).unwrap_or("?").to_string();
    let n = |key: &str| {
        cfg.get(key).map_or("null".to_string(), |v| {
            v.as_f64().map_or("null".to_string(), |x| format!("{x}"))
        })
    };
    format!(
        "{} inst={} router={} batch={} churn={} memory={} workers={}",
        s("runtime"),
        n("instances"),
        s("router"),
        n("max_batch"),
        s("churn"),
        s("memory"),
        n("exec_workers"),
    )
}

/// `se bench diff <baseline.json> <candidate.json>` — the bench-snapshot
/// regression check. Both files must pass the current schema (a drifted
/// `schema_version` or a missing field fails right there), the two
/// snapshots must cover the same config set, and no config's throughput
/// may swing by more than 2x in either direction. Wall-clock noise stays
/// well inside that band; a structural slowdown does not.
///
/// # Errors
///
/// Fails loudly on unreadable/unparsable files, schema drift, config-set
/// drift, and any >2x throughput swing (all violations are listed).
pub fn run_diff(baseline: &Path, candidate: &Path, out: &mut dyn Write) -> Result<()> {
    let load = |path: &Path| -> Result<Json> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        validate_report(&doc).map_err(|e| format!("{}: schema drift: {e}", path.display()))?;
        Ok(doc)
    };
    let base = load(baseline)?;
    let cand = load(candidate)?;
    let throughputs = |doc: &Json| -> Vec<(String, f64)> {
        doc.get("configs")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|cfg| {
                (config_key(cfg), cfg.get("throughput_rps").and_then(Json::as_f64).unwrap_or(0.0))
            })
            .collect()
    };
    let base_cfgs = throughputs(&base);
    let cand_cfgs = throughputs(&cand);

    let mut violations: Vec<String> = Vec::new();
    for (key, _) in &base_cfgs {
        if !cand_cfgs.iter().any(|(k, _)| k == key) {
            violations.push(format!("config dropped from candidate: {key}"));
        }
    }
    for (key, _) in &cand_cfgs {
        if !base_cfgs.iter().any(|(k, _)| k == key) {
            violations.push(format!("config absent from baseline: {key}"));
        }
    }

    writeln!(
        out,
        "se bench diff: {} (baseline) vs {} (candidate)\n",
        baseline.display(),
        candidate.display()
    )?;
    let mut rows = Vec::new();
    for (key, base_rps) in &base_cfgs {
        let Some((_, cand_rps)) = cand_cfgs.iter().find(|(k, _)| k == key) else { continue };
        let ratio = if *base_rps > 0.0 { cand_rps / base_rps } else { f64::INFINITY };
        let ok = (0.5..=2.0).contains(&ratio);
        if !ok {
            violations.push(format!(
                "throughput swing {ratio:.2}x at {key}: {base_rps:.0} -> {cand_rps:.0} req/s"
            ));
        }
        rows.push(vec![
            key.clone(),
            format!("{base_rps:.0}"),
            format!("{cand_rps:.0}"),
            if ratio.is_finite() {
                format!("{:+.1}%", (ratio - 1.0) * 100.0)
            } else {
                "inf".into()
            },
            format!("{ratio:.2}"),
            if ok { "ok".into() } else { "SWING".into() },
        ]);
    }
    // The per-config delta table prints on success too: snapshot drift is
    // visible in CI logs well before it trips the 2x gate.
    writeln!(
        out,
        "{}",
        table::render(
            &["config", "baseline req/s", "candidate req/s", "delta", "ratio", "verdict"],
            &rows
        )
    )?;

    if violations.is_empty() {
        writeln!(out, "ok: {} config(s) compared, all within 2x", rows.len())?;
        return Ok(());
    }
    for v in &violations {
        writeln!(out, "FAIL: {v}")?;
    }
    Err(format!(
        "bench snapshot regression: {} violation(s) between {} and {}",
        violations.len(),
        baseline.display(),
        candidate.display()
    )
    .into())
}
