//! Combined Figs. 10 + 11 + 12: one sweep of the seven benchmark models
//! through all five accelerators, printing all three normalized views
//! (energy efficiency, DRAM accesses, speedup) — `se fig10`, `se fig11`,
//! and `se fig12` regenerate each figure separately from the same engine.

use crate::args::Flags;
use crate::{cli, figures, Result};
use std::io::Write;

/// Runs one sweep and prints all three normalized views.
///
/// # Errors
///
/// Propagates sweep and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let comparisons = cli::comparison_sweep(flags, &cli::selected_models(flags))?;
    let views = [
        (
            "Fig. 10: normalized energy efficiency (over DianNao)",
            cli::normalized_view(&comparisons, figures::fig10::energy_efficiency),
        ),
        (
            "Fig. 11: normalized DRAM accesses (over SmartExchange)",
            cli::normalized_view(&comparisons, figures::fig11::dram_accesses),
        ),
        (
            "Fig. 12: normalized speedup (over DianNao)",
            cli::normalized_view(&comparisons, figures::fig12::speedup),
        ),
    ];
    for (title, rendered) in views {
        writeln!(out, "{title}\n")?;
        writeln!(out, "{rendered}")?;
    }
    writeln!(out, "paper rows for SmartExchange:")?;
    writeln!(out, "  Fig. 10: 6.7 3.4 2.3 2.0 5.0 3.3 5.2 (geomean 3.7)")?;
    writeln!(out, "  Fig. 11: baselines at 1.1x-3.5x of SmartExchange")?;
    writeln!(out, "  Fig. 12: 9.7 14.5 15.7 8.8 19.2 13.7 12.6 (geomean 13.0)")?;
    Ok(())
}
