//! Fig. 4: bit-level sparsity in activations, with and without 4-bit Booth
//! encoding, for six models on three datasets.
//!
//! Paper series — w/o Booth: 86.5 / 85.2 / 79.8 / 86.8 / 84.1 / 86.7 %,
//! w/ 4-bit Booth: 76.6 / 73.9 / 66.0 / 76.9 / 73.0 / 76.1 % for
//! VGG11, ResNet50, MBV2 (ImageNet), VGG19, ResNet164 (CIFAR-10),
//! DeepLabV3+ (CamVid).

use crate::args::Flags;
use crate::{table, Result};
use se_models::{activations, zoo};
use std::io::Write;

/// Runs the figure.
///
/// # Errors
///
/// Propagates activation-profiling and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    // Fig. 4's six models (EfficientNet-B0 is not in this figure).
    let models = [
        zoo::vgg11(),
        zoo::resnet50(),
        zoo::mobilenet_v2(),
        zoo::vgg19_cifar(),
        zoo::resnet164(),
        zoo::deeplab_v3plus(),
    ];
    let paper_plain = [86.5, 85.2, 79.8, 86.8, 84.1, 86.7];
    let paper_booth = [76.6, 73.9, 66.0, 76.9, 73.0, 76.1];

    writeln!(out, "Fig. 4: bit-level activation sparsity (8-bit activations)\n")?;
    let mut rows = Vec::new();
    for (i, net) in models.iter().enumerate() {
        if !flags.selects(net.name()) {
            continue;
        }
        let s = activations::network_bit_sparsity(net, flags.seed)?;
        rows.push(vec![
            net.name().to_string(),
            format!("{}", net.dataset()),
            format!("{:.1}%", s.plain * 100.0),
            format!("{:.1}%", paper_plain[i]),
            format!("{:.1}%", s.booth * 100.0),
            format!("{:.1}%", paper_booth[i]),
            format!("{:.1}%", s.element * 100.0),
        ]);
    }
    writeln!(
        out,
        "{}",
        table::render(
            &[
                "model",
                "dataset",
                "w/o Booth (ours)",
                "w/o Booth (paper)",
                "w/ Booth (ours)",
                "w/ Booth (paper)",
                "element sparsity",
            ],
            &rows,
        )
    )?;
    writeln!(out, "Shape checks: plain > Booth for every model; both in the paper's band.")?;
    Ok(())
}
