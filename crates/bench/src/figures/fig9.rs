//! Fig. 9: evolution of the SmartExchange decomposition on one weight
//! matrix `W ∈ R^{192×3}` from the second CONV layer of the second block of
//! ResNet164 (CIFAR-10): reconstruction error, `‖B − I‖`, and `Ce` sparsity
//! per iteration.

use crate::args::Flags;
use crate::{table, Result};
use se_core::{algorithm, SeConfig, VectorSparsity};
use se_models::{weights, zoo};
use se_tensor::Mat;
use std::io::Write;

/// Runs the figure (`--seed`/`--fast` do not apply: the paper fixes one
/// dense matrix and a 20-iteration trace).
///
/// # Errors
///
/// Propagates decomposition and I/O failures.
pub fn run(_flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let net = zoo::resnet164();
    // Second block of stage 1: its middle (3x3) conv. Layers are
    // [conv1, block1(conv2,conv3,conv4,proj5), block2(conv6,conv7,conv8)...]
    // so the second block's 3x3 conv is "conv7".
    let desc = net.layers().iter().find(|l| l.name() == "conv7").expect("ResNet164 has conv7");
    // Fig. 9 decomposes a *dense* trained matrix (the evolution shows
    // sparsity being discovered); bypass the zoo's natural pre-pruning by
    // seeding plain Kaiming weights for this layer.
    let mut r = se_tensor::rng::seeded(weights::layer_seed(net.name(), desc.name(), 0));
    let w_full = se_tensor::rng::kaiming_tensor(&mut r, &desc.weight_shape(), 16 * 9);
    // One filter's reshaped (C*R, S) = (48, 3) matrix... the paper slices a
    // 192x3 matrix; we take four filters' worth of rows to match 192x3.
    let s = 3usize;
    let rows = 192usize;
    let data: Vec<f32> = w_full.data()[..rows * s].to_vec();
    let w = Mat::from_vec(data, rows, s)?;

    // The paper tunes the hard threshold per layer; synthetic Kaiming
    // weights sit at a different scale than trained ResNet164 weights, so
    // the threshold is chosen relative to the weight RMS to land in the
    // same ~25–30% sparsity band Fig. 9 shows.
    let rms = (w.data().iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>() / w.len() as f64)
        .sqrt() as f32;
    let cfg = SeConfig::default()
        .with_max_iterations(20)?
        .with_vector_sparsity(VectorSparsity::Threshold(0.35 * rms))?
        .with_quantize_basis(false);
    let (dec, trace) = algorithm::decompose_traced(&w, &cfg)?;

    writeln!(out, "Fig. 9: SmartExchange evolution on W (192x3) from ResNet164 (CIFAR-10)\n")?;
    let rows: Vec<Vec<String>> = trace
        .records
        .iter()
        .map(|r| {
            vec![
                r.iteration.to_string(),
                format!("{:.4}", r.recon_error),
                format!("{:.4}", r.basis_identity_dist),
                format!("{:.1}%", r.ce_sparsity * 100.0),
                format!("{:.1}%", r.ce_row_sparsity * 100.0),
                format!("{:.3e}", r.quant_delta),
            ]
        })
        .collect();
    writeln!(
        out,
        "{}",
        table::render(
            &["iter", "|W-CeB|/|W|", "|B-I|/|I|", "Ce sparsity", "row sparsity", "|delta(Ce)|"],
            &rows,
        )
    )?;

    let final_err = dec.reconstruction_error(&w)?;
    writeln!(out, "final reconstruction error after re-quantize + re-fit: {final_err:.4}")?;
    writeln!(
        out,
        "paper shape: sparsity rises early at the cost of an error spike,\n\
         the fitting then remedies the error while sparsity is maintained,\n\
         and B drifts away from its identity initialisation."
    )?;
    Ok(())
}
