//! Fig. 13: energy breakdown of the SmartExchange accelerator on seven
//! models — (a) CONV + squeeze-excite layers only, (b) all layers
//! (FC included).
//!
//! Paper's observations: DRAM access energy is dominated by input/output
//! activations for most models; weight DRAM energy still dominates for
//! very large models (VGG19/CIFAR-10, ResNet50/ImageNet); RE < 0.78% and
//! index selector < 0.05% of the total.

use crate::args::Flags;
use crate::{cli, runner, table, Result};
use se_hw::{EnergyModel, RunResult, SeAcceleratorConfig};
use std::io::Write;

fn run_model(net: &se_ir::NetworkDesc, include_fc: bool, flags: &Flags) -> Result<RunResult> {
    // `runner_options` already uses the fast trace profile with the
    // requested seed; `--fast` additionally samples output rows.
    let mut opts = flags.runner_options()?;
    if include_fc {
        opts.traces = opts.traces.with_fc_layers();
    }
    runner::run_se_model_cached(net, &opts, flags.traces_dir.as_deref())
}

/// Runs both halves of the figure (`--traces-dir` artifacts for half (b)
/// must be built with `se trace build --with-fc`).
///
/// # Errors
///
/// Propagates sweep and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let models = cli::selected_models(flags);
    let em = EnergyModel::default();
    let cfg = SeAcceleratorConfig::default();

    for (title, include_fc) in
        [("(a) CONV + squeeze-excite layers", false), ("(b) all layers (FC included)", true)]
    {
        writeln!(out, "Fig. 13 {title}: SmartExchange energy breakdown (% of total)\n")?;
        let mut rows = Vec::new();
        for net in &models {
            se_core::se_info!("  {} {title}...", net.name());
            let run = run_model(net, include_fc, flags)?;
            let e = run.energy(&em, &cfg);
            let total = e.total();
            let mut row = vec![net.name().to_string(), format!("{:.3}", total * 1e-9)];
            for (_, v) in e.components() {
                row.push(format!("{:.1}", v / total * 100.0));
            }
            rows.push(row);
        }
        let mut headers: Vec<&str> = vec!["model", "total mJ"];
        headers.extend([
            "DRAM in", "DRAM out", "DRAM wgt", "DRAM idx", "inGB rd", "inGB wr", "outGB rd",
            "outGB wr", "wGB rd", "wGB wr", "PE", "Accum", "RE", "IdxSel",
        ]);
        writeln!(out, "{}", table::render(&headers, &rows))?;
    }
    writeln!(
        out,
        "paper shape checks: activation DRAM dominates for most models;\n\
         weight DRAM dominates for the very large models; RE < ~1%,\n\
         index selector < ~0.1%."
    )?;
    Ok(())
}
