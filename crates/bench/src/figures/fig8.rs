//! Fig. 8: accuracy vs model size — SmartExchange against pruning-alone and
//! quantization-alone baselines.
//!
//! The paper compares against Network-Slimming/ThiNet (structured pruning)
//! and S8/FP8/WAGEUBN/DoReFa (quantization) on ImageNet/CIFAR-10; those
//! training runs are the gate (DESIGN.md), so every method here compresses
//! the *same* trained model on the same synthetic task, each with the same
//! number of recovery epochs — preserving the trade-off ordering the figure
//! demonstrates: SmartExchange reaches quantization-level model sizes at
//! pruning-level accuracies.

use crate::args::Flags;
use crate::{table, Result};
use se_core::{baselines, SeConfig, VectorSparsity};
use se_ir::Po2Set;
use se_models::trainable;
use se_nn::model::Sequential;
use se_nn::{data, train};
use std::io::Write;

/// Total FP32 bits of a model's weight tensors.
fn dense_bits(model: &Sequential) -> u64 {
    model.weight_tensors().map(|t| t.len() as u64 * 32).sum()
}

/// Runs the accuracy-vs-size comparison on the synthetic task.
///
/// # Errors
///
/// Propagates training, compression, and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let input_shape = [1usize, 28, 28];
    let ds = data::procedural_digits(if flags.fast { 8 } else { 16 }, 77 + flags.seed)?;
    let epochs = if flags.fast { 5 } else { 8 };

    se_core::se_info!("training the base model...");
    let mut base = Sequential::new(vec![
        se_nn::layers::Layer::conv2d(1, 6, 3, 2, 1, 1000 + flags.seed)?,
        se_nn::layers::Layer::relu(),
        se_nn::layers::Layer::max_pool(2),
        se_nn::layers::Layer::flatten(),
        se_nn::layers::Layer::linear(6 * 7 * 7, 10, 1001 + flags.seed)?,
    ]);
    let cfg =
        train::TrainConfig::default().with_epochs(2 * epochs).with_lr(0.05).with_batch_size(4);
    train::train(&mut base, &ds, &cfg)?;
    let base_acc = train::evaluate(&base, &ds)?;
    let base_mb = dense_bits(&base) as f64 / 8.0 / 1024.0 / 1024.0;

    let recover =
        train::TrainConfig::default().with_epochs(epochs).with_lr(0.02).with_batch_size(4);
    let mut rows = Vec::new();
    rows.push(vec![
        "FP32 baseline".into(),
        format!("{base_mb:.3}"),
        format!("{:.1}%", base_acc * 100.0),
    ]);

    type Projection = Box<dyn FnMut(&mut Sequential) -> se_nn::Result<()>>;
    let se_cfg = SeConfig::default()
        .with_max_iterations(5)?
        .with_vector_sparsity(VectorSparsity::RelativeThreshold(0.5))?;
    let se_cfg2 = se_cfg.clone().with_vector_sparsity(VectorSparsity::KeepFraction(0.3))?;
    let methods: Vec<(&str, Projection)> = vec![
        (
            "SmartExchange",
            Box::new(move |m: &mut Sequential| {
                trainable::se_projection(m, &[1, 28, 28], &se_cfg)
                    .map_err(|e| se_nn::NnError::InvalidLayer { reason: e.to_string() })
            }),
        ),
        (
            "SmartExchange (aggressive)",
            Box::new(move |m: &mut Sequential| {
                trainable::se_projection(m, &[1, 28, 28], &se_cfg2)
                    .map_err(|e| se_nn::NnError::InvalidLayer { reason: e.to_string() })
            }),
        ),
        (
            "magnitude prune 30% (Han-style)",
            Box::new(|m: &mut Sequential| {
                for layer in m.layers_mut() {
                    if let Some(w) = layer.weights_mut() {
                        let r = baselines::magnitude_prune(w, 0.30)
                            .map_err(|e| se_nn::NnError::InvalidLayer { reason: e.to_string() })?;
                        *w = r.weights;
                    }
                }
                Ok(())
            }),
        ),
        (
            "channel prune 50% (ThiNet-style)",
            Box::new(|m: &mut Sequential| {
                for layer in m.layers_mut() {
                    let is_conv = layer.conv_geom().is_some();
                    if let Some(w) = layer.weights_mut() {
                        if is_conv {
                            let r = baselines::channel_prune(w, 0.5).map_err(|e| {
                                se_nn::NnError::InvalidLayer { reason: e.to_string() }
                            })?;
                            *w = r.weights;
                        }
                    }
                }
                Ok(())
            }),
        ),
        (
            "uniform 8-bit (S8-style)",
            Box::new(|m: &mut Sequential| {
                for layer in m.layers_mut() {
                    if let Some(w) = layer.weights_mut() {
                        let r = baselines::uniform_quantize(w, 8)
                            .map_err(|e| se_nn::NnError::InvalidLayer { reason: e.to_string() })?;
                        *w = r.weights;
                    }
                }
                Ok(())
            }),
        ),
        (
            "uniform 2-bit (DoReFa-style)",
            Box::new(|m: &mut Sequential| {
                for layer in m.layers_mut() {
                    if let Some(w) = layer.weights_mut() {
                        let r = baselines::uniform_quantize(w, 2)
                            .map_err(|e| se_nn::NnError::InvalidLayer { reason: e.to_string() })?;
                        *w = r.weights;
                    }
                }
                Ok(())
            }),
        ),
        (
            "power-of-2 4-bit ([40]-style)",
            Box::new(|m: &mut Sequential| {
                let po2 = Po2Set::default();
                for layer in m.layers_mut() {
                    if let Some(w) = layer.weights_mut() {
                        let r = baselines::po2_quantize(w, &po2)
                            .map_err(|e| se_nn::NnError::InvalidLayer { reason: e.to_string() })?;
                        *w = r.weights;
                    }
                }
                Ok(())
            }),
        ),
    ];

    for (name, mut project) in methods {
        se_core::se_info!("  {name}...");
        let mut model = base.clone();
        let report = train::retrain_with_projection(&mut model, &ds, &recover, &mut project)?;
        // Size: measure the compressed storage of the final projected model.
        let bits: u64 = match name {
            n if n.starts_with("SmartExchange") => {
                let cfg = if n.contains("aggressive") {
                    SeConfig::default()
                        .with_max_iterations(5)?
                        .with_vector_sparsity(VectorSparsity::KeepFraction(0.3))?
                } else {
                    SeConfig::default()
                        .with_max_iterations(5)?
                        .with_vector_sparsity(VectorSparsity::RelativeThreshold(0.5))?
                };
                let net = trainable::compress_trainable(&model, &input_shape, &cfg)?;
                net.total_storage().total_bits()
            }
            n if n.contains("magnitude") => model
                .weight_tensors()
                .map(|t| {
                    let nnz = t.data().iter().filter(|&&x| x != 0.0).count() as u64;
                    nnz * 32 + t.len() as u64
                })
                .sum(),
            n if n.contains("channel") => model
                .weight_tensors()
                .map(|t| {
                    let nnz = t.data().iter().filter(|&&x| x != 0.0).count() as u64;
                    nnz * 32
                })
                .sum(),
            n if n.contains("8-bit") => model.weight_tensors().map(|t| t.len() as u64 * 8).sum(),
            n if n.contains("2-bit") => model.weight_tensors().map(|t| t.len() as u64 * 2).sum(),
            _ => model.weight_tensors().map(|t| t.len() as u64 * 4).sum(),
        };
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", bits as f64 / 8.0 / 1024.0 / 1024.0),
            format!("{:.1}%", report.final_accuracy * 100.0),
        ]);
    }
    writeln!(out, "Fig. 8 (synthetic task): accuracy vs model size\n")?;
    writeln!(out, "{}", table::render(&["method", "size (MB)", "accuracy"], &rows))?;
    writeln!(
        out,
        "paper shape: SmartExchange matches the pruning methods' accuracy at\n\
         the quantization methods' model size (e.g. +2.66% accuracy over\n\
         DoReFa at comparable size on ResNet50/ImageNet)."
    )?;
    Ok(())
}
