//! Shared latency/SLO output helpers of the serving subcommands.
//!
//! `se serve` (single instance, metric/value rows) and `se cluster` (one
//! row per accelerator lane) report the same quantities — latency
//! percentiles in milliseconds and deadline-miss accounting — through the
//! helpers here, so the two outputs use one percentile definition
//! (`se_serve::queue::percentile`, nearest-rank), one cycle→time
//! conversion, and one formatting, and stay directly comparable.

/// The percentiles every serving report prints.
pub const REPORT_PERCENTILES: [f64; 3] = [50.0, 95.0, 99.0];

/// Cycles at `frequency_hz` expressed in milliseconds.
pub fn ms(frequency_hz: f64, cycles: f64) -> f64 {
    cycles / frequency_hz * 1e3
}

/// The [`REPORT_PERCENTILES`] of `latencies` formatted in milliseconds
/// (`{:.4}`), in order — the p50/p95/p99 cells of both serving reports.
/// An empty sample (nothing completed) renders as `-`, never as a
/// fake `0.0000`.
pub fn percentile_cells(latencies: &[u64], frequency_hz: f64) -> [String; 3] {
    REPORT_PERCENTILES.map(|p| match se_serve::queue::percentile(latencies, p) {
        Some(cycles) => format!("{:.4}", ms(frequency_hz, cycles as f64)),
        None => "-".to_string(),
    })
}

/// A `--deadline-us` value converted to a cycle budget at `frequency_hz`
/// (`None` passes through: best effort).
pub fn deadline_cycles(deadline_us: Option<f64>, frequency_hz: f64) -> Option<u64> {
    deadline_us.map(|us| (us * 1e-6 * frequency_hz).round() as u64)
}

/// The deadline-miss cells `(missed, miss %)`: counts against `completed`
/// when a deadline is set, `n/a` otherwise.
pub fn miss_cells(misses: Option<u64>, completed: usize) -> (String, String) {
    match misses {
        None => ("n/a".to_string(), "n/a".to_string()),
        Some(m) => (
            m.to_string(),
            format!(
                "{:.1}",
                if completed == 0 { 0.0 } else { 100.0 * m as f64 / completed as f64 }
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_format_shared_quantities() {
        assert_eq!(ms(1e9, 2_000_000.0), 2.0);
        let cells = percentile_cells(&[1_000_000, 2_000_000, 3_000_000, 4_000_000], 1e9);
        assert_eq!(cells, ["2.0000".to_string(), "4.0000".to_string(), "4.0000".to_string()]);
        let empty = percentile_cells(&[], 1e9);
        assert_eq!(empty, ["-".to_string(), "-".to_string(), "-".to_string()]);
        assert_eq!(deadline_cycles(Some(500.0), 1e9), Some(500_000));
        assert_eq!(deadline_cycles(None, 1e9), None);
        assert_eq!(miss_cells(None, 10), ("n/a".into(), "n/a".into()));
        assert_eq!(miss_cells(Some(3), 12), ("3".into(), "25.0".into()));
        assert_eq!(miss_cells(Some(0), 0), ("0".into(), "0.0".into()));
    }
}
