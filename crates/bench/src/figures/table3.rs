//! Table III: SmartExchange on the compact models (MobileNetV2 and
//! EfficientNet-B0) — the paper reports CR 6.57× / 6.67× with **zero**
//! structured sparsity: on already-compact models the gains come purely
//! from the decomposition + power-of-2 quantization.

use crate::args::Flags;
use crate::{table, Result};
use se_core::{SeConfig, VectorSparsity};
use se_ir::storage;
use se_models::{artifacts, zoo};
use std::io::Write;

/// Runs the table.
///
/// # Errors
///
/// Propagates compression and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let entries = [(zoo::mobilenet_v2(), "6.57", "2.12"), (zoo::efficientnet_b0(), "6.67", "3.06")];
    writeln!(out, "Table III: SmartExchange on compact models\n")?;
    let iterations = if flags.fast { 4 } else { 8 };
    // Compact models: no vector sparsification (paper Spar. = 0.00%).
    let se_cfg = SeConfig::default()
        .with_max_iterations(iterations)?
        .with_vector_sparsity(VectorSparsity::None)?;
    let mut rows = Vec::new();
    for (net, paper_cr, paper_param) in &entries {
        if !flags.selects(net.name()) {
            continue;
        }
        se_core::se_info!("  compressing {} ...", net.name());
        // Replays (or populates) the persisted `CompressedNetwork`
        // artifact when `--traces-dir` is given; reports are bit-identical
        // to the direct streaming path.
        let reports = artifacts::network_reports_cached(
            net,
            &se_cfg,
            flags.seed,
            flags.traces_dir.as_deref(),
        )?;
        let mut total = storage::SeStorage::default();
        let mut params = 0u64;
        let mut pruned = 0f64;
        for r in &reports {
            total.accumulate(&r.storage);
            params += r.params;
            pruned += f64::from(r.vector_sparsity) * r.params as f64;
        }
        rows.push(vec![
            net.name().to_string(),
            format!("{:.2}", storage::compression_rate(params, &total)),
            paper_cr.to_string(),
            format!("{:.2}", total.total_megabytes()),
            paper_param.to_string(),
            format!("{:.2}", total.basis_megabytes()),
            format!("{:.2}", total.ce_megabytes()),
            format!("{:.2}%", pruned / params as f64 * 100.0),
        ]);
    }
    writeln!(
        out,
        "{}",
        table::render(
            &[
                "model",
                "CR (ours)",
                "CR (paper)",
                "Param MB (ours)",
                "(paper)",
                "B MB",
                "Ce MB",
                "Spar",
            ],
            &rows,
        )
    )?;
    writeln!(out, "paper: CR ~6.6x at 0.00% structured sparsity for both compact models.")?;
    Ok(())
}
