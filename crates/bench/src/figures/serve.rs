//! `se serve` — the request-driven serving simulation: a bounded request
//! queue with a batch aggregator (max-batch-size + max-wait policies) in
//! front of the SmartExchange accelerator, driven by a synthetic arrival
//! workload (uniform / burst / closed-loop).
//!
//! The model is simulated once per image (replaying `--traces-dir`
//! artifacts when present); batch execution times come from `se_serve`'s
//! weight-fetch-amortized accounting, and the queue runs as a serial
//! discrete-event loop — so the whole report is **bit-identical for every
//! worker count** given the same flags (the determinism contract of
//! `docs/SERVING.md`).
//!
//! `--runtime staged` swaps the serial loop for `se_serve`'s concurrent
//! staged pipeline. Outcomes — and therefore the report, and this
//! command's stdout — are bit-identical to `--runtime sim` by contract.

use crate::args::{Flags, RuntimeKind};
use crate::figures::batch::pairs_for;
use crate::figures::latency;
use crate::{cli, table, Result};
use se_hw::{EnergyModel, SeAcceleratorConfig};
use se_ir::NetworkDesc;
use se_serve::queue::{self, BatchPolicy};
use se_serve::workload::{self, ArrivalPattern};
use se_serve::{BatchEngine, SE_LANE};
use std::io::Write;

/// The serving scenario derived from the common flags.
#[derive(Debug, Clone, PartialEq)]
struct Scenario {
    policy: BatchPolicy,
    requests: usize,
    /// `None` = closed loop with `concurrency` clients.
    open_loop: Option<ArrivalPattern>,
    /// Absolute arrival rate; `None` derives 1.5× the model's single-image
    /// service rate (enough pressure to form batches, deterministic).
    rate_hz: Option<f64>,
    concurrency: usize,
    /// Per-request deadline budget in cycles (`None` = best effort).
    deadline: Option<u64>,
}

fn scenario(flags: &Flags, frequency_hz: f64) -> Result<Scenario> {
    let max_batch = flags.max_batch.unwrap_or(8);
    let max_wait_us = flags.max_wait_us.unwrap_or(50.0);
    let policy = BatchPolicy {
        max_batch,
        max_wait: (max_wait_us * 1e-6 * frequency_hz).round() as u64,
        queue_cap: flags.queue_cap.unwrap_or(256),
    };
    policy.validate()?;
    let open_loop = match flags.arrival.as_deref().unwrap_or("uniform") {
        "uniform" => Some(ArrivalPattern::Uniform),
        "burst" => Some(ArrivalPattern::Burst { size: flags.burst.unwrap_or(max_batch) }),
        "closed" | "closed-loop" => None,
        other => {
            return Err(format!(
                "unknown arrival pattern `{other}` (expected uniform|burst|closed)"
            )
            .into())
        }
    };
    if open_loop.is_some() && flags.concurrency.is_some() {
        return Err("--concurrency only applies to --arrival closed \
                    (open-loop pressure is --rate; the staged runtime's \
                    thread pool is --exec-workers)"
            .into());
    }
    Ok(Scenario {
        policy,
        requests: flags.requests.unwrap_or(256),
        open_loop,
        rate_hz: flags.rate,
        concurrency: flags.concurrency.unwrap_or(2 * max_batch),
        deadline: latency::deadline_cycles(flags.deadline_us, frequency_hz),
    })
}

/// Runs the serving simulation on the selected benchmark models.
///
/// # Errors
///
/// Propagates trace, simulation, policy, and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    run_with_models(flags, &cli::selected_models(flags), out)
}

/// [`run`] on an explicit model set (the testable core: bit-identity
/// across worker counts is asserted on small networks).
///
/// # Errors
///
/// Propagates trace, simulation, policy, and I/O failures.
pub fn run_with_models(flags: &Flags, models: &[NetworkDesc], out: &mut dyn Write) -> Result<()> {
    if flags.has_fault_flags() {
        return Err("fault injection (--kill/--restart/--autoscale) applies to \
                    se cluster; the single-instance se serve queue has no \
                    fault model"
            .into());
    }
    if flags.tiers.is_some() {
        return Err("--tiers applies to se cluster; the single-instance \
                    se serve queue has no residency model"
            .into());
    }
    let opts = flags.runner_options()?;
    let runtime = flags.runtime_kind()?;
    let staged_cfg = flags.staged_config();
    if runtime == RuntimeKind::Staged {
        // Stdout stays byte-identical across runtimes (the determinism
        // contract CI diffs); the runtime note goes to stderr.
        se_core::se_info!("  runtime: staged ({} exec workers)", staged_cfg.exec_workers);
    }
    let freq = SeAcceleratorConfig::default().frequency_hz;
    let sc = scenario(flags, freq)?;
    let em = EnergyModel::default();
    let ecfg = SeAcceleratorConfig::default();
    writeln!(out, "se serve: batched serving on the SmartExchange accelerator\n")?;
    writeln!(
        out,
        "policy: max batch {}, max wait {} cycles, queue cap {}; {} requests, {}",
        sc.policy.max_batch,
        sc.policy.max_wait,
        sc.policy.queue_cap,
        sc.requests,
        match sc.open_loop {
            Some(ArrivalPattern::Uniform) => "uniform arrivals".to_string(),
            Some(ArrivalPattern::Burst { size }) => format!("bursts of {size}"),
            None => format!("closed loop x{}", sc.concurrency),
        }
    )?;
    writeln!(
        out,
        "slo: {}",
        match sc.deadline {
            Some(d) => format!("deadline {d} cycles/request"),
            None => "best effort (no deadline)".to_string(),
        }
    )?;
    writeln!(out)?;

    // With `--trace-out` / `--metrics-out`, each model's run narrates its
    // scheduling decisions into a recorder (one trace pid per model).
    let observing = flags.trace_out.is_some() || flags.metrics_out.is_some();
    let mut obs_streams: Vec<(String, Vec<se_obs::Event>)> = Vec::new();
    for net in models {
        se_core::se_info!("  serving {}...", net.name());
        let pairs = pairs_for(net, flags, &opts)?;
        let engine = BatchEngine::new(opts.se_cfg.clone(), opts.baseline_cfg.clone())?;
        let per_image = engine.per_image_se(&pairs, opts.sim_parallelism)?;
        let exec = engine.latency_table(SE_LANE, &per_image, sc.policy.max_batch);

        let mut recorder = se_obs::Recorder::new();
        let report = match sc.open_loop {
            Some(pattern) => {
                // Default pressure: 1.5x the single-image service rate —
                // enough to keep the aggregator busy without unbounded
                // queueing at sane max-batch settings.
                let rate = sc.rate_hz.unwrap_or_else(|| 1.5 * freq / exec[0] as f64);
                let arrivals = workload::open_loop_arrivals(sc.requests, rate, freq, pattern)?;
                match (runtime, observing) {
                    (RuntimeKind::Sim, false) => {
                        queue::simulate_open_loop(&arrivals, &exec, &sc.policy)?
                    }
                    (RuntimeKind::Sim, true) => {
                        queue::simulate_open_loop_obs(&arrivals, &exec, &sc.policy, &mut recorder)?
                    }
                    (RuntimeKind::Staged, false) => se_serve::run_queue_staged_open(
                        &arrivals,
                        &exec,
                        &sc.policy,
                        &staged_cfg,
                        &se_serve::NoWork,
                    )?,
                    (RuntimeKind::Staged, true) => se_serve::run_queue_staged_open_obs(
                        &arrivals,
                        &exec,
                        &sc.policy,
                        &staged_cfg,
                        &se_serve::NoWork,
                        &mut recorder,
                    )?,
                }
            }
            None => match (runtime, observing) {
                (RuntimeKind::Sim, false) => {
                    queue::simulate_closed_loop(sc.requests, sc.concurrency, &exec, &sc.policy)?
                }
                (RuntimeKind::Sim, true) => queue::simulate_closed_loop_obs(
                    sc.requests,
                    sc.concurrency,
                    &exec,
                    &sc.policy,
                    &mut recorder,
                )?,
                (RuntimeKind::Staged, false) => se_serve::run_queue_staged_closed(
                    sc.requests,
                    sc.concurrency,
                    &exec,
                    &sc.policy,
                    &staged_cfg,
                    &se_serve::NoWork,
                )?,
                (RuntimeKind::Staged, true) => se_serve::run_queue_staged_closed_obs(
                    sc.requests,
                    sc.concurrency,
                    &exec,
                    &sc.policy,
                    &staged_cfg,
                    &se_serve::NoWork,
                    &mut recorder,
                )?,
            },
        };
        if observing {
            obs_streams.push((net.name().to_string(), recorder.into_events()));
        }

        // Energy and weight-traffic totals from the executed batch mix.
        let hist = report.batch_histogram(sc.policy.max_batch);
        let mut energy_mj = 0.0;
        let mut weight_dram = 0.0;
        for (k, &count) in hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let b = engine.batched(SE_LANE, &per_image, k + 1);
            let m = b.mem_totals();
            energy_mj += count as f64 * b.energy_mj(&em, &ecfg);
            weight_dram += count as f64 * (m.dram_weight_bytes + m.dram_index_bytes) as f64;
        }
        let completed = report.completed().max(1) as f64;
        let misses = sc.deadline.map(|d| report.misses_over_budget(d));
        let (missed, miss_pct) = latency::miss_cells(misses, report.completed());
        let [p50, p95, p99] = latency::percentile_cells(&report.latencies, freq);

        let rows = vec![
            vec!["completed".into(), report.completed().to_string()],
            vec!["rejected".into(), report.rejected.to_string()],
            vec!["batches".into(), report.batch_sizes.len().to_string()],
            vec!["mean batch".into(), format!("{:.2}", report.mean_batch())],
            vec!["throughput img/s".into(), format!("{:.1}", report.throughput_per_s(freq))],
            vec![
                "latency mean ms".into(),
                format!("{:.4}", latency::ms(freq, report.mean_latency())),
            ],
            vec!["latency p50 ms".into(), p50],
            vec!["latency p95 ms".into(), p95],
            vec!["latency p99 ms".into(), p99],
            vec![
                "latency max ms".into(),
                match report.latency_percentile(100.0) {
                    Some(max) => format!("{:.4}", latency::ms(freq, max as f64)),
                    None => "-".to_string(),
                },
            ],
            vec!["deadline missed".into(), missed],
            vec!["miss %".into(), miss_pct],
            vec!["energy mJ/img".into(), format!("{:.4}", energy_mj / completed)],
            vec!["wgt DRAM B/img".into(), format!("{:.1}", weight_dram / completed)],
        ];
        writeln!(out, "{}", net.name())?;
        writeln!(out, "{}", table::render(&["metric", "value"], &rows))?;
    }
    writeln!(
        out,
        "determinism: output is bit-identical for any worker count\n\
         (SE_PARALLELISM / --sim-parallelism) given the same flags."
    )?;
    crate::obs_export::write_observability(
        flags.trace_out.as_deref(),
        flags.metrics_out.as_deref(),
        &obs_streams,
    )?;
    Ok(())
}
