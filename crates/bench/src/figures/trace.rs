//! `se trace` — build and inspect persisted trace artifacts.
//!
//! `se trace build --traces-dir DIR [--models a,b] [--seed N] [--with-fc]`
//! compresses each selected benchmark model once and persists its trace
//! pairs (`*.setrace`, format in `docs/TRACE_FORMAT.md`); every subsequent
//! `--traces-dir` subcommand replays the artifacts bit-identically instead
//! of regenerating the decompositions. `se trace info --traces-dir DIR`
//! lists what a directory holds.

use crate::args::Flags;
use crate::{cli, table, Result};
use se_models::artifacts::{self, NETWORK_FILE_EXT};
use se_models::traces::{self, TRACE_FILE_EXT};
use std::io::Write;

/// Dispatches the `trace` subcommand's action (`build` or `info`).
///
/// # Errors
///
/// Fails without a valid action or `--traces-dir`, and propagates build
/// and I/O failures.
pub fn run(rest: &[String], flags: &Flags, out: &mut dyn Write) -> Result<()> {
    // The action is the first positional argument after `trace`, in any
    // position relative to flags (values of value-taking flags are not
    // positionals: `se trace --traces-dir d build` must find `build`).
    // The value-flag inventory is the parser's own (`args::VALUE_FLAGS`),
    // so the two can never drift apart.
    let mut action = None;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        if crate::args::VALUE_FLAGS.contains(&arg.as_str()) {
            iter.next(); // skip the flag's value
        } else if !arg.starts_with("--") {
            action = Some(arg.as_str());
            break;
        }
    }
    match action {
        Some("build") => build(flags, out),
        Some("info") => info(flags, out),
        other => Err(format!(
            "usage: se trace <build|info> --traces-dir DIR (got {:?}); see docs/CLI.md",
            other.unwrap_or("no action")
        )
        .into()),
    }
}

fn traces_dir(flags: &Flags) -> Result<&std::path::Path> {
    flags
        .traces_dir
        .as_deref()
        .ok_or_else(|| "se trace requires --traces-dir DIR (see docs/CLI.md)".into())
}

/// `se trace build`: generates and persists trace artifacts for the
/// selected models under the exact options the figure subcommands use
/// (`--with-fc` additionally covers the Fig. 13(b) all-layers protocol).
fn build(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let dir = traces_dir(flags)?;
    let mut opts = flags.runner_options()?.traces;
    if flags.with_fc {
        opts = opts.with_fc_layers();
    }
    let models = cli::selected_models(flags);
    if models.is_empty() {
        return Err("no models selected (check --models)".into());
    }
    let mut rows = Vec::new();
    for net in &models {
        se_core::se_info!("  building traces for {} (with_fc={})...", net.name(), flags.with_fc);
        let (path, pairs) = traces::build_trace_file(net, &opts, dir)?;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        rows.push(vec![
            net.name().to_string(),
            pairs.to_string(),
            format!("{:.2}", bytes as f64 / (1024.0 * 1024.0)),
            path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string(),
        ]);
    }
    writeln!(out, "trace artifacts built in {}\n", dir.display())?;
    writeln!(out, "{}", table::render(&["model", "pairs", "MB", "file"], &rows))?;
    writeln!(
        out,
        "replay with any trace-consuming subcommand, e.g.\n  \
         se fig10 --traces-dir {} {}",
        dir.display(),
        if flags.fast { "--fast" } else { "" }
    )?;
    Ok(())
}

/// Artifact paths in `dir` with the given extension, sorted.
fn artifact_paths(dir: &std::path::Path, ext: &str) -> Result<Vec<std::path::PathBuf>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(ext))
        .collect();
    paths.sort();
    Ok(paths)
}

/// `se trace info`: decodes every artifact in the directory and tabulates
/// its contents — trace-pair sets (`*.setrace`) and persisted compressed
/// networks (`*.senet`, written by the table2/table3/postproc
/// subcommands under `--traces-dir`).
fn info(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let dir = traces_dir(flags)?;
    let paths = artifact_paths(dir, TRACE_FILE_EXT)?;
    writeln!(out, "trace artifacts in {}\n", dir.display())?;
    let mut rows = Vec::new();
    for path in &paths {
        let file = traces::read_trace_file(path)?;
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let with_fc = file.pairs.iter().any(|p| !p.dense.desc().kind().is_conv_like());
        rows.push(vec![
            file.net_name,
            format!("{:016x}", file.digest),
            file.pairs.len().to_string(),
            if with_fc { "yes" } else { "no" }.to_string(),
            format!("{:.2}", bytes as f64 / (1024.0 * 1024.0)),
            path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string(),
        ]);
    }
    writeln!(
        out,
        "{}",
        table::render(&["model", "options digest", "pairs", "FC", "MB", "file"], &rows)
    )?;

    let networks = artifact_paths(dir, NETWORK_FILE_EXT)?;
    if !networks.is_empty() {
        writeln!(out, "compressed-network artifacts\n")?;
        let mut rows = Vec::new();
        for path in &networks {
            let net = artifacts::read_network_file(path)?;
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            rows.push(vec![
                net.reports.len().to_string(),
                format!("{:.2}", net.compression_rate()),
                format!("{:.2}", bytes as f64 / (1024.0 * 1024.0)),
                path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string(),
            ]);
        }
        writeln!(out, "{}", table::render(&["layers", "CR", "MB", "file"], &rows))?;
    }
    Ok(())
}
