//! `se obs` — the trace analytics CLI over `se_obs` event streams.
//!
//! Consumes `--trace-out` Chrome-trace files written by `se serve`,
//! `se cluster`, or `se bench serve`, reconstructs the exact event
//! streams via [`crate::obs_export::events_from_chrome_trace`] (the
//! round-trip guarantee), and runs [`se_obs::analyze`] over them:
//!
//! * `se obs summarize <trace.json>` — windowed timeseries: per-window
//!   throughput, goodput, latency percentiles, queue depth, and tier
//!   traffic, conservation-checked against the stream totals;
//! * `se obs attribute <trace.json>` — SLO-miss attribution: each missed
//!   or lost request's lifetime decomposed into reroute / queue /
//!   formation / cold / exec segments, ranked by `(cause, model,
//!   instance)` — post-restart cold-buffer misses surface as
//!   `cold-restart`, separate from steady-state `cold`;
//! * `se obs diff <a.json> <b.json>` — cross-run regression diff:
//!   streams aligned by label, signed per-window and per-bucket deltas,
//!   the dominant regressor named.
//!
//! Every analysis is a pure function of the event stream, so the output
//! is byte-identical across `--sim-parallelism`, `--exec-workers`, and
//! `--runtime sim|staged` — the same determinism contract as the trace
//! files themselves. The window width is `--window-us` (default 200),
//! converted to cycles at the accelerator frequency.

use crate::args::Flags;
use crate::json::Json;
use crate::obs_export::events_from_chrome_trace;
use crate::{table, Result};
use se_hw::SeAcceleratorConfig;
use se_obs::analyze::{analyze, Analysis};
use se_obs::Event;
use std::io::Write;
use std::path::Path;

/// Dispatches the `obs` subcommand's action: `summarize` / `attribute`
/// take one trace file, `diff` takes a baseline and a candidate.
///
/// # Errors
///
/// Fails without a valid action, on unreadable or foreign trace files,
/// and on conservation violations (a stream whose windows cannot fold
/// back to its totals is corrupt).
pub fn run(rest: &[String], flags: &Flags, out: &mut dyn Write) -> Result<()> {
    // Positional scan, same as `se trace` / `se bench`: flag values
    // (inventory `args::VALUE_FLAGS`) are not positionals.
    let mut positionals: Vec<&str> = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        if crate::args::VALUE_FLAGS.contains(&arg.as_str()) {
            iter.next();
        } else if !arg.starts_with("--") {
            positionals.push(arg.as_str());
        }
    }
    match positionals.split_first() {
        Some((&"summarize", [trace])) => run_summarize(Path::new(trace), flags, out),
        Some((&"attribute", [trace])) => run_attribute(Path::new(trace), flags, out),
        Some((&"diff", [baseline, candidate])) => {
            run_diff(Path::new(baseline), Path::new(candidate), flags, out)
        }
        Some((&"summarize", _)) => Err("usage: se obs summarize <trace.json>".into()),
        Some((&"attribute", _)) => Err("usage: se obs attribute <trace.json>".into()),
        Some((&"diff", _)) => Err("usage: se obs diff <baseline.json> <candidate.json>".into()),
        other => Err(format!(
            "usage: se obs <summarize|attribute|diff> <trace.json...> [--window-us F] \
             (got {:?}); see docs/CLI.md",
            other.map_or("no action", |(first, _)| first)
        )
        .into()),
    }
}

/// The analysis window in cycles: `--window-us` (default 200 µs) at the
/// accelerator frequency, never below one cycle.
fn window_cycles(flags: &Flags) -> u64 {
    let freq = SeAcceleratorConfig::default().frequency_hz;
    ((flags.window_us.unwrap_or(200.0) * 1e-6 * freq).round() as u64).max(1)
}

/// Loads a `--trace-out` file back into its named event streams.
fn load_streams(path: &Path) -> Result<Vec<(String, Vec<Event>)>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    events_from_chrome_trace(&doc).map_err(|e| format!("{}: {e}", path.display()).into())
}

/// Cycles → microseconds at the accelerator frequency.
fn us(cycles: u64) -> f64 {
    cycles as f64 / SeAcceleratorConfig::default().frequency_hz * 1e6
}

/// The one-line conservation verdict of a stream's totals; a violation
/// is an error (the trace is corrupt or foreign).
fn conservation_line(label: &str, a: &Analysis) -> Result<String> {
    let t = &a.totals;
    if !t.conserves() {
        return Err(format!(
            "stream {label:?}: conservation violated: {} served + {} rejected + {} lost \
             != {} submitted ({} duplicate terminals)",
            t.served, t.rejected, t.lost, t.submitted, t.duplicate_terminals
        )
        .into());
    }
    if a.fold_windows() != *t {
        return Err(format!(
            "stream {label:?}: window fold mismatch — the windowed aggregates do not \
             sum back to the stream totals (analyzer bug)"
        )
        .into());
    }
    Ok(format!(
        "stream {label}: {} submitted = {} served + {} rejected + {} lost \
         (conservation ok; windows fold to totals)",
        t.submitted, t.served, t.rejected, t.lost
    ))
}

/// Whether a window has anything to show (idle windows are elided from
/// the tables, never from the analysis).
fn window_active(w: &se_obs::analyze::WindowStats) -> bool {
    w.admitted > 0
        || w.rejected > 0
        || w.lost > 0
        || w.served > 0
        || w.batches_launched > 0
        || w.batches_completed > 0
        || w.batches_killed > 0
        || w.queue_depth_samples > 0
        || w.tier_hits + w.tier_promotions + w.tier_cold_fetches + w.tier_streams > 0
        || w.tier_demotions + w.tier_drops > 0
        || w.tier_walk_cycles > 0
}

/// `se obs summarize <trace.json>` — the windowed timeseries view.
fn run_summarize(trace: &Path, flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let window = window_cycles(flags);
    let streams = load_streams(trace)?;
    writeln!(
        out,
        "se obs summarize: {} ({} stream(s), window {:.0} us = {} cycles)\n",
        trace.display(),
        streams.len(),
        us(window),
        window
    )?;
    for (label, events) in &streams {
        let a = analyze(events, window);
        writeln!(out, "{}", conservation_line(label, &a)?)?;
        let t = &a.totals;
        writeln!(
            out,
            "  {} missed, {} batches ({} killed), {} kills / {} restarts, \
             makespan {:.0} us",
            t.missed,
            t.batches_launched,
            t.batches_killed,
            t.kills,
            t.restarts,
            us(t.makespan)
        )?;
        let active: Vec<&se_obs::analyze::WindowStats> =
            a.windows.iter().filter(|w| window_active(w)).collect();
        let rows: Vec<Vec<String>> = active
            .iter()
            .map(|w| {
                let pct = |p: f64| {
                    w.latency_percentile(p).map_or_else(|| "-".into(), |c| format!("{:.1}", us(c)))
                };
                vec![
                    w.index.to_string(),
                    format!("{:.0}", us(w.start)),
                    w.admitted.to_string(),
                    w.rejected.to_string(),
                    w.lost.to_string(),
                    w.served.to_string(),
                    w.served_ok().to_string(),
                    w.missed.to_string(),
                    pct(50.0),
                    pct(95.0),
                    pct(99.0),
                    w.queue_depth_max.to_string(),
                    format!("{:.1}", w.queue_depth_mean()),
                    w.tier_hits.to_string(),
                    w.tier_promotions.to_string(),
                    w.tier_cold_fetches.to_string(),
                    w.tier_walk_cycles.to_string(),
                ]
            })
            .collect();
        writeln!(
            out,
            "{}",
            table::render(
                &[
                    "win", "t_us", "adm", "rej", "lost", "served", "ok", "miss", "p50_us",
                    "p95_us", "p99_us", "q_max", "q_mean", "hits", "promo", "cold", "walk_cyc",
                ],
                &rows
            )
        )?;
        let idle = a.windows.len() - active.len();
        if idle > 0 {
            writeln!(out, "  ({idle} idle window(s) elided)")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// `se obs attribute <trace.json>` — the SLO-miss attribution view.
fn run_attribute(trace: &Path, flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let window = window_cycles(flags);
    let streams = load_streams(trace)?;
    writeln!(
        out,
        "se obs attribute: {} ({} stream(s), window {:.0} us = {} cycles)\n",
        trace.display(),
        streams.len(),
        us(window),
        window
    )?;
    for (label, events) in &streams {
        let a = analyze(events, window);
        writeln!(out, "{}", conservation_line(label, &a)?)?;
        let t = &a.totals;
        writeln!(out, "  {} missed + {} lost of {} submitted", t.missed, t.lost, t.submitted)?;
        let ranked = a.ranked_miss_causes();
        if ranked.is_empty() {
            writeln!(out, "  no misses to attribute\n")?;
            continue;
        }
        let rows: Vec<Vec<String>> = ranked
            .iter()
            .map(|g| {
                vec![
                    g.cause.to_string(),
                    g.model.to_string(),
                    g.instance.to_string(),
                    g.requests.to_string(),
                    g.cycles.to_string(),
                    format!("{:.1}", us(g.cycles)),
                ]
            })
            .collect();
        writeln!(
            out,
            "{}",
            table::render(&["cause", "model", "inst", "requests", "cycles", "us"], &rows)
        )?;
        let buckets = a.miss_cycles_by_segment();
        let bucket_rows: Vec<Vec<String>> = buckets
            .iter()
            .map(|(name, cycles)| {
                vec![(*name).to_string(), cycles.to_string(), format!("{:.1}", us(*cycles))]
            })
            .collect();
        writeln!(
            out,
            "miss cycles by segment:\n{}",
            table::render(&["segment", "cycles", "us"], &bucket_rows)
        )?;
    }
    Ok(())
}

/// `se obs diff <baseline.json> <candidate.json>` — the cross-run
/// regression view. Streams align by label; a label present on one side
/// only is an error (the runs are not comparable).
fn run_diff(baseline: &Path, candidate: &Path, flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let window = window_cycles(flags);
    let base_streams = load_streams(baseline)?;
    let cand_streams = load_streams(candidate)?;
    let base_labels: Vec<&str> = base_streams.iter().map(|(l, _)| l.as_str()).collect();
    let cand_labels: Vec<&str> = cand_streams.iter().map(|(l, _)| l.as_str()).collect();
    if base_labels != cand_labels {
        return Err(format!(
            "stream labels differ — runs are not comparable:\n  baseline {}: {:?}\n  \
             candidate {}: {:?}",
            baseline.display(),
            base_labels,
            candidate.display(),
            cand_labels
        )
        .into());
    }
    writeln!(
        out,
        "se obs diff: {} (baseline) vs {} (candidate), window {:.0} us = {} cycles\n",
        baseline.display(),
        candidate.display(),
        us(window),
        window
    )?;
    for ((label, base_events), (_, cand_events)) in base_streams.iter().zip(&cand_streams) {
        let base = analyze(base_events, window);
        let cand = analyze(cand_events, window);
        conservation_line(label, &base)?;
        conservation_line(label, &cand)?;
        let d = se_obs::analyze::diff(&base, &cand);
        writeln!(out, "stream {label}: candidate - baseline")?;
        let changed: Vec<&se_obs::analyze::WindowDelta> =
            d.windows.iter().filter(|w| !w.is_zero()).collect();
        if changed.is_empty() {
            writeln!(out, "  no window-level changes")?;
        } else {
            let signed = |v: i64| format!("{v:+}");
            let rows: Vec<Vec<String>> = changed
                .iter()
                .map(|w| {
                    vec![
                        w.index.to_string(),
                        format!("{:.0}", us(w.index * window)),
                        signed(w.served),
                        signed(w.served_ok),
                        signed(w.missed),
                        signed(w.rejected),
                        signed(w.lost),
                        signed(w.queue_depth_max),
                        signed(w.tier_walk_cycles),
                    ]
                })
                .collect();
            writeln!(
                out,
                "{}",
                table::render(
                    &["win", "t_us", "served", "ok", "miss", "rej", "lost", "q_max", "walk_cyc"],
                    &rows
                )
            )?;
        }
        let bucket_rows: Vec<Vec<String>> = d
            .buckets
            .iter()
            .map(|(name, delta)| vec![(*name).to_string(), format!("{delta:+}")])
            .collect();
        writeln!(
            out,
            "miss-cycle deltas by segment:\n{}",
            table::render(&["segment", "delta_cycles"], &bucket_rows)
        )?;
        match d.dominant_regressor {
            Some((name, delta)) => {
                writeln!(out, "dominant regressor: {name} (+{delta} miss cycles)")?;
            }
            None => writeln!(out, "dominant regressor: none (no bucket regressed)")?,
        }
        match d.worst_window {
            Some((index, drop)) => writeln!(
                out,
                "largest goodput drop: window {index} [{:.0}..{:.0} us] ({drop} on-time \
                 completions)",
                us(index * window),
                us((index + 1) * window)
            )?,
            None => writeln!(out, "largest goodput drop: none (no window lost goodput)")?,
        }
        writeln!(out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs_export::chrome_trace;
    use se_obs::EventKind;

    fn flags(args: &[&str]) -> Flags {
        Flags::from_args(args.iter().map(|s| (*s).to_string()))
    }

    fn write_trace(name: &str, streams: &[(String, Vec<Event>)]) -> std::path::PathBuf {
        let views: Vec<(String, &[Event])> =
            streams.iter().map(|(l, e)| (l.clone(), e.as_slice())).collect();
        let path = std::env::temp_dir().join(format!("se-obs-{}-{name}.json", std::process::id()));
        std::fs::write(&path, chrome_trace(&views).render()).unwrap();
        path
    }

    fn tiny_stream(slow: bool) -> Vec<Event> {
        let (start, done) = if slow { (400, 900) } else { (10, 60) };
        vec![
            Event { at: 0, kind: EventKind::Admitted { id: 0, model: 0, instance: 0 } },
            Event { at: 0, kind: EventKind::QueueDepth { instance: 0, depth: 1 } },
            Event {
                at: start,
                kind: EventKind::BatchFormed { seq: 0, instance: 0, model: 0, size: 1 },
            },
            Event {
                at: start,
                kind: EventKind::BatchLaunched { seq: 0, instance: 0, model: 0, size: 1, done },
            },
            Event {
                at: done,
                kind: EventKind::Served {
                    id: 0,
                    model: 0,
                    instance: 0,
                    batch: 0,
                    enqueued: 0,
                    latency: done,
                    missed: slow,
                },
            },
            Event { at: done, kind: EventKind::BatchCompleted { seq: 0, instance: 0, size: 1 } },
        ]
    }

    #[test]
    fn summarize_and_attribute_run_on_written_traces() {
        let streams = vec![("se".to_string(), tiny_stream(true))];
        let path = write_trace("summ", &streams);
        let mut out = Vec::new();
        run(
            &["summarize".to_string(), path.display().to_string()],
            &flags(&["--window-us", "100"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("conservation ok"), "{text}");
        assert!(text.contains("stream se"), "{text}");

        let mut out = Vec::new();
        run(&["attribute".to_string(), path.display().to_string()], &flags(&[]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("1 missed + 0 lost"), "{text}");
        assert!(text.contains("exec"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn diff_against_self_is_all_zeros_and_mismatched_labels_fail() {
        let healthy = vec![("se".to_string(), tiny_stream(false))];
        let slow = vec![("se".to_string(), tiny_stream(true))];
        let base = write_trace("diff-base", &healthy);
        let cand = write_trace("diff-cand", &slow);

        let mut out = Vec::new();
        run(
            &["diff".to_string(), base.display().to_string(), base.display().to_string()],
            &flags(&[]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("no window-level changes"), "{text}");
        assert!(text.contains("dominant regressor: none"), "{text}");
        assert!(text.contains("largest goodput drop: none"), "{text}");

        let mut out = Vec::new();
        run(
            &["diff".to_string(), base.display().to_string(), cand.display().to_string()],
            &flags(&["--window-us", "0.1"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("dominant regressor: exec"), "{text}");
        assert!(text.contains("largest goodput drop: window"), "{text}");

        let renamed = vec![("dense".to_string(), tiny_stream(false))];
        let foreign = write_trace("diff-foreign", &renamed);
        let err = run(
            &["diff".to_string(), base.display().to_string(), foreign.display().to_string()],
            &flags(&[]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("labels differ"), "{err}");
        for p in [base, cand, foreign] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn missing_action_and_missing_file_error_loudly() {
        let err = run(&[], &flags(&[]), &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("summarize|attribute|diff"), "{err}");
        let err = run(
            &["summarize".to_string(), "/nonexistent/trace.json".to_string()],
            &flags(&[]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("/nonexistent/trace.json"), "{err}");
    }
}
