//! Fig. 11: normalized number of DRAM accesses (over the SmartExchange
//! accelerator) for the five accelerators on seven models.
//!
//! Paper's range: the baselines need 1.1×–3.5× the DRAM accesses of
//! SmartExchange (geometric means 1.8 / 1.6 / 1.8 / 2.0 for DianNao /
//! SCNN / Cambricon-X / Bit-pragmatic).

use crate::args::Flags;
use crate::runner::ModelComparison;
use crate::{cli, Result};
use std::io::Write;

/// Runs the figure on the paper's accelerator-benchmark model set.
///
/// # Errors
///
/// Propagates sweep and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let comparisons = cli::comparison_sweep(flags, &cli::selected_models(flags))?;
    writeln!(out, "Fig. 11: normalized DRAM accesses (over SmartExchange)\n")?;
    writeln!(out, "{}", cli::normalized_view(&comparisons, dram_accesses))?;
    writeln!(out, "paper: baselines at 1.1x-3.5x of SmartExchange; SmartExchange = 1.0.")?;
    writeln!(out, "shape check: every baseline >= 1.0 on every model.")?;
    Ok(())
}

/// One model's DRAM bytes normalized over SmartExchange.
pub fn dram_accesses(cmp: &ModelComparison) -> [Option<f64>; 5] {
    let d = cmp.dram_bytes();
    let se = d[4].expect("SE runs everything") as f64;
    d.map(|v| v.map(|bytes| bytes as f64 / se))
}
