//! Table I: unit energy cost per 8-bit extracted from a commercial 28 nm
//! technology — the premise motivating SmartExchange (memory access costs
//! ≥ 9.5× the corresponding MAC computation).

use crate::args::Flags;
use crate::{table, Result};
use se_hw::EnergyModel;
use std::io::Write;

/// Runs the table (flags do not apply: the energy model is static).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn run(_flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let m = EnergyModel::default();
    writeln!(out, "Table I: unit energy cost per 8-bit (pJ), 28 nm commercial technology\n")?;
    let rows = vec![
        vec!["DRAM".to_string(), format!("{:.3}", m.dram_pj_per_byte)],
        vec![
            "SRAM (2 KB - 64 KB macro)".to_string(),
            format!("{:.2} - {:.2}", m.sram_min_pj_per_byte, m.sram_max_pj_per_byte),
        ],
        vec!["MAC".to_string(), format!("{:.3}", m.mac_pj)],
        vec!["multiplier".to_string(), format!("{:.3}", m.mult_pj)],
        vec!["adder".to_string(), format!("{:.3}", m.add_pj)],
    ];
    writeln!(out, "{}", table::render(&["component", "pJ / 8-bit"], &rows))?;

    writeln!(out, "Derived units used by the simulators (recorded assumptions, DESIGN.md):")?;
    let rows = vec![
        vec!["register file (per byte)".to_string(), format!("{:.3}", m.rf_pj_per_byte)],
        vec!["RE shift-and-add".to_string(), format!("{:.3}", m.shift_add_pj)],
        vec!["bit-serial digit-cycle".to_string(), format!("{:.3}", m.bit_serial_cycle_pj)],
        vec!["index-selector compare".to_string(), format!("{:.4}", m.index_compare_pj)],
        vec!["idle lane-cycle".to_string(), format!("{:.5}", m.lane_idle_pj)],
    ];
    writeln!(out, "{}", table::render(&["component", "pJ"], &rows))?;

    let ratio = m.dram_pj_per_byte / m.sram_pj_per_byte(16.0);
    writeln!(
        out,
        "DRAM / SRAM(16KB) ratio: {ratio:.1}x  (paper: >= 9.5x vs MAC: {:.1}x)",
        m.dram_pj_per_byte / m.mac_pj
    )?;
    Ok(())
}
