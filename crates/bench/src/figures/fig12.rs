//! Fig. 12: normalized speedup (over DianNao) of the five accelerators on
//! seven models, batch size 1.
//!
//! Paper's SmartExchange series: 9.7 / 14.5 / 15.7 / 8.8 / 19.2 / 13.7 /
//! 12.6 (geometric mean 13.0×), with average advantages of 3.8× / 2.5× /
//! 2.0× over SCNN / Cambricon-X / Bit-pragmatic.

use crate::args::Flags;
use crate::runner::ModelComparison;
use crate::{cli, Result};
use std::io::Write;

/// Runs the figure on the paper's accelerator-benchmark model set.
///
/// # Errors
///
/// Propagates sweep and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let comparisons = cli::comparison_sweep(flags, &cli::selected_models(flags))?;
    writeln!(out, "Fig. 12: normalized speedup (over DianNao), batch 1\n")?;
    writeln!(out, "{}", cli::normalized_view(&comparisons, speedup))?;
    writeln!(out, "paper SmartExchange row: 9.7 14.5 15.7 8.8 19.2 13.7 12.6 (geomean 13.0)")?;
    writeln!(out, "shape checks: SmartExchange fastest everywhere; DianNao = 1.0.")?;
    Ok(())
}

/// One model's speedups normalized over DianNao.
pub fn speedup(cmp: &ModelComparison) -> [Option<f64>; 5] {
    let c = cmp.cycles();
    let base = c[0].expect("DianNao runs everything") as f64;
    c.map(|v| v.map(|cycles| base / cycles as f64))
}
