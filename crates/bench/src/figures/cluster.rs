//! `se cluster` — sharded multi-instance serving with SLO-aware routing
//! and weight-residency-aware mixed-model placement.
//!
//! N accelerator instances (`--instances`) sit behind one open-loop
//! request stream that interleaves the selected models per request
//! (`--models a,b`), carries per-request deadlines (`--deadline-us`), and
//! is routed by `--router` (round-robin / join-shortest-queue /
//! model-affinity). With `--buffer-kb` each instance models a finite
//! weight buffer: a model switch re-fetches the whole weight footprint
//! (LRU eviction), while a resident model serves batch after batch
//! without touching weight DRAM. With `--tiers` the flat buffer becomes
//! a tiered store (weight buffer <-> DRAM <-> SSD): eviction demotes to
//! the next tier down instead of dropping, and a promotion charges the
//! serialized transfer through every tier it crosses — per-tier traffic
//! prints on its own gated lines. The same stream is replayed against all
//! five accelerator lanes, so the table reads as a head-to-head: the
//! SmartExchange lane's compressed footprint fits where the dense
//! footprints thrash, showing up as fewer weight fetches and higher
//! goodput at equal buffer size.
//!
//! Per-image simulation replays `--traces-dir` artifacts when present;
//! the cluster itself is a serial discrete-event loop, so the whole
//! report is **bit-identical for every worker count** given the same
//! flags (`docs/SERVING.md`). `--runtime staged` swaps the loop for the
//! concurrent staged pipeline with identical outcomes — and therefore
//! identical stdout.

use crate::args::{Flags, RuntimeKind};
use crate::figures::batch::pairs_for;
use crate::figures::latency;
use crate::{cli, table, Result};
use se_hw::{RunResult, SeAcceleratorConfig};
use se_ir::NetworkDesc;
use se_serve::cluster::{ClusterSpec, ModelService, RouterPolicy};
use se_serve::queue::BatchPolicy;
use se_serve::workload::{self, ArrivalPattern};
use se_serve::{BatchEngine, ACCEL_NAMES, SE_LANE};
use std::io::Write;

/// The cluster scenario derived from the flags.
#[derive(Debug, Clone, PartialEq)]
struct Scenario {
    spec: ClusterSpec,
    requests: usize,
    pattern: ArrivalPattern,
    rate_hz: Option<f64>,
    deadline: Option<u64>,
}

fn scenario(flags: &Flags, frequency_hz: f64) -> Result<Scenario> {
    let max_batch = flags.max_batch.unwrap_or(8);
    let max_wait_us = flags.max_wait_us.unwrap_or(50.0);
    let policy = BatchPolicy {
        max_batch,
        max_wait: (max_wait_us * 1e-6 * frequency_hz).round() as u64,
        queue_cap: flags.queue_cap.unwrap_or(256),
    };
    let router = match flags.router.as_deref() {
        None => RouterPolicy::JoinShortestQueue,
        Some(name) => RouterPolicy::parse(name)
            .ok_or_else(|| format!("unknown router `{name}` (expected rr|jsq|affinity)"))?,
    };
    let pattern = match flags.arrival.as_deref().unwrap_or("uniform") {
        "uniform" => ArrivalPattern::Uniform,
        "burst" => ArrivalPattern::Burst { size: flags.burst.unwrap_or(max_batch) },
        other => {
            return Err(format!(
                "unknown arrival pattern `{other}` for se cluster (expected uniform|burst)"
            )
            .into())
        }
    };
    if flags.concurrency.is_some() {
        return Err("--concurrency is a closed-loop `se serve` flag; se cluster \
                    is open-loop (--rate sets the pressure, --instances the \
                    parallel capacity, --exec-workers the staged thread pool)"
            .into());
    }
    let spec = ClusterSpec {
        instances: flags.instances.unwrap_or(4),
        router,
        policy,
        buffer_bytes: flags.buffer_kb.map(|kb| (kb * 1024.0).round() as u64),
        tiers: flags.tier_specs()?,
        faults: flags.fault_plan(frequency_hz)?,
    };
    spec.faults.validate(spec.instances)?;
    Ok(Scenario {
        spec,
        requests: flags.requests.unwrap_or(256),
        pattern,
        rate_hz: flags.rate,
        deadline: latency::deadline_cycles(flags.deadline_us, frequency_hz),
    })
}

/// Runs the cluster simulation on the selected benchmark models.
///
/// # Errors
///
/// Propagates trace, simulation, policy, and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    run_with_models(flags, &cli::selected_models(flags), out)
}

/// [`run`] on an explicit model set (the testable core: bit-identity
/// across worker counts and the SE-vs-dense residency comparison are
/// asserted on small networks).
///
/// # Errors
///
/// Propagates trace, simulation, policy, and I/O failures.
pub fn run_with_models(flags: &Flags, models: &[NetworkDesc], out: &mut dyn Write) -> Result<()> {
    if models.is_empty() {
        return Err("se cluster needs at least one model (check --models)".into());
    }
    let opts = flags.runner_options()?;
    let runtime = flags.runtime_kind()?;
    let staged_cfg = flags.staged_config();
    if runtime == RuntimeKind::Staged {
        // Stdout stays byte-identical across runtimes (the determinism
        // contract CI diffs); the runtime note goes to stderr.
        se_core::se_info!("  runtime: staged ({} exec workers)", staged_cfg.exec_workers);
    }
    let freq = SeAcceleratorConfig::default().frequency_hz;
    let sc = scenario(flags, freq)?;
    let engine = BatchEngine::new(opts.se_cfg.clone(), opts.baseline_cfg.clone())?;

    // One per-image comparison pass per model; every lane's service
    // profile and every batch size derive from it.
    let mut per_model: Vec<[Option<RunResult>; 5]> = Vec::with_capacity(models.len());
    for net in models {
        se_core::se_info!("  clustering {}...", net.name());
        let pairs = pairs_for(net, flags, &opts)?;
        per_model.push(engine.per_image_comparison(&pairs, opts.sim_parallelism)?);
    }

    writeln!(
        out,
        "se cluster: sharded serving across {} instance(s), router {}\n",
        sc.spec.instances,
        sc.spec.router.name()
    )?;
    writeln!(
        out,
        "policy: max batch {}, max wait {} cycles, queue cap {}/instance; {} requests, {}",
        sc.spec.policy.max_batch,
        sc.spec.policy.max_wait,
        sc.spec.policy.queue_cap,
        sc.requests,
        match sc.pattern {
            ArrivalPattern::Uniform => "uniform arrivals".to_string(),
            ArrivalPattern::Burst { size } => format!("bursts of {size}"),
        }
    )?;
    writeln!(
        out,
        "slo: {}; weight buffer: {}",
        match sc.deadline {
            Some(d) => format!("deadline {d} cycles/request (EDF batch formation)"),
            None => "best effort (no deadlines)".to_string(),
        },
        match (&sc.spec.tiers, sc.spec.buffer_bytes) {
            (Some(tiers), _) => {
                let stack: Vec<String> = tiers
                    .iter()
                    .map(|t| {
                        format!(
                            "{} {:.0} KB @ {} B/cyc",
                            t.name,
                            t.capacity_bytes as f64 / 1024.0,
                            t.bytes_per_cycle
                        )
                    })
                    .collect();
                format!("tiered store/instance ({})", stack.join(" <-> "))
            }
            (None, Some(b)) => format!("{:.0} KB/instance (LRU residency)", b as f64 / 1024.0),
            (None, None) => "unmodeled (weights streamed per batch)".to_string(),
        }
    )?;
    // Fault-free runs print nothing here: stdout stays byte-identical to
    // a build without failure injection.
    if !sc.spec.faults.is_empty() {
        let scripted: Vec<String> = sc
            .spec
            .faults
            .events
            .iter()
            .map(|e| {
                format!(
                    "{} inst {} @ {} cycles",
                    match e.action {
                        se_serve::FaultAction::Kill => "kill",
                        se_serve::FaultAction::Restart => "restart",
                    },
                    e.instance,
                    e.at
                )
            })
            .collect();
        writeln!(
            out,
            "faults: {}; autoscale: {}",
            if scripted.is_empty() { "none scripted".to_string() } else { scripted.join(", ") },
            match &sc.spec.faults.autoscale {
                Some(p) => format!(
                    "spawn above {} waiting/instance, drain below {}",
                    p.spawn_above, p.drain_below
                ),
                None => "off".to_string(),
            }
        )?;
    }
    writeln!(out)?;

    // Per-model weight footprints: what a switch re-fetches on each lane —
    // the quantity the buffer size is chosen against.
    let mut rows = Vec::new();
    for (net, runs) in models.iter().zip(&per_model) {
        let mut row = vec![net.name().to_string()];
        for run in runs {
            row.push(match run {
                Some(r) => format!("{:.1}", r.weight_footprint_bytes() as f64 / 1024.0),
                None => "n/a".to_string(),
            });
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("model").chain(ACCEL_NAMES).collect();
    writeln!(out, "weight footprint per model (KB):")?;
    writeln!(out, "{}", table::render(&headers, &rows))?;

    // The shared request stream: models interleaved per request, rate
    // defaulted to 1.5x the cluster's aggregate SmartExchange service
    // rate (deterministic: derived from the mean batch-1 latency).
    let mean_se_exec1: f64 = per_model
        .iter()
        .map(|runs| {
            runs[SE_LANE].as_ref().expect("SmartExchange supports every layer").total_cycles()
                as f64
        })
        .sum::<f64>()
        / models.len() as f64;
    let rate = sc.rate_hz.unwrap_or_else(|| 1.5 * sc.spec.instances as f64 * freq / mean_se_exec1);
    let stream =
        workload::request_stream(sc.requests, rate, freq, sc.pattern, models.len(), sc.deadline)?;

    // Replay the same stream against every lane. With `--trace-out` /
    // `--metrics-out`, each lane's run additionally narrates its
    // scheduling decisions into a recorder (one trace pid per lane); the
    // virtual-time stream — and so the exported bytes — is identical for
    // sim and staged runtimes at any worker count.
    let observing = flags.trace_out.is_some() || flags.metrics_out.is_some();
    let mut obs_streams: Vec<(String, Vec<se_obs::Event>)> = Vec::new();
    let mut rows = Vec::new();
    let mut churn_lines: Vec<String> = Vec::new();
    let mut tier_lines: Vec<String> = Vec::new();
    for (lane, lane_name) in ACCEL_NAMES.iter().enumerate() {
        let services: Option<Vec<ModelService>> = models
            .iter()
            .zip(&per_model)
            .map(|(net, runs)| {
                runs[lane].as_ref().map(|r| {
                    ModelService::from_engine(
                        &engine,
                        lane,
                        net.name(),
                        r,
                        sc.spec.policy.max_batch,
                    )
                })
            })
            .collect();
        let Some(services) = services else {
            rows.push(
                std::iter::once((*lane_name).to_string())
                    .chain(std::iter::repeat_n("n/a".to_string(), 13))
                    .collect(),
            );
            continue;
        };
        let report = if observing {
            let mut recorder = se_obs::Recorder::new();
            let report = match runtime {
                RuntimeKind::Sim => {
                    se_serve::cluster::simulate_cluster_run_obs(
                        &stream,
                        &services,
                        &sc.spec,
                        &mut recorder,
                    )?
                    .report
                }
                RuntimeKind::Staged => {
                    se_serve::run_cluster_staged_obs(
                        &stream,
                        &services,
                        &sc.spec,
                        &staged_cfg,
                        &se_serve::NoWork,
                        &mut recorder,
                    )?
                    .report
                }
            };
            obs_streams.push(((*lane_name).to_string(), recorder.into_events()));
            report
        } else {
            match runtime {
                RuntimeKind::Sim => {
                    se_serve::cluster::simulate_cluster(&stream, &services, &sc.spec)?
                }
                RuntimeKind::Staged => {
                    se_serve::run_cluster_staged(
                        &stream,
                        &services,
                        &sc.spec,
                        &staged_cfg,
                        &se_serve::NoWork,
                    )?
                    .report
                }
            }
        };
        let (missed, miss_pct) =
            latency::miss_cells(sc.deadline.map(|_| report.misses), report.completed());
        let [p50, p95, p99] = latency::percentile_cells(&report.latencies, freq);
        rows.push(vec![
            (*lane_name).to_string(),
            report.completed().to_string(),
            report.rejected.to_string(),
            missed,
            miss_pct,
            format!("{:.1}", report.goodput_per_s(freq)),
            p50,
            p95,
            p99,
            report.residency.fetches.to_string(),
            format!("{:.2}", report.residency.bytes_fetched as f64 / (1024.0 * 1024.0)),
            report.residency.evictions.to_string(),
            report.rerouted.to_string(),
            report.lost.to_string(),
        ]);
        // Tier-free runs print nothing here: stdout stays byte-identical
        // to a build without the tiered store. The lane table's columns
        // never change (CI's awk scripts index them by position) — tier
        // traffic goes on its own gated lines.
        if let Some(tiers) = &sc.spec.tiers {
            for (t, stats) in tiers.iter().zip(&report.tier_traffic) {
                tier_lines.push(format!(
                    "  {}: tier {}: hits {}, promotions {}, demotions {}, evictions {}, \
                     up {:.2} MB, down {:.2} MB",
                    lane_name,
                    t.name,
                    stats.hits,
                    stats.promotions,
                    stats.demotions,
                    stats.evictions,
                    stats.bytes_up as f64 / (1024.0 * 1024.0),
                    stats.bytes_down as f64 / (1024.0 * 1024.0),
                ));
            }
        }
        if !sc.spec.faults.is_empty() {
            for e in &report.events {
                churn_lines.push(format!(
                    "  {}: {} inst {} @ {} cycles{}",
                    lane_name,
                    e.kind.tag(),
                    e.instance,
                    e.at,
                    match e.kind {
                        se_serve::ClusterEventKind::Kill { in_flight, rerouted, lost } =>
                            format!(" (in-flight {in_flight}, rerouted {rerouted}, lost {lost})"),
                        _ => String::new(),
                    }
                ));
            }
            churn_lines.push(format!(
                "  {}: accounting: {} completed + {} rejected + {} lost == {} submitted ({})",
                lane_name,
                report.completed(),
                report.rejected,
                report.lost,
                stream.len(),
                if report.conserves(stream.len()) { "ok" } else { "VIOLATED" }
            ));
        }
    }
    writeln!(out, "cluster serving, all lanes on the same request stream:")?;
    writeln!(
        out,
        "{}",
        table::render(
            &[
                "lane",
                "completed",
                "rejected",
                "missed",
                "miss %",
                "goodput img/s",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "wgt fetches",
                "fetch MB",
                "evictions",
                "rerouted",
                "lost",
            ],
            &rows,
        )
    )?;
    if !tier_lines.is_empty() {
        writeln!(out, "per-tier traffic per lane (top tier first, summed over instances):")?;
        for line in &tier_lines {
            writeln!(out, "{line}")?;
        }
        writeln!(out)?;
    }
    if !churn_lines.is_empty() {
        writeln!(out, "fault timeline and conservation accounting per lane:")?;
        for line in &churn_lines {
            writeln!(out, "{line}")?;
        }
        writeln!(out)?;
    }
    writeln!(
        out,
        "determinism: output is bit-identical for any worker count\n\
         (SE_PARALLELISM / --sim-parallelism) given the same flags."
    )?;
    crate::obs_export::write_observability(
        flags.trace_out.as_deref(),
        flags.metrics_out.as_deref(),
        &obs_streams,
    )?;
    Ok(())
}
