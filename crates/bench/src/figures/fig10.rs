//! Fig. 10: normalized energy efficiency (over DianNao) of the five
//! accelerators on seven DNN models and three datasets.
//!
//! Paper's SmartExchange series: 6.7 / 3.4 / 2.3 / 2.0 / 5.0 / 3.3 / 5.2,
//! geometric mean 3.7× over DianNao (and 2.0×–6.7× over the best
//! baseline per model).

use crate::args::Flags;
use crate::runner::ModelComparison;
use crate::{cli, Result};
use se_hw::{EnergyModel, SeAcceleratorConfig};
use se_ir::NetworkDesc;
use std::io::Write;

/// Runs the figure on the paper's accelerator-benchmark model set.
///
/// # Errors
///
/// Propagates sweep and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    run_with_models(flags, &cli::selected_models(flags), out)
}

/// [`run`] on an explicit model set (the testable core: byte-identity of
/// cached vs direct runs is asserted on small networks).
///
/// # Errors
///
/// Propagates sweep and I/O failures.
pub fn run_with_models(flags: &Flags, models: &[NetworkDesc], out: &mut dyn Write) -> Result<()> {
    let comparisons = cli::comparison_sweep(flags, models)?;
    writeln!(out, "Fig. 10: normalized energy efficiency (over DianNao)\n")?;
    writeln!(out, "{}", cli::normalized_view(&comparisons, energy_efficiency))?;
    writeln!(out, "paper SmartExchange row: 6.7 3.4 2.3 2.0 5.0 3.3 5.2 (geomean 3.7)")?;
    writeln!(out, "shape checks: SmartExchange highest on every model; DianNao = 1.0.")?;
    Ok(())
}

/// One model's energy efficiencies normalized over DianNao.
pub fn energy_efficiency(cmp: &ModelComparison) -> [Option<f64>; 5] {
    let e = cmp.energies_mj(&EnergyModel::default(), &SeAcceleratorConfig::default());
    let base = e[0].expect("DianNao runs everything");
    e.map(|v| v.map(|energy| base / energy))
}
