//! Section III-C post-processing experiment: applying the SmartExchange
//! algorithm to a pre-trained VGG19 on CIFAR-10 *without re-training*.
//!
//! Paper: ~30 seconds end-to-end, >10× compression, 3.21% accuracy drop
//! (θ = 4e-3, tol = 1e-10, 30 iterations max). Accuracy requires CIFAR-10
//! training (gated); the reconstruction-error column stands in as the
//! fidelity measure, and `fig8` covers accuracy on the synthetic task.

use crate::args::Flags;
use crate::{table, Result};
use se_core::{SeConfig, VectorSparsity};
use se_ir::storage;
use se_models::{artifacts, zoo};
use std::io::Write;
use std::time::Instant;

/// Runs the experiment (note: the runtime row is wall-clock and therefore
/// the one intentionally non-deterministic output in the harness).
///
/// # Errors
///
/// Propagates compression and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let net = zoo::vgg19_cifar();
    let cfg = SeConfig::default()
        .with_max_iterations(if flags.fast { 8 } else { 30 })?
        .with_vector_sparsity(VectorSparsity::RelativeThreshold(0.4))?;

    writeln!(out, "Section III-C: SmartExchange as post-processing on VGG19/CIFAR-10\n")?;
    // `--traces-dir` replays (or populates) the persisted compression
    // artifact; a cache-warm run's runtime row then measures the replay,
    // which is the point of persisting it.
    let start = Instant::now();
    let reports =
        artifacts::network_reports_cached(&net, &cfg, flags.seed, flags.traces_dir.as_deref())?;
    let elapsed = start.elapsed();

    let mut total = storage::SeStorage::default();
    let mut params = 0u64;
    let mut err = 0f64;
    for r in &reports {
        total.accumulate(&r.storage);
        params += r.params;
        err += f64::from(r.recon_error) * r.params as f64;
    }
    let rows = vec![
        vec!["runtime (s)".to_string(), format!("{:.1}", elapsed.as_secs_f64()), "~30".into()],
        vec![
            "compression rate".to_string(),
            format!("{:.1}x", storage::compression_rate(params, &total)),
            ">10x".into(),
        ],
        vec![
            "mean relative reconstruction error".to_string(),
            format!("{:.3}", err / params as f64),
            "(3.21% accuracy drop)".into(),
        ],
    ];
    writeln!(out, "{}", table::render(&["metric", "ours", "paper"], &rows))?;
    Ok(())
}
