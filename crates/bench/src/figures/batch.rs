//! `se batch` — the fixed batch-size sweep: how per-image DRAM traffic,
//! energy, and latency fall as the weight fetch (and, on SmartExchange,
//! the basis + coefficient rebuild) is amortized across a batch.
//!
//! The paper's accelerator evaluation is batch-size-1; this sweep
//! quantifies the serving-side win it leaves on the table. Each model is
//! simulated **once per image** (replaying `--traces-dir` artifacts when
//! present) and every batch size is derived from that single pass by
//! `se_serve`'s batch engine, so `--batch-sizes 1,4,16` costs one
//! simulation and batch = 1 reproduces the single-image protocol of
//! `se fig10`/`fig11`/`fig12` exactly.

use crate::args::Flags;
use crate::runner::RunnerOptions;
use crate::{cli, table, Result};
use se_hw::{EnergyModel, RunResult, SeAcceleratorConfig};
use se_ir::NetworkDesc;
use se_models::traces::{self, TracePair};
use se_serve::{BatchEngine, ACCEL_NAMES, SE_LANE};
use std::io::Write;

/// Default sweep when `--batch-sizes` is absent.
pub const DEFAULT_BATCH_SIZES: [usize; 5] = [1, 2, 4, 8, 16];

/// Runs the sweep on the paper's accelerator-benchmark model set.
///
/// # Errors
///
/// Propagates trace, simulation, and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    run_with_models(flags, &cli::selected_models(flags), out)
}

/// The trace pairs for one model: replayed from `--traces-dir` artifacts
/// when a matching one exists, generated otherwise (bit-identical either
/// way).
pub fn pairs_for(net: &NetworkDesc, flags: &Flags, opts: &RunnerOptions) -> Result<Vec<TracePair>> {
    if let Some(dir) = flags.traces_dir.as_deref() {
        if let Some(pairs) = traces::cached_trace_pairs(net, &opts.traces, dir)? {
            return Ok(pairs);
        }
    }
    Ok(traces::trace_pairs(net, &opts.traces)?)
}

/// [`run`] on an explicit model set (the testable core).
///
/// # Errors
///
/// Propagates trace, simulation, and I/O failures.
pub fn run_with_models(flags: &Flags, models: &[NetworkDesc], out: &mut dyn Write) -> Result<()> {
    let opts = flags.runner_options()?;
    let sizes: Vec<usize> =
        flags.batch_sizes.clone().unwrap_or_else(|| DEFAULT_BATCH_SIZES.to_vec());
    let em = EnergyModel::default();
    let ecfg = SeAcceleratorConfig::default();
    writeln!(out, "se batch: weight-fetch amortization across batch sizes\n")?;
    for net in models {
        se_core::se_info!("  batching {} x{:?}...", net.name(), sizes);
        let pairs = pairs_for(net, flags, &opts)?;
        let engine = BatchEngine::new(opts.se_cfg.clone(), opts.baseline_cfg.clone())?;
        let runs = engine.per_image_comparison(&pairs, opts.sim_parallelism)?;
        let se = runs[SE_LANE].as_ref().expect("SmartExchange supports every layer");

        // Per-image SmartExchange cost vs batch size.
        let mut rows = Vec::new();
        for &n in &sizes {
            let b = engine.batched(SE_LANE, se, n);
            let m = b.mem_totals();
            let nf = n as f64;
            rows.push(vec![
                n.to_string(),
                format!("{:.1}", weight_dram_per_image(&b, n)),
                format!("{:.1}", m.dram_total_bytes() as f64 / nf),
                format!("{:.4}", b.energy_mj(&em, &ecfg) / nf),
                format!("{:.1}", b.total_cycles() as f64 / nf),
                format!("{:.1}", nf * ecfg.frequency_hz / b.total_cycles() as f64),
            ]);
        }
        writeln!(out, "{}: SmartExchange per-image cost vs batch size", net.name())?;
        writeln!(
            out,
            "{}",
            table::render(
                &["batch", "wgt DRAM B/img", "DRAM B/img", "mJ/img", "cycles/img", "img/s"],
                &rows,
            )
        )?;

        // Energy per image across all five accelerators: the dense designs
        // re-fetch far more weight bytes per image, so batching closes more
        // of their gap — the communication-for-computation trade viewed
        // from the serving side.
        let mut rows = Vec::new();
        for &n in &sizes {
            let mut row = vec![n.to_string()];
            for (lane, run) in runs.iter().enumerate() {
                row.push(match run {
                    Some(r) => {
                        format!(
                            "{:.4}",
                            engine.batched(lane, r, n).energy_mj(&em, &ecfg) / n as f64
                        )
                    }
                    None => "n/a".to_string(),
                });
            }
            rows.push(row);
        }
        let headers: Vec<&str> = std::iter::once("batch").chain(ACCEL_NAMES).collect();
        writeln!(out, "{}: energy per image (mJ) across accelerators", net.name())?;
        writeln!(out, "{}", table::render(&headers, &rows))?;
    }
    writeln!(
        out,
        "batch = 1 reproduces the single-image protocol exactly; weight DRAM/img\n\
         decays as 1/batch toward the activation-traffic floor."
    )?;
    Ok(())
}

/// Per-image weight-side DRAM bytes of one batched run (used by tests and
/// the serving report).
pub fn weight_dram_per_image(batched: &RunResult, batch: usize) -> f64 {
    let m = batched.mem_totals();
    (m.dram_weight_bytes + m.dram_index_bytes) as f64 / batch as f64
}
