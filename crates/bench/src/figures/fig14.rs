//! Fig. 14: SmartExchange energy breakdown and latency on ResNet50 at four
//! vector-wise weight sparsity ratios (45.0 / 51.7 / 57.5 / 60.0 %).
//!
//! Each sparsity point regenerates the model's weights at that sparsity
//! (keeping the paper's channel/vector structure, so input-activation
//! skipping scales with the sweep) and re-compresses them — the sweep
//! deliberately bypasses the trace cache, since every point uses different
//! weights.
//!
//! Paper: raising sparsity from 45% to 60% cuts input DRAM+GB energy by
//! 18.33% and latency by 41.83%; normalized energy-efficiency/speedup
//! improve 1.00/1.00 → 1.16/1.42.

use crate::args::Flags;
use crate::{table, Result};
use se_core::{layer as se_layer, SeConfig, VectorSparsity};
use se_hw::sim::SeAccelerator;
use se_hw::{Accelerator, EnergyModel, RunResult, SeAcceleratorConfig};
use se_ir::{LayerTrace, QuantTensor, WeightData};
use se_models::{activations, weights, zoo};
use std::io::Write;

/// Runs the sparsity sweep.
///
/// # Errors
///
/// Propagates compression, simulation, and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let net = zoo::resnet50();
    let em = EnergyModel::default();
    let mut hw_cfg = SeAcceleratorConfig::default();
    if flags.fast {
        hw_cfg.row_sample = 4;
    }
    let accel = SeAccelerator::new(hw_cfg.clone())?;

    let ratios = [0.45f32, 0.517, 0.575, 0.60];
    writeln!(out, "Fig. 14: ResNet50 vs vector-wise weight sparsity\n")?;
    let mut rows = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    for &sp in &ratios {
        se_core::se_info!("  sparsity {:.1}%...", sp * 100.0);
        // Near-zero rows of the regenerated weights are what the relative
        // threshold prunes, so the Ce sparsity tracks the weight sparsity.
        let se_cfg = SeConfig::default()
            .with_max_iterations(6)?
            .with_vector_sparsity(VectorSparsity::RelativeThreshold(0.4))?;
        let mut run = RunResult::default();
        for (li, desc) in net.layers().iter().enumerate() {
            if !desc.kind().is_conv_like() {
                continue;
            }
            let w = weights::synthetic_weights_with_sparsity(net.name(), desc, flags.seed, sp)?;
            let parts = se_layer::compress_layer(desc, &w, &se_cfg)?;
            let act = activations::synthetic_activation(&net, li, flags.seed)?;
            let qa = QuantTensor::quantize(&act, 8)?;
            let trace = LayerTrace::new(desc.clone(), WeightData::Se(parts), qa)?;
            run.layers.push(accel.process_layer(&trace)?);
        }
        let e = run.energy(&em, &hw_cfg);
        let energy_mj = e.total() * 1e-9;
        let latency_ms = run.latency_ms(&hw_cfg);
        let input_energy = (e.dram_input + e.input_gb_read + e.input_gb_write) * 1e-9;
        let (e0, l0) = *base.get_or_insert((energy_mj, latency_ms));
        rows.push(vec![
            format!("{:.1}%", sp * 100.0),
            format!("{energy_mj:.3}"),
            format!("{input_energy:.3}"),
            format!("{latency_ms:.3}"),
            format!("{:.2}", e0 / energy_mj),
            format!("{:.2}", l0 / latency_ms),
        ]);
    }
    writeln!(
        out,
        "{}",
        table::render(
            &[
                "sparsity",
                "energy (mJ)",
                "input DRAM+GB (mJ)",
                "latency (ms)",
                "norm. energy eff",
                "norm. speedup",
            ],
            &rows,
        )
    )?;
    writeln!(
        out,
        "paper: input DRAM+GB energy -18.3%, latency -41.8% from 45% to 60% sparsity;\n\
         normalized energy efficiency / speedup reach 1.16 / 1.42."
    )?;
    Ok(())
}
