//! Table II: SmartExchange with re-training — compression rate (CR),
//! compressed parameter size, basis/coefficient split, and sparsity for
//! VGG11, ResNet50 (×2 sparsity points), VGG19 (×2), ResNet164 (×2),
//! MLP-1, and MLP-2.
//!
//! Storage/CR columns are computed on the full-size architectures with
//! synthetic weights (see DESIGN.md for the substitution); the paper's
//! accuracy columns require ImageNet/CIFAR training and are reported as
//! paper values for reference, with synthetic-task accuracy deltas covered
//! by the `fig8` experiment.

use crate::args::Flags;
use crate::{table, Result};
use se_core::{SeConfig, VectorSparsity};
use se_ir::{storage, NetworkDesc};
use se_models::{artifacts, zoo};
use std::io::Write;

struct Row {
    model: &'static str,
    paper_cr: &'static str,
    paper_param: &'static str,
    paper_spar: &'static str,
    net: NetworkDesc,
    sparsity_target: Option<f32>,
}

/// Runs the table.
///
/// # Errors
///
/// Propagates compression and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let entries = vec![
        Row {
            model: "VGG11",
            paper_cr: "47.04",
            paper_param: "17.98",
            paper_spar: "86.0",
            net: zoo::vgg11(),
            sparsity_target: None, // natural 86%
        },
        Row {
            model: "ResNet50",
            paper_cr: "11.53",
            paper_param: "8.88",
            paper_spar: "45.0",
            net: zoo::resnet50(),
            sparsity_target: Some(0.45),
        },
        Row {
            model: "ResNet50",
            paper_cr: "14.24",
            paper_param: "7.19",
            paper_spar: "58.6",
            net: zoo::resnet50(),
            sparsity_target: Some(0.586),
        },
        Row {
            model: "VGG19",
            paper_cr: "80.94",
            paper_param: "0.99",
            paper_spar: "93.7",
            net: zoo::vgg19_cifar(),
            sparsity_target: None, // natural 93%
        },
        Row {
            model: "ResNet164",
            paper_cr: "10.55",
            paper_param: "0.64",
            paper_spar: "61.0",
            net: zoo::resnet164(),
            sparsity_target: Some(0.61),
        },
        Row {
            model: "MLP-1",
            paper_cr: "130",
            paper_param: "0.11",
            paper_spar: "82.3",
            net: zoo::mlp1(),
            sparsity_target: None,
        },
        Row {
            model: "MLP-2",
            paper_cr: "45.03",
            paper_param: "0.024",
            paper_spar: "93.3",
            net: zoo::mlp2(),
            sparsity_target: None,
        },
    ];

    writeln!(out, "Table II: SmartExchange compression on the benchmark networks\n")?;
    let iterations = if flags.fast { 4 } else { 8 };
    let mut rows = Vec::new();
    for entry in &entries {
        if !flags.selects(entry.net.name()) {
            continue;
        }
        se_core::se_info!("  compressing {} ...", entry.model);
        let se_cfg = match entry.sparsity_target {
            Some(sp) => SeConfig::default()
                .with_max_iterations(iterations)?
                .with_vector_sparsity(VectorSparsity::KeepFraction(1.0 - sp))?,
            None => SeConfig::default()
                .with_max_iterations(iterations)?
                .with_vector_sparsity(VectorSparsity::RelativeThreshold(0.4))?,
        };
        // `--traces-dir` replays (or populates) the persisted
        // `CompressedNetwork` artifact for this configuration; without it
        // the streaming report-only path runs as before. Reports are
        // bit-identical either way.
        let reports = artifacts::network_reports_cached(
            &entry.net,
            &se_cfg,
            flags.seed,
            flags.traces_dir.as_deref(),
        )?;
        let mut total = storage::SeStorage::default();
        let mut params = 0u64;
        let mut pruned = 0f64;
        for r in &reports {
            total.accumulate(&r.storage);
            params += r.params;
            pruned += f64::from(r.vector_sparsity) * r.params as f64;
        }
        let cr = storage::compression_rate(params, &total);
        rows.push(vec![
            entry.model.to_string(),
            format!("{cr:.2}"),
            entry.paper_cr.to_string(),
            format!("{:.2}", total.total_megabytes()),
            entry.paper_param.to_string(),
            format!("{:.2}", total.basis_megabytes()),
            format!("{:.2}", total.ce_megabytes()),
            format!("{:.1}%", pruned / params as f64 * 100.0),
            format!("{}%", entry.paper_spar),
        ]);
    }
    writeln!(
        out,
        "{}",
        table::render(
            &[
                "model",
                "CR (ours)",
                "CR (paper)",
                "Param MB (ours)",
                "(paper)",
                "B MB",
                "Ce MB",
                "Spar (ours)",
                "(paper)",
            ],
            &rows,
        )
    )?;
    writeln!(
        out,
        "accuracy columns: gated on ImageNet/CIFAR training — see fig8 for the\n\
         synthetic-task accuracy-vs-compression trade-off and EXPERIMENTS.md\n\
         for the paper's reported accuracies."
    )?;
    Ok(())
}
