//! Section V-B component ablation: the SmartExchange accelerator vs a
//! similar dense baseline accelerator (non-bit-serial, 16×8×8, same
//! resources) on ResNet50, and the contribution of each component.
//!
//! Paper: 3.65× better energy efficiency (DRAM savings split 23.99% from
//! compression, 12.48% from vector-wise sparsity, 36.14% from bit-level
//! sparsity) and 7.41× speedup assuming sufficient DRAM bandwidth.

use crate::args::Flags;
use crate::{table, Result};
use se_hw::sim::SeAccelerator;
use se_hw::{Accelerator, EnergyModel, RunResult, SeAcceleratorConfig};
use se_models::traces::{self, TraceOptions, TracePair, TraceStream};
use se_models::zoo;
use std::io::Write;

/// Runs one ablation step over pre-loaded pairs or the streaming path.
fn run_step(
    cfg: SeAcceleratorConfig,
    net: &se_ir::NetworkDesc,
    opts: &TraceOptions,
    cached: Option<&[TracePair]>,
    use_se_weights: bool,
) -> Result<RunResult> {
    let accel = SeAccelerator::new(cfg)?;
    let mut run = RunResult::default();
    let mut process = |pair: &TracePair| -> Result<()> {
        let trace = if use_se_weights { &pair.se } else { &pair.dense };
        run.layers.push(accel.process_layer(trace)?);
        Ok(())
    };
    match cached {
        // Replayed traces: the four ablation steps reuse one decomposition
        // instead of regenerating it per step.
        Some(pairs) => {
            for pair in pairs {
                process(pair)?;
            }
        }
        None => {
            for pair in TraceStream::new(net, opts.clone()) {
                process(&pair?)?;
            }
        }
    }
    Ok(run)
}

/// Runs the component-ablation ladder.
///
/// # Errors
///
/// Propagates trace, simulation, and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let net = zoo::resnet50();
    let opts = TraceOptions::fast().with_seed(flags.seed);
    let em = EnergyModel::default();
    let report_cfg = SeAcceleratorConfig::default();

    // With `--traces-dir`, load the decomposition once and replay it for
    // all four steps; without, each step streams (bounded memory).
    let cached: Option<Vec<TracePair>> = match flags.traces_dir.as_deref() {
        Some(dir) => traces::cached_trace_pairs(&net, &opts, dir)?,
        None => None,
    };

    let mut sample = SeAcceleratorConfig::default();
    if flags.fast {
        sample.row_sample = 4;
    }

    // The ablation ladder: dense baseline accel -> +compression ->
    // +vector-sparsity skipping -> +bit-serial lanes (full design).
    let steps: Vec<(&str, SeAcceleratorConfig, bool)> = vec![
        (
            "baseline accel, dense weights",
            {
                let mut c = SeAcceleratorConfig::ablation_dense_baseline();
                c.row_sample = sample.row_sample;
                c
            },
            false,
        ),
        (
            "+ SE compression (weights only)",
            {
                let mut c = SeAcceleratorConfig::ablation_dense_baseline();
                c.row_sample = sample.row_sample;
                c
            },
            true,
        ),
        (
            "+ vector-wise sparsity (index select)",
            {
                let mut c = SeAcceleratorConfig::ablation_dense_baseline();
                c.index_select = true;
                c.row_sample = sample.row_sample;
                c
            },
            true,
        ),
        (
            "+ bit-level sparsity (full SmartExchange)",
            SeAcceleratorConfig { row_sample: sample.row_sample, ..Default::default() },
            true,
        ),
    ];

    writeln!(out, "Section V-B component ablation on ResNet50\n")?;
    let mut rows = Vec::new();
    let mut base: Option<(f64, u64, u64)> = None;
    let mut prev_dram: Option<u64> = None;
    let mut base_dram_total = 0u64;
    for (name, cfg, use_se) in steps {
        se_core::se_info!("  {name}...");
        let r = run_step(cfg, &net, &opts, cached.as_deref(), use_se)?;
        let energy = r.energy(&em, &report_cfg).total();
        let cycles = r.total_cycles();
        let dram = r.mem_totals().dram_total_bytes();
        let (e0, c0, d0) = *base.get_or_insert((energy, cycles, dram));
        if base_dram_total == 0 {
            base_dram_total = d0;
        }
        let dram_step_saving = prev_dram
            .map(|p| (p.saturating_sub(dram)) as f64 / base_dram_total as f64 * 100.0)
            .unwrap_or(0.0);
        prev_dram = Some(dram);
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", energy * 1e-9),
            format!("{:.2}x", e0 / energy),
            format!("{:.2}x", c0 as f64 / cycles as f64),
            format!("{:.1}%", dram as f64 / d0 as f64 * 100.0),
            format!("{dram_step_saving:.1}%"),
        ]);
    }
    writeln!(
        out,
        "{}",
        table::render(
            &[
                "configuration",
                "energy (mJ)",
                "energy eff",
                "speedup",
                "DRAM vs baseline",
                "DRAM saved by step",
            ],
            &rows,
        )
    )?;
    writeln!(
        out,
        "paper: full design reaches 3.65x energy efficiency and 7.41x speedup over\n\
         the baseline accelerator; DRAM savings split 24.0% / 12.5% / 36.1% across\n\
         compression / vector-wise / bit-level steps."
    )?;
    Ok(())
}
