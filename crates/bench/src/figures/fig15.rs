//! Fig. 15: energy and latency of MobileNetV2 depth-wise CONV layers with
//! and without the dedicated compact-model design (Section IV-B).
//!
//! Paper: the dedicated dataflow cuts layer energy by 6.4–28.8% and layer
//! latency by 38.3–65.7% on the selected depth-wise layers.

use crate::args::Flags;
use crate::{table, Result};
use se_hw::sim::SeAccelerator;
use se_hw::{Accelerator, EnergyModel, SeAcceleratorConfig};
use se_ir::{LayerKind, LayerTrace};
use se_models::traces::{self, TraceOptions};
use se_models::zoo;
use std::io::Write;

/// The SE trace for one layer: taken from pre-loaded `--traces-dir`
/// pairs when the artifact covers it, otherwise generated directly —
/// bit-identical either way.
fn se_trace_maybe_cached(
    net: &se_ir::NetworkDesc,
    layer_index: usize,
    opts: &TraceOptions,
    cached: Option<&[traces::TracePair]>,
) -> Result<LayerTrace> {
    if let Some(pair) = cached.and_then(|pairs| pairs.iter().find(|p| p.layer_index == layer_index))
    {
        return Ok(pair.se.clone());
    }
    Ok(traces::se_trace(net, layer_index, opts.base_seed, &opts.se_config)?)
}

/// Runs the dedicated-design comparison.
///
/// # Errors
///
/// Propagates trace, simulation, and I/O failures.
pub fn run(flags: &Flags, out: &mut dyn Write) -> Result<()> {
    let net = zoo::mobilenet_v2();
    let em = EnergyModel::default();
    let with_cfg = SeAcceleratorConfig::default();
    let without_cfg = SeAcceleratorConfig { compact_dedicated: false, ..Default::default() };
    let with_accel = SeAccelerator::new(with_cfg.clone())?;
    let without_accel = SeAccelerator::new(without_cfg)?;

    // Four depth-wise layers across the depth of the network (the paper
    // picks layers 5, 20, 23, 38 of its numbering; we take the 2nd, 8th,
    // 10th and 16th depth-wise layers, spanning early to late stages).
    let dw_indices: Vec<usize> = net
        .layers()
        .iter()
        .enumerate()
        .filter(|(_, l)| matches!(l.kind(), LayerKind::DepthwiseConv2d { .. }))
        .map(|(i, _)| i)
        .collect();
    let picks = [1usize, 7, 9, 15];

    writeln!(out, "Fig. 15: MobileNetV2 depth-wise layers, dedicated design on/off\n")?;
    let opts = TraceOptions::fast().with_seed(flags.seed);
    // Decode the artifact once for all picks (it holds the whole network).
    let cached = match flags.traces_dir.as_deref() {
        Some(dir) => traces::cached_trace_pairs(&net, &opts, dir)?,
        None => None,
    };
    let mut rows = Vec::new();
    for &p in &picks {
        let li = dw_indices[p.min(dw_indices.len() - 1)];
        let trace = se_trace_maybe_cached(&net, li, &opts, cached.as_deref())?;
        let with = with_accel.process_layer(&trace)?;
        let without = without_accel.process_layer(&trace)?;
        let e_with = with.energy(&em, &with_cfg).total();
        let e_without = without.energy(&em, &with_cfg).total();
        rows.push(vec![
            net.layers()[li].name().to_string(),
            format!("{}", with.total_cycles),
            format!("{}", without.total_cycles),
            format!(
                "{:.1}%",
                (1.0 - with.total_cycles as f64 / without.total_cycles as f64) * 100.0
            ),
            format!("{:.1}%", (1.0 - e_with / e_without) * 100.0),
        ]);
    }
    writeln!(
        out,
        "{}",
        table::render(
            &["layer", "cycles (dedicated)", "cycles (w/o)", "latency saved", "energy saved"],
            &rows,
        )
    )?;
    writeln!(out, "paper: latency saved 38.3-65.7%, energy saved 6.4-28.8%.")?;
    Ok(())
}
