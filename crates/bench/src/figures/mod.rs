//! Implementations of the paper's tables and figures, one module per
//! experiment — the bodies behind the `se` subcommands (`se_bench::cli`)
//! and the deprecated standalone binaries.
//!
//! Every experiment is a `run(flags, out)` function writing its tables to
//! an arbitrary sink, which is what lets tests assert cached (`--traces-dir`)
//! and direct runs produce byte-identical output.

pub mod ablation;
pub mod batch;
pub mod bench_serve;
pub mod cluster;
pub mod compare;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig4;
pub mod fig8;
pub mod fig9;
pub mod latency;
pub mod obs;
pub mod postproc;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod trace;
